"""Setup shim for environments without the `wheel` package.

All metadata lives in pyproject.toml; this file only enables the legacy
`pip install -e . --no-use-pep517` editable path used offline.
"""

from setuptools import setup

setup()
