"""Tests for the synthetic ontology generator."""

import pytest

from repro.datasets.synthetic_rdf import (
    OntologyProfile,
    generate_ontology_graph,
    generate_ontology_triples,
    seed_from_name,
)
from repro.graph.stats import graph_stats


def profile(**overrides) -> OntologyProfile:
    defaults = dict(triples=300, subclass_fraction=0.3, type_fraction=0.5,
                    layers=4, seed=11)
    defaults.update(overrides)
    return OntologyProfile(**defaults)


class TestProfileValidation:
    def test_positive_triples(self):
        with pytest.raises(ValueError):
            profile(triples=0)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            profile(subclass_fraction=1.2)
        with pytest.raises(ValueError):
            profile(type_fraction=-0.1)

    def test_fractions_must_fit(self):
        with pytest.raises(ValueError):
            profile(subclass_fraction=0.6, type_fraction=0.6)

    def test_hub_bounds(self):
        with pytest.raises(ValueError):
            profile(hub_min=10, hub_max=5)


class TestGeneration:
    def test_exact_triple_count(self):
        for count in [50, 252, 459, 1086]:
            triples = generate_ontology_triples(profile(triples=count))
            assert len(triples) == count

    def test_exact_triple_count_with_equal_halves(self):
        # Regression: round(0.5*459) twice used to overshoot by one.
        triples = generate_ontology_triples(
            profile(triples=459, subclass_fraction=0.5, type_fraction=0.5)
        )
        assert len(triples) == 459

    def test_deterministic(self):
        assert (generate_ontology_triples(profile())
                == generate_ontology_triples(profile()))

    def test_different_seeds_differ(self):
        assert (generate_ontology_triples(profile(seed=1))
                != generate_ontology_triples(profile(seed=2)))

    def test_predicate_mix(self):
        triples = generate_ontology_triples(profile())
        predicates = {p for _s, p, _o in triples}
        assert predicates <= {"subClassOf", "type", "related"}
        assert sum(1 for _s, p, _o in triples if p == "subClassOf") == 90
        assert sum(1 for _s, p, _o in triples if p == "type") == 150

    def test_subclass_edges_respect_layering_without_skip(self):
        triples = generate_ontology_triples(profile(skip_level_rate=0.0))
        children = {s for s, p, _o in triples if p == "subClassOf"}
        # no class is its own ancestor in a layered hierarchy
        parent_map = {}
        for s, p, o in triples:
            if p == "subClassOf":
                parent_map.setdefault(s, set()).add(o)
        for child, parents in parent_map.items():
            assert child not in parents

    def test_zero_hierarchy_profile(self):
        triples = generate_ontology_triples(
            profile(subclass_fraction=0.0, type_fraction=0.8, layers=1)
        )
        assert not any(p == "subClassOf" for _s, p, _o in triples)
        assert any(p == "type" for _s, p, _o in triples)

    def test_graph_conversion_adds_inverses(self):
        graph = generate_ontology_graph(profile())
        stats = graph_stats(graph)
        assert stats.triple_count == 300
        assert stats.edge_count == 600  # forward + inverse


class TestSeedFromName:
    def test_stable(self):
        assert seed_from_name("wine") == seed_from_name("wine")

    def test_distinct(self):
        names = ["skos", "wine", "pizza", "foaf", "funding"]
        assert len({seed_from_name(n) for n in names}) == len(names)
