"""Tests for the dataset registry (paper Tables 1-2 reference data)."""

import pytest

from repro.datasets.registry import (
    ALL_NAMES,
    ONTOLOGY_NAMES,
    SYNTHETIC_NAMES,
    build_graph,
    clear_graph_cache,
    dataset_names,
    get_spec,
)
from repro.errors import DatasetError
from repro.graph.stats import graph_stats


class TestSpecs:
    def test_fourteen_datasets(self):
        assert len(ALL_NAMES) == 14
        assert len(ONTOLOGY_NAMES) == 11
        assert len(SYNTHETIC_NAMES) == 3
        assert dataset_names() == ALL_NAMES

    def test_paper_triple_counts_transcribed(self):
        expected = {
            "skos": 252, "generations": 273, "travel": 277,
            "univ-bench": 293, "atom-primitive": 425,
            "biomedical-measure-primitive": 459, "foaf": 631,
            "people-pets": 640, "funding": 1086, "wine": 1839,
            "pizza": 1980, "g1": 8688, "g2": 14712, "g3": 15840,
        }
        for name, triples in expected.items():
            assert get_spec(name).triples == triples, name

    def test_g_datasets_are_8x_their_base(self):
        for name, base in [("g1", "funding"), ("g2", "wine"), ("g3", "pizza")]:
            spec = get_spec(name)
            base_spec = get_spec(base)
            assert spec.repeat_of == base
            assert spec.repeat_copies == 8
            assert spec.triples == 8 * base_spec.triples
            assert spec.query1.results == 8 * base_spec.query1.results
            assert spec.query2.results == 8 * base_spec.query2.results

    def test_dgpu_omitted_on_large_graphs(self):
        for name in SYNTHETIC_NAMES:
            spec = get_spec(name)
            assert spec.query1.dgpu_ms is None
            assert spec.query2.dgpu_ms is None

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            get_spec("imaginary")

    def test_repeated_dataset_has_no_profile(self):
        with pytest.raises(DatasetError):
            get_spec("g1").profile()


class TestGraphConstruction:
    def test_triple_counts_match_paper_exactly(self):
        for name in ONTOLOGY_NAMES:
            graph = build_graph(name)
            stats = graph_stats(graph)
            assert stats.triple_count == get_spec(name).triples, name
            # inverse edges double the edge count
            assert stats.edge_count == 2 * stats.triple_count

    def test_g1_is_eight_copies(self):
        base = build_graph("funding")
        g1 = build_graph("g1")
        assert g1.node_count == 8 * base.node_count
        assert g1.edge_count == 8 * base.edge_count

    def test_deterministic_regeneration(self):
        first = build_graph("skos", use_cache=False)
        clear_graph_cache()
        second = build_graph("skos", use_cache=False)
        assert first == second

    def test_cache_returns_same_object(self):
        clear_graph_cache()
        assert build_graph("skos") is build_graph("skos")


class TestResultShape:
    """Measured #results must be the same order of magnitude as the
    paper's on every ontology (exact equality is impossible without the
    original RDF files; see DESIGN.md §5)."""

    @pytest.mark.parametrize("name", ONTOLOGY_NAMES)
    def test_query1_results_within_2x(self, name):
        from repro.core.matrix_cfpq import solve_matrix_relations
        from repro.grammar.builders import same_generation_query1

        graph = build_graph(name)
        measured = len(solve_matrix_relations(
            graph, same_generation_query1()).pairs("S"))
        published = get_spec(name).query1.results
        assert published / 2 <= measured <= published * 2, (
            f"{name}: measured {measured}, paper {published}"
        )

    def test_query2_zero_row_reproduced(self):
        """generations has Q2 = 0 in the paper."""
        from repro.core.matrix_cfpq import solve_matrix_relations
        from repro.grammar.builders import same_generation_query2

        graph = build_graph("generations")
        relations = solve_matrix_relations(graph, same_generation_query2())
        assert relations.count("S") == 0

    def test_biomedical_is_the_query2_outlier(self):
        """The paper's biomedical row has Q2 far above every other
        small ontology; the reproduction must preserve that ordering."""
        from repro.core.matrix_cfpq import solve_matrix_relations
        from repro.grammar.builders import same_generation_query2

        counts = {}
        for name in ["skos", "travel", "univ-bench", "atom-primitive",
                     "biomedical-measure-primitive", "foaf"]:
            graph = build_graph(name)
            counts[name] = solve_matrix_relations(
                graph, same_generation_query2()).count("S")
        outlier = counts.pop("biomedical-measure-primitive")
        assert outlier > 5 * max(counts.values())
