"""Tests for the built-in query grammar builders."""

import pytest

from repro.grammar.builders import (
    GRAMMAR_REGISTRY,
    chain_reachability,
    dyck,
    dyck1,
    get_grammar,
    points_to_grammar,
    rna_hairpin_grammar,
    same_generation_query1,
    same_generation_query1_cnf,
    same_generation_query2,
)
from repro.grammar.cnf import to_cnf
from repro.grammar.recognizer import derives, language_sample
from repro.grammar.symbols import Nonterminal

S = Nonterminal("S")


def test_query1_matches_paper_figure10():
    grammar = same_generation_query1()
    assert len(grammar) == 4
    assert grammar.nonterminals == {S}
    assert derives(grammar, S, ["type_r", "type"])
    assert derives(grammar, S, ["subClassOf_r", "subClassOf"])
    assert derives(grammar, S,
                   ["subClassOf_r", "type_r", "type", "subClassOf"])
    assert not derives(grammar, S, ["type", "type_r"])
    assert not derives(grammar, S, ["subClassOf_r", "type"])


def test_query1_cnf_matches_paper_figure4():
    grammar = same_generation_query1_cnf()
    assert grammar.is_cnf
    assert len(grammar) == 10
    assert grammar.nonterminals == {
        Nonterminal(name) for name in ["S", "S1", "S2", "S3", "S4", "S5", "S6"]
    }


def test_query1_cnf_equivalent_to_query1():
    """The paper asserts L(G_S) = L(G'_S); check on all short words."""
    original = same_generation_query1()
    manual_cnf = same_generation_query1_cnf()
    alphabet = sorted(t.label for t in original.terminals)
    for length_bound in [4]:
        original_words = set(language_sample(original, S, length_bound, alphabet))
        cnf_words = set(language_sample(manual_cnf, S, length_bound, alphabet))
        assert original_words == cnf_words


def test_query2_matches_paper_figure11():
    grammar = same_generation_query2()
    assert derives(grammar, S, ["subClassOf"])
    assert derives(grammar, S, ["subClassOf_r", "subClassOf", "subClassOf"])
    assert derives(grammar, Nonterminal("B"), ["subClassOf_r", "subClassOf"])
    assert not derives(grammar, S, ["subClassOf_r"])
    assert not derives(grammar, S, ["subClassOf", "subClassOf"])


def test_dyck1_language():
    grammar = dyck1()
    assert derives(grammar, S, ["a", "b"])
    assert derives(grammar, S, ["a", "a", "b", "b"])
    assert derives(grammar, S, ["a", "b", "a", "b"])
    assert not derives(grammar, S, ["a"])
    assert not derives(grammar, S, ["b", "a"])


def test_dyck_multi_pair():
    grammar = dyck([("(", ")"), ("[", "]")])
    assert derives(grammar, S, ["(", "[", "]", ")"])
    assert not derives(grammar, S, ["(", "]", ")", "["])


def test_dyck_requires_pairs():
    with pytest.raises(ValueError):
        dyck([])


def test_points_to_grammar_normalizes():
    grammar = points_to_grammar()
    assert to_cnf(grammar).is_cnf
    # minimal alias: two pointers assigned from the same address
    assert derives(grammar, Nonterminal("M"), ["d_r", "a", "d"])
    assert derives(grammar, Nonterminal("M"), ["d_r", "a_r", "d"])


def test_rna_grammar_complementary_pairs():
    grammar = rna_hairpin_grammar()
    assert derives(grammar, S, ["a", "u"])
    assert derives(grammar, S, ["g", "a", "u", "c"])
    assert not derives(grammar, S, ["a", "a"])
    assert not derives(grammar, S, ["a", "c"])


def test_chain_reachability():
    grammar = chain_reachability("x")
    assert derives(grammar, S, ["x"])
    assert derives(grammar, S, ["x", "x", "x"])
    assert not derives(grammar, S, [])


def test_registry_contains_all_builders():
    for name in ["query1", "query1-cnf", "query2", "dyck1", "points-to",
                 "rna", "chain"]:
        assert name in GRAMMAR_REGISTRY
        assert get_grammar(name) is not None


def test_get_grammar_unknown_name():
    with pytest.raises(KeyError) as excinfo:
        get_grammar("nope")
    assert "dyck1" in str(excinfo.value)
