"""Tests for grammar static analyses."""

from repro.grammar.analysis import (
    derives_any_terminal_string,
    generating_nonterminals,
    grammar_signature,
    nullable_nonterminals,
    reachable_symbols,
    remove_non_generating,
    remove_unreachable,
    remove_useless,
    unit_pairs,
)
from repro.grammar.parser import parse_grammar
from repro.grammar.symbols import Nonterminal, Terminal


def test_nullable_direct_and_transitive():
    grammar = parse_grammar(
        """
        S -> A B
        A -> eps
        B -> A A
        C -> a
        """,
        terminals=["a"],
    )
    nullable = nullable_nonterminals(grammar)
    assert nullable == {Nonterminal("S"), Nonterminal("A"), Nonterminal("B")}


def test_nullable_empty_when_no_epsilon():
    grammar = parse_grammar("S -> a S | a", terminals=["a"])
    assert nullable_nonterminals(grammar) == frozenset()


def test_generating_excludes_bottom():
    grammar = parse_grammar(
        """
        S -> a
        Dead -> Dead a
        """,
        terminals=["a"],
    )
    generating = generating_nonterminals(grammar)
    assert Nonterminal("S") in generating
    assert Nonterminal("Dead") not in generating


def test_epsilon_rule_is_generating():
    grammar = parse_grammar("A -> eps")
    assert Nonterminal("A") in generating_nonterminals(grammar)


def test_reachable_symbols():
    grammar = parse_grammar(
        """
        S -> A a
        A -> b
        Island -> c
        """,
        terminals=["a", "b", "c"],
    )
    reached = reachable_symbols(grammar, Nonterminal("S"))
    assert Nonterminal("A") in reached
    assert Terminal("a") in reached
    assert Nonterminal("Island") not in reached


def test_remove_non_generating_drops_rules_mentioning_dead():
    grammar = parse_grammar(
        """
        S -> a
        S -> Dead a
        Dead -> Dead a
        """,
        terminals=["a"],
    )
    cleaned = remove_non_generating(grammar)
    assert len(cleaned) == 1
    assert Nonterminal("Dead") not in cleaned.nonterminals


def test_remove_unreachable():
    grammar = parse_grammar(
        """
        S -> a
        Island -> b
        """,
        terminals=["a", "b"],
    )
    cleaned = remove_unreachable(grammar, Nonterminal("S"))
    assert Nonterminal("Island") not in cleaned.nonterminals


def test_remove_useless_order_matters():
    # B is reachable but non-generating; after dropping B, C becomes
    # unreachable — the classic example requiring generate-then-reach.
    grammar = parse_grammar(
        """
        S -> a | B C
        B -> B b
        C -> c
        """,
        terminals=["a", "b", "c"],
    )
    cleaned = remove_useless(grammar, Nonterminal("S"))
    assert cleaned.nonterminals == {Nonterminal("S")}
    assert len(cleaned) == 1


def test_unit_pairs_reflexive_transitive():
    grammar = parse_grammar(
        """
        A -> B
        B -> C
        C -> a
        """,
        terminals=["a"],
    )
    pairs = unit_pairs(grammar)
    assert pairs[Nonterminal("A")] == {
        Nonterminal("A"), Nonterminal("B"), Nonterminal("C")
    }
    assert pairs[Nonterminal("C")] == {Nonterminal("C")}


def test_unit_pairs_cycle():
    grammar = parse_grammar(
        """
        A -> B
        B -> A
        A -> a
        """,
        terminals=["a"],
    )
    pairs = unit_pairs(grammar)
    assert pairs[Nonterminal("A")] == {Nonterminal("A"), Nonterminal("B")}
    assert pairs[Nonterminal("B")] == {Nonterminal("A"), Nonterminal("B")}


def test_derives_any_terminal_string():
    grammar = parse_grammar("S -> a | S S\nDead -> Dead a", terminals=["a"])
    assert derives_any_terminal_string(grammar, Nonterminal("S"))
    assert not derives_any_terminal_string(grammar, Nonterminal("Dead"))


def test_grammar_signature_counts_shapes():
    grammar = parse_grammar(
        """
        S -> A B
        S -> a
        S -> B
        S -> eps
        S -> a B c
        A -> a
        B -> b
        """,
        terminals=["a", "b", "c"],
    )
    signature = grammar_signature(grammar)
    assert signature["binary"] == 1
    assert signature["terminal"] == 3
    assert signature["unit"] == 1
    assert signature["epsilon"] == 1
    assert signature["long"] == 1
    assert signature["productions"] == 7
