"""Tests for the CYK and Earley recognizers (the test oracles themselves)."""

import pytest

from repro.errors import NotInNormalFormError
from repro.grammar.parser import parse_grammar
from repro.grammar.recognizer import (
    EarleyRecognizer,
    cyk_recognize,
    derives,
    language_sample,
)
from repro.grammar.symbols import Nonterminal

S = Nonterminal("S")


class TestCYK:
    def test_accepts_anbn(self, ab_cnf_grammar):
        assert cyk_recognize(ab_cnf_grammar, S, ["a", "b"])
        assert cyk_recognize(ab_cnf_grammar, S, ["a", "a", "a", "b", "b", "b"])

    def test_rejects_non_members(self, ab_cnf_grammar):
        assert not cyk_recognize(ab_cnf_grammar, S, ["a"])
        assert not cyk_recognize(ab_cnf_grammar, S, ["b", "a"])
        assert not cyk_recognize(ab_cnf_grammar, S, ["a", "b", "a"])

    def test_rejects_empty_word(self, ab_cnf_grammar):
        assert not cyk_recognize(ab_cnf_grammar, S, [])

    def test_requires_cnf(self, anbn_grammar):
        with pytest.raises(NotInNormalFormError):
            cyk_recognize(anbn_grammar, S, ["a", "b"])

    def test_queries_any_nonterminal(self, ab_cnf_grammar):
        assert cyk_recognize(ab_cnf_grammar, Nonterminal("A"), ["a"])
        assert not cyk_recognize(ab_cnf_grammar, Nonterminal("A"), ["b"])


class TestEarley:
    def test_accepts_original_grammar(self, anbn_grammar):
        recognizer = EarleyRecognizer(anbn_grammar)
        assert recognizer.recognizes(S, ["a", "b"])
        assert recognizer.recognizes(S, ["a", "a", "b", "b"])
        assert not recognizer.recognizes(S, ["a", "b", "b"])

    def test_epsilon_word(self):
        grammar = parse_grammar("S -> eps | a S", terminals=["a"])
        recognizer = EarleyRecognizer(grammar)
        assert recognizer.recognizes(S, [])
        assert recognizer.recognizes(S, ["a", "a"])

    def test_nullable_in_middle(self):
        grammar = parse_grammar("S -> a N b\nN -> eps | n", terminals=["a", "b", "n"])
        recognizer = EarleyRecognizer(grammar)
        assert recognizer.recognizes(S, ["a", "b"])
        assert recognizer.recognizes(S, ["a", "n", "b"])
        assert not recognizer.recognizes(S, ["a", "n", "n", "b"])

    def test_left_recursion(self):
        grammar = parse_grammar("S -> S a | a", terminals=["a"])
        recognizer = EarleyRecognizer(grammar)
        assert recognizer.recognizes(S, ["a"] * 5)
        assert not recognizer.recognizes(S, [])

    def test_unit_cycle(self):
        grammar = parse_grammar("S -> A\nA -> S | a", terminals=["a"])
        recognizer = EarleyRecognizer(grammar)
        assert recognizer.recognizes(S, ["a"])
        assert not recognizer.recognizes(S, ["a", "a"])

    def test_derives_helper(self, dyck_grammar):
        assert derives(dyck_grammar, S, ["a", "b", "a", "b"])
        assert not derives(dyck_grammar, S, ["a", "b", "a"])


class TestLanguageSample:
    def test_anbn_enumeration(self, anbn_grammar):
        words = language_sample(anbn_grammar, S, max_length=4)
        assert words == [("a", "b"), ("a", "a", "b", "b")]

    def test_includes_epsilon_when_derivable(self):
        grammar = parse_grammar("S -> eps | a", terminals=["a"])
        words = language_sample(grammar, S, max_length=1)
        assert () in words and ("a",) in words

    def test_dyck_counts(self, dyck_grammar):
        words = language_sample(dyck_grammar, S, max_length=4)
        # ab, abab, aabb
        assert len(words) == 3
