"""Tests for the Chomsky-normal-form pipeline.

The load-bearing property (used by the CFPQ reduction): for every
original non-terminal A and every **non-empty** word w,
``A ⇒* w`` in the original grammar iff ``A ⇒* w`` after ``to_cnf``.
We check it with the Earley recognizer as the original-grammar oracle
and CYK on the normalized grammar, both on fixed cases and on
hypothesis-generated random grammars and words.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grammar.cfg import CFG
from repro.grammar.cnf import (
    binarize,
    eliminate_epsilon,
    eliminate_unit_rules,
    ensure_cnf,
    lift_terminals,
    to_cnf,
)
from repro.grammar.parser import parse_grammar
from repro.grammar.production import Production, production
from repro.grammar.recognizer import EarleyRecognizer, cyk_recognize
from repro.grammar.symbols import Nonterminal, Terminal


class TestLiftTerminals:
    def test_terminals_in_long_bodies_get_proxies(self):
        grammar = parse_grammar("S -> a S b", terminals=["a", "b"])
        lifted = lift_terminals(grammar)
        for rule in lifted.productions:
            if len(rule.body) > 1:
                assert all(isinstance(s, Nonterminal) for s in rule.body)

    def test_short_bodies_untouched(self):
        grammar = parse_grammar("S -> a", terminals=["a"])
        assert lift_terminals(grammar) == grammar

    def test_proxy_shared_across_rules(self):
        grammar = parse_grammar("S -> a S a | a a", terminals=["a"])
        lifted = lift_terminals(grammar)
        terminal_rules = [p for p in lifted.productions if p.is_terminal_rule]
        # exactly one proxy rule T_a -> a
        assert len(terminal_rules) == 1

    def test_no_name_collision_with_existing(self):
        grammar = CFG([
            production("S", "a", "T_a", terminals={"a"}),
            production("T_a", "b", terminals={"b"}),
        ])
        lifted = lift_terminals(grammar)
        # the generated proxy must not be the pre-existing T_a
        proxy_rules = [
            p for p in lifted.productions
            if p.is_terminal_rule and p.body[0] == Terminal("a")
        ]
        assert proxy_rules and all(p.head != Nonterminal("T_a") for p in proxy_rules)


class TestBinarize:
    def test_long_body_split(self):
        grammar = parse_grammar("S -> A B C D\nA -> a\nB -> a\nC -> a\nD -> a",
                                terminals=["a"])
        result = binarize(grammar)
        assert all(len(p.body) <= 2 for p in result.productions)

    def test_language_preserved_on_chain(self):
        grammar = parse_grammar("S -> A A A\nA -> a", terminals=["a"])
        result = to_cnf(grammar)
        assert cyk_recognize(result, Nonterminal("S"), ["a", "a", "a"])
        assert not cyk_recognize(result, Nonterminal("S"), ["a", "a"])


class TestEliminateEpsilon:
    def test_no_epsilon_rules_remain(self):
        grammar = parse_grammar("S -> A B\nA -> a | eps\nB -> b", terminals=["a", "b"])
        result = eliminate_epsilon(grammar)
        assert not any(p.is_epsilon for p in result.productions)

    def test_nullable_variants_added(self):
        grammar = parse_grammar("S -> A B\nA -> a | eps\nB -> b", terminals=["a", "b"])
        result = eliminate_epsilon(grammar)
        bodies = {p.body for p in result.productions if p.head == Nonterminal("S")}
        assert (Nonterminal("B"),) in bodies           # A dropped
        assert (Nonterminal("A"), Nonterminal("B")) in bodies

    def test_fully_nullable_body_not_emitted_empty(self):
        grammar = parse_grammar("S -> A A\nA -> eps | a", terminals=["a"])
        result = eliminate_epsilon(grammar)
        assert all(p.body for p in result.productions)


class TestEliminateUnitRules:
    def test_unit_chain_collapsed(self):
        grammar = parse_grammar("A -> B\nB -> C\nC -> c", terminals=["c"])
        result = eliminate_unit_rules(grammar)
        assert not any(p.is_unit_rule for p in result.productions)
        heads = {p.head for p in result.productions if p.body == (Terminal("c"),)}
        assert heads == {Nonterminal("A"), Nonterminal("B"), Nonterminal("C")}

    def test_unit_cycle_terminates(self):
        grammar = parse_grammar("A -> B | a\nB -> A | b", terminals=["a", "b"])
        result = eliminate_unit_rules(grammar)
        assert not any(p.is_unit_rule for p in result.productions)


class TestToCnf:
    def test_result_is_cnf(self, anbn_grammar, dyck_grammar):
        assert to_cnf(anbn_grammar).is_cnf
        assert to_cnf(dyck_grammar).is_cnf

    def test_keeps_all_original_nonterminals(self):
        grammar = parse_grammar("S -> A\nA -> eps", terminals=[])
        result = to_cnf(grammar)
        # A only derived ε, so it has no productions — but stays in N.
        assert Nonterminal("A") in result.nonterminals

    def test_ensure_cnf_identity_for_cnf(self, ab_cnf_grammar):
        assert ensure_cnf(ab_cnf_grammar) is ab_cnf_grammar

    def test_anbn_language(self, anbn_grammar):
        result = to_cnf(anbn_grammar)
        start = Nonterminal("S")
        assert cyk_recognize(result, start, ["a", "b"])
        assert cyk_recognize(result, start, ["a", "a", "b", "b"])
        assert not cyk_recognize(result, start, ["a", "a", "b"])
        assert not cyk_recognize(result, start, ["b", "a"])

    def test_paper_query1_normalizes(self):
        from repro.grammar.builders import same_generation_query1

        result = to_cnf(same_generation_query1())
        assert result.is_cnf
        start = Nonterminal("S")
        assert cyk_recognize(result, start, ["type_r", "type"])
        assert cyk_recognize(
            result, start,
            ["subClassOf_r", "type_r", "type", "subClassOf"],
        )
        assert not cyk_recognize(result, start, ["type", "type_r"])


# ----------------------------------------------------------------------
# Property tests: CNF preserves every non-terminal's (ε-free) language.
# ----------------------------------------------------------------------

_LABELS = ["a", "b"]


@st.composite
def random_grammars(draw) -> CFG:
    """Small random grammars over non-terminals S,A,B and labels a,b —
    ε-rules, unit rules and long bodies all allowed."""
    nonterminal_names = ["S", "A", "B"]
    n_rules = draw(st.integers(min_value=1, max_value=6))
    productions = []
    for _ in range(n_rules):
        head = Nonterminal(draw(st.sampled_from(nonterminal_names)))
        body_length = draw(st.integers(min_value=0, max_value=3))
        body = []
        for _ in range(body_length):
            if draw(st.booleans()):
                body.append(Terminal(draw(st.sampled_from(_LABELS))))
            else:
                body.append(Nonterminal(draw(st.sampled_from(nonterminal_names))))
        productions.append(Production(head, tuple(body)))
    return CFG(productions)


@st.composite
def random_words(draw) -> list[str]:
    return draw(st.lists(st.sampled_from(_LABELS), min_size=1, max_size=5))


@given(grammar=random_grammars(), word=random_words())
@settings(max_examples=150, deadline=None)
def test_cnf_preserves_nonempty_language(grammar: CFG, word: list[str]):
    """Earley on the original grammar agrees with CYK on the CNF
    grammar, for every original non-terminal and non-empty word."""
    normalized = to_cnf(grammar)
    oracle = EarleyRecognizer(grammar)
    for nonterminal in grammar.nonterminals:
        expected = oracle.recognizes(nonterminal, word)
        actual = cyk_recognize(normalized, nonterminal, word)
        assert actual == expected, (
            f"{nonterminal} on {word}: original={expected} cnf={actual}\n"
            f"original:\n{grammar.to_text()}\ncnf:\n{normalized.to_text()}"
        )


@given(grammar=random_grammars())
@settings(max_examples=100, deadline=None)
def test_to_cnf_always_produces_cnf(grammar: CFG):
    assert to_cnf(grammar).is_cnf
