"""Tests for the grammar text DSL."""

import pytest

from repro.errors import GrammarParseError
from repro.grammar.parser import parse_grammar, parse_production
from repro.grammar.symbols import Nonterminal, Terminal


def test_single_rule():
    grammar = parse_grammar("S -> a", terminals=["a"])
    assert len(grammar) == 1
    assert grammar.productions[0].body == (Terminal("a"),)


def test_alternatives_split_on_pipe():
    grammar = parse_grammar("S -> a | b | a b", terminals=["a", "b"])
    assert len(grammar) == 3


def test_comments_and_blank_lines_skipped():
    grammar = parse_grammar(
        """
        # full-line comment
        S -> a  # trailing comment
        """,
        terminals=["a"],
    )
    assert len(grammar) == 1


def test_unicode_arrow():
    grammar = parse_grammar("S → a", terminals=["a"])
    assert len(grammar) == 1


def test_heads_heuristic_infers_nonterminals():
    # B appears as a head, so it is a non-terminal; 'x' never does.
    grammar = parse_grammar("S -> B x\nB -> x")
    assert Nonterminal("B") in grammar.nonterminals
    assert Terminal("x") in grammar.terminals


def test_quoted_tokens_are_terminals():
    grammar = parse_grammar("S -> 'S' S")
    # quoted S is a terminal even though S is a head
    body = grammar.productions[0].body
    assert body == (Terminal("S"), Nonterminal("S"))


def test_explicit_nonterminals_override_heuristic():
    grammar = parse_grammar("S -> B", nonterminals=["B"])
    assert grammar.productions[0].body == (Nonterminal("B"),)


def test_epsilon_body():
    for token in ("eps", "epsilon", "ε"):
        grammar = parse_grammar(f"S -> a | {token}", terminals=["a"])
        assert any(p.is_epsilon for p in grammar.productions)


def test_epsilon_mixed_with_symbols_rejected():
    with pytest.raises(GrammarParseError):
        parse_grammar("S -> a eps", terminals=["a"])


def test_missing_arrow_rejected():
    with pytest.raises(GrammarParseError) as excinfo:
        parse_grammar("S a b")
    assert excinfo.value.line_number == 1


def test_multi_symbol_head_rejected():
    with pytest.raises(GrammarParseError):
        parse_grammar("S B -> a")


def test_empty_text_rejected():
    with pytest.raises(GrammarParseError):
        parse_grammar("   \n  # just a comment\n")


def test_conflicting_declarations_rejected():
    with pytest.raises(GrammarParseError):
        parse_grammar("S -> a", terminals=["a"], nonterminals=["a"])


def test_head_declared_terminal_rejected():
    with pytest.raises(GrammarParseError):
        parse_grammar("S -> a", terminals=["S", "a"])


def test_parse_production_single():
    p = parse_production("A -> x y", terminals=["x", "y"])
    assert p.head == Nonterminal("A")
    assert len(p.body) == 2


def test_parse_production_rejects_alternatives():
    with pytest.raises(GrammarParseError):
        parse_production("A -> x | y", terminals=["x", "y"])


def test_paper_query1_grammar_parses():
    text = """
    S -> subClassOf_r S subClassOf
    S -> type_r S type
    S -> subClassOf_r subClassOf
    S -> type_r type
    """
    grammar = parse_grammar(text)
    assert len(grammar) == 4
    assert grammar.nonterminals == {Nonterminal("S")}
    assert len(grammar.terminals) == 4
