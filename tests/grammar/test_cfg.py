"""Tests for the CFG container and its query indexes."""

import pytest

from repro.errors import NotInNormalFormError, UnknownSymbolError
from repro.grammar.cfg import CFG
from repro.grammar.parser import parse_grammar
from repro.grammar.production import production
from repro.grammar.symbols import Nonterminal, Terminal


@pytest.fixture
def cnf_grammar() -> CFG:
    return parse_grammar(
        """
        S -> A B
        S -> A S1
        S1 -> S B
        A -> a
        B -> b
        """,
        terminals=["a", "b"],
    )


def test_symbol_collection(cnf_grammar):
    assert cnf_grammar.nonterminals == {
        Nonterminal("S"), Nonterminal("S1"), Nonterminal("A"), Nonterminal("B")
    }
    assert cnf_grammar.terminals == {Terminal("a"), Terminal("b")}


def test_duplicate_productions_removed():
    p = production("A", "a", terminals={"a"})
    grammar = CFG([p, p, p])
    assert len(grammar) == 1


def test_productions_for_head(cnf_grammar):
    heads = cnf_grammar.productions_for(Nonterminal("S"))
    assert len(heads) == 2
    assert cnf_grammar.productions_for(Nonterminal("Missing")) == ()


def test_heads_for_terminal(cnf_grammar):
    assert cnf_grammar.heads_for_terminal(Terminal("a")) == {Nonterminal("A")}
    assert cnf_grammar.heads_for_terminal(Terminal("zzz")) == frozenset()


def test_heads_for_pair(cnf_grammar):
    assert cnf_grammar.heads_for_pair(Nonterminal("A"), Nonterminal("B")) == {
        Nonterminal("S")
    }
    assert cnf_grammar.heads_for_pair(Nonterminal("B"), Nonterminal("A")) == frozenset()


def test_subset_product_matches_paper_definition(cnf_grammar):
    n1 = {Nonterminal("A"), Nonterminal("S")}
    n2 = {Nonterminal("B"), Nonterminal("S1")}
    # A·B -> S; S·B -> S1; A·S1 -> S
    assert cnf_grammar.subset_product(n1, n2) == {
        Nonterminal("S"), Nonterminal("S1")
    }


def test_subset_product_empty_inputs(cnf_grammar):
    assert cnf_grammar.subset_product(set(), {Nonterminal("B")}) == set()
    assert cnf_grammar.subset_product({Nonterminal("A")}, set()) == set()


def test_is_cnf(cnf_grammar, anbn_grammar):
    assert cnf_grammar.is_cnf
    assert not anbn_grammar.is_cnf


def test_require_cnf_raises_with_offenders(anbn_grammar):
    with pytest.raises(NotInNormalFormError) as excinfo:
        anbn_grammar.require_cnf("testing")
    assert "testing" in str(excinfo.value)


def test_require_nonterminal(cnf_grammar):
    cnf_grammar.require_nonterminal(Nonterminal("S"))
    with pytest.raises(UnknownSymbolError):
        cnf_grammar.require_nonterminal(Nonterminal("Q"))


def test_binary_and_terminal_rule_views(cnf_grammar):
    assert sum(1 for _ in cnf_grammar.binary_rules) == 3
    assert sum(1 for _ in cnf_grammar.terminal_rules) == 2
    assert sum(1 for _ in cnf_grammar.epsilon_rules) == 0


def test_extra_symbols_declared():
    grammar = CFG(
        [production("A", "a", terminals={"a"})],
        extra_nonterminals=[Nonterminal("Unused")],
        extra_terminals=[Terminal("z")],
    )
    assert Nonterminal("Unused") in grammar.nonterminals
    assert Terminal("z") in grammar.terminals


def test_equality_and_hash(cnf_grammar):
    clone = CFG(cnf_grammar.productions)
    assert clone == cnf_grammar
    assert hash(clone) == hash(cnf_grammar)


def test_from_mapping():
    grammar = CFG.from_mapping(
        {"S": [["a", "S", "b"], ["a", "b"]]}, terminals=["a", "b"]
    )
    assert len(grammar) == 2
    assert grammar.terminals == {Terminal("a"), Terminal("b")}


def test_to_text_round_trip(cnf_grammar):
    text = cnf_grammar.to_text()
    reparsed = parse_grammar(text, terminals=["a", "b"])
    assert set(reparsed.productions) == set(cnf_grammar.productions)


def test_iteration_and_len(cnf_grammar):
    assert len(list(cnf_grammar)) == len(cnf_grammar) == 5
