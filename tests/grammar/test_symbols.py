"""Tests for grammar symbols and inverse-label conventions."""

import pytest

from repro.grammar.symbols import (
    EPSILON,
    Nonterminal,
    Terminal,
    fresh_nonterminal,
    inverse_label,
    is_inverse_label,
)


class TestTerminal:
    def test_equality_by_label(self):
        assert Terminal("a") == Terminal("a")
        assert Terminal("a") != Terminal("b")

    def test_hashable(self):
        assert len({Terminal("a"), Terminal("a"), Terminal("b")}) == 2

    def test_str(self):
        assert str(Terminal("subClassOf")) == "subClassOf"

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError):
            Terminal("")

    def test_inverse_property_round_trips(self):
        t = Terminal("subClassOf")
        assert t.inverse == Terminal("subClassOf_r")
        assert t.inverse.inverse == t

    def test_terminal_not_equal_nonterminal(self):
        assert Terminal("x") != Nonterminal("x")


class TestNonterminal:
    def test_equality_by_name(self):
        assert Nonterminal("S") == Nonterminal("S")
        assert Nonterminal("S") != Nonterminal("S1")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Nonterminal("")

    def test_repr_contains_name(self):
        assert "S" in repr(Nonterminal("S"))


class TestEpsilon:
    def test_singleton(self):
        assert EPSILON is type(EPSILON)()

    def test_equality_and_hash(self):
        assert EPSILON == type(EPSILON)()
        assert hash(EPSILON) == hash(type(EPSILON)())

    def test_str(self):
        assert str(EPSILON) == "eps"


class TestInverseLabels:
    def test_forward_to_inverse(self):
        assert inverse_label("type") == "type_r"

    def test_inverse_to_forward(self):
        assert inverse_label("type_r") == "type"

    def test_involution(self):
        for label in ["a", "subClassOf", "x_r", "type_r"]:
            assert inverse_label(inverse_label(label)) == label

    def test_is_inverse_label(self):
        assert is_inverse_label("a_r")
        assert not is_inverse_label("a")
        # the bare suffix is not an inverse label
        assert not is_inverse_label("_r")

    def test_label_that_is_only_suffix_gains_suffix(self):
        assert inverse_label("_r") == "_r_r"


class TestFreshNonterminal:
    def test_no_collision_returns_base(self):
        assert fresh_nonterminal("X", set()) == Nonterminal("X")

    def test_collision_appends_counter(self):
        taken = {Nonterminal("X"), Nonterminal("X1")}
        assert fresh_nonterminal("X", taken) == Nonterminal("X2")
