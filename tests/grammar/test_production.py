"""Tests for Production shape predicates and helpers."""

import pytest

from repro.grammar.production import Production, production
from repro.grammar.symbols import Nonterminal, Terminal


def test_epsilon_production():
    p = Production(Nonterminal("A"), ())
    assert p.is_epsilon
    assert not p.is_cnf
    assert str(p) == "A -> eps"


def test_terminal_rule():
    p = Production(Nonterminal("A"), (Terminal("x"),))
    assert p.is_terminal_rule
    assert p.is_cnf
    assert not p.is_binary_rule
    assert not p.is_unit_rule


def test_binary_rule():
    p = Production(Nonterminal("A"), (Nonterminal("B"), Nonterminal("C")))
    assert p.is_binary_rule
    assert p.is_cnf


def test_unit_rule():
    p = Production(Nonterminal("A"), (Nonterminal("B"),))
    assert p.is_unit_rule
    assert not p.is_cnf


def test_mixed_pair_is_not_binary_rule():
    p = Production(Nonterminal("A"), (Terminal("x"), Nonterminal("B")))
    assert not p.is_binary_rule
    assert not p.is_cnf


def test_long_rule_not_cnf():
    p = production("A", "B", "C", "D")
    assert not p.is_cnf
    assert len(p.body) == 3


def test_head_must_be_nonterminal():
    with pytest.raises(TypeError):
        Production(Terminal("x"), ())  # type: ignore[arg-type]


def test_body_type_checked():
    with pytest.raises(TypeError):
        Production(Nonterminal("A"), ("x",))  # type: ignore[arg-type]


def test_nonterminals_iterates_head_and_body():
    p = production("A", "B", "c", "D", terminals={"c"})
    assert list(p.nonterminals()) == [
        Nonterminal("A"), Nonterminal("B"), Nonterminal("D")
    ]


def test_terminals_iterates_body_only():
    p = production("A", "b", "C", "b", terminals={"b"})
    assert list(p.terminals()) == [Terminal("b"), Terminal("b")]


def test_production_helper_classifies_by_terminal_set():
    p = production("S", "a", "S", "b", terminals={"a", "b"})
    assert p.body == (Terminal("a"), Nonterminal("S"), Terminal("b"))


def test_production_helper_accepts_symbol_instances():
    p = production("S", Terminal("a"), Nonterminal("B"))
    assert p.body == (Terminal("a"), Nonterminal("B"))


def test_productions_hashable_and_equal():
    p1 = production("S", "a", terminals={"a"})
    p2 = production("S", "a", terminals={"a"})
    assert p1 == p2
    assert len({p1, p2}) == 1


def test_str_renders_body():
    p = production("S", "a", "B", terminals={"a"})
    assert str(p) == "S -> a B"
