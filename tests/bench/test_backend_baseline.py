"""Guards on the committed ``BENCH_backends.json`` baseline.

The baseline is the acceptance record for the vectorized bitset kernel:
it must keep showing the ≥3× speedup of the gather/reduceat product
over the seed row-loop kernel on the 512-node graph, and the sweep
cells CI's bench-smoke gate compares against must stay present.
"""

from __future__ import annotations

import json
from pathlib import Path

BASELINE = Path(__file__).resolve().parents[2] / "benchmarks" / \
    "BENCH_backends.json"


def _load() -> dict:
    with BASELINE.open(encoding="utf-8") as stream:
        return json.load(stream)


def test_baseline_committed_and_well_formed():
    report = _load()
    assert report["benchmark"] == "matrix backends x datasets"
    for dataset, workload in report["workloads"].items():
        assert workload["agree"] is True, dataset
        for backend in ("bitset", "dense", "sparse"):
            cell = workload["backends"][backend]
            assert cell["wall_time_s"] > 0
            assert cell["relation_size"] > 0


def test_bitset_kernel_speedup_at_least_3x():
    """Acceptance criterion: vectorized bitset multiply ≥3× over the
    seed row-loop kernel on a 512-node graph (pinned numbers)."""
    kernel = _load()["kernels"]["bitset_multiply_512"]
    assert kernel["nodes"] == 512
    assert kernel["speedup"] >= 3.0
    assert kernel["rowloop_wall_time_s"] >= \
        3.0 * kernel["vectorized_wall_time_s"]


def test_bitset_kernel_speedup_live():
    """Live guard: re-measure the kernel cell so a regression of the
    vectorized product cannot hide behind the pinned JSON (the bench
    gate skips both sub-floor timings).  Best-of-repeats timing with a
    relaxed 2× bar keeps this robust on noisy CI runners — the real
    margin is ~7×."""
    import sys

    sys.path.insert(0, str(BASELINE.parent))
    try:
        from bench_backends import bench_bitset_kernel
    finally:
        sys.path.pop(0)
    kernel = bench_bitset_kernel(repeats=3)
    assert kernel["speedup"] >= 2.0, kernel
