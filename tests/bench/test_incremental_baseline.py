"""Guards on the committed ``BENCH_incremental.json`` baseline.

The baseline is the acceptance record for the batch-insertion engine:
``add_edges`` on a 1000-edge batch must beat the per-tuple ``add_edge``
loop by at least 2× (pinned numbers), and the sweep cells CI's
bench-smoke gate compares against must stay present and consistent.
"""

from __future__ import annotations

import json
from pathlib import Path

BASELINE = Path(__file__).resolve().parents[2] / "benchmarks" / \
    "BENCH_incremental.json"


def _load() -> dict:
    with BASELINE.open(encoding="utf-8") as stream:
        return json.load(stream)


def test_baseline_committed_and_well_formed():
    report = _load()
    assert report["benchmark"] == "incremental batch vs per-tuple insertion"
    for size in ("10", "100", "1000"):
        cell = report["batch_sizes"][size]
        assert cell["agree"] is True, size
        assert cell["edges"] == int(size)
        assert cell["facts"] > 0
        assert cell["batch_wall_time_s"] > 0
        assert cell["per_tuple_wall_time_s"] > 0
        assert cell["delete_wall_time_s"] > 0


def test_batch_speedup_at_least_2x():
    """Acceptance criterion: the matrix-granular batch path ≥2× over
    the per-tuple worklist on a 1000-edge batch (pinned numbers)."""
    cell = _load()["batch_sizes"]["1000"]
    assert cell["speedup"] >= 2.0
    assert cell["per_tuple_wall_time_s"] >= 2.0 * cell["batch_wall_time_s"]


def test_batch_speedup_live():
    """Live guard: re-measure the 1000-edge cell so a regression of the
    batch path cannot hide behind the pinned JSON.  Best-of-repeats
    with a relaxed 1.4× bar keeps this robust on noisy CI runners — the
    real margin is ~2.3×."""
    import sys

    sys.path.insert(0, str(BASELINE.parent))
    try:
        from bench_incremental import run_incremental_suite
    finally:
        sys.path.pop(0)
    report = run_incremental_suite(batch_sizes=(1000,), repeats=3)
    cell = report["batch_sizes"]["1000"]
    assert cell["agree"] is True
    assert cell["speedup"] >= 1.4, cell
