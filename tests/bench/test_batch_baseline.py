"""Guards on the committed ``BENCH_batch.json`` baseline.

The baseline is the acceptance record for the batched multi-query
closure: every cell's batched answers must agree with the all-pairs
oracle, and the headline cell — batch 32 membership on funding × 8,
bitset — must keep its ≥3× queries/s advantage over per-query
closures.
"""

from __future__ import annotations

import json
from pathlib import Path

BASELINE = Path(__file__).resolve().parents[2] / "benchmarks" / \
    "BENCH_batch.json"

HEADLINE = "funding_x8_b32_delta_bitset"


def _load() -> dict:
    with BASELINE.open(encoding="utf-8") as stream:
        return json.load(stream)


def test_baseline_committed_and_well_formed():
    report = _load()
    assert "batched multi-query closure" in report["benchmark"]
    assert report["workloads"], "no cells committed"
    for name, cell in report["workloads"].items():
        assert cell["agree"] is True, name
        for solver in ("batched", "per_query"):
            timing = cell["solvers"][solver]
            assert timing["wall_time_s"] > 0, (name, solver)
            assert timing["queries_per_s"] > 0, (name, solver)
        assert cell["speedup"] > 0, name


def test_headline_cell_speedup_at_least_3x():
    """Acceptance criterion: ≥3× queries/s at batch 32 on funding × 8
    (bitset, delta) with identical answers (pinned numbers)."""
    cell = _load()["workloads"][HEADLINE]
    assert cell["batch_size"] == 32
    assert cell["agree"] is True
    assert cell["speedup"] >= 3.0
    batched = cell["solvers"]["batched"]["queries_per_s"]
    per_query = cell["solvers"]["per_query"]["queries_per_s"]
    assert batched >= 3.0 * per_query


def test_small_cell_speedup_live():
    """Live guard: re-measure the cheapest sweep cell so a regression
    of the masked batch path cannot hide behind the pinned JSON.  The
    pinned margin is ~6.7×; the relaxed 2× bar keeps this robust on
    noisy runners."""
    import sys

    import pytest

    pytest.importorskip("numpy")
    sys.path.insert(0, str(BASELINE.parent))
    try:
        from bench_batch import bench_cell
    finally:
        sys.path.pop(0)
    cell = bench_cell(copies=2, batch_size=8, strategy="delta",
                      backend="bitset", sample=2)
    assert cell["agree"] is True, cell
    assert cell["speedup"] >= 2.0, cell
