"""Tests for the measurement harness and table regeneration machinery."""

import pytest

from repro.bench.harness import PAPER_SOLVERS, SOLVERS, measure
from repro.bench.reporting import format_table, speedup
from repro.bench.tables import render_rows, run_table
from repro.grammar.builders import same_generation_query1
from repro.graph.generators import paper_example_graph


class TestMeasure:
    def test_all_solvers_agree_on_paper_example(self):
        graph = paper_example_graph()
        grammar = same_generation_query1()
        counts = {
            name: measure(name, graph, grammar, "S").results
            for name in SOLVERS
        }
        assert set(counts.values()) == {3}  # R_S has 3 pairs (Fig. 9)

    def test_measurement_fields(self):
        m = measure("sparse", paper_example_graph(),
                    same_generation_query1(), "S")
        assert m.solver == "sparse"
        assert m.results == 3
        assert m.milliseconds >= 0

    def test_repeats_take_best(self):
        m = measure("pyset", paper_example_graph(),
                    same_generation_query1(), "S", repeats=3)
        assert m.results == 3

    def test_unknown_solver(self):
        with pytest.raises(KeyError):
            measure("cuda", paper_example_graph(), same_generation_query1())

    def test_paper_solver_columns(self):
        assert PAPER_SOLVERS == ("gll", "dense", "sparse")


class TestRunTable:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table("table1", datasets=["skos", "travel"],
                         solvers=("gll", "sparse"))

    def test_row_per_dataset(self, rows):
        assert [row.dataset for row in rows] == ["skos", "travel"]

    def test_triples_match_paper(self, rows):
        assert rows[0].triples == 252
        assert rows[1].triples == 277

    def test_results_consistent_across_solvers(self, rows):
        for row in rows:
            assert row.results is not None  # all solvers agreed

    def test_paper_reference_attached(self, rows):
        assert rows[0].paper.results == 810

    def test_max_triples_filter(self):
        rows = run_table("table2", datasets=["skos", "wine"],
                         solvers=("sparse",), max_triples=300)
        assert [row.dataset for row in rows] == ["skos"]

    def test_dense_skipped_on_repeated_datasets(self):
        rows = run_table("table1", datasets=["g1"], solvers=("sparse", "dense"))
        assert "dense" not in rows[0].measurements
        assert "sparse" in rows[0].measurements

    def test_unknown_table(self):
        with pytest.raises(ValueError):
            run_table("table9")

    def test_render_rows(self, rows):
        text = render_rows(rows, solvers=("gll", "sparse"), title="Table 1")
        assert "Table 1" in text
        assert "skos" in text
        assert "paper#results" in text


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [None, "x"]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "—" in text       # None rendering
        assert "2.5" in text

    def test_speedup(self):
        assert speedup(100.0, 10.0) == 10.0
        assert speedup(None, 10.0) is None
        assert speedup(100.0, 0.0) is None
