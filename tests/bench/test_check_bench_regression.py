"""Unit tests for the benchmark regression gate
(:mod:`benchmarks.check_bench_regression`).

The checker is a standalone CI script under ``benchmarks/``; the tests
load it by path so the suite stays independent of the benchmarks
becoming a package.
"""

import importlib.util
import os

_MODULE_PATH = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                            "benchmarks", "check_bench_regression.py")
_spec = importlib.util.spec_from_file_location("check_bench_regression",
                                               _MODULE_PATH)
checker = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(checker)


def _doc(seconds, agree=True, solver="sparse", case="funding_x1"):
    return {"workloads": {case: {
        "agree": agree,
        "solvers": {solver: {"results": 3, "wall_time_s": seconds}},
    }}}


def test_clean_run_no_problems():
    problems = checker.compare(_doc(1.0), _doc(1.1), factor=2.0,
                               min_seconds=0.02, missing_backends=set())
    assert problems == []


def test_regression_message_names_case_and_numbers():
    """The failure line carries case path, baseline, current and ratio —
    enough to identify the regressed metric from the CI log alone."""
    problems = checker.compare(_doc(1.0), _doc(5.0), factor=2.0,
                               min_seconds=0.02, calibrate=False,
                               missing_backends=set())
    assert len(problems) == 1
    message = problems[0]
    assert "case workloads.funding_x1.solvers.sparse.wall_time_s" in message
    assert "baseline 1.0000s" in message
    assert "current 5.0000s" in message
    assert "ratio 5.00x" in message


def test_agree_false_is_a_failure():
    problems = checker.compare(_doc(1.0), _doc(1.0, agree=False),
                               factor=2.0, min_seconds=0.02,
                               missing_backends=set())
    assert any("disagree" in p for p in problems)


def test_missing_cell_is_coverage_loss():
    current = {"workloads": {}}
    problems = checker.compare(_doc(1.0), current, factor=2.0,
                               min_seconds=0.02, missing_backends=set())
    assert any("missing from the current run" in p for p in problems)


def test_below_floor_skipped():
    problems = checker.compare(_doc(0.001), _doc(1.0), factor=2.0,
                               min_seconds=0.02, missing_backends=set())
    assert problems == []


def test_unavailable_backend_solver_cell_skipped():
    """A suite keyed on a backend whose dependency is missing is skipped
    entirely — no regression, no coverage-loss failure."""
    baseline = _doc(1.0, solver="sparse")
    current = {"workloads": {}}  # the host could not run sparse at all
    skipped = []
    problems = checker.compare(baseline, current, factor=2.0,
                               min_seconds=0.02,
                               missing_backends={"sparse"}, skipped=skipped)
    assert problems == []
    assert skipped == ["workloads.funding_x1.solvers.sparse.wall_time_s"]


def test_unavailable_backend_workload_suffix_skipped():
    """Spill-suite workloads name the backend as a ``_backend`` suffix
    (``funding_x16_bitset``); those skip on a NumPy-free host too —
    including their agree flag, which the host cannot have computed."""
    baseline = _doc(10.0, solver="blocked_budgeted",
                    case="funding_x16_bitset", agree=True)
    current = {"workloads": {}}
    skipped = []
    problems = checker.compare(baseline, current, factor=2.0,
                               min_seconds=0.02,
                               missing_backends={"bitset"}, skipped=skipped)
    assert problems == []
    assert len(skipped) == 2  # the agree flag and the timing cell


def test_available_backends_still_checked_when_others_missing():
    baseline = {"workloads": {
        "funding_x1": {"agree": True, "solvers": {
            "sparse": {"wall_time_s": 1.0},
            "pyset": {"wall_time_s": 1.0},
        }},
    }}
    current = {"workloads": {
        "funding_x1": {"agree": True, "solvers": {
            "pyset": {"wall_time_s": 9.0},
        }},
    }}
    problems = checker.compare(baseline, current, factor=2.0,
                               min_seconds=0.02, calibrate=False,
                               missing_backends={"sparse"})
    assert len(problems) == 1
    assert "pyset" in problems[0]


def test_unavailable_backends_reflects_host():
    """On this test host NumPy/SciPy availability decides the set; the
    function must agree with importlib rather than hardcode."""
    missing = checker.unavailable_backends()
    for backend, module in checker.OPTIONAL_BACKEND_MODULES.items():
        present = importlib.util.find_spec(module) is not None
        assert (backend in missing) == (not present)


def test_calibration_absorbs_uniform_slowdown():
    baseline = {"workloads": {"w": {"solvers": {
        "a": {"wall_time_s": 1.0},
        "b": {"wall_time_s": 1.0},
        "c": {"wall_time_s": 1.0},
    }}}}
    current = {"workloads": {"w": {"solvers": {
        "a": {"wall_time_s": 3.0},
        "b": {"wall_time_s": 3.0},
        "c": {"wall_time_s": 3.0},
    }}}}
    assert checker.compare(baseline, current, factor=2.0,
                           min_seconds=0.02,
                           missing_backends=set()) == []
