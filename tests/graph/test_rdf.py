"""Tests for RDF triple parsing and the paper's graph conversion."""

import io

import pytest

from repro.errors import GraphParseError
from repro.graph.rdf import (
    graph_to_triples,
    parse_triple_line,
    parse_triples,
    read_triples,
    shorten_iri,
    triples_to_graph,
)


class TestParseTripleLine:
    def test_plain_tokens(self):
        assert parse_triple_line("alpha knows beta .") == ("alpha", "knows", "beta")

    def test_without_trailing_dot(self):
        assert parse_triple_line("a p b") == ("a", "p", "b")

    def test_iri_form(self):
        line = "<http://x/a> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://x/b> ."
        assert parse_triple_line(line) == (
            "http://x/a",
            "http://www.w3.org/2000/01/rdf-schema#subClassOf",
            "http://x/b",
        )

    def test_literal_object(self):
        assert parse_triple_line('<a> <p> "some text" .') == ("a", "p", "some text")

    def test_typed_literal_object(self):
        line = '<a> <p> "42"^^<http://www.w3.org/2001/XMLSchema#int> .'
        assert parse_triple_line(line) == ("a", "p", "42")

    def test_blank_and_comment_lines(self):
        assert parse_triple_line("") is None
        assert parse_triple_line("   ") is None
        assert parse_triple_line("# comment") is None

    def test_malformed_raises_with_line_number(self):
        with pytest.raises(GraphParseError) as excinfo:
            parse_triple_line("onlyonetoken", line_number=7)
        assert excinfo.value.line_number == 7


class TestShortenIri:
    def test_well_known_predicates(self):
        assert shorten_iri("http://www.w3.org/2000/01/rdf-schema#subClassOf") == "subClassOf"
        assert shorten_iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type") == "type"

    def test_fragment(self):
        assert shorten_iri("http://example.org/onto#Pizza") == "Pizza"

    def test_path_segment(self):
        assert shorten_iri("http://example.org/onto/Pizza") == "Pizza"

    def test_opaque_string_unchanged(self):
        assert shorten_iri("plain") == "plain"


class TestTriplesToGraph:
    def test_paper_conversion_adds_inverse(self):
        graph = triples_to_graph([("o", "p", "s")])
        assert graph.has_edge("o", "p", "s")
        assert graph.has_edge("s", "p_r", "o")
        assert graph.edge_count == 2

    def test_without_inverses(self):
        graph = triples_to_graph([("o", "p", "s")], add_inverses=False)
        assert graph.edge_count == 1

    def test_shortening_applied(self):
        graph = triples_to_graph(
            [("http://x#A", "http://www.w3.org/2000/01/rdf-schema#subClassOf",
              "http://x#B")]
        )
        assert graph.has_edge("A", "subClassOf", "B")
        assert graph.has_edge("B", "subClassOf_r", "A")


class TestRoundTrip:
    def test_parse_then_export(self):
        text = "a subClassOf b .\nb subClassOf c .\n"
        triples = parse_triples(text)
        graph = triples_to_graph(triples)
        exported = sorted(graph_to_triples(graph))
        assert exported == [("a", "subClassOf", "b"), ("b", "subClassOf", "c")]

    def test_read_triples_stream(self):
        stream = io.StringIO("a p b .\n# comment\nc q d\n")
        assert list(read_triples(stream)) == [("a", "p", "b"), ("c", "q", "d")]

    def test_parse_triples_reports_bad_line(self):
        with pytest.raises(GraphParseError) as excinfo:
            parse_triples("a p b .\nbroken\n")
        assert excinfo.value.line_number == 2
