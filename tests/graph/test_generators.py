"""Tests for graph generators, including the paper-specific constructions."""

import pytest

from repro.graph.generators import (
    binary_tree,
    chain,
    cycle,
    grid,
    paper_example_graph,
    random_graph,
    repeat_graph,
    two_cycles,
    word_chain,
    worst_case_dyck_graph,
)


class TestPaperExampleGraph:
    def test_matches_figure6_initial_matrix(self):
        """The edge set must produce exactly the paper's T0."""
        graph = paper_example_graph()
        assert graph.node_count == 3
        assert graph.has_edge(0, "subClassOf_r", 0)
        assert graph.has_edge(0, "type_r", 1)
        assert graph.has_edge(1, "type_r", 2)
        assert graph.has_edge(2, "subClassOf", 0)
        assert graph.has_edge(2, "type", 2)
        assert graph.edge_count == 5


class TestChain:
    def test_shape(self):
        graph = chain(3)
        assert graph.node_count == 4
        assert graph.edge_count == 3
        assert graph.has_edge(0, "a", 1)

    def test_zero_length(self):
        graph = chain(0)
        assert graph.node_count == 1
        assert graph.edge_count == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            chain(-1)


class TestWordChain:
    def test_spells_word(self):
        graph = word_chain(["a", "b", "a"])
        assert graph.has_edge(0, "a", 1)
        assert graph.has_edge(1, "b", 2)
        assert graph.has_edge(2, "a", 3)

    def test_empty_word(self):
        graph = word_chain([])
        assert graph.node_count == 1


class TestCycle:
    def test_wraps_around(self):
        graph = cycle(3)
        assert graph.has_edge(2, "a", 0)
        assert graph.edge_count == 3

    def test_self_loop(self):
        graph = cycle(1)
        assert graph.has_edge(0, "a", 0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            cycle(0)


class TestTwoCycles:
    def test_shares_node_zero(self):
        graph = two_cycles(2, 3)
        assert graph.node_count == 2 + 3 - 1
        a_pairs = graph.edge_pairs("a")
        b_pairs = graph.edge_pairs("b")
        assert len(a_pairs) == 2
        assert len(b_pairs) == 3
        assert any(i == 0 for i, _ in a_pairs)
        assert any(i == 0 for i, _ in b_pairs)

    def test_single_node_cycles(self):
        graph = two_cycles(1, 1)
        assert graph.has_edge(0, "a", 0)
        assert graph.has_edge(0, "b", 0)

    def test_worst_case_helper(self):
        graph = worst_case_dyck_graph(3)
        assert graph.edge_pairs("a") and graph.edge_pairs("b")


class TestBinaryTree:
    def test_edges_point_to_parent(self):
        graph = binary_tree(2)
        assert graph.node_count == 7
        assert graph.edge_count == 6
        # children 1,2 point at root 0
        assert graph.has_edge(1, "subClassOf", 0)
        assert graph.has_edge(2, "subClassOf", 0)

    def test_depth_zero(self):
        graph = binary_tree(0)
        assert graph.node_count == 1


class TestGrid:
    def test_shape(self):
        graph = grid(2, 3)
        assert graph.node_count == 6
        # right edges: 2 rows * 2, down edges: 1 row * 3
        assert len(graph.edge_pairs("a")) == 4
        assert len(graph.edge_pairs("b")) == 3

    def test_invalid(self):
        with pytest.raises(ValueError):
            grid(0, 3)


class TestRandomGraph:
    def test_deterministic_by_seed(self):
        g1 = random_graph(10, 30, ["a", "b"], seed=7)
        g2 = random_graph(10, 30, ["a", "b"], seed=7)
        assert g1 == g2

    def test_different_seeds_differ(self):
        g1 = random_graph(10, 30, ["a", "b"], seed=1)
        g2 = random_graph(10, 30, ["a", "b"], seed=2)
        assert g1 != g2

    def test_bounds(self):
        graph = random_graph(5, 10, ["a"])
        assert graph.node_count == 5
        assert graph.edge_count <= 10

    def test_validation(self):
        with pytest.raises(ValueError):
            random_graph(0, 1, ["a"])
        with pytest.raises(ValueError):
            random_graph(1, 1, [])


class TestRepeatGraph:
    def test_disjoint_copies(self):
        base = cycle(3)
        repeated = repeat_graph(base, 4)
        assert repeated.node_count == 12
        assert repeated.edge_count == 12
        assert repeated.has_edge((0, 0), "a", (0, 1))
        assert repeated.has_edge((3, 2), "a", (3, 0))
        # no cross-copy edges
        assert not repeated.has_edge((0, 2), "a", (1, 0))

    def test_paper_g_construction_scales_triples(self):
        """g1 = 8 copies of funding: triple counts multiply exactly."""
        base = cycle(5)
        repeated = repeat_graph(base, 8)
        assert repeated.edge_count == 8 * base.edge_count

    def test_connected_variant(self):
        base = cycle(2)
        repeated = repeat_graph(base, 3, connect=True, bridge_label="br")
        assert repeated.has_edge((0, 0), "br", (1, 0))
        assert repeated.has_edge((1, 0), "br", (2, 0))

    def test_invalid_copies(self):
        with pytest.raises(ValueError):
            repeat_graph(cycle(2), 0)
