"""Tests for graph statistics and adjacency-matrix extraction."""

from repro.graph.generators import two_cycles
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.matrices import adjacency_matrices, boolean_adjacency, label_pair_sets
from repro.graph.rdf import triples_to_graph
from repro.graph.stats import graph_stats


class TestGraphStats:
    def test_counts(self):
        stats = graph_stats(two_cycles(2, 3))
        assert stats.node_count == 4
        assert stats.edge_count == 5
        assert stats.label_counts == {"a": 2, "b": 3}

    def test_density(self):
        stats = graph_stats(two_cycles(2, 3))
        assert stats.density == 5 / 16

    def test_empty_graph(self):
        stats = graph_stats(LabeledGraph())
        assert stats.density == 0.0
        assert stats.triple_count == 0

    def test_triple_count_ignores_inverse_labels(self):
        graph = triples_to_graph([("a", "p", "b"), ("b", "q", "c")])
        stats = graph_stats(graph)
        assert stats.edge_count == 4
        assert stats.triple_count == 2

    def test_as_dict(self):
        data = graph_stats(two_cycles(2, 3)).as_dict()
        assert data["node_count"] == 4
        assert data["label_counts"]["b"] == 3


class TestAdjacencyMatrices:
    def test_one_matrix_per_label(self, backend_name):
        matrices = adjacency_matrices(two_cycles(2, 3), backend=backend_name)
        assert set(matrices) == {"a", "b"}
        assert matrices["a"].nnz() == 2
        assert matrices["b"].nnz() == 3

    def test_entries_match_edges(self, backend_name):
        graph = two_cycles(2, 3)
        matrices = adjacency_matrices(graph, backend=backend_name)
        for label, matrix in matrices.items():
            assert matrix.to_pair_set() == graph.edge_pairs(label)

    def test_label_pair_sets(self):
        graph = two_cycles(2, 3)
        pair_sets = label_pair_sets(graph)
        assert pair_sets["a"] == graph.edge_pairs("a")

    def test_boolean_adjacency_unions_labels(self, backend_name):
        graph = LabeledGraph.from_edges([(0, "a", 1), (0, "b", 1), (1, "a", 2)])
        matrix = boolean_adjacency(graph, backend=backend_name)
        assert matrix.to_pair_set() == {(0, 1), (1, 2)}
