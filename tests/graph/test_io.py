"""Tests for graph serialization."""

import io

import pytest

from repro.errors import GraphParseError
from repro.graph.generators import two_cycles
from repro.graph.io import (
    dump_graph,
    dumps_graph,
    load_csv_graph,
    load_graph,
    load_graph_file,
    loads_graph,
    save_graph_file,
)


def test_round_trip_text():
    graph = two_cycles(2, 3)
    text = dumps_graph(graph)
    assert loads_graph(text) == graph


def test_round_trip_file(tmp_path):
    graph = two_cycles(3, 4)
    path = tmp_path / "graph.txt"
    save_graph_file(graph, str(path))
    assert load_graph_file(str(path)) == graph


def test_comments_and_blanks():
    graph = loads_graph("# header\n\n0 a 1\n1 a 0   # loop back\n")
    assert graph.edge_count == 2


def test_integer_node_coercion():
    graph = loads_graph("0 a 1")
    assert graph.has_edge(0, "a", 1)
    graph_str = loads_graph("0 a 1", integer_nodes=False)
    assert graph_str.has_edge("0", "a", "1")


def test_mixed_node_names():
    graph = loads_graph("alice knows 0\n")
    assert graph.has_edge("alice", "knows", 0)


def test_malformed_line_raises():
    with pytest.raises(GraphParseError) as excinfo:
        loads_graph("0 a\n")
    assert excinfo.value.line_number == 1


def test_dump_writes_sorted_edges():
    graph = two_cycles(2, 2)
    stream = io.StringIO()
    dump_graph(graph, stream)
    lines = stream.getvalue().strip().splitlines()
    assert len(lines) == graph.edge_count


def test_load_csv_graph():
    csv_text = "source,label,target\n0,a,1\n1,b,2\n"
    graph = load_csv_graph(io.StringIO(csv_text))
    assert graph.has_edge(0, "a", 1)
    assert graph.has_edge(1, "b", 2)


def test_load_csv_custom_columns():
    csv_text = "from,pred,to\nx,knows,y\n"
    graph = load_csv_graph(io.StringIO(csv_text), source_column="from",
                           label_column="pred", target_column="to")
    assert graph.has_edge("x", "knows", "y")


def test_load_csv_missing_column():
    with pytest.raises(GraphParseError):
        load_csv_graph(io.StringIO("a,b\n1,2\n"))
