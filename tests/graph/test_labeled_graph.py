"""Tests for the LabeledGraph data model."""

import pytest

from repro.errors import UnknownNodeError
from repro.graph.labeled_graph import LabeledGraph


@pytest.fixture
def small_graph() -> LabeledGraph:
    return LabeledGraph.from_edges([
        ("u", "knows", "v"),
        ("v", "knows", "w"),
        ("u", "likes", "w"),
    ])


def test_node_enumeration_first_seen_order(small_graph):
    assert small_graph.nodes == ("u", "v", "w")
    assert small_graph.node_id("u") == 0
    assert small_graph.node_at(2) == "w"


def test_counts(small_graph):
    assert small_graph.node_count == 3
    assert small_graph.edge_count == 3


def test_labels(small_graph):
    assert small_graph.labels == {"knows", "likes"}


def test_duplicate_edges_collapse():
    graph = LabeledGraph.from_edges([(0, "a", 1), (0, "a", 1)])
    assert graph.edge_count == 1


def test_parallel_edges_different_labels_kept():
    graph = LabeledGraph.from_edges([(0, "a", 1), (0, "b", 1)])
    assert graph.edge_count == 2


def test_empty_label_rejected():
    graph = LabeledGraph()
    with pytest.raises(ValueError):
        graph.add_edge(0, "", 1)


def test_isolated_nodes_via_from_edges():
    graph = LabeledGraph.from_edges([], nodes=["x", "y"])
    assert graph.node_count == 2
    assert graph.edge_count == 0


def test_add_node_idempotent():
    graph = LabeledGraph()
    assert graph.add_node("n") == graph.add_node("n") == 0


def test_has_edge(small_graph):
    assert small_graph.has_edge("u", "knows", "v")
    assert not small_graph.has_edge("v", "knows", "u")
    assert not small_graph.has_edge("u", "hates", "v")
    assert not small_graph.has_edge("zz", "knows", "v")


def test_unknown_node_errors(small_graph):
    with pytest.raises(UnknownNodeError):
        small_graph.node_id("missing")
    with pytest.raises(UnknownNodeError):
        small_graph.node_at(99)


def test_edges_iteration_deterministic(small_graph):
    assert list(small_graph.edges()) == list(small_graph.edges())
    assert len(list(small_graph.edges_by_id())) == 3


def test_edge_pairs(small_graph):
    pairs = small_graph.edge_pairs("knows")
    assert pairs == {(0, 1), (1, 2)}
    assert small_graph.edge_pairs("nothing") == frozenset()


def test_successors(small_graph):
    outgoing = set(small_graph.successors(0))
    assert outgoing == {("knows", 1), ("likes", 2)}


def test_out_edges_index(small_graph):
    index = small_graph.out_edges_index()
    assert set(index[0]) == {("knows", 1), ("likes", 2)}
    assert 2 not in index  # w has no outgoing edges


def test_with_inverse_edges_adds_reversed(small_graph):
    doubled = small_graph.with_inverse_edges()
    assert doubled.edge_count == 6
    assert doubled.has_edge("v", "knows_r", "u")
    # node enumeration preserved
    assert doubled.nodes == small_graph.nodes


def test_with_inverse_edges_involution_on_labels():
    graph = LabeledGraph.from_edges([(0, "x_r", 1)])
    doubled = graph.with_inverse_edges()
    assert doubled.has_edge(1, "x", 0)


def test_relabel(small_graph):
    renamed = small_graph.relabel({"knows": "k"})
    assert renamed.has_edge("u", "k", "v")
    assert renamed.has_edge("u", "likes", "w")
    assert not renamed.has_edge("u", "knows", "v")


def test_subgraph_labels(small_graph):
    sub = small_graph.subgraph_labels(["likes"])
    assert sub.edge_count == 1
    assert sub.node_count == 3  # nodes preserved


def test_equality():
    g1 = LabeledGraph.from_edges([(0, "a", 1)])
    g2 = LabeledGraph.from_edges([(0, "a", 1)])
    g3 = LabeledGraph.from_edges([(0, "b", 1)])
    assert g1 == g2
    assert g1 != g3


def test_repr_mentions_sizes(small_graph):
    assert "|V|=3" in repr(small_graph)
