"""Tests for the Hellings worklist baseline."""

import pytest

from repro.baselines.hellings import solve_hellings
from repro.errors import NotInNormalFormError
from repro.grammar.parser import parse_grammar
from repro.grammar.symbols import Nonterminal
from repro.graph.generators import two_cycles, word_chain
from repro.graph.labeled_graph import LabeledGraph

S = Nonterminal("S")


def test_anbn_on_chain(anbn_grammar):
    relations = solve_hellings(word_chain(["a", "a", "b", "b"]), anbn_grammar)
    assert relations.pairs(S) == {(0, 4), (1, 3)}


def test_requires_cnf_without_normalize(anbn_grammar):
    with pytest.raises(NotInNormalFormError):
        solve_hellings(word_chain(["a", "b"]), anbn_grammar, normalize=False)


def test_all_nonterminals_reported(ab_cnf_grammar):
    relations = solve_hellings(word_chain(["a", "b"]), ab_cnf_grammar,
                               normalize=False)
    assert relations.pairs("A") == {(0, 1)}
    assert relations.pairs("B") == {(1, 2)}
    assert relations.pairs("S") == {(0, 2)}
    assert relations.pairs("S1") == frozenset()


def test_cyclic_graph(dyck_grammar):
    relations = solve_hellings(two_cycles(1, 1), dyck_grammar)
    assert (0, 0) in relations.pairs(S)


def test_empty_graph(anbn_grammar):
    relations = solve_hellings(LabeledGraph(), anbn_grammar)
    assert relations.pairs(S) == frozenset()


def test_right_extension_direction():
    """A fact used as the *right* operand of a rule must also trigger
    derivations (regression guard for the two-sided worklist)."""
    # S -> A B. The B-fact is discovered after the A-fact is popped.
    grammar = parse_grammar("S -> A B\nA -> a\nB -> C C\nC -> c",
                            terminals=["a", "c"])
    graph = word_chain(["a", "c", "c"])
    relations = solve_hellings(graph, grammar)
    assert relations.pairs(S) == {(0, 3)}


def test_dense_result_on_coprime_cycles(dyck_grammar):
    """Cycle lengths 2 and 3: every node pair is eventually related —
    the known dense worst case."""
    graph = two_cycles(2, 3)
    relations = solve_hellings(graph, dyck_grammar)
    n = graph.node_count
    # a^i ... b^j loops make S relate many pairs; at minimum every node
    # reaches itself through a^6k b^6k circuits via node 0.
    assert (0, 0) in relations.pairs(S)
    assert len(relations.pairs(S)) >= n
