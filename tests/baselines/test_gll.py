"""Tests for the GLL-style descriptor-driven baseline."""

from repro.baselines.gll import GLLSolver, solve_gll
from repro.grammar.parser import parse_grammar
from repro.grammar.symbols import Nonterminal
from repro.graph.generators import two_cycles, word_chain
from repro.graph.labeled_graph import LabeledGraph

S = Nonterminal("S")


def test_works_on_original_grammar(anbn_grammar):
    """No CNF required — the original S -> a S b | a b is consumed as-is."""
    relations = solve_gll(word_chain(["a", "a", "b", "b"]), anbn_grammar,
                          nonterminals=[S])
    assert relations.pairs(S) == {(0, 4), (1, 3)}


def test_left_recursive_grammar():
    grammar = parse_grammar("S -> S a | a", terminals=["a"])
    relations = solve_gll(word_chain(["a"] * 4), grammar, nonterminals=[S])
    assert relations.pairs(S) == {
        (i, j) for i in range(5) for j in range(i + 1, 5)
    }


def test_right_recursive_grammar():
    grammar = parse_grammar("S -> a S | a", terminals=["a"])
    relations = solve_gll(word_chain(["a"] * 4), grammar, nonterminals=[S])
    assert relations.pairs(S) == {
        (i, j) for i in range(5) for j in range(i + 1, 5)
    }


def test_epsilon_rule_gives_reflexive_pairs():
    grammar = parse_grammar("S -> a S | eps", terminals=["a"])
    relations = solve_gll(word_chain(["a", "a"]), grammar, nonterminals=[S])
    # ε makes every node reach itself, plus all forward chains.
    assert relations.pairs(S) == {
        (0, 0), (1, 1), (2, 2), (0, 1), (0, 2), (1, 2),
    }


def test_cyclic_graph(dyck_grammar):
    relations = solve_gll(two_cycles(2, 3), dyck_grammar, nonterminals=[S])
    assert (0, 0) in relations.pairs(S)


def test_reachable_from_single_origin(anbn_grammar):
    solver = GLLSolver(word_chain(["a", "a", "b", "b"]), anbn_grammar)
    assert solver.reachable_from(S, 0) == {4}
    assert solver.reachable_from(S, 1) == {3}
    assert solver.reachable_from(S, 2) == frozenset()


def test_default_queries_all_nonterminals():
    grammar = parse_grammar("S -> A a\nA -> a", terminals=["a"])
    relations = solve_gll(word_chain(["a", "a"]), grammar)
    assert relations.pairs("A") == {(0, 1), (1, 2)}
    assert relations.pairs("S") == {(0, 2)}


def test_descriptor_count_grows_with_input(anbn_grammar):
    small = GLLSolver(word_chain(["a", "b"]), anbn_grammar)
    small.relation(S)
    large = GLLSolver(word_chain(["a"] * 5 + ["b"] * 5), anbn_grammar)
    large.relation(S)
    assert large.descriptor_count > small.descriptor_count


def test_empty_graph(anbn_grammar):
    relations = solve_gll(LabeledGraph(), anbn_grammar, nonterminals=[S])
    assert relations.pairs(S) == frozenset()


def test_string_nonterminal_accepted(anbn_grammar):
    relations = solve_gll(word_chain(["a", "b"]), anbn_grammar,
                          nonterminals=["S"])
    assert relations.pairs("S") == {(0, 2)}
