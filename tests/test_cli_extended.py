"""Tests for the rpq / generate-dataset / stats CLI subcommands."""

import json

import pytest

from repro.cli import main
from repro.graph.generators import word_chain
from repro.graph.io import save_graph_file


@pytest.fixture
def chain_file(tmp_path):
    path = tmp_path / "chain.txt"
    save_graph_file(word_chain(["a", "a", "b"]), str(path))
    return str(path)


class TestRpqCommand:
    def test_plus_query(self, chain_file, capsys):
        assert main(["rpq", "--graph", chain_file, "--regex", "a+"]) == 0
        out = capsys.readouterr().out
        assert "3 pairs" in out

    def test_json(self, chain_file, capsys):
        assert main(["rpq", "--graph", chain_file, "--regex", "a b",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["pairs"] == [["1", "3"]]

    def test_bad_regex_is_reported(self, chain_file, capsys):
        assert main(["rpq", "--graph", chain_file, "--regex", "(a"]) == 1
        assert "error" in capsys.readouterr().err


class TestGenerateDataset:
    def test_list(self, capsys):
        assert main(["generate-dataset", "--list"]) == 0
        out = capsys.readouterr().out
        assert "skos" in out and "g3" in out

    def test_materialize_and_reload(self, tmp_path, capsys):
        output = str(tmp_path / "skos.txt")
        assert main(["generate-dataset", "skos", "--output", output]) == 0
        assert "wrote" in capsys.readouterr().out
        # round-trip: the file is a loadable graph with the right size
        assert main(["stats", "--graph", output]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["triple_count"] == 252
        assert stats["edge_count"] == 504

    def test_unknown_dataset(self, capsys):
        assert main(["generate-dataset", "nope"]) == 1
        assert "error" in capsys.readouterr().err


class TestStatsCommand:
    def test_stats_json(self, chain_file, capsys):
        assert main(["stats", "--graph", chain_file]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["node_count"] == 4
        assert stats["label_counts"] == {"a": 2, "b": 1}

    def test_stats_rdf(self, tmp_path, capsys):
        rdf = tmp_path / "t.nt"
        rdf.write_text("x p y .\n")
        assert main(["stats", "--graph", str(rdf), "--rdf"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["edge_count"] == 2
        assert stats["triple_count"] == 1
