"""Integration tests: the example scripts must run cleanly.

Each example carries its own internal assertions (witness validation,
incremental-vs-batch equality, ...), so a zero exit status is a real
correctness signal, not just a smoke test.  The ontology benchmark
example is excluded here — it times solvers over many datasets and
belongs to the benchmark suite's runtime budget.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "single_path_extraction.py",
    "static_analysis_points_to.py",
    "rna_secondary_structure.py",
    "dynamic_graph_updates.py",
    "service_quickstart.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} produced no output"


def test_quickstart_reproduces_figure9():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=120,
    )
    assert "R_S = [(0, 0), (0, 2), (1, 2)]" in result.stdout
    assert "k = 6" in result.stdout


def test_all_examples_exist():
    present = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert set(FAST_EXAMPLES) <= present
    assert "same_generation_ontologies.py" in present
    assert len(present) >= 7  # ≥3 required; we ship seven


def test_service_quickstart_demonstrates_warm_start():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "service_quickstart.py")],
        capture_output=True, text=True, timeout=120,
    )
    assert "warm restart ran 0 closure rounds" in result.stdout
    assert "coalesced away" in result.stdout
