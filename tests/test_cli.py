"""Tests for the repro-cfpq command-line interface."""

import json

import pytest

from repro.cli import main
from repro.graph.generators import two_cycles, word_chain
from repro.graph.io import save_graph_file


@pytest.fixture
def chain_file(tmp_path):
    path = tmp_path / "chain.txt"
    save_graph_file(word_chain(["a", "a", "b", "b"]), str(path))
    return str(path)


@pytest.fixture
def grammar_file(tmp_path):
    path = tmp_path / "anbn.cfg"
    path.write_text("S -> a S b\nS -> a b\n")
    return str(path)


class TestQueryCommand:
    def test_named_grammar(self, chain_file, capsys):
        assert main(["query", "--graph", chain_file,
                     "--grammar-name", "dyck1", "--start", "S"]) == 0
        out = capsys.readouterr().out
        assert "2 pairs" in out
        assert "0 -> 4" in out

    def test_grammar_file(self, chain_file, grammar_file, capsys):
        assert main(["query", "--graph", chain_file,
                     "--grammar", grammar_file]) == 0
        assert "2 pairs" in capsys.readouterr().out

    def test_json_output(self, chain_file, capsys):
        assert main(["query", "--graph", chain_file,
                     "--grammar-name", "dyck1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 2
        assert ["0", "4"] in payload["pairs"]

    def test_backend_flag(self, chain_file, capsys):
        for backend in ["dense", "sparse", "pyset"]:
            assert main(["query", "--graph", chain_file,
                         "--grammar-name", "dyck1",
                         "--backend", backend]) == 0

    def test_missing_grammar_exits(self, chain_file):
        with pytest.raises(SystemExit):
            main(["query", "--graph", chain_file])

    def test_unknown_start_reports_error(self, chain_file, capsys):
        code = main(["query", "--graph", chain_file,
                     "--grammar-name", "dyck1", "--start", "Zzz"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestPathCommand:
    def test_witness_path(self, chain_file, capsys):
        assert main(["path", "--graph", chain_file,
                     "--grammar-name", "dyck1",
                     "--source", "0", "--target", "4"]) == 0
        out = capsys.readouterr().out
        assert "length 4" in out

    def test_json_path(self, chain_file, capsys):
        assert main(["path", "--graph", chain_file,
                     "--grammar-name", "dyck1",
                     "--source", "1", "--target", "3", "--json"]) == 0
        edges = json.loads(capsys.readouterr().out)
        assert edges == [["1", "a", "2"], ["2", "b", "3"]]

    def test_no_path_is_error(self, chain_file, capsys):
        code = main(["path", "--graph", chain_file,
                     "--grammar-name", "dyck1",
                     "--source", "4", "--target", "0"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestRdfInput:
    def test_rdf_flag_applies_paper_conversion(self, tmp_path, capsys):
        rdf = tmp_path / "data.nt"
        rdf.write_text("b subClassOf a .\nc subClassOf a .\n")
        # co-parent query: b and c share parent a
        grammar = tmp_path / "sg.cfg"
        grammar.write_text("S -> subClassOf subClassOf_r\n")
        assert main(["query", "--graph", str(rdf), "--rdf",
                     "--grammar", str(grammar), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 4  # (b,b), (b,c), (c,b), (c,c)


class TestUpdateCommand:
    def test_insert_file_extends_relation(self, chain_file, tmp_path,
                                          capsys):
        insert = tmp_path / "insert.txt"
        insert.write_text("4 a 5\n5 b 6\n")
        assert main(["update", "--graph", chain_file,
                     "--grammar-name", "dyck1", "--start", "S",
                     "--insert", str(insert), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["facts_added"] > 0
        assert payload["facts_removed"] == 0
        assert ["4", "6"] in payload["pairs"]

    def test_delete_file_shrinks_relation(self, chain_file, tmp_path,
                                          capsys):
        delete = tmp_path / "delete.txt"
        delete.write_text("0 a 1\n")
        assert main(["update", "--graph", chain_file,
                     "--grammar-name", "dyck1", "--start", "S",
                     "--delete", str(delete), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["facts_removed"] > 0
        assert ["0", "4"] not in payload["pairs"]
        assert ["1", "3"] in payload["pairs"]

    def test_insert_then_delete_with_stats(self, chain_file, tmp_path,
                                           capsys):
        insert = tmp_path / "insert.txt"
        insert.write_text("4 a 5\n5 b 6\n")
        delete = tmp_path / "delete.txt"
        delete.write_text("4 a 5\n")
        assert main(["update", "--graph", chain_file,
                     "--grammar-name", "dyck1", "--start", "S",
                     "--insert", str(insert), "--delete", str(delete),
                     "--stats", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["edge_insertions"] == 2
        assert payload["stats"]["edge_removals"] == 1
        assert payload["stats"]["support_entries"] > 0
        assert ["4", "6"] not in payload["pairs"]

    def test_update_matches_fresh_query(self, chain_file, tmp_path,
                                        capsys):
        insert = tmp_path / "insert.txt"
        insert.write_text("4 a 5\n5 b 6\n")
        assert main(["update", "--graph", chain_file,
                     "--grammar-name", "dyck1", "--start", "S",
                     "--insert", str(insert), "--json"]) == 0
        updated = json.loads(capsys.readouterr().out)

        merged = tmp_path / "merged.txt"
        merged.write_text(open(chain_file).read() + "4 a 5\n5 b 6\n")
        assert main(["query", "--graph", str(merged),
                     "--grammar-name", "dyck1", "--start", "S",
                     "--json"]) == 0
        fresh = json.loads(capsys.readouterr().out)
        assert sorted(map(tuple, updated["pairs"])) == \
            sorted(map(tuple, fresh["pairs"]))

    def test_update_without_files_exits(self, chain_file):
        with pytest.raises(SystemExit):
            main(["update", "--graph", chain_file,
                  "--grammar-name", "dyck1"])

    def test_update_strategy_options(self, chain_file, tmp_path, capsys):
        insert = tmp_path / "insert.txt"
        insert.write_text("4 a 5\n5 b 6\n")
        assert main(["update", "--graph", chain_file,
                     "--grammar-name", "dyck1", "--start", "S",
                     "--insert", str(insert), "--strategy", "blocked",
                     "--tile-size", "2", "--scheduler", "serial",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert ["4", "6"] in payload["pairs"]


class TestTablesCommand:
    def test_small_table(self, capsys):
        assert main(["tables", "table2", "--max-triples", "260"]) == 0
        out = capsys.readouterr().out
        assert "skos" in out
        assert "Table 2" in out
