"""Tests for the repro-cfpq command-line interface."""

import json

import pytest

from repro.cli import main
from repro.graph.generators import two_cycles, word_chain
from repro.graph.io import save_graph_file


@pytest.fixture
def chain_file(tmp_path):
    path = tmp_path / "chain.txt"
    save_graph_file(word_chain(["a", "a", "b", "b"]), str(path))
    return str(path)


@pytest.fixture
def grammar_file(tmp_path):
    path = tmp_path / "anbn.cfg"
    path.write_text("S -> a S b\nS -> a b\n")
    return str(path)


class TestQueryCommand:
    def test_named_grammar(self, chain_file, capsys):
        assert main(["query", "--graph", chain_file,
                     "--grammar-name", "dyck1", "--start", "S"]) == 0
        out = capsys.readouterr().out
        assert "2 pairs" in out
        assert "0 -> 4" in out

    def test_grammar_file(self, chain_file, grammar_file, capsys):
        assert main(["query", "--graph", chain_file,
                     "--grammar", grammar_file]) == 0
        assert "2 pairs" in capsys.readouterr().out

    def test_json_output(self, chain_file, capsys):
        assert main(["query", "--graph", chain_file,
                     "--grammar-name", "dyck1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 2
        assert ["0", "4"] in payload["pairs"]

    def test_backend_flag(self, chain_file, capsys):
        for backend in ["dense", "sparse", "pyset"]:
            assert main(["query", "--graph", chain_file,
                         "--grammar-name", "dyck1",
                         "--backend", backend]) == 0

    def test_missing_grammar_exits(self, chain_file):
        with pytest.raises(SystemExit):
            main(["query", "--graph", chain_file])

    def test_unknown_start_reports_error(self, chain_file, capsys):
        code = main(["query", "--graph", chain_file,
                     "--grammar-name", "dyck1", "--start", "Zzz"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestPathCommand:
    def test_witness_path(self, chain_file, capsys):
        assert main(["path", "--graph", chain_file,
                     "--grammar-name", "dyck1",
                     "--source", "0", "--target", "4"]) == 0
        out = capsys.readouterr().out
        assert "length 4" in out

    def test_json_path(self, chain_file, capsys):
        assert main(["path", "--graph", chain_file,
                     "--grammar-name", "dyck1",
                     "--source", "1", "--target", "3", "--json"]) == 0
        edges = json.loads(capsys.readouterr().out)
        assert edges == [["1", "a", "2"], ["2", "b", "3"]]

    def test_no_path_is_error(self, chain_file, capsys):
        code = main(["path", "--graph", chain_file,
                     "--grammar-name", "dyck1",
                     "--source", "4", "--target", "0"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestRdfInput:
    def test_rdf_flag_applies_paper_conversion(self, tmp_path, capsys):
        rdf = tmp_path / "data.nt"
        rdf.write_text("b subClassOf a .\nc subClassOf a .\n")
        # co-parent query: b and c share parent a
        grammar = tmp_path / "sg.cfg"
        grammar.write_text("S -> subClassOf subClassOf_r\n")
        assert main(["query", "--graph", str(rdf), "--rdf",
                     "--grammar", str(grammar), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 4  # (b,b), (b,c), (c,b), (c,c)


class TestTablesCommand:
    def test_small_table(self, capsys):
        assert main(["tables", "table2", "--max-triples", "260"]) == 0
        out = capsys.readouterr().out
        assert "skos" in out
        assert "Table 2" in out
