"""Differential tests for the counting semiring.

Three independent oracles pin the counting closure down:

* a **brute-force derivation-tree enumerator** (recursive over the
  grammar and graph, no closure machinery) on DAG inputs, where the
  derivation forest is acyclic and tree counts are finite;
* the **witness semiring**: the cap-1 support instance must record
  exactly the witness entry sets (same one-step decomposition universe,
  counts pinned at 1);
* the **length-stratified path-counting DP**
  (:meth:`repro.core.path_index.AllPathIndex.count_paths`), which runs
  the same saturating scalar arithmetic over the forest and must agree
  with bounded brute-force path enumeration.

Randomized cases reuse the seeded generators of
``test_semiring_differential`` (deterministic, no hypothesis database).
"""

from __future__ import annotations

import random
import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))
from test_semiring_differential import (  # noqa: E402
    STRATEGIES,
    brute_force_paths,
    make_case,
)

from repro.core.path_index import AllPathIndex  # noqa: E402
from repro.core.semiring import (  # noqa: E402
    COUNTING_SEMIRING,
    SUPPORT_SEMIRING,
    WITNESS_SEMIRING,
    CountingSemiring,
    solve_annotated,
)
from repro.grammar.cfg import CFG  # noqa: E402
from repro.grammar.cnf import to_cnf  # noqa: E402
from repro.grammar.production import Production  # noqa: E402
from repro.grammar.symbols import Nonterminal, Terminal  # noqa: E402
from repro.graph.labeled_graph import LabeledGraph  # noqa: E402

SEEDS = tuple(range(8))
_LABELS = ("a", "b")
_NONTERMINALS = ("S", "A", "B")


def make_dag_case(seed: int, max_nodes: int = 6, max_edges: int = 10):
    """A random **DAG** (edges strictly forward in node order) and a CNF
    grammar with no ε-productions: every effective split then strictly
    shrinks its span, the derivation forest is acyclic, and derivation
    counts are finite — the regime where brute-force tree enumeration
    terminates and the counting closure must be exact."""
    rng = random.Random(0xBEEF ^ seed)
    productions = []
    for _ in range(rng.randint(2, 6)):
        head = Nonterminal(rng.choice(_NONTERMINALS))
        if rng.random() < 0.5:
            body = (Terminal(rng.choice(_LABELS)),)
        else:
            body = tuple(
                Nonterminal(rng.choice(_NONTERMINALS))
                if rng.random() < 0.6 else Terminal(rng.choice(_LABELS))
                for _ in range(2)
            )
        productions.append(Production(head, body))
    grammar = to_cnf(CFG(productions))
    n = rng.randint(3, max_nodes)
    edges = set()
    for _ in range(rng.randint(2, max_edges)):
        i = rng.randrange(0, n - 1)
        j = rng.randrange(i + 1, n)
        edges.add((i, rng.choice(_LABELS), j))
    graph = LabeledGraph.from_edges(sorted(edges), nodes=list(range(n)))
    return graph, grammar


def brute_force_tree_count(graph, grammar, nonterminal: Nonterminal,
                           i: int, j: int) -> int:
    """Enumerate derivation trees as explicit objects and count the
    distinct set — completely independent of the closure's arithmetic.
    Only valid when the derivation forest is acyclic (DAG graphs, no
    ε-productions); the guard assert trips otherwise."""
    pair_rules = [
        (rule.head, rule.body[0], rule.body[1])
        for rule in grammar.binary_rules
    ]
    edge_labels: dict[tuple[int, int], set] = {}
    for a, label, b in graph.edges_by_id():
        edge_labels.setdefault((a, b), set()).add(label)
    memo: dict = {}
    in_progress: set = set()

    def trees(head: Nonterminal, a: int, b: int) -> frozenset:
        # No ε-productions and forward-only edges: every derivation of
        # (head, a, b) spans at least one edge, so a < b and every
        # split's midpoint lies strictly inside the span — spans shrink
        # at each recursion and the enumeration terminates.
        assert not grammar.nullable_diagonal
        if a >= b:
            return frozenset()
        key = (head, a, b)
        if key in memo:
            return memo[key]
        assert key not in in_progress, "cyclic derivation forest"
        in_progress.add(key)
        found = set()
        for label in edge_labels.get((a, b), ()):
            if head in grammar.heads_for_terminal(Terminal(label)):
                found.add(("edge", label))
        for rule_head, left, right in pair_rules:
            if rule_head != head:
                continue
            for r in range(a + 1, b):
                for left_tree in trees(left, a, r):
                    for right_tree in trees(right, r, b):
                        found.add((("split", left.name, right.name, r),
                                   left_tree, right_tree))
        in_progress.discard(key)
        memo[key] = frozenset(found)
        return memo[key]

    return len(trees(nonterminal, i, j))


class TestClosureCountsAgainstBruteForce:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_dag_counts_match_tree_enumeration(self, seed):
        graph, grammar = make_dag_case(seed)
        result = solve_annotated(graph, grammar, COUNTING_SEMIRING)
        checked = 0
        for nonterminal, matrix in result.matrices.items():
            for i, j, value in matrix.nonzero_cells():
                expected = brute_force_tree_count(graph, grammar,
                                                  nonterminal, i, j)
                assert COUNTING_SEMIRING.count(value) == expected, (
                    seed, nonterminal, i, j)
                assert expected >= 1
                checked += 1
        # Nonzero cells exist in most seeds; the suite as a whole must
        # actually have exercised the comparison.
        if checked == 0:
            pytest.skip("seed produced an empty relation")

    @pytest.mark.parametrize("seed", SEEDS)
    def test_counts_identical_across_strategies(self, seed):
        # A small cap keeps cyclic seeds fast: saturation is reached in
        # O(cap) refinement rounds when counts grow linearly (the same
        # hazard that keeps DEFAULT_COUNTING_CAP small).
        semiring = CountingSemiring(cap=64, name="counting[test-64]")
        graph, grammar = make_case(seed)
        baseline = None
        for strategy in STRATEGIES:
            result = solve_annotated(graph, grammar, semiring,
                                     strategy=strategy)
            cells = {
                (nt, i, j): value
                for nt, matrix in result.matrices.items()
                for i, j, value in matrix.nonzero_cells()
            }
            if baseline is None:
                baseline = cells
            else:
                assert cells == baseline, strategy

    def test_saturation_pins_cyclic_cells_at_cap(self):
        semiring = CountingSemiring(cap=7, name="counting[test-7]")
        grammar = to_cnf(CFG.from_mapping(
            {"S": [["a", "S", "b"], ["a", "b"], ["S", "S"]]},
            terminals=["a", "b"]))
        # The a/b-cycle 2 -> 3 -> 2 yields S(2, 2), so S -> S S pumps
        # infinitely many derivations of S(0, 2); the capped closure
        # must terminate and saturate.
        graph = LabeledGraph.from_edges(
            [(0, "a", 1), (1, "b", 2), (2, "a", 3), (3, "b", 2)]
        )
        result = solve_annotated(graph, grammar, semiring)
        matrix = result.matrices[Nonterminal("S")]
        counts = {(i, j): semiring.count(value)
                  for i, j, value in matrix.nonzero_cells()}
        assert counts[(0, 2)] == 7

    def test_default_cap_saturates_cyclic_graphs_promptly(self):
        """Saturation costs O(cap) refinement rounds on a count-1 pump
        cycle, so the *default* instance must stay usable on cyclic
        inputs — the regression that pinned DEFAULT_COUNTING_CAP low."""
        from repro.graph.generators import two_cycles

        grammar = to_cnf(CFG.from_mapping(
            {"S": [["a", "S", "b"], ["a", "b"]]}, terminals=["a", "b"]))
        started = time.perf_counter()
        result = solve_annotated(two_cycles(2, 3), grammar,
                                 COUNTING_SEMIRING)
        assert time.perf_counter() - started < 30
        counts = [COUNTING_SEMIRING.count(value)
                  for matrix in result.matrices.values()
                  for _i, _j, value in matrix.nonzero_cells()]
        assert counts
        assert max(counts) == COUNTING_SEMIRING.cap  # cyclic: saturated

    def test_support_instance_matches_witness_entry_sets(self):
        graph, grammar = make_case(3)
        witness = solve_annotated(graph, grammar, WITNESS_SEMIRING)
        support = solve_annotated(graph, grammar, SUPPORT_SEMIRING)
        witness_cells = {
            (nt, i, j): value
            for nt, matrix in witness.matrices.items()
            for i, j, value in matrix.nonzero_cells()
        }
        support_cells = {
            (nt, i, j): SUPPORT_SEMIRING.supports(value)
            for nt, matrix in support.matrices.items()
            for i, j, value in matrix.nonzero_cells()
        }
        assert witness_cells == support_cells
        assert witness_cells  # non-vacuous on this seed


class TestPathCountDP:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_bounded_counts_match_brute_force_paths(self, seed):
        graph, grammar = make_case(seed)
        index = AllPathIndex.build(graph, grammar)
        checked = 0
        for nonterminal in grammar.nonterminals:
            for i, j in sorted(index.relations.pairs(nonterminal))[:6]:
                expected = len(brute_force_paths(graph, grammar,
                                                 nonterminal, i, j, 5))
                assert index.count_paths(nonterminal, i, j,
                                         max_length=5) == expected, (
                    seed, nonterminal, i, j)
                checked += 1
        if checked == 0:
            pytest.skip("seed produced an empty relation")

    def test_dp_uses_the_semirings_saturating_arithmetic(self):
        semiring = CountingSemiring(cap=5, name="counting[test-5]")
        grammar = to_cnf(CFG.from_mapping(
            {"S": [["T"], ["T", "S"]], "T": [["a"], ["b"]]},
            terminals=["a", "b"]))
        # Two parallel labels per hop: 2^4 = 16 distinct paths 0 -> 4.
        edges = []
        for hop in range(4):
            edges += [(hop, "a", hop + 1), (hop, "b", hop + 1)]
        graph = LabeledGraph.from_edges(edges)
        index = AllPathIndex.build(graph, grammar)
        assert index.count_paths("S", 0, 4, max_length=8,
                                 semiring=semiring) == 5
        assert index.count_paths("S", 0, 4, max_length=8) == 16

    def test_dp_count_equals_closure_count_when_unambiguous(self):
        """Satellite invariant: the forest DP and the closure-level
        counting annotation are the same arithmetic — on an acyclic,
        unambiguous case their totals coincide exactly."""
        grammar = to_cnf(CFG.from_mapping(
            {"S": [["a", "S", "b"], ["a", "b"]]}, terminals=["a", "b"]))
        graph = LabeledGraph.from_edges(
            [(0, "a", 1), (1, "b", 2), (0, "a", 3), (3, "b", 2)]
        )
        closure = solve_annotated(graph, grammar, COUNTING_SEMIRING)
        cell = {
            (i, j): value
            for i, j, value in
            closure.matrices[Nonterminal("S")].nonzero_cells()
        }[(0, 2)]
        index = AllPathIndex.build(graph, grammar)
        assert COUNTING_SEMIRING.count(cell) \
            == index.count_paths("S", 0, 2, max_length=10) == 2
