"""Differential harness: the semiring engine vs the legacy loops.

The bespoke fixpoint loops that used to live in ``single_path.py`` and
``allpath.py`` were deleted when both semantics moved onto the unified
closure engine (:mod:`repro.core.semiring`).  They survive here as
**oracles**: a tuple-level re-implementation of the Section 5
length-annotated closure, and a brute-force walk enumerator checked by
CYK.  For deterministic random grammars × random graphs the harness
asserts, across every closure strategy (including tiled ``blocked``
with a tile smaller than the graph) and every boolean backend:

* the annotated engine's **relational projection** equals the boolean
  engine's answer on every backend × strategy cell;
* the recorded **single-path lengths** are byte-identical to the legacy
  loop's (and therefore identical across strategies);
* every **extracted path** is a real path of exactly the recorded
  length whose labeling derives from the queried non-terminal;
* the bounded **all-path answer** equals brute-force walk enumeration
  filtered by CYK, and the midpoint index is identical across
  strategies;
* the **incremental annotated solver** stays equal to a from-scratch
  index after every insertion.

One deliberate strengthening in the length oracle: the legacy loop
recorded whichever length its iteration order found first (sound, but
order-dependent — the reason it could never be compared across
strategies exactly); the oracle merges candidate lengths with ``min``,
the canonical confluent form of the paper's never-update rule, which is
precisely what :class:`repro.core.semiring.LengthSemiring` computes.
"""

from __future__ import annotations

import random

import pytest

from repro.core.allpath import AllPathEnumerator
from repro.core.incremental import IncrementalSinglePathCFPQ
from repro.core.matrix_cfpq import solve_matrix_relations
from repro.core.path_index import AllPathIndex
from repro.core.semiring import (
    BOOLEAN_SEMIRING,
    LENGTH_SEMIRING,
    WITNESS_SEMIRING,
    solve_annotated,
)
from repro.core.single_path import (
    build_single_path_index,
    extract_path,
    path_is_valid,
    path_word,
)
from repro.grammar.cfg import CFG
from repro.grammar.cnf import to_cnf
from repro.grammar.production import Production
from repro.grammar.recognizer import cyk_recognize
from repro.grammar.symbols import Nonterminal, Terminal
from repro.graph.generators import random_graph
from repro.matrices.base import available_backends

STRATEGIES = ("naive", "delta", "blocked")
SEEDS = tuple(range(10))
_LABELS = ("a", "b")
_NONTERMINALS = ("S", "A", "B")


# ----------------------------------------------------------------------
# Deterministic random cases (seeded at call time, never at import)
# ----------------------------------------------------------------------

def make_case(seed: int, max_nodes: int = 5, max_edges: int = 12,
              ) -> tuple:
    """One random (graph, CNF grammar) pair, fully determined by *seed*."""
    rng = random.Random(0xC0FFEE ^ seed)
    productions = []
    for _ in range(rng.randint(1, 6)):
        head = Nonterminal(rng.choice(_NONTERMINALS))
        body = []
        for _ in range(rng.randint(0, 3)):
            if rng.random() < 0.5:
                body.append(Terminal(rng.choice(_LABELS)))
            else:
                body.append(Nonterminal(rng.choice(_NONTERMINALS)))
        productions.append(Production(head, tuple(body)))
    grammar = to_cnf(CFG(productions))
    graph = random_graph(rng.randint(2, max_nodes),
                         rng.randint(1, max_edges),
                         list(_LABELS), seed=rng.randint(0, 10_000))
    return graph, grammar


# ----------------------------------------------------------------------
# Oracles (the legacy loops, kept for differential testing only)
# ----------------------------------------------------------------------

def legacy_single_path_cells(graph, grammar) -> dict:
    """The pre-semiring Section 5 fixpoint at tuple granularity:
    ``(i, j) -> {A: l_A}`` with edge initialization 1 and
    ``l_A = l_B + l_C`` through every rule ``A → B C``, candidates
    merged with min (see the module docstring)."""
    cells: dict[tuple[int, int], dict[Nonterminal, int]] = {}
    # Empty-path diagonal: originally-nullable non-terminals witness
    # (i, i) with length 0 (the paper's relation semantics counts the
    # empty path; to_cnf records the nullable set on the CNF grammar).
    for head in grammar.nullable_diagonal:
        for i in range(graph.node_count):
            cells.setdefault((i, i), {}).setdefault(head, 0)
    for i, label, j in graph.edges_by_id():
        for head in grammar.heads_for_terminal(Terminal(label)):
            entries = cells.setdefault((i, j), {})
            if entries.get(head, 2) > 1:
                entries[head] = 1
    pair_rules = [
        (rule.head, rule.body[0], rule.body[1])
        for rule in grammar.binary_rules
    ]
    changed = True
    while changed:
        changed = False
        by_col: dict[int, list[tuple[int, dict]]] = {}
        for (r, j), entries in cells.items():
            by_col.setdefault(r, []).append((j, entries))
        additions: list[tuple[int, int, Nonterminal, int]] = []
        for head, left, right in pair_rules:
            for (i, r), left_entries in cells.items():
                left_length = left_entries.get(left)
                if left_length is None:
                    continue
                for j, right_entries in by_col.get(r, ()):
                    right_length = right_entries.get(right)
                    if right_length is None:
                        continue
                    additions.append(
                        (i, j, head, left_length + right_length)
                    )
        for i, j, head, length in additions:
            entries = cells.setdefault((i, j), {})
            existing = entries.get(head)
            if existing is None or length < existing:
                entries[head] = length
                changed = True
    return cells


def brute_force_paths(graph, grammar, nonterminal, source_id: int,
                      target_id: int, max_length: int) -> frozenset:
    """Every walk of length ≤ *max_length* from source to target whose
    label word derives from *nonterminal* — checked edge-by-edge with
    CYK, completely independent of the closure machinery."""
    out_edges = graph.out_edges_index()
    found: set = set()
    if source_id == target_id and nonterminal in grammar.nullable_diagonal:
        found.add(())  # the empty path, witnessed by A => * eps

    def extend(node: int, path: tuple) -> None:
        if path and node == target_id:
            word = [label for _i, label, _j in path]
            if cyk_recognize(grammar, nonterminal, word):
                found.add(path)
        if len(path) == max_length:
            return
        for label, successor in out_edges.get(node, ()):
            extend(successor, path + ((node, label, successor),))

    extend(source_id, ())
    return frozenset(found)


# ----------------------------------------------------------------------
# Single-path differentials
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
def test_single_path_lengths_byte_identical_across_strategies(seed):
    graph, grammar = make_case(seed)
    oracle = legacy_single_path_cells(graph, grammar)
    for strategy in STRATEGIES:
        index = build_single_path_index(graph, grammar, normalize=False,
                                        strategy=strategy)
        assert index.cells == oracle, strategy


@pytest.mark.parametrize("seed", SEEDS)
def test_single_path_lengths_survive_real_tiling(seed):
    """blocked with a tile edge smaller than the graph exercises the
    offset bookkeeping of the annotated tiles."""
    graph, grammar = make_case(seed)
    oracle = legacy_single_path_cells(graph, grammar)
    result = solve_annotated(graph, grammar, LENGTH_SEMIRING,
                             strategy="blocked", normalize=False,
                             tile_size=2)
    assert result.cells() == oracle


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_extracted_paths_realize_recorded_lengths(seed, strategy):
    graph, grammar = make_case(seed)
    index = build_single_path_index(graph, grammar, normalize=False,
                                    strategy=strategy)
    for (i, j), entries in index.cells.items():
        for nonterminal, length in entries.items():
            path = extract_path(index, nonterminal, graph.node_at(i),
                                graph.node_at(j))
            assert len(path) == length
            assert path_is_valid(index, path)
            if length == 0:
                # Empty path: witnessed by nullability, not by CYK (the
                # CNF grammar itself cannot derive the empty word).
                assert i == j and nonterminal in grammar.nullable_diagonal
            else:
                assert cyk_recognize(grammar, nonterminal,
                                     list(path_word(path)))


# ----------------------------------------------------------------------
# Relational projection vs every boolean backend × strategy
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS[:6])
def test_relational_projection_matches_all_backends_and_strategies(seed):
    graph, grammar = make_case(seed)
    projections = {}
    for semiring in (BOOLEAN_SEMIRING, LENGTH_SEMIRING, WITNESS_SEMIRING):
        for strategy in STRATEGIES:
            result = solve_annotated(graph, grammar, semiring,
                                     strategy=strategy, normalize=False)
            projections[(semiring.name, strategy)] = {
                nt: frozenset(matrix.nonzero_pairs())
                for nt, matrix in result.matrices.items()
            }
    reference = next(iter(projections.values()))
    for key, projection in projections.items():
        assert projection == reference, key
    for backend in available_backends():
        for strategy in STRATEGIES:
            relations = solve_matrix_relations(graph, grammar,
                                               backend=backend,
                                               normalize=False,
                                               strategy=strategy)
            for nonterminal, pairs in reference.items():
                assert relations.pairs(nonterminal) == pairs, (
                    backend, strategy, nonterminal
                )


# ----------------------------------------------------------------------
# All-path differentials
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS[:6])
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_bounded_all_paths_match_brute_force(seed, strategy):
    graph, grammar = make_case(seed, max_nodes=4, max_edges=8)
    enumerator = AllPathEnumerator(graph, grammar, normalize=False,
                                   strategy=strategy)
    bound = 4
    for nonterminal in grammar.nonterminals:
        for i in range(graph.node_count):
            for j in range(graph.node_count):
                expected = brute_force_paths(graph, grammar, nonterminal,
                                             i, j, bound)
                actual = enumerator.paths(nonterminal, graph.node_at(i),
                                          graph.node_at(j), bound)
                assert actual == expected, (nonterminal, i, j)


@pytest.mark.parametrize("seed", SEEDS)
def test_midpoint_index_identical_across_strategies(seed):
    graph, grammar = make_case(seed)
    forests = []
    for strategy in STRATEGIES:
        index = AllPathIndex.build(graph, grammar, strategy=strategy)
        forests.append({
            (nonterminal, i, j): tuple(index.splits(nonterminal, i, j))
            for nonterminal in grammar.nonterminals
            for i, j in index.relations.pairs(nonterminal)
        })
    assert forests[0] == forests[1] == forests[2]


@pytest.mark.parametrize("seed", SEEDS)
def test_engine_forest_matches_on_demand_splits(seed):
    """The witness annotation must equal the splits derived on demand
    from the bare relations (the pre-semiring computation path)."""
    graph, grammar = make_case(seed)
    engine_index = AllPathIndex.build(graph, grammar)
    legacy_index = AllPathIndex(graph, grammar, engine_index.relations)
    assert legacy_index._splits_index is None
    for nonterminal in grammar.nonterminals:
        for i, j in engine_index.relations.pairs(nonterminal):
            assert (sorted(engine_index.splits(nonterminal, i, j),
                           key=_split_key)
                    == sorted(legacy_index.splits(nonterminal, i, j),
                              key=_split_key)), (nonterminal, i, j)


def _split_key(split):
    left, right, mid = split
    return (left.name, right.name, mid)


# ----------------------------------------------------------------------
# Incremental annotated solver vs from-scratch index
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS[:6])
def test_incremental_lengths_track_from_scratch_index(seed):
    graph, grammar = make_case(seed)
    rng = random.Random(0xFEED ^ seed)
    solver = IncrementalSinglePathCFPQ(graph, to_cnf(grammar))
    for _ in range(4):
        source = rng.randrange(graph.node_count)
        target = rng.randrange(graph.node_count)
        solver.add_edge(source, rng.choice(_LABELS), target)
        rebuilt = build_single_path_index(graph, solver.grammar,
                                          normalize=False)
        expected = {
            (nt, i, j): length
            for (i, j), entries in rebuilt.cells.items()
            for nt, length in entries.items()
        }
        assert solver._lengths == expected
