"""Differential tests for the frontier-aware parallel tile engine.

The blocked strategy must be a pure implementation detail: whatever
scheduler executes the tile-task DAG (``serial`` in-process, ``threads``
pool, ``process`` pool with raw-buffer payloads) and whatever order the
tasks run in, the closure — boolean relations and length/witness
annotations alike — must be byte-identical to the ``naive`` oracle.
These tests reuse the deterministic random cases of the semiring
differential harness (:mod:`tests.core.test_semiring_differential`).
"""

from __future__ import annotations

import random

import pytest

from repro.core.closure import run_closure
from repro.core.matrix_cfpq import solve_matrix
from repro.core.semiring import (
    LENGTH_SEMIRING,
    WITNESS_SEMIRING,
    solve_annotated,
)
from repro.core.tiles import (
    SCHEDULERS,
    available_schedulers,
    matrix_from_payload,
    resolve_scheduler,
    tile_payload_of,
)
from repro.errors import UnknownSchedulerError
from repro.matrices.base import available_backends, get_backend

from test_semiring_differential import make_case

SEEDS = tuple(range(6))


# ----------------------------------------------------------------------
# Registry / resolution
# ----------------------------------------------------------------------

class TestSchedulerRegistry:
    def test_bundled_schedulers_registered(self):
        assert set(SCHEDULERS) <= set(available_schedulers())

    def test_unknown_scheduler(self):
        with pytest.raises(UnknownSchedulerError) as excinfo:
            resolve_scheduler("gpu-cluster")
        assert "serial" in str(excinfo.value)

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "threads")
        assert resolve_scheduler(None).name == "threads"
        monkeypatch.delenv("REPRO_SCHEDULER")
        assert resolve_scheduler(None).name == "serial"


# ----------------------------------------------------------------------
# Payload round-trips (the process scheduler's wire format)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("backend_name", available_backends())
def test_payload_round_trip(backend_name):
    backend = get_backend(backend_name)
    matrix = backend.from_pairs(7, [(0, 6), (3, 3), (6, 0), (5, 2)], cols=9)
    payload = tile_payload_of(matrix)
    assert isinstance(payload, tuple)
    rebuilt = matrix_from_payload(payload)
    assert rebuilt.shape == matrix.shape
    assert rebuilt.same_pairs(matrix)


def test_annotated_payload_round_trip():
    graph, grammar = make_case(0)
    result = solve_annotated(graph, grammar, LENGTH_SEMIRING,
                             normalize=False)
    for matrix in result.matrices.values():
        rebuilt = matrix_from_payload(tile_payload_of(matrix))
        assert rebuilt.same_pairs(matrix)
        assert {(i, j): v for i, j, v in rebuilt.nonzero_cells()} == \
            {(i, j): v for i, j, v in matrix.nonzero_cells()}
        assert rebuilt.symbol == matrix.symbol


# ----------------------------------------------------------------------
# Scheduler × strategy × backend × semiring differential
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
def test_schedulers_byte_identical_boolean(seed):
    """Every (scheduler × backend) blocked run equals the naive oracle."""
    graph, grammar = make_case(seed)
    oracle = solve_matrix(graph, grammar, normalize=False, strategy="naive")
    for scheduler in SCHEDULERS:
        for backend in available_backends():
            result = solve_matrix(graph, grammar, backend=backend,
                                  normalize=False, strategy="blocked",
                                  tile_size=2, scheduler=scheduler)
            assert result.relations.same_as(oracle.relations), \
                (scheduler, backend)
            assert (result.stats.nnz_per_nonterminal
                    == oracle.stats.nnz_per_nonterminal), (scheduler, backend)


@pytest.mark.parametrize("seed", SEEDS[:4])
@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_schedulers_byte_identical_annotations(seed, scheduler):
    """Length and witness annotations survive every scheduler exactly —
    including the raw-buffer payload round trip of ``process``."""
    graph, grammar = make_case(seed)
    for semiring in (LENGTH_SEMIRING, WITNESS_SEMIRING):
        reference = solve_annotated(graph, grammar, semiring,
                                    strategy="naive", normalize=False)
        tiled = solve_annotated(graph, grammar, semiring,
                                strategy="blocked", normalize=False,
                                tile_size=2, scheduler=scheduler)
        assert tiled.cells() == reference.cells(), (scheduler, semiring.name)


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_autotune_matches_oracle(seed):
    graph, grammar = make_case(seed)
    oracle = solve_matrix(graph, grammar, normalize=False, strategy="naive")
    result = solve_matrix(graph, grammar, normalize=False,
                          strategy="autotune")
    assert result.relations.same_as(oracle.relations)
    assert result.stats.details["autotune"]["rounds"]


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_autotune_blocked_parallel_route(seed):
    """The scheduler route to the tile engine: with ``probe=False`` the
    configured parallel scheduler is trusted, and the result must still
    equal the oracle while recording the blocked-parallel decision."""
    graph, grammar = make_case(seed)
    oracle = solve_matrix(graph, grammar, normalize=False, strategy="naive")
    result = solve_matrix(graph, grammar, normalize=False,
                          strategy="autotune", scheduler="threads",
                          probe=False, tile_size=2)
    assert result.relations.same_as(oracle.relations)
    autotune = result.stats.details["autotune"]
    assert autotune["mode"] == "blocked-parallel"
    assert "threads" in autotune["reason"]
    assert result.stats.details["blocked"].scheduler == "threads"


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_autotune_spill_route(seed):
    """The budget route: a budget smaller than the measured matrices
    sends the run out-of-core, byte-identical, with spill accounting."""
    graph, grammar = make_case(seed)
    oracle = solve_matrix(graph, grammar, normalize=False, strategy="naive")
    result = solve_matrix(graph, grammar, normalize=False,
                          strategy="autotune", memory_budget=1,
                          tile_size=2)
    assert result.relations.same_as(oracle.relations)
    autotune = result.stats.details["autotune"]
    assert autotune["mode"] == "blocked-spill"
    assert autotune["budget_bytes"] == 1
    assert autotune["estimated_bytes"] > 1
    blocked = result.stats.details["blocked"]
    assert blocked.budget_bytes == 1
    assert blocked.tiles_spilled > 0
    assert blocked.tiles_reloaded > 0


def test_autotune_probe_records_measured_timings():
    """With a parallel scheduler configured and probing on, the decision
    carries the probe's measured wall times for both executors."""
    graph, grammar = make_case(2)
    oracle = solve_matrix(graph, grammar, normalize=False, strategy="naive")
    result = solve_matrix(graph, grammar, normalize=False,
                          strategy="autotune", scheduler="threads",
                          tile_size=2)
    assert result.relations.same_as(oracle.relations)
    autotune = result.stats.details["autotune"]
    if autotune["mode"] == "rounds":
        return  # probe measured serial faster — no timing surface
    probe = autotune["probe_seconds"]
    assert set(probe) == {"serial", "threads"}
    assert all(seconds >= 0.0 for seconds in probe.values())


def test_autotune_has_no_node_count_threshold():
    """The routing must be measurement-driven: no fixed node-count
    constant survives in the autotune strategy."""
    import inspect

    from repro.core import closure as closure_module

    source = inspect.getsource(closure_module.closure_autotune)
    assert "blocked_min_size" not in source
    assert not hasattr(closure_module, "AUTOTUNE_BLOCKED_MIN_SIZE")


# ----------------------------------------------------------------------
# Determinism under task-order shuffling
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
def test_closure_deterministic_under_task_shuffling(seed):
    """Merging happens in canonical key order, so any permutation of the
    scheduled task list yields the identical closure and stats."""
    graph, grammar = make_case(seed)
    reference = solve_matrix(graph, grammar, normalize=False,
                             strategy="blocked", tile_size=2)
    for shuffle_seed in range(3):
        rng = random.Random(shuffle_seed)

        def shuffled(groups):
            groups = list(groups)
            rng.shuffle(groups)
            return groups

        result = solve_matrix(graph, grammar, normalize=False,
                              strategy="blocked", tile_size=2,
                              task_order=shuffled)
        assert result.relations.same_as(reference.relations), shuffle_seed
        assert (result.stats.multiplications
                == reference.stats.multiplications), shuffle_seed
        assert (result.stats.delta_nnz_per_round
                == reference.stats.delta_nnz_per_round), shuffle_seed


# ----------------------------------------------------------------------
# Frontier accounting
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
def test_frontier_accounting_exact(seed):
    """products(frontier) + skipped(frontier) == products(all-tiles),
    with identical closures — the frontier only removes provably
    redundant work."""
    graph, grammar = make_case(seed)
    frontier = solve_matrix(graph, grammar, normalize=False,
                            strategy="blocked", tile_size=2)
    full = solve_matrix(graph, grammar, normalize=False,
                        strategy="blocked", tile_size=2, frontier=False)
    assert frontier.relations.same_as(full.relations)
    fs = frontier.stats.details["blocked"]
    ns = full.stats.details["blocked"]
    assert fs.tiles_skipped_by_frontier == 0 or \
        fs.tile_products < ns.tile_products
    assert fs.tile_products + fs.tiles_skipped_by_frontier \
        == ns.tile_products
    assert ns.tiles_skipped_by_frontier == 0


def test_frontier_strictly_fewer_tiles_on_funding_x8():
    """The acceptance workload: on funding×8 (the paper's g1) the
    frontier-aware engine must multiply strictly fewer tiles than the
    all-tiles-every-round blocked loop, for the same answer."""
    from repro.datasets.registry import build_graph
    from repro.grammar.builders import same_generation_query1
    from repro.grammar.cnf import to_cnf
    from repro.graph.generators import repeat_graph

    grammar = to_cnf(same_generation_query1())
    graph = repeat_graph(build_graph("funding"), 8)
    frontier = solve_matrix(graph, grammar, backend="bitset",
                            normalize=False, strategy="blocked",
                            tile_size=256)
    full = solve_matrix(graph, grammar, backend="bitset", normalize=False,
                        strategy="blocked", tile_size=256, frontier=False)
    assert frontier.relations.same_as(full.relations)
    fs = frontier.stats.details["blocked"]
    ns = full.stats.details["blocked"]
    assert fs.tile_products < ns.tile_products
    assert fs.tiles_skipped_by_frontier > 0
    assert fs.tile_products + fs.tiles_skipped_by_frontier \
        == ns.tile_products


# ----------------------------------------------------------------------
# Process-scheduler payload cache (re-serialization regression)
# ----------------------------------------------------------------------

def test_process_scheduler_payload_encodes_cached():
    """The version-keyed payload cache must stop the process scheduler
    from re-serializing unchanged tiles on every round: the encode count
    with the cache is strictly below the cache-disabled run, which
    encodes each operand tile once per group shipment.  Seed 6 is a
    multi-round case, so unchanged tiles get re-shipped across rounds."""
    graph, grammar = make_case(6)
    cached = solve_matrix(graph, grammar, backend="bitset",
                          normalize=False, strategy="blocked",
                          tile_size=2, scheduler="process")
    uncached = solve_matrix(graph, grammar, backend="bitset",
                            normalize=False, strategy="blocked",
                            tile_size=2, scheduler="process",
                            payload_cache=False)
    assert cached.relations.same_as(uncached.relations)
    cached_encodes = cached.stats.details["blocked"].payload_encodes
    uncached_encodes = uncached.stats.details["blocked"].payload_encodes
    assert cached_encodes > 0
    assert uncached_encodes > cached_encodes


# ----------------------------------------------------------------------
# Stats surface
# ----------------------------------------------------------------------

def test_blocked_stats_expose_scheduler_and_wall_time():
    graph, grammar = make_case(1)
    result = solve_matrix(graph, grammar, normalize=False,
                          strategy="blocked", tile_size=2,
                          scheduler="threads")
    stats = result.stats.details["blocked"]
    assert stats.scheduler == "threads"
    assert stats.scheduler_wall_time_s >= 0.0
    rendered = stats.as_dict()
    assert rendered["tiles_skipped_by_frontier"] == \
        stats.tiles_skipped_by_frontier
    assert rendered["scheduler"] == "threads"


def test_run_closure_empty_matrices_blocked():
    result = run_closure({}, [], "pyset", strategy="blocked")
    assert result.iterations == 0
    assert result.multiplications == 0
