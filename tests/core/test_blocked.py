"""Tests for the blocked/out-of-core closure (§7 future work)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocked import (
    TileDeviceSimulator,
    assemble_from_tiles,
    blocked_multiply,
    boolean_closure_blocked,
    split_into_tiles,
)
from repro.core.transitive_closure import boolean_closure_naive
from repro.graph.generators import chain, random_graph
from repro.graph.matrices import boolean_adjacency
from repro.matrices.base import get_backend


class TestTiling:
    def test_split_round_trip(self, backend):
        matrix = backend.from_pairs(7, [(0, 6), (3, 3), (6, 0), (5, 2)])
        tiles = split_into_tiles(matrix, 3, backend)
        assert len(tiles) == 9  # ceil(7/3)² = 3²
        back = assemble_from_tiles(tiles, 7, 3, backend)
        assert back.same_pairs(matrix)

    def test_tiles_are_uniform_size(self, backend):
        tiles = split_into_tiles(backend.from_pairs(5, [(4, 4)]), 2, backend)
        assert all(tile.shape == (2, 2) for tile in tiles.values())

    def test_invalid_tile_size(self, backend):
        with pytest.raises(ValueError):
            split_into_tiles(backend.zeros(4), 0, backend)


class TestBlockedMultiply:
    def test_matches_flat_multiply(self, backend):
        matrix = backend.from_pairs(6, [(0, 1), (1, 2), (2, 3), (3, 0), (4, 5)])
        tiles = split_into_tiles(matrix, 2, backend)
        product_tiles, products = blocked_multiply(tiles, tiles, grid=3)
        product = assemble_from_tiles(product_tiles, 6, 2, backend)
        assert product.same_pairs(matrix.multiply(matrix))
        assert products > 0

    def test_zero_tiles_skipped(self, backend):
        matrix = backend.from_pairs(4, [(0, 1)])
        tiles = split_into_tiles(matrix, 2, backend)
        _result, products = blocked_multiply(tiles, tiles, grid=2)
        # only tile products with non-empty operands execute
        assert products <= 2


class TestDeviceSimulator:
    def test_minimum_capacity(self):
        with pytest.raises(ValueError):
            TileDeviceSimulator(2)

    def test_lru_eviction(self):
        device = TileDeviceSimulator(3)
        for tag in ["a", "b", "c", "d"]:
            device.touch((tag,))
        assert device.loads == 4
        assert device.evictions == 1
        device.touch(("d",))
        assert device.hits == 1

    def test_resident_bounded(self):
        device = TileDeviceSimulator(3)
        for k in range(20):
            device.touch((k,))
        assert device.resident_count == 3


class TestBlockedClosure:
    def test_matches_unblocked_closure(self, backend_name):
        matrix = boolean_adjacency(
            random_graph(12, 40, ["e"], seed=2), backend=backend_name
        )
        expected = boolean_closure_naive(matrix)
        for tile_size in [3, 5, 12, 20]:
            closed, stats = boolean_closure_blocked(
                matrix, tile_size, backend=backend_name
            )
            assert closed.same_pairs(expected), tile_size
            assert stats.tile_products >= 0

    def test_working_set_bounded_by_capacity(self):
        """The out-of-core property: resident tiles never exceed the
        simulated device capacity, regardless of matrix size."""
        matrix = boolean_adjacency(chain(30), backend="sparse")
        _closed, stats = boolean_closure_blocked(
            matrix, tile_size=4, device_capacity_tiles=3
        )
        # with capacity 3 every distinct touch beyond the first 3 loads
        # must evict — loads-evictions never exceeds capacity
        assert stats.device_loads - stats.device_evictions <= 3
        assert stats.grid == 8

    def test_multi_device_task_spread(self):
        matrix = boolean_adjacency(
            random_graph(16, 60, ["e"], seed=9), backend="sparse"
        )
        _closed, stats = boolean_closure_blocked(
            matrix, tile_size=4, device_count=4
        )
        assert set(stats.tasks_per_device) <= {0, 1, 2, 3}
        assert sum(stats.tasks_per_device.values()) == stats.tile_products
        # round-robin: no device owns everything (grid 4x4 = 16 owners)
        assert len(stats.tasks_per_device) > 1

    def test_single_tile_degenerates_to_flat(self, backend_name):
        matrix = boolean_adjacency(chain(5), backend=backend_name)
        closed, stats = boolean_closure_blocked(matrix, tile_size=10,
                                                backend=backend_name)
        assert stats.grid == 1
        assert closed.same_pairs(boolean_closure_naive(matrix))


pair_sets = st.sets(
    st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=14
)


@given(pairs=pair_sets, tile_size=st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_blocked_closure_equals_naive_property(pairs, tile_size):
    backend = get_backend("pyset")
    matrix = backend.from_pairs(7, pairs)
    expected = boolean_closure_naive(matrix)
    closed, _stats = boolean_closure_blocked(matrix, tile_size,
                                             backend="pyset")
    assert closed.same_pairs(expected)
