"""Batched multi-query closure (:mod:`repro.core.batch`).

The contract under test: for every query shape, ``solve_batch`` must
return exactly what filtering a full :func:`solve_matrix` relation
would — across backends, strategies, cold and warm modes — while the
masked path never materializes the all-pairs relation for restricted
queries.
"""

from __future__ import annotations

import random

import pytest

from repro.core.batch import BatchQuery, as_batch_query, solve_batch
from repro.core.matrix_cfpq import solve_matrix
from repro.errors import GrammarError, SemanticsError
from repro.grammar import parse_grammar
from repro.grammar.cnf import ensure_cnf
from repro.grammar.symbols import Nonterminal
from repro.graph import LabeledGraph, two_cycles
from repro.matrices import available_backends

S = Nonterminal("S")
STRATEGIES = ("naive", "delta", "blocked", "autotune")


@pytest.fixture
def grammar():
    return parse_grammar("S -> a S b | a b", terminals=["a", "b"])


@pytest.fixture
def graph():
    return two_cycles(2, 3, "a", "b")


def _reference(graph, grammar):
    """The oracle: one all-pairs solve, post-filtered per query."""
    return solve_matrix(graph, grammar, backend="pyset").relations \
        .node_pairs(S)


def _expected(pairs, query: BatchQuery):
    restricted = {
        (a, b) for a, b in pairs
        if (query.sources is None or a in query.sources)
        and (query.targets is None or b in query.targets)
    }
    if query.semantics == "membership":
        return bool(restricted)
    return frozenset(restricted)


def _query_shapes(graph):
    nodes = [graph.node_at(i) for i in range(graph.node_count)]
    return [
        BatchQuery(S),                                   # full relation
        BatchQuery(S, sources=frozenset(nodes[:1])),     # single source
        BatchQuery(S, sources=frozenset(nodes[:3])),     # multi source
        BatchQuery(S, sources=frozenset(nodes[:2]),
                   targets=frozenset(nodes[1:4])),       # both restricted
        BatchQuery(S, targets=frozenset(nodes[2:4])),    # target only
        BatchQuery(S, sources=frozenset(nodes[:1]),
                   targets=frozenset(nodes[:1]),
                   semantics="membership"),
        BatchQuery(S, sources=frozenset(nodes),
                   targets=frozenset(nodes),
                   semantics="membership"),
    ]


class TestColdDifferential:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_matches_all_pairs_filter(self, graph, grammar, strategy):
        pairs = _reference(graph, grammar)
        queries = _query_shapes(graph)
        for backend in available_backends():
            answers = solve_batch(graph, grammar, queries,
                                  backend=backend, strategy=strategy)
            for query, answer in zip(queries, answers):
                assert answer == _expected(pairs, query), \
                    (backend, strategy, query)

    def test_nullable_grammar_random_graphs(self):
        nullable = parse_grammar("S -> a S b | a b |",
                                 terminals=["a", "b"])
        rng = random.Random(5)
        for _ in range(3):
            edges = [(rng.randrange(6), rng.choice("ab"), rng.randrange(6))
                     for _ in range(12)]
            graph = LabeledGraph.from_edges(edges)
            pairs = _reference(graph, nullable)
            queries = _query_shapes(graph)
            answers = solve_batch(graph, nullable, queries,
                                  backend="pyset", strategy="delta")
            for query, answer in zip(queries, answers):
                assert answer == _expected(pairs, query), query


class TestWarmMode:
    @pytest.mark.parametrize("strategy", ("naive", "delta", "blocked"))
    def test_matches_cold(self, graph, grammar, strategy):
        cnf = ensure_cnf(grammar)
        queries = _query_shapes(graph)
        for backend in available_backends():
            solved = solve_matrix(graph, cnf, backend=backend,
                                  normalize=False)
            closed = dict(solved.matrices)
            cold = solve_batch(graph, cnf, queries, backend=backend,
                               strategy=strategy, normalize=False)
            warm = solve_batch(graph, cnf, queries, backend=backend,
                               strategy=strategy, normalize=False,
                               closed_matrices=closed)
            assert warm == cold, (backend, strategy)

    def test_never_mutates_caller_matrices(self, graph, grammar):
        cnf = ensure_cnf(grammar)
        solved = solve_matrix(graph, cnf, backend="pyset",
                              normalize=False)
        closed = dict(solved.matrices)
        snapshots = {nt: m.to_pair_set() for nt, m in closed.items()}
        solve_batch(graph, cnf, _query_shapes(graph), backend="pyset",
                    normalize=False, closed_matrices=closed)
        for nt, matrix in closed.items():
            assert matrix.to_pair_set() == snapshots[nt], nt

    def test_missing_nonterminal_rejected(self, graph, grammar):
        cnf = ensure_cnf(grammar)
        solved = solve_matrix(graph, cnf, backend="pyset",
                              normalize=False)
        closed = dict(solved.matrices)
        closed.pop(next(iter(closed)))
        with pytest.raises(ValueError, match="closed_matrices"):
            solve_batch(graph, cnf, [BatchQuery(S)], backend="pyset",
                        normalize=False, closed_matrices=closed)


class TestEdgeCases:
    def test_empty_batch(self, graph, grammar):
        assert solve_batch(graph, grammar, []) == []

    def test_empty_graph(self, grammar):
        graph = LabeledGraph.from_edges([])
        answers = solve_batch(graph, grammar, [BatchQuery(S)],
                              backend="pyset")
        assert answers == [frozenset()]

    def test_absent_nodes_restrict_to_nothing(self, graph, grammar):
        answers = solve_batch(
            graph, grammar,
            [BatchQuery(S, sources=frozenset(("nope",))),
             BatchQuery(S, sources=frozenset(("nope",)),
                        targets=frozenset(("also-nope",)),
                        semantics="membership")],
            backend="pyset")
        assert answers == [frozenset(), False]

    def test_unknown_nonterminal(self, graph, grammar):
        with pytest.raises(GrammarError):
            solve_batch(graph, grammar, [BatchQuery(Nonterminal("Zed"))])

    def test_membership_requires_both_endpoints(self, graph, grammar):
        with pytest.raises(SemanticsError):
            solve_batch(graph, grammar,
                        [BatchQuery(S, semantics="membership")])

    def test_unknown_semantics(self, graph, grammar):
        with pytest.raises(SemanticsError):
            solve_batch(graph, grammar,
                        [BatchQuery(S, semantics="nope")])


class TestAsBatchQuery:
    def test_dict_spec(self):
        query = as_batch_query({"start": "S", "source": 1, "target": 2,
                                "semantics": "membership"})
        assert str(query.start) == "S"  # coerced to Nonterminal on solve
        assert query.sources == frozenset((1,))
        assert query.targets == frozenset((2,))
        assert query.semantics == "membership"

    def test_dict_plural_keys(self):
        query = as_batch_query({"start": "S", "sources": [1, 2],
                                "targets": [3]})
        assert query.sources == frozenset((1, 2))
        assert query.targets == frozenset((3,))

    def test_tuple_spec(self):
        query = as_batch_query(("S", 1, None))
        assert str(query.start) == "S"
        assert query.sources == frozenset((1,))
        assert query.targets is None

    def test_missing_start_rejected(self):
        with pytest.raises(SemanticsError):
            as_batch_query({"source": 1})
