"""Property test: random grammars × random graphs, all CNF-based solvers.

Complements ``test_cross_implementation`` (fixed grammars) by also
randomizing the *grammar*, including ε-rules, unit rules and long
bodies — the full CNF pipeline runs inside the loop.  GLL is excluded
here because it answers ε-queries (reflexive pairs) that normalization
deliberately drops; its agreement modulo ε is covered separately.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.gll import solve_gll
from repro.baselines.hellings import solve_hellings
from repro.core.matrix_cfpq import solve_matrix_relations
from repro.core.naive_closure import solve_naive
from repro.grammar.analysis import nullable_nonterminals
from repro.grammar.cfg import CFG
from repro.grammar.cnf import to_cnf
from repro.grammar.production import Production
from repro.grammar.symbols import Nonterminal, Terminal
from repro.graph.generators import random_graph

_LABELS = ["a", "b"]
_NONTERMINALS = ["S", "A", "B"]


@st.composite
def random_grammars(draw) -> CFG:
    n_rules = draw(st.integers(min_value=1, max_value=6))
    productions = []
    for _ in range(n_rules):
        head = Nonterminal(draw(st.sampled_from(_NONTERMINALS)))
        body_length = draw(st.integers(min_value=0, max_value=3))
        body = []
        for _ in range(body_length):
            if draw(st.booleans()):
                body.append(Terminal(draw(st.sampled_from(_LABELS))))
            else:
                body.append(Nonterminal(draw(st.sampled_from(_NONTERMINALS))))
        productions.append(Production(head, tuple(body)))
    return CFG(productions)


@given(
    grammar=random_grammars(),
    seed=st.integers(0, 5000),
    node_count=st.integers(2, 6),
    edge_count=st.integers(1, 15),
)
@settings(max_examples=60, deadline=None)
def test_cnf_solvers_agree_on_random_grammars(grammar, seed, node_count,
                                              edge_count):
    graph = random_graph(node_count, edge_count, _LABELS, seed=seed)
    cnf = to_cnf(grammar)

    reference = solve_naive(graph, cnf, normalize=False).relations
    for name, relations in [
        ("sparse", solve_matrix_relations(graph, cnf, backend="sparse",
                                          normalize=False)),
        ("bitset", solve_matrix_relations(graph, cnf, backend="bitset",
                                          normalize=False)),
        ("hellings", solve_hellings(graph, cnf, normalize=False)),
    ]:
        for nonterminal in grammar.nonterminals:
            assert relations.pairs(nonterminal) == reference.pairs(nonterminal), (
                f"{name} disagrees on {nonterminal}\n{grammar.to_text()}"
            )


@given(
    grammar=random_grammars(),
    seed=st.integers(0, 5000),
)
@settings(max_examples=40, deadline=None)
def test_gll_agrees_modulo_epsilon(grammar, seed):
    """GLL on the original grammar equals the matrix engine on the CNF
    grammar up to the reflexive pairs contributed by nullable symbols."""
    graph = random_graph(4, 10, _LABELS, seed=seed)
    cnf = to_cnf(grammar)
    nullable = nullable_nonterminals(grammar)
    matrix = solve_matrix_relations(graph, cnf, normalize=False)
    gll = solve_gll(graph, grammar)

    reflexive = {(v, v) for v in range(graph.node_count)}
    for nonterminal in grammar.nonterminals:
        expected = set(matrix.pairs(nonterminal))
        if nonterminal in nullable:
            expected |= reflexive
        assert set(gll.pairs(nonterminal)) == expected, (
            f"{nonterminal}\n{grammar.to_text()}"
        )
