"""Property test: random grammars × random graphs, all CNF-based solvers.

Complements ``test_cross_implementation`` (fixed grammars) by also
randomizing the *grammar*, including ε-rules, unit rules and long
bodies — the full CNF pipeline runs inside the loop.  Normalization
records the nullable set (``CFG.nullable_diagonal``), so every solver —
including GLL, which consumes the original grammar and answers
ε-queries with reflexive pairs — must now agree *exactly*.

Every case is generated from a ``random.Random`` seeded with a fixed
constant at *call* time and the suite is parametrized over an explicit
seed list, so a run is fully reproducible from the test id — no
hypothesis shrinking, no database, no per-run example sampling.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.gll import solve_gll
from repro.baselines.hellings import solve_hellings
from repro.core.matrix_cfpq import solve_matrix_relations
from repro.core.naive_closure import solve_naive
from repro.grammar.analysis import nullable_nonterminals
from repro.grammar.cfg import CFG
from repro.grammar.cnf import to_cnf
from repro.grammar.production import Production
from repro.grammar.symbols import Nonterminal, Terminal
from repro.graph.generators import random_graph

_LABELS = ["a", "b"]
_NONTERMINALS = ["S", "A", "B"]
#: Fixed RNG seed constant; each case derives its stream from it.
_SEED_BASE = 0x5EED
SEEDS = tuple(range(40))


def make_random_grammar(rng: random.Random) -> CFG:
    """A small random grammar (possibly with ε-rules, unit rules and
    bodies up to length 3), drawn from *rng*."""
    productions = []
    for _ in range(rng.randint(1, 6)):
        head = Nonterminal(rng.choice(_NONTERMINALS))
        body = []
        for _ in range(rng.randint(0, 3)):
            if rng.random() < 0.5:
                body.append(Terminal(rng.choice(_LABELS)))
            else:
                body.append(Nonterminal(rng.choice(_NONTERMINALS)))
        productions.append(Production(head, tuple(body)))
    return CFG(productions)


@pytest.mark.parametrize("seed", SEEDS)
def test_cnf_solvers_agree_on_random_grammars(seed):
    rng = random.Random(_SEED_BASE ^ seed)
    grammar = make_random_grammar(rng)
    graph = random_graph(rng.randint(2, 6), rng.randint(1, 15), _LABELS,
                         seed=rng.randint(0, 5000))
    cnf = to_cnf(grammar)

    reference = solve_naive(graph, cnf, normalize=False).relations
    for name, relations in [
        ("sparse", solve_matrix_relations(graph, cnf, backend="sparse",
                                          normalize=False)),
        ("bitset", solve_matrix_relations(graph, cnf, backend="bitset",
                                          normalize=False)),
        ("hellings", solve_hellings(graph, cnf, normalize=False)),
        ("gll", solve_gll(graph, grammar)),
    ]:
        for nonterminal in grammar.nonterminals:
            assert relations.pairs(nonterminal) == reference.pairs(nonterminal), (
                f"{name} disagrees on {nonterminal}\n{grammar.to_text()}"
            )


@pytest.mark.parametrize("seed", SEEDS[:25])
def test_gll_agrees_exactly(seed):
    """GLL on the original grammar equals the matrix engine on the CNF
    grammar *exactly*: since normalization records the nullable set
    (``CFG.nullable_diagonal``) the matrix engine seeds the reflexive
    pairs GLL derives from ε-rules, so no modulo-ε restriction is
    needed any more."""
    rng = random.Random(~_SEED_BASE ^ seed)
    grammar = make_random_grammar(rng)
    graph = random_graph(4, 10, _LABELS, seed=rng.randint(0, 5000))
    cnf = to_cnf(grammar)
    assert cnf.nullable_diagonal == nullable_nonterminals(grammar)
    matrix = solve_matrix_relations(graph, cnf, normalize=False)
    gll = solve_gll(graph, grammar)

    for nonterminal in grammar.nonterminals:
        assert set(gll.pairs(nonterminal)) == set(matrix.pairs(nonterminal)), (
            f"{nonterminal}\n{grammar.to_text()}"
        )
