"""Tests for the boolean-decomposed matrix engine."""

import pytest

from repro.core.matrix_cfpq import (
    initial_boolean_matrices,
    solve_matrix,
    solve_matrix_relations,
)
from repro.errors import NotInNormalFormError
from repro.grammar.parser import parse_grammar
from repro.grammar.symbols import Nonterminal
from repro.graph.generators import two_cycles, word_chain
from repro.graph.labeled_graph import LabeledGraph
from repro.matrices.base import get_backend


class TestInitialization:
    def test_one_matrix_per_nonterminal(self, ab_cnf_grammar, backend):
        graph = word_chain(["a", "b"])
        matrices = initial_boolean_matrices(graph, ab_cnf_grammar, backend)
        assert set(matrices) == ab_cnf_grammar.nonterminals

    def test_terminal_rules_seed_entries(self, ab_cnf_grammar, backend):
        graph = word_chain(["a", "b"])
        matrices = initial_boolean_matrices(graph, ab_cnf_grammar, backend)
        assert matrices[Nonterminal("A")].to_pair_set() == {(0, 1)}
        assert matrices[Nonterminal("B")].to_pair_set() == {(1, 2)}
        assert matrices[Nonterminal("S")].nnz() == 0

    def test_multi_label_edges_merge(self, backend):
        grammar = parse_grammar("A -> x\nA -> y", terminals=["x", "y"])
        graph = LabeledGraph.from_edges([(0, "x", 1), (0, "y", 1)])
        matrices = initial_boolean_matrices(graph, grammar, backend)
        assert matrices[Nonterminal("A")].to_pair_set() == {(0, 1)}


class TestSolveMatrix:
    def test_anbn_on_chain(self, anbn_grammar, backend_name):
        result = solve_matrix(word_chain(["a", "a", "b", "b"]), anbn_grammar,
                              backend=backend_name)
        assert result.relations.pairs("S") == {(0, 4), (1, 3)}

    def test_dyck_on_two_cycles(self, dyck_grammar, backend_name):
        """The classic worst case: R_S is all pairs when cycle lengths
        are coprime... here with lengths 2/3 the relation is known."""
        result = solve_matrix(two_cycles(2, 3), dyck_grammar,
                              backend=backend_name)
        pairs = result.relations.pairs("S")
        assert (0, 0) in pairs       # a^6 b^6 style loops exist
        assert len(pairs) > 0

    def test_empty_relation_for_unmatched_labels(self, anbn_grammar, backend_name):
        graph = LabeledGraph.from_edges([(0, "z", 1)])
        result = solve_matrix(graph, anbn_grammar, backend=backend_name)
        assert result.relations.pairs("S") == frozenset()

    def test_requires_cnf_without_normalize(self, anbn_grammar):
        with pytest.raises(NotInNormalFormError):
            solve_matrix(word_chain(["a", "b"]), anbn_grammar,
                         normalize=False)

    def test_stats_populated(self, ab_cnf_grammar, backend_name):
        result = solve_matrix(word_chain(["a", "b"]), ab_cnf_grammar,
                              backend=backend_name, normalize=False)
        stats = result.stats
        assert stats.backend == backend_name
        assert stats.node_count == 3
        assert stats.iterations >= 1
        assert stats.multiplications >= stats.iterations
        assert stats.total_entries == sum(stats.nnz_per_nonterminal.values())
        assert stats.nnz_per_nonterminal["S"] == 1

    def test_termination_bound(self, dyck_grammar, backend_name):
        """Theorem 3: entries never exceed |V|²·|N|."""
        graph = two_cycles(3, 4)
        result = solve_matrix(graph, dyck_grammar, backend=backend_name)
        bound = (graph.node_count ** 2) * result.stats.nonterminal_count
        assert result.stats.total_entries <= bound

    def test_backends_identical_results(self, dyck_grammar):
        graph = two_cycles(3, 2)
        reference = None
        for name in ["pyset", "dense", "sparse"]:
            relations = solve_matrix(graph, dyck_grammar, backend=name).relations
            if reference is None:
                reference = relations
            else:
                assert relations.same_as(reference)

    def test_relations_shortcut(self, anbn_grammar):
        relations = solve_matrix_relations(word_chain(["a", "b"]), anbn_grammar)
        assert relations.pairs("S") == {(0, 2)}

    def test_empty_graph(self, anbn_grammar, backend_name):
        result = solve_matrix(LabeledGraph(), anbn_grammar, backend=backend_name)
        assert result.relations.pairs("S") == frozenset()

    def test_self_loop_pumping(self, backend_name):
        """a-self-loop + b-self-loop on the same node: S relates the
        node to itself (a^n b^n realizable for every n)."""
        grammar = parse_grammar("S -> a S b | a b", terminals=["a", "b"])
        graph = LabeledGraph.from_edges([(0, "a", 0), (0, "b", 0)])
        result = solve_matrix(graph, grammar, backend=backend_name)
        assert result.relations.pairs("S") == {(0, 0)}
