"""Tests for incremental CFPQ under edge insertion and deletion.

Core invariant: after any interleaved insert/delete sequence the
incremental state (relations *and* single-path lengths) equals a
from-scratch solve on the final graph — checked across closure
strategies × matrix backends.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incremental import IncrementalCFPQ, IncrementalSinglePathCFPQ
from repro.core.matrix_cfpq import solve_matrix_relations
from repro.core.single_path import build_single_path_index
from repro.grammar.parser import parse_grammar
from repro.graph.generators import two_cycles, word_chain
from repro.graph.labeled_graph import LabeledGraph


class TestBasics:
    def test_initial_solve_matches_batch(self, dyck_grammar):
        graph = two_cycles(2, 3)
        incremental = IncrementalCFPQ(graph, dyck_grammar)
        batch = solve_matrix_relations(graph, dyck_grammar)
        assert incremental.relations().same_as(batch)

    def test_insertion_extends_relation(self, anbn_grammar):
        graph = word_chain(["a", "a", "b"])
        incremental = IncrementalCFPQ(graph, anbn_grammar)
        assert incremental.pairs("S") == {(1, 3)}
        new_facts = incremental.add_edge(3, "b", 4)
        assert new_facts > 0
        assert incremental.pairs("S") == {(1, 3), (0, 4)}

    def test_duplicate_edge_is_noop(self, anbn_grammar):
        graph = word_chain(["a", "b"])
        incremental = IncrementalCFPQ(graph, anbn_grammar)
        assert incremental.add_edge(0, "a", 1) == 0
        assert incremental.pairs("S") == {(0, 2)}

    def test_unlabeled_for_grammar_edge_adds_no_facts(self, anbn_grammar):
        graph = word_chain(["a", "b"])
        incremental = IncrementalCFPQ(graph, anbn_grammar)
        assert incremental.add_edge(0, "zzz", 2) == 0

    def test_new_nodes_via_insertion(self, anbn_grammar):
        incremental = IncrementalCFPQ(LabeledGraph(), anbn_grammar)
        incremental.add_edge("x", "a", "y")
        incremental.add_edge("y", "b", "z")
        assert incremental.relations().node_pairs("S") == {("x", "z")}

    def test_stats(self, anbn_grammar):
        incremental = IncrementalCFPQ(word_chain(["a", "b"]), anbn_grammar)
        incremental.add_edge(2, "a", 3)
        stats = incremental.stats
        assert stats["edge_insertions"] == 1
        assert stats["edge_removals"] == 0
        assert stats["total_facts"] >= 3
        assert stats["support_entries"] == 0  # insertion-only: lazy


class TestCountContract:
    """Regression: both solvers return the number of *new facts*,
    including the seeded base facts (the base solver used to exclude
    them — 1 vs 2 for the same insertion on ``S -> x | S S``)."""

    GRAMMAR = "S -> x | S S"

    def _solvers(self):
        grammar = parse_grammar(self.GRAMMAR, terminals=["x"])
        graph = LabeledGraph.from_edges([], nodes=[0, 1, 2])
        return (
            IncrementalCFPQ(LabeledGraph.from_edges([], nodes=[0, 1, 2]),
                            grammar),
            IncrementalSinglePathCFPQ(graph, grammar),
        )

    def test_same_insertion_same_count(self):
        base, single = self._solvers()
        for edge in [(0, "x", 1), (1, "x", 2), (2, "x", 0), (0, "x", 1)]:
            assert base.add_edge(*edge) == single.add_edge(*edge), edge

    def test_count_includes_seeded_base_fact(self):
        base, _single = self._solvers()
        # First x-edge seeds exactly one S fact and derives nothing.
        assert base.add_edge(0, "x", 1) == 1

    def test_count_equals_fact_growth(self, dyck_grammar):
        incremental = IncrementalCFPQ(two_cycles(2, 3), dyck_grammar)
        for edge in [(0, "a", 3), (3, "b", 0), (1, "a", 1)]:
            before = incremental.stats["total_facts"]
            returned = incremental.add_edge(*edge)
            assert returned == incremental.stats["total_facts"] - before


class TestInsertionOrder:
    def test_facts_cascade_through_existing_structure(self, dyck_grammar):
        """Inserting the bridge edge last must still derive everything
        reachable through long compositions."""
        # a a [missing b] b : inserting the missing b completes two pairs
        graph = LabeledGraph.from_edges([
            (0, "a", 1), (1, "a", 2), (3, "b", 4),
        ])
        incremental = IncrementalCFPQ(graph, dyck_grammar)
        assert incremental.pairs("S") == frozenset()
        incremental.add_edge(2, "b", 3)
        assert incremental.pairs("S") == {(1, 3), (0, 4)}

    def test_edge_by_edge_equals_batch(self, dyck_grammar):
        target = two_cycles(2, 3)
        incremental = IncrementalCFPQ(LabeledGraph(), dyck_grammar)
        for node in target.nodes:
            incremental.graph.add_node(node)
        for source, label, destination in target.edges():
            incremental.add_edge(source, label, destination)
        batch = solve_matrix_relations(target, dyck_grammar)
        assert incremental.pairs("S") == batch.pairs("S")


class TestBatchInsert:
    """The matrix-granular add_edges path."""

    @pytest.mark.parametrize("strategy", ["naive", "delta", "blocked",
                                          "autotune"])
    def test_batch_equals_scratch_across_strategies(self, dyck_grammar,
                                                    strategy):
        incremental = IncrementalCFPQ(two_cycles(2, 3), dyck_grammar,
                                      strategy=strategy, tile_size=2)
        batch = [(0, "a", 3), (3, "b", 4), (4, "a", 0), (1, "b", 1),
                 (2, "a", 2)]
        incremental.add_edges(batch)
        scratch = solve_matrix_relations(incremental.graph, dyck_grammar)
        assert incremental.relations().same_as(scratch), strategy

    def test_batch_equals_per_tuple(self, dyck_grammar, backend_name):
        edges = [(0, "a", 1), (1, "b", 2), (2, "a", 3), (3, "b", 0),
                 (0, "a", 4), (4, "b", 0)]
        batched = IncrementalCFPQ(two_cycles(2, 3), dyck_grammar,
                                  backend=backend_name)
        tupled = IncrementalCFPQ(two_cycles(2, 3), dyck_grammar)
        count_batch = batched.add_edges(edges)
        count_tuple = sum(tupled.add_edge(*edge) for edge in edges)
        assert count_batch == count_tuple
        assert batched.relations().same_as(tupled.relations())

    def test_batch_with_new_nodes_resizes(self, dyck_grammar):
        incremental = IncrementalCFPQ(word_chain(["a", "b"]), dyck_grammar)
        incremental.add_edges([
            ("p", "a", "q"), ("q", "b", "r"), (2, "a", "p"), ("r", "b", 0),
        ])
        scratch = solve_matrix_relations(incremental.graph, dyck_grammar)
        assert incremental.relations().same_as(scratch)

    def test_batch_duplicate_and_foreign_labels(self, anbn_grammar):
        incremental = IncrementalCFPQ(word_chain(["a", "b"]), anbn_grammar)
        assert incremental.add_edges([(0, "a", 1), (0, "zzz", 1)]) == 0

    def test_empty_batch(self, anbn_grammar):
        incremental = IncrementalCFPQ(word_chain(["a", "b"]), anbn_grammar)
        assert incremental.add_edges([]) == 0

    def test_single_path_batch_improves_lengths(self):
        grammar = parse_grammar("S -> a | a S", terminals=["a"])
        graph = word_chain(["a", "a", "a"])
        incremental = IncrementalSinglePathCFPQ(graph, grammar)
        assert incremental.length_of("S", 0, 3) == 3
        incremental.add_edges([(0, "a", 3), (3, "a", 1)])
        index = build_single_path_index(incremental.graph, grammar)
        assert incremental.length_of("S", 0, 3) == 1
        for (i, j), entries in index.cells.items():
            for nonterminal, length in entries.items():
                assert incremental.length_of(
                    nonterminal, incremental.graph.node_at(i),
                    incremental.graph.node_at(j)) == length


class TestDeletion:
    def test_remove_edge_reverts_insertion(self, anbn_grammar):
        incremental = IncrementalCFPQ(word_chain(["a", "b"]), anbn_grammar)
        assert incremental.pairs("S") == {(0, 2)}
        removed = incremental.remove_edge(0, "a", 1)
        assert removed == 2  # the CNF a-proxy fact at (0, 1) and S(0, 2)
        assert incremental.pairs("S") == frozenset()
        assert not incremental.graph.has_edge(0, "a", 1)

    def test_alternative_derivation_survives(self, dyck_grammar):
        # Two a-edges into node 1; removing one keeps (x, 2) alive
        # through the other.
        graph = LabeledGraph.from_edges([
            (0, "a", 1), (3, "a", 1), (1, "b", 2),
        ], nodes=[0, 1, 2, 3])
        incremental = IncrementalCFPQ(graph, dyck_grammar)
        assert incremental.pairs("S") == {(0, 2), (3, 2)}
        removed = incremental.remove_edge(0, "a", 1)
        assert removed == 2  # the a-proxy fact at (0, 1) and S(0, 2)
        assert incremental.pairs("S") == {(3, 2)}

    def test_parallel_label_keeps_base_fact(self):
        grammar = parse_grammar("S -> x | y", terminals=["x", "y"])
        graph = LabeledGraph.from_edges([(0, "x", 1), (0, "y", 1)])
        incremental = IncrementalCFPQ(graph, grammar)
        assert incremental.remove_edge(0, "x", 1) == 0
        assert incremental.pairs("S") == {(0, 1)}

    def test_cyclic_self_support_is_deleted(self):
        """The case plain support counting gets wrong: S(0,0) supports
        itself through S -> S S, so its count never reaches zero — the
        count-blind over-delete plus re-derive must still remove it."""
        grammar = parse_grammar("S -> x | S S", terminals=["x"])
        incremental = IncrementalCFPQ(
            LabeledGraph.from_edges([(0, "x", 0)]), grammar)
        assert incremental.pairs("S") == {(0, 0)}
        assert incremental.remove_edge(0, "x", 0) == 1
        assert incremental.pairs("S") == frozenset()

    def test_remove_missing_edge_is_noop(self, anbn_grammar):
        incremental = IncrementalCFPQ(word_chain(["a", "b"]), anbn_grammar)
        assert incremental.remove_edge(0, "b", 1) == 0
        assert incremental.remove_edge("nope", "a", "nada") == 0
        assert incremental.pairs("S") == {(0, 2)}

    def test_stats_track_removals(self, anbn_grammar):
        incremental = IncrementalCFPQ(word_chain(["a", "b"]), anbn_grammar)
        incremental.remove_edge(0, "a", 1)
        stats = incremental.stats
        assert stats["edge_removals"] == 1
        assert stats["facts_removed"] >= 1
        assert stats["support_entries"] >= 0

    def test_inserted_edge_supports_pre_existing_fact(self):
        """Regression: inserting an edge whose head fact already exists
        must register the edge as a support — otherwise the next
        deletion over-deletes a still-derivable fact."""
        grammar = parse_grammar("S -> a | b", terminals=["a", "b"])
        incremental = IncrementalCFPQ(
            LabeledGraph.from_edges([(0, "a", 1)]), grammar)
        incremental.remove_edge(9, "a", 9)   # no-op; activates supports
        incremental.add_edges([(0, "b", 1)])  # S(0,1) already exists
        assert incremental.remove_edges([(0, "a", 1)]) == 0
        assert incremental.pairs("S") == {(0, 1)}
        scratch = solve_matrix_relations(incremental.graph, grammar)
        assert incremental.relations().same_as(scratch)

    def test_per_tuple_inserts_maintain_supports(self):
        """Same scenario through add_edge: with supports active the
        per-tuple path must keep the index exact (it no longer routes
        through the batch engine)."""
        grammar = parse_grammar("S -> a | b | S S", terminals=["a", "b"])
        incremental = IncrementalCFPQ(
            LabeledGraph.from_edges([(0, "a", 1), (1, "a", 2)]), grammar)
        incremental.remove_edge(9, "a", 9)   # activates supports
        incremental.add_edge(0, "b", 1)      # base fact pre-exists
        incremental.add_edge(2, "b", 0)      # new facts via S S
        assert incremental.remove_edges([(0, "a", 1), (1, "a", 2)]) > 0
        scratch = solve_matrix_relations(incremental.graph, grammar)
        assert incremental.relations().same_as(scratch)
        # S(0,1) must have survived through the b-edge.
        assert (0, 1) in incremental.pairs("S")

    def test_single_path_per_tuple_supports_after_deletion(self):
        grammar = parse_grammar("S -> a | b | S S", terminals=["a", "b"])
        incremental = IncrementalSinglePathCFPQ(
            LabeledGraph.from_edges([(0, "a", 1), (1, "a", 2)]), grammar)
        incremental.remove_edge(9, "a", 9)   # activates supports
        incremental.add_edge(0, "b", 1)
        incremental.add_edge(2, "a", 0)
        incremental.remove_edge(0, "a", 1)
        index = build_single_path_index(incremental.graph, grammar)
        assert index.cells == _cells_of(incremental)

    def test_insertions_after_deletion_maintain_supports(self, dyck_grammar):
        incremental = IncrementalCFPQ(two_cycles(2, 3), dyck_grammar)
        incremental.remove_edge(0, "a", 1)       # activates supports
        incremental.add_edge(0, "a", 1)          # routed through batch
        incremental.add_edges([(0, "a", 3), (3, "b", 0)])
        incremental.remove_edges([(0, "a", 3), (2, "b", 3)])
        scratch = solve_matrix_relations(incremental.graph, dyck_grammar)
        assert incremental.relations().same_as(scratch)

    def test_single_path_lengths_grow_after_deletion(self):
        """Deleting the short witness must *lengthen* the recorded
        length of a still-derivable fact."""
        grammar = parse_grammar("S -> a | a S", terminals=["a"])
        graph = LabeledGraph.from_edges([
            (0, "a", 3), (0, "a", 1), (1, "a", 2), (2, "a", 3),
        ])
        incremental = IncrementalSinglePathCFPQ(graph, grammar)
        assert incremental.length_of("S", 0, 3) == 1
        # only the a-proxy fact at (0, 3) dies; S(0, 3) survives longer
        assert incremental.remove_edge(0, "a", 3) == 1
        assert incremental.length_of("S", 0, 3) == 3
        index = build_single_path_index(incremental.graph, grammar)
        assert index.cells == _cells_of(incremental)


def _cells_of(incremental: IncrementalSinglePathCFPQ) -> dict:
    """The solver's lengths in SinglePathIndex.cells shape."""
    cells: dict = {}
    for (nonterminal, i, j), length in incremental._lengths.items():
        cells.setdefault((i, j), {})[nonterminal] = length
    return cells


class TestNullableDiagonal:
    GRAMMAR = "S -> a S b | eps"

    def _grammar(self):
        return parse_grammar(self.GRAMMAR, terminals=["a", "b"])

    def test_initial_solve_has_diagonal(self):
        incremental = IncrementalCFPQ(word_chain(["a", "b"]), self._grammar())
        assert incremental.pairs("S") == {(0, 0), (1, 1), (2, 2), (0, 2)}

    def test_new_node_gets_diagonal_per_tuple(self):
        incremental = IncrementalCFPQ(word_chain(["a", "b"]), self._grammar())
        count = incremental.add_edge(2, "a", "fresh")
        fresh = incremental.graph.node_id("fresh")
        assert (fresh, fresh) in incremental.pairs("S")
        assert count >= 1  # at least the diagonal fact

    def test_new_node_gets_diagonal_in_batch(self):
        incremental = IncrementalCFPQ(word_chain(["a", "b"]), self._grammar())
        incremental.add_edges([("p", "a", "q"), ("q", "b", "r")])
        for node in ("p", "q", "r"):
            node_id = incremental.graph.node_id(node)
            assert (node_id, node_id) in incremental.pairs("S")
        scratch = solve_matrix_relations(incremental.graph, self._grammar())
        assert incremental.relations().same_as(scratch)

    def test_single_path_diagonal_length_zero(self):
        incremental = IncrementalSinglePathCFPQ(word_chain(["a", "b"]),
                                                self._grammar())
        assert incremental.length_of("S", 1, 1) == 0
        incremental.add_edge(2, "a", "fresh")
        assert incremental.length_of("S", "fresh", "fresh") == 0

    def test_diagonal_survives_deletion(self):
        incremental = IncrementalCFPQ(word_chain(["a", "b"]), self._grammar())
        incremental.remove_edge(0, "a", 1)
        assert incremental.pairs("S") == {(0, 0), (1, 1), (2, 2)}

    @pytest.mark.parametrize("seed", range(6))
    def test_growing_node_set_property(self, seed):
        """Insertion sequences that keep introducing new nodes must
        resize cleanly and pick up the nullable diagonals (property
        test, per-tuple and batch paths compared to scratch)."""
        grammar = parse_grammar("S -> a S b | S S | eps",
                                terminals=["a", "b"])
        rng = random.Random(0xD1A6 ^ seed)
        per_tuple = IncrementalCFPQ(LabeledGraph(), grammar)
        batched = IncrementalCFPQ(LabeledGraph(), grammar,
                                  strategy="delta")
        next_node = 0
        for step in range(8):
            edges = []
            for _ in range(rng.randint(1, 3)):
                if rng.random() < 0.6 or next_node < 2:
                    source, next_node = next_node, next_node + 1
                else:
                    source = rng.randrange(next_node)
                target = (next_node if rng.random() < 0.5
                          else rng.randrange(next_node))
                next_node = max(next_node, target + 1 if isinstance(target, int)
                                else next_node)
                edges.append((source, rng.choice(["a", "b"]), target))
            for edge in edges:
                per_tuple.add_edge(*edge)
            batched.add_edges(edges)
            scratch = solve_matrix_relations(per_tuple.graph, grammar)
            assert per_tuple.relations().same_as(scratch), (seed, step)
            assert batched.relations().same_as(scratch), (seed, step)


# ----------------------------------------------------------------------
# Randomized interleavings: strategies × backends vs from-scratch
# ----------------------------------------------------------------------

# `a` is both a base rule and part of composites, so the same fact can
# hold edge *and* split supports at once — the hard case for DRed.
_INTERLEAVE_GRAMMAR = "S -> a S b | a b | S S | a"


def _random_sequence(rng: random.Random, nodes: int, steps: int):
    """A mixed insert/delete command stream over a small node universe."""
    commands = []
    for _ in range(steps):
        edge = (rng.randrange(nodes), rng.choice(["a", "b"]),
                rng.randrange(nodes))
        commands.append((rng.random() < 0.35, edge))  # True = delete
    return commands


@pytest.mark.parametrize("strategy", ["naive", "delta", "blocked",
                                      "autotune"])
@pytest.mark.parametrize("seed", range(4))
def test_interleaved_updates_equal_scratch_across_strategies(strategy, seed):
    grammar = parse_grammar(_INTERLEAVE_GRAMMAR, terminals=["a", "b"])
    rng = random.Random(0xDE1E7E ^ seed)
    nodes = list(range(5))
    graph = LabeledGraph.from_edges(
        [(rng.randrange(5), rng.choice(["a", "b"]), rng.randrange(5))
         for _ in range(6)], nodes=nodes)
    incremental = IncrementalCFPQ(graph, grammar, strategy=strategy,
                                  tile_size=2)
    for delete, edge in _random_sequence(rng, 5, 14):
        if delete:
            incremental.remove_edge(*edge)
        else:
            incremental.add_edge(*edge)
    scratch = solve_matrix_relations(incremental.graph, grammar)
    assert incremental.relations().same_as(scratch), (strategy, seed)


@pytest.mark.parametrize("seed", range(3))
def test_interleaved_updates_equal_scratch_across_backends(backend_name,
                                                           seed):
    grammar = parse_grammar(_INTERLEAVE_GRAMMAR, terminals=["a", "b"])
    rng = random.Random(0xBACC ^ seed)
    incremental = IncrementalCFPQ(
        LabeledGraph.from_edges([], nodes=list(range(5))), grammar,
        backend=backend_name)
    batch: list = []
    for delete, edge in _random_sequence(rng, 5, 12):
        if delete:
            incremental.remove_edges(batch and [batch.pop()] or [edge])
        else:
            batch.append(edge)
            if len(batch) >= 3:
                incremental.add_edges(batch)
                batch.clear()
    incremental.add_edges(batch)
    scratch = solve_matrix_relations(incremental.graph, grammar)
    assert incremental.relations().same_as(scratch), (backend_name, seed)


@pytest.mark.parametrize("strategy", ["naive", "delta", "blocked"])
@pytest.mark.parametrize("seed", range(3))
def test_interleaved_single_path_equals_scratch(strategy, seed):
    """relations() and length_of must both match a from-scratch
    SinglePathIndex after every interleaved batch."""
    grammar = parse_grammar(_INTERLEAVE_GRAMMAR, terminals=["a", "b"])
    rng = random.Random(0x51D3 ^ seed)
    incremental = IncrementalSinglePathCFPQ(
        LabeledGraph.from_edges(
            [(rng.randrange(4), rng.choice(["a", "b"]), rng.randrange(4))
             for _ in range(5)], nodes=list(range(4))),
        grammar, strategy=strategy, tile_size=2)
    for step, (delete, edge) in enumerate(_random_sequence(rng, 4, 10)):
        if delete:
            incremental.remove_edge(*edge)
        else:
            incremental.add_edge(*edge)
        index = build_single_path_index(incremental.graph, grammar)
        assert _cells_of(incremental) == index.cells, (strategy, seed, step)


@given(
    seed=st.integers(0, 1000),
    initial_edges=st.integers(0, 10),
    inserted_edges=st.integers(1, 10),
)
@settings(max_examples=40, deadline=None)
def test_incremental_equals_scratch_property(seed, initial_edges,
                                             inserted_edges):
    grammar = parse_grammar("S -> a S b | a b | S S", terminals=["a", "b"])
    rng = random.Random(seed)
    nodes = list(range(6))

    def random_edge():
        return (rng.choice(nodes), rng.choice(["a", "b"]), rng.choice(nodes))

    graph = LabeledGraph.from_edges([random_edge() for _ in range(initial_edges)],
                                    nodes=nodes)
    incremental = IncrementalCFPQ(graph, grammar)
    for _ in range(inserted_edges):
        incremental.add_edge(*random_edge())

    batch = solve_matrix_relations(incremental.graph, grammar)
    assert incremental.relations().same_as(batch), (
        f"seed={seed} initial={initial_edges} inserted={inserted_edges}"
    )


class TestSupportStoreDifferential:
    """The matrix-granular counting support index (default) against the
    tuple-set oracle: after any interleaved insert/delete sequence the
    two stores must export **byte-identical** state — same facts, same
    support entries per fact, same lengths."""

    def _pair(self, cls, strategy="delta", **options):
        grammar = parse_grammar(_INTERLEAVE_GRAMMAR, terminals=["a", "b"])
        graph_edges = [(0, "a", 1), (1, "b", 2), (2, "a", 3)]
        nodes = list(range(5))
        counting = cls(LabeledGraph.from_edges(graph_edges, nodes=nodes),
                       grammar, strategy=strategy,
                       support_mode="counting", **options)
        tuples = cls(LabeledGraph.from_edges(graph_edges, nodes=nodes),
                     grammar, strategy=strategy,
                     support_mode="tuples", **options)
        assert isinstance(counting._support_store.__class__.__name__, str)
        assert counting.support_mode == "counting"
        assert tuples.support_mode == "tuples"
        return counting, tuples

    @pytest.mark.parametrize("strategy", ["naive", "delta", "blocked"])
    @pytest.mark.parametrize("seed", range(4))
    def test_interleaved_exports_identical(self, strategy, seed):
        counting, tuples = self._pair(IncrementalCFPQ, strategy=strategy,
                                      tile_size=2)
        rng = random.Random(0x5EED ^ seed)
        for step, (delete, edge) in enumerate(_random_sequence(rng, 5, 16)):
            if delete:
                assert counting.remove_edge(*edge) == \
                    tuples.remove_edge(*edge), (strategy, seed, step)
            else:
                assert counting.add_edge(*edge) == \
                    tuples.add_edge(*edge), (strategy, seed, step)
            assert counting.export_state() == tuples.export_state(), \
                (strategy, seed, step)
            assert counting.stats["support_entries"] == \
                tuples.stats["support_entries"], (strategy, seed, step)

    @pytest.mark.parametrize("seed", range(3))
    def test_batched_interleavings_identical(self, seed):
        counting, tuples = self._pair(IncrementalCFPQ)
        rng = random.Random(0xFACE ^ seed)
        pending: list = []
        for delete, edge in _random_sequence(rng, 5, 14):
            if delete:
                batch = pending and [pending.pop()] or [edge]
                assert counting.remove_edges(batch) == \
                    tuples.remove_edges(batch)
            else:
                pending.append(edge)
                if len(pending) >= 3:
                    assert counting.add_edges(pending) == \
                        tuples.add_edges(pending)
                    pending.clear()
            assert counting.export_state() == tuples.export_state()
        counting.add_edges(pending)
        tuples.add_edges(pending)
        assert counting.export_state() == tuples.export_state()

    @pytest.mark.parametrize("seed", range(3))
    def test_single_path_exports_identical(self, seed):
        counting, tuples = self._pair(IncrementalSinglePathCFPQ)
        rng = random.Random(0x1E57 ^ seed)
        for step, (delete, edge) in enumerate(_random_sequence(rng, 4, 12)):
            if delete:
                counting.remove_edge(*edge)
                tuples.remove_edge(*edge)
            else:
                counting.add_edge(*edge)
                tuples.add_edge(*edge)
            assert counting.export_state() == tuples.export_state(), \
                (seed, step)

    def test_first_deletion_recount_matches_oracle(self):
        """The one-shot counting-closure build on first deletion must
        equal the oracle's per-fact recount exactly."""
        counting, tuples = self._pair(IncrementalCFPQ)
        counting.add_edges([(3, "b", 4), (4, "a", 0), (0, "a", 0)])
        tuples.add_edges([(3, "b", 4), (4, "a", 0), (0, "a", 0)])
        counting.remove_edge(9, "a", 9)  # no-op: activates the index
        tuples.remove_edge(9, "a", 9)
        assert counting._supports == tuples._supports
        assert counting.stats["support_entries"] > 0

    def test_warm_state_roundtrips_between_stores(self):
        """A snapshot exported by one store warm-starts the other."""
        counting, tuples = self._pair(IncrementalCFPQ)
        counting.remove_edge(1, "b", 2)
        tuples.remove_edge(1, "b", 2)
        grammar = parse_grammar(_INTERLEAVE_GRAMMAR, terminals=["a", "b"])
        graph_copy = LabeledGraph.from_edges(
            list(counting.graph.edges()), nodes=list(counting.graph.nodes))
        adopted = IncrementalCFPQ(graph_copy, grammar,
                                  warm_state=tuples.export_state(),
                                  support_mode="counting")
        assert adopted.export_state() == counting.export_state()
        adopted.remove_edge(0, "a", 1)
        counting.remove_edge(0, "a", 1)
        assert adopted.export_state() == counting.export_state()

    def test_env_default_mode(self, monkeypatch):
        grammar = parse_grammar("S -> a", terminals=["a"])
        monkeypatch.setenv("REPRO_SUPPORT_MODE", "tuples")
        solver = IncrementalCFPQ(word_chain(["a"]), grammar)
        assert solver.support_mode == "tuples"
        monkeypatch.delenv("REPRO_SUPPORT_MODE")
        solver = IncrementalCFPQ(word_chain(["a"]), grammar)
        assert solver.support_mode == "counting"
        with pytest.raises(ValueError):
            IncrementalCFPQ(word_chain(["a"]), grammar,
                            support_mode="nope")


@given(
    seed=st.integers(0, 1000),
    initial_edges=st.integers(1, 10),
    operations=st.integers(1, 12),
)
@settings(max_examples=40, deadline=None)
def test_interleaved_property(seed, initial_edges, operations):
    grammar = parse_grammar(_INTERLEAVE_GRAMMAR, terminals=["a", "b"])
    rng = random.Random(~seed)
    nodes = list(range(5))

    def random_edge():
        return (rng.choice(nodes), rng.choice(["a", "b"]), rng.choice(nodes))

    incremental = IncrementalCFPQ(
        LabeledGraph.from_edges([random_edge() for _ in range(initial_edges)],
                                nodes=nodes), grammar)
    for _ in range(operations):
        edge = random_edge()
        if rng.random() < 0.4:
            incremental.remove_edge(*edge)
        else:
            incremental.add_edge(*edge)

    batch = solve_matrix_relations(incremental.graph, grammar)
    assert incremental.relations().same_as(batch), (
        f"seed={seed} initial={initial_edges} operations={operations}"
    )
