"""Tests for incremental CFPQ under edge insertion.

Core invariant: after any insertion sequence the incremental state
equals a from-scratch solve on the final graph.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incremental import IncrementalCFPQ
from repro.core.matrix_cfpq import solve_matrix_relations
from repro.graph.generators import two_cycles, word_chain
from repro.graph.labeled_graph import LabeledGraph


class TestBasics:
    def test_initial_solve_matches_batch(self, dyck_grammar):
        graph = two_cycles(2, 3)
        incremental = IncrementalCFPQ(graph, dyck_grammar)
        batch = solve_matrix_relations(graph, dyck_grammar)
        assert incremental.relations().same_as(batch)

    def test_insertion_extends_relation(self, anbn_grammar):
        graph = word_chain(["a", "a", "b"])
        incremental = IncrementalCFPQ(graph, anbn_grammar)
        assert incremental.pairs("S") == {(1, 3)}
        new_facts = incremental.add_edge(3, "b", 4)
        assert new_facts > 0
        assert incremental.pairs("S") == {(1, 3), (0, 4)}

    def test_duplicate_edge_is_noop(self, anbn_grammar):
        graph = word_chain(["a", "b"])
        incremental = IncrementalCFPQ(graph, anbn_grammar)
        assert incremental.add_edge(0, "a", 1) == 0
        assert incremental.pairs("S") == {(0, 2)}

    def test_unlabeled_for_grammar_edge_adds_no_facts(self, anbn_grammar):
        graph = word_chain(["a", "b"])
        incremental = IncrementalCFPQ(graph, anbn_grammar)
        assert incremental.add_edge(0, "zzz", 2) == 0

    def test_new_nodes_via_insertion(self, anbn_grammar):
        incremental = IncrementalCFPQ(LabeledGraph(), anbn_grammar)
        incremental.add_edge("x", "a", "y")
        incremental.add_edge("y", "b", "z")
        assert incremental.relations().node_pairs("S") == {("x", "z")}

    def test_deletion_not_supported(self, anbn_grammar):
        incremental = IncrementalCFPQ(word_chain(["a", "b"]), anbn_grammar)
        with pytest.raises(NotImplementedError):
            incremental.remove_edge(0, "a", 1)

    def test_stats(self, anbn_grammar):
        incremental = IncrementalCFPQ(word_chain(["a", "b"]), anbn_grammar)
        incremental.add_edge(2, "a", 3)
        stats = incremental.stats
        assert stats["edge_insertions"] == 1
        assert stats["total_facts"] >= 3


class TestInsertionOrder:
    def test_facts_cascade_through_existing_structure(self, dyck_grammar):
        """Inserting the bridge edge last must still derive everything
        reachable through long compositions."""
        # a a [missing b] b : inserting the missing b completes two pairs
        graph = LabeledGraph.from_edges([
            (0, "a", 1), (1, "a", 2), (3, "b", 4),
        ])
        incremental = IncrementalCFPQ(graph, dyck_grammar)
        assert incremental.pairs("S") == frozenset()
        incremental.add_edge(2, "b", 3)
        assert incremental.pairs("S") == {(1, 3), (0, 4)}

    def test_edge_by_edge_equals_batch(self, dyck_grammar):
        target = two_cycles(2, 3)
        incremental = IncrementalCFPQ(LabeledGraph(), dyck_grammar)
        for node in target.nodes:
            incremental.graph.add_node(node)
        for source, label, destination in target.edges():
            incremental.add_edge(source, label, destination)
        batch = solve_matrix_relations(target, dyck_grammar)
        assert incremental.pairs("S") == batch.pairs("S")


@given(
    seed=st.integers(0, 1000),
    initial_edges=st.integers(0, 10),
    inserted_edges=st.integers(1, 10),
)
@settings(max_examples=40, deadline=None)
def test_incremental_equals_scratch_property(seed, initial_edges,
                                             inserted_edges):
    import random

    from repro.grammar.parser import parse_grammar

    grammar = parse_grammar("S -> a S b | a b | S S", terminals=["a", "b"])
    rng = random.Random(seed)
    nodes = list(range(6))

    def random_edge():
        return (rng.choice(nodes), rng.choice(["a", "b"]), rng.choice(nodes))

    graph = LabeledGraph.from_edges([random_edge() for _ in range(initial_edges)],
                                    nodes=nodes)
    incremental = IncrementalCFPQ(graph, grammar)
    for _ in range(inserted_edges):
        incremental.add_edge(*random_edge())

    batch = solve_matrix_relations(incremental.graph, grammar)
    assert incremental.relations().same_as(batch), (
        f"seed={seed} initial={initial_edges} inserted={inserted_edges}"
    )
