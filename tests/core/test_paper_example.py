"""Reproduction of the paper's §4.3 worked example, figure by figure.

Grammar: Figure 4 (the normalized G'), graph: Figure 5, initial matrix:
Figure 6, first iteration: Figure 7, remaining states: Figure 8,
relations: Figure 9.  These are exact-value tests — any deviation from
the publication fails them.
"""

import pytest

from repro.core.naive_closure import solve_naive, solve_naive_with_history
from repro.core.matrix_cfpq import solve_matrix
from repro.grammar.builders import (
    same_generation_query1,
    same_generation_query1_cnf,
)
from repro.grammar.symbols import Nonterminal
from repro.graph.generators import paper_example_graph


def cell(matrix, i, j):
    return {nt.name for nt in matrix[(i, j)]}


@pytest.fixture(scope="module")
def history():
    return solve_naive_with_history(
        paper_example_graph(), same_generation_query1_cnf(), normalize=False
    )


class TestFigure6InitialMatrix:
    def test_t0(self, history):
        t0 = history[0]
        assert cell(t0, 0, 0) == {"S1"}
        assert cell(t0, 0, 1) == {"S3"}
        assert cell(t0, 0, 2) == set()
        assert cell(t0, 1, 0) == set()
        assert cell(t0, 1, 1) == set()
        assert cell(t0, 1, 2) == {"S3"}
        assert cell(t0, 2, 0) == {"S2"}
        assert cell(t0, 2, 1) == set()
        assert cell(t0, 2, 2) == {"S4"}


class TestFigure7FirstIteration:
    def test_t0_squared_introduces_s_at_1_2(self, history):
        t0 = history[0]
        square = t0.multiply(t0)
        assert cell(square, 1, 2) == {"S"}
        # and nothing else
        assert square.nonterminal_count() == 1

    def test_t1(self, history):
        t1 = history[1]
        assert cell(t1, 0, 0) == {"S1"}
        assert cell(t1, 0, 1) == {"S3"}
        assert cell(t1, 1, 2) == {"S3", "S"}
        assert cell(t1, 2, 0) == {"S2"}
        assert cell(t1, 2, 2) == {"S4"}
        assert t1.nonterminal_count() == 6


class TestFigure8RemainingIterations:
    def test_t2(self, history):
        t2 = history[2]
        assert cell(t2, 0, 0) == {"S1"}
        assert cell(t2, 1, 0) == {"S5"}
        assert cell(t2, 1, 2) == {"S3", "S", "S6"}

    def test_t3(self, history):
        t3 = history[3]
        assert cell(t3, 0, 2) == {"S"}
        assert cell(t3, 1, 0) == {"S5"}

    def test_t4(self, history):
        t4 = history[4]
        assert cell(t4, 0, 0) == {"S1", "S5"}
        assert cell(t4, 0, 2) == {"S", "S6"}

    def test_t5_is_fixpoint_value(self, history):
        t5 = history[5]
        assert cell(t5, 0, 0) == {"S1", "S5", "S"}
        assert cell(t5, 0, 1) == {"S3"}
        assert cell(t5, 0, 2) == {"S", "S6"}
        assert cell(t5, 1, 0) == {"S5"}
        assert cell(t5, 1, 1) == set()
        assert cell(t5, 1, 2) == {"S3", "S", "S6"}
        assert cell(t5, 2, 0) == {"S2"}
        assert cell(t5, 2, 1) == set()
        assert cell(t5, 2, 2) == {"S4"}

    def test_fixpoint_at_k6(self, history):
        """The paper: k = 6 since T6 = T5."""
        assert len(history) == 7  # T0 .. T6
        assert history[6] == history[5]
        assert history[5] != history[4]


class TestFigure9Relations:
    EXPECTED = {
        "S": {(0, 0), (0, 2), (1, 2)},
        "S1": {(0, 0)},
        "S2": {(2, 0)},
        "S3": {(0, 1), (1, 2)},
        "S4": {(2, 2)},
        "S5": {(0, 0), (1, 0)},
        "S6": {(0, 2), (1, 2)},
    }

    def test_all_relations_exact(self):
        result = solve_naive(paper_example_graph(),
                             same_generation_query1_cnf(), normalize=False)
        for name, expected in self.EXPECTED.items():
            assert result.relations.pairs(name) == expected, name

    def test_boolean_engine_agrees(self, backend_name):
        result = solve_matrix(paper_example_graph(),
                              same_generation_query1_cnf(),
                              backend=backend_name, normalize=False)
        for name, expected in self.EXPECTED.items():
            assert result.relations.pairs(name) == expected, name

    def test_original_grammar_normalized_gives_same_rs(self):
        """G (Figure 3) auto-normalized must produce the same R_S as the
        paper's hand-normalized G' — the L(G_S) = L(G'_S) claim."""
        via_original = solve_naive(paper_example_graph(),
                                   same_generation_query1())
        assert via_original.relations.pairs("S") == self.EXPECTED["S"]
