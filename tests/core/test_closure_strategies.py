"""Differential tests for the strategy-pluggable closure engine.

Every (strategy × backend) cell must produce identical relations
``R_A`` for every non-terminal and identical final ``nnz`` counts —
``naive`` is the oracle, ``delta`` and ``blocked`` must be
observationally indistinguishable from it.  On top of that, ``delta``
must do strictly fewer boolean multiplications than ``naive`` on any
workload that iterates more than once.
"""

import pytest

from repro.core.closure import (
    ClosureResult,
    available_strategies,
    fixpoint_history,
    get_strategy,
    register_strategy,
    run_closure,
)
from repro.core.engine import CFPQEngine
from repro.core.matrix_cfpq import solve_matrix
from repro.errors import UnknownStrategyError
from repro.graph.generators import (
    random_graph,
    two_cycles,
    word_chain,
)
from repro.graph.labeled_graph import LabeledGraph
from repro.grammar.parser import parse_grammar
from repro.matrices.base import available_backends

STRATEGIES = sorted(available_strategies())


def _grammars():
    return {
        "anbn": parse_grammar("S -> a S b | a b", terminals=["a", "b"]),
        "dyck": parse_grammar("S -> a S b | a b | S S", terminals=["a", "b"]),
        "left-recursive": parse_grammar("S -> S a | a", terminals=["a"]),
        "two-nonterminals": parse_grammar(
            "S -> A S | A\nA -> a | b", terminals=["a", "b"]
        ),
    }


def _graphs():
    return {
        "aabb-chain": word_chain(["a", "a", "b", "b"]),
        "two-cycles-2-3": two_cycles(2, 3),
        "two-cycles-3-4": two_cycles(3, 4),
        "self-loops": LabeledGraph.from_edges([(0, "a", 0), (0, "b", 0)]),
        "random": random_graph(7, 20, ["a", "b"], seed=11),
        "empty": LabeledGraph(),
    }


class TestRegistry:
    def test_bundled_strategies_registered(self):
        assert {"naive", "delta", "blocked"} <= set(available_strategies())

    def test_unknown_strategy(self):
        with pytest.raises(UnknownStrategyError) as excinfo:
            get_strategy("magic")
        assert "delta" in str(excinfo.value)

    def test_unknown_strategy_at_solve_time(self, dyck_grammar):
        with pytest.raises(UnknownStrategyError):
            solve_matrix(two_cycles(2, 3), dyck_grammar, strategy="magic")

    def test_register_custom_strategy(self):
        def fake(matrices, pair_rules, backend, **_options):
            return ClosureResult(matrices=matrices, iterations=0,
                                 multiplications=0)

        register_strategy("fake-noop", fake)
        try:
            assert "fake-noop" in available_strategies()
            result = run_closure({}, [], "pyset", strategy="fake-noop")
            assert result.iterations == 0
        finally:
            from repro.core import closure

            del closure._STRATEGIES["fake-noop"]


@pytest.mark.parametrize("backend_name", available_backends())
class TestStrategyBackendMatrix:
    """The full strategy × backend differential grid."""

    def test_identical_relations_and_nnz(self, backend_name):
        for grammar_name, grammar in _grammars().items():
            for graph_name, graph in _graphs().items():
                reference = None
                for strategy in STRATEGIES:
                    result = solve_matrix(graph, grammar,
                                          backend=backend_name,
                                          strategy=strategy)
                    if reference is None:
                        reference = result
                        continue
                    context = (strategy, backend_name, grammar_name,
                               graph_name)
                    assert result.relations.same_as(reference.relations), \
                        context
                    assert (result.stats.nnz_per_nonterminal
                            == reference.stats.nnz_per_nonterminal), context

    def test_blocked_small_tiles_agree(self, backend_name, dyck_grammar):
        graph = two_cycles(3, 4)
        oracle = solve_matrix(graph, dyck_grammar, backend=backend_name,
                              strategy="naive")
        tiled = solve_matrix(graph, dyck_grammar, backend=backend_name,
                             strategy="blocked", tile_size=2)
        assert tiled.relations.same_as(oracle.relations)


class TestDeltaEfficiency:
    def test_delta_strictly_fewer_multiplications_on_scaling_workload(self):
        """The bench_scaling.py workload (repeated funding ontology ×
        Q1): only rules whose bodies actually changed re-fire, so delta
        must issue strictly fewer products than full re-multiplication."""
        from repro.datasets.registry import build_graph
        from repro.grammar.builders import same_generation_query1
        from repro.grammar.cnf import to_cnf
        from repro.graph.generators import repeat_graph

        grammar = to_cnf(same_generation_query1())
        for copies in (1, 2):
            graph = repeat_graph(build_graph("funding"), copies)
            naive = solve_matrix(graph, grammar, normalize=False,
                                 strategy="naive")
            delta = solve_matrix(graph, grammar, normalize=False,
                                 strategy="delta")
            assert naive.stats.iterations > 1
            assert (delta.stats.multiplications
                    < naive.stats.multiplications), copies
            assert delta.relations.same_as(naive.relations)

    def test_delta_growth_accounting(self, dyck_grammar):
        """Per-round frontier sizes must sum to exactly the entries the
        closure added on top of the initialization."""
        graph = two_cycles(2, 3)
        initial = solve_matrix(graph, dyck_grammar, strategy="delta")
        from repro.core.matrix_cfpq import initial_boolean_matrices
        from repro.grammar.cnf import ensure_cnf
        from repro.matrices.base import get_backend

        grammar = ensure_cnf(dyck_grammar)
        seeds = initial_boolean_matrices(graph, grammar, get_backend("sparse"))
        seeded_entries = sum(m.nnz() for m in seeds.values())
        assert (sum(initial.stats.delta_nnz_per_round)
                == initial.stats.total_entries - seeded_entries)

    def test_stats_carry_strategy(self, dyck_grammar):
        result = solve_matrix(two_cycles(2, 3), dyck_grammar,
                              strategy="delta")
        assert result.stats.strategy == "delta"
        assert result.stats.delta_nnz_per_round
        assert result.stats.delta_nnz_per_round[-1] == 0


class TestEngineThreading:
    def test_engine_accepts_strategy(self, dyck_grammar):
        graph = two_cycles(2, 3)
        for strategy in STRATEGIES:
            engine = CFPQEngine(graph, dyck_grammar, strategy=strategy)
            assert engine.solve().stats.strategy == strategy

    def test_evaluate_forwards_strategy(self, anbn_grammar):
        engine = CFPQEngine(word_chain(["a", "b"]), anbn_grammar)
        pairs = engine.evaluate("S", "relational", strategy="naive")
        assert pairs == {(0, 2)}
        assert (engine.backend, "naive") in engine._matrix_results


class TestFixpointDriver:
    def test_history_shape(self):
        history = fixpoint_history(0, lambda x: min(x + 1, 3),
                                   lambda a, b: a == b)
        assert history == [0, 1, 2, 3, 3]

    def test_iteration_cap(self):
        history = fixpoint_history(0, lambda x: x + 1, lambda a, b: a == b,
                                   max_iterations=4)
        assert history == [0, 1, 2, 3, 4]
