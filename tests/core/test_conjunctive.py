"""Tests for the conjunctive-grammar extension (§7 future work)."""

import pytest

from repro.core.closure import available_strategies
from repro.core.conjunctive import (
    ConjunctiveGrammar,
    ConjunctiveRule,
    TerminalRule,
    anbncn_grammar,
    solve_conjunctive_approx,
    solve_conjunctive_reference,
)
from repro.grammar.symbols import Nonterminal, Terminal
from repro.graph.generators import word_chain
from repro.graph.labeled_graph import LabeledGraph

S = Nonterminal("S")


class TestGrammarConstruction:
    def test_parse_conjunctive_rule(self):
        grammar = ConjunctiveGrammar.parse(
            "S -> A B & C D\nA -> a\nB -> b\nC -> c\nD -> d",
            terminals=["a", "b", "c", "d"],
        )
        assert len(grammar.conjunctive_rules) == 1
        assert len(grammar.conjunctive_rules[0].conjuncts) == 2
        assert len(grammar.terminal_rules) == 4

    def test_rule_requires_conjunct(self):
        with pytest.raises(ValueError):
            ConjunctiveRule(S, ())

    def test_parse_rejects_long_conjunct(self):
        with pytest.raises(ValueError):
            ConjunctiveGrammar.parse("S -> A B C", terminals=[])

    def test_str_rendering(self):
        rule = ConjunctiveRule(S, ((Nonterminal("A"), Nonterminal("B")),
                                   (Nonterminal("C"), Nonterminal("D"))))
        assert str(rule) == "S -> A B & C D"
        assert str(TerminalRule(S, Terminal("x"))) == "S -> x"


class TestSingleConjunctReducesToCFG:
    """With one conjunct per rule the solver is the plain CFPQ engine."""

    def test_matches_matrix_engine(self, backend_name):
        conjunctive = ConjunctiveGrammar.parse(
            "S -> A B\nA -> a\nB -> b", terminals=["a", "b"]
        )
        graph = word_chain(["a", "b"])
        result = solve_conjunctive_approx(graph, conjunctive,
                                          backend=backend_name)
        assert result.pairs(S) == {(0, 2)}


class TestAnBnCn:
    """{aⁿbⁿcⁿ} on chain graphs: linear input ⇒ the approximation is
    exact (Okhotin's matrix parsing of conjunctive grammars)."""

    @pytest.mark.parametrize("word,expected", [
        ("abc", True),
        ("aabbcc", True),
        ("aaabbbccc", True),
        ("aabbc", False),
        ("abbc", False),
        ("abcc", False),
        ("aabbbcc", False),
    ])
    def test_membership_via_chain(self, word, expected):
        grammar = anbncn_grammar()
        graph = word_chain(list(word))
        result = solve_conjunctive_approx(graph, grammar)
        assert (((0, len(word)) in result.pairs(S)) == expected), word

    def test_backends_agree(self):
        grammar = anbncn_grammar()
        graph = word_chain(list("aabbcc"))
        answers = {
            name: solve_conjunctive_approx(graph, grammar, backend=name).pairs(S)
            for name in ["dense", "sparse", "pyset"]
        }
        assert len(set(answers.values())) == 1


class TestEngineRouteMatchesReference:
    """The engine-routed solver reaches the exact fixpoint of the
    original direct loop — per closure strategy, per backend, on cyclic
    and acyclic inputs."""

    GRAPHS = {
        "chain": lambda: word_chain(list("aabbcc")),
        "cyclic": lambda: LabeledGraph.from_edges(
            [(0, "a", 0), (0, "b", 0), (0, "c", 0)]
        ),
        "branching": lambda: LabeledGraph.from_edges(
            [(0, "a", 1), (1, "a", 2), (2, "b", 3), (3, "b", 4),
             (4, "c", 5), (5, "c", 6), (0, "a", 4), (4, "b", 0),
             (1, "b", 3), (3, "c", 1)],
            nodes=list(range(7)),
        ),
    }

    @pytest.mark.parametrize("strategy", sorted(available_strategies()))
    @pytest.mark.parametrize("graph_name", sorted(GRAPHS))
    def test_matches_reference(self, strategy, graph_name, backend_name):
        grammar = anbncn_grammar()
        graph = self.GRAPHS[graph_name]()
        oracle = solve_conjunctive_reference(graph, grammar,
                                             backend=backend_name)
        routed = solve_conjunctive_approx(graph, grammar,
                                          backend=backend_name,
                                          strategy=strategy)
        for nt in grammar.nonterminals:
            assert routed.pairs(nt) == oracle.pairs(nt), (strategy, nt)

    def test_single_conjunct_grammar_matches(self, backend_name):
        grammar = ConjunctiveGrammar.parse(
            "S -> A B\nA -> a\nA -> A A\nB -> b", terminals=["a", "b"]
        )
        graph = LabeledGraph.from_edges(
            [(0, "a", 1), (1, "a", 0), (1, "b", 2), (0, "b", 2)]
        )
        oracle = solve_conjunctive_reference(graph, grammar,
                                             backend=backend_name)
        routed = solve_conjunctive_approx(graph, grammar,
                                          backend=backend_name)
        for nt in grammar.nonterminals:
            assert routed.pairs(nt) == oracle.pairs(nt)

    def test_aux_heads_do_not_leak(self):
        grammar = anbncn_grammar()
        result = solve_conjunctive_approx(word_chain(list("abc")), grammar)
        assert not any(nt.name.startswith("__conj")
                       for nt in result.nonterminals)


class TestUpperApproximation:
    def test_approximation_is_sound_on_cyclic_graph(self):
        """Every true pair (witnessed by an actual aⁿbⁿcⁿ path) must be
        present in the approximation — upper approximation soundness."""
        grammar = anbncn_grammar()
        # self-loops a, b, c on one node: every aⁿbⁿcⁿ path exists.
        graph = LabeledGraph.from_edges(
            [(0, "a", 0), (0, "b", 0), (0, "c", 0)]
        )
        result = solve_conjunctive_approx(graph, grammar)
        assert (0, 0) in result.pairs(S)
