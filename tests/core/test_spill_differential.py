"""Out-of-core differential tests: spilling must be invisible.

A closure run under a tiny memory budget — forcing tiles to shuttle
through the spill files constantly — must produce byte-identical
results to the unbounded in-memory run, across every strategy ×
backend × scheduler combination and under the Length/Witness
semirings.  These tests are the out-of-core analogue of
:mod:`tests.core.test_tile_scheduler`'s scheduler differentials.
"""

from __future__ import annotations

import pytest

from repro.core.matrix_cfpq import solve_matrix
from repro.core.semiring import (
    LENGTH_SEMIRING,
    WITNESS_SEMIRING,
    solve_annotated,
)
from repro.core.tiles import SCHEDULERS
from repro.matrices.base import available_backends

from test_semiring_differential import make_case

SEEDS = tuple(range(6))

#: One byte: every tile overflows it, so the working set lives on disk
#: and every operand read is a spill-file reload.
TINY_BUDGET = 1


@pytest.mark.parametrize("seed", SEEDS)
def test_tiny_budget_blocked_matches_oracle_all_backends(seed, tmp_path):
    graph, grammar = make_case(seed)
    oracle = solve_matrix(graph, grammar, normalize=False, strategy="naive")
    for backend in available_backends():
        result = solve_matrix(graph, grammar, backend=backend,
                              normalize=False, strategy="blocked",
                              tile_size=2, memory_budget=TINY_BUDGET,
                              spill_dir=str(tmp_path / backend))
        assert result.relations.same_as(oracle.relations), backend
        assert (result.stats.nnz_per_nonterminal
                == oracle.stats.nnz_per_nonterminal), backend


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize("seed", SEEDS[:3])
def test_tiny_budget_schedulers_byte_identical(seed, scheduler, tmp_path):
    """Spilling composes with every scheduler, including the process
    pool (spilled payloads ship from the file bytes)."""
    graph, grammar = make_case(seed)
    oracle = solve_matrix(graph, grammar, normalize=False, strategy="naive")
    result = solve_matrix(graph, grammar, backend="bitset",
                          normalize=False, strategy="blocked",
                          tile_size=2, scheduler=scheduler,
                          memory_budget=TINY_BUDGET,
                          spill_dir=str(tmp_path))
    assert result.relations.same_as(oracle.relations), scheduler
    assert (result.stats.nnz_per_nonterminal
            == oracle.stats.nnz_per_nonterminal), scheduler


@pytest.mark.parametrize("strategy", ("blocked", "autotune"))
@pytest.mark.parametrize("seed", SEEDS[:3])
def test_tiny_budget_strategies_match(seed, strategy, tmp_path):
    graph, grammar = make_case(seed)
    oracle = solve_matrix(graph, grammar, normalize=False, strategy="naive")
    result = solve_matrix(graph, grammar, backend="bitset",
                          normalize=False, strategy=strategy,
                          tile_size=2, memory_budget=TINY_BUDGET,
                          spill_dir=str(tmp_path))
    assert result.relations.same_as(oracle.relations), strategy
    if strategy == "autotune":
        assert result.stats.details["autotune"]["mode"] == "blocked-spill"


@pytest.mark.parametrize("semiring", (LENGTH_SEMIRING, WITNESS_SEMIRING),
                         ids=lambda s: s.name)
@pytest.mark.parametrize("seed", SEEDS[:3])
def test_tiny_budget_annotations_byte_identical(seed, semiring, tmp_path):
    """Length/Witness annotations survive the pickle spill path (the
    annotated backend has no raw-buffer format) exactly."""
    graph, grammar = make_case(seed)
    reference = solve_annotated(graph, grammar, semiring,
                                strategy="naive", normalize=False)
    spilled = solve_annotated(graph, grammar, semiring,
                              strategy="blocked", normalize=False,
                              tile_size=2, memory_budget=TINY_BUDGET,
                              spill_dir=str(tmp_path))
    assert spilled.cells() == reference.cells(), semiring.name


def test_tiny_budget_actually_spills(tmp_path):
    """Guard: the tiny budget really exercises the spill machinery
    (otherwise this whole module is vacuous)."""
    graph, grammar = make_case(0)
    result = solve_matrix(graph, grammar, backend="bitset",
                          normalize=False, strategy="blocked",
                          tile_size=2, memory_budget=TINY_BUDGET,
                          spill_dir=str(tmp_path))
    stats = result.stats.details["blocked"]
    assert stats.tiles_spilled > 0
    assert stats.tiles_reloaded > 0
    assert stats.spill_bytes > 0
    assert stats.budget_bytes == TINY_BUDGET


def test_spill_dir_cleaned_up_on_success(tmp_path):
    """The closure owns its store: tile files are removed when the run
    succeeds (the caller-provided directory itself survives)."""
    graph, grammar = make_case(0)
    solve_matrix(graph, grammar, backend="bitset", normalize=False,
                 strategy="blocked", tile_size=2,
                 memory_budget=TINY_BUDGET, spill_dir=str(tmp_path))
    assert not list(tmp_path.iterdir())
