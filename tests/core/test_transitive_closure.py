"""Tests for the Section 2 closures, including the Theorem 1 equivalence."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.transitive_closure import (
    boolean_closure_incremental,
    boolean_closure_naive,
    boolean_closure_warshall,
    closure_cf,
    closure_cf_history,
    closure_valiant,
)
from repro.grammar.parser import parse_grammar
from repro.grammar.symbols import Nonterminal
from repro.matrices.base import available_backends, get_backend
from repro.matrices.setmatrix import SetMatrix

GRAMMAR = parse_grammar(
    """
    S -> A B
    S -> A S1
    S1 -> S B
    A -> a
    B -> b
    """,
    terminals=["a", "b"],
)
NT = {name: Nonterminal(name) for name in ["S", "S1", "A", "B"]}


def chain_matrix(word: str) -> SetMatrix:
    """Initial matrix of a chain spelling *word* (Valiant's setting)."""
    cells = {}
    for position, char in enumerate(word):
        head = NT["A"] if char == "a" else NT["B"]
        cells[(position, position + 1)] = [head]
    return SetMatrix(len(word) + 1, GRAMMAR, cells)


class TestClosureCf:
    def test_recognizes_anbn_on_chain(self):
        closed = closure_cf(chain_matrix("aabb"))
        assert NT["S"] in closed[(0, 4)]
        assert NT["S"] in closed[(1, 3)]
        assert NT["S"] not in closed[(0, 3)]

    def test_fixpoint_stable(self):
        closed = closure_cf(chain_matrix("ab"))
        again = closed.union(closed.multiply(closed))
        assert again == closed

    def test_max_iterations_cutoff(self):
        partial = closure_cf(chain_matrix("a" * 8 + "b" * 8), max_iterations=1)
        full = closure_cf(chain_matrix("a" * 8 + "b" * 8))
        assert full.dominates(partial)
        assert partial != full

    def test_history_monotone(self):
        history = closure_cf_history(chain_matrix("aabb"))
        for earlier, later in zip(history, history[1:]):
            assert later.dominates(earlier)
        assert history[-1] == history[-2]


class TestTheorem1Equivalence:
    """a+ (Valiant) == a_cf (paper) — checked by computing Valiant's
    union up to the power where it saturates."""

    def test_on_chains(self):
        for word in ["ab", "aabb", "abab", "aabbab"]:
            matrix = chain_matrix(word)
            cf = closure_cf(matrix)
            # a(i)+ saturates at i = size (no longer derivations exist)
            valiant = closure_valiant(matrix, matrix.size + 1)
            assert cf == valiant, word

    def test_on_cyclic_matrix(self):
        # a-loop and b-loop arranged in a 2-cycle: S appears everywhere
        # a^n b^n paths exist.
        cells = {(0, 1): [NT["A"]], (1, 0): [NT["B"]]}
        matrix = SetMatrix(2, GRAMMAR, cells)
        cf = closure_cf(matrix)
        valiant = closure_valiant(matrix, 8)
        # On cyclic inputs a+ needs unboundedly many powers; up to the
        # saturation of this small example they must agree.
        assert cf == valiant

    def test_valiant_power_one_is_input(self):
        matrix = chain_matrix("ab")
        assert closure_valiant(matrix, 1) == matrix


class TestBooleanClosures:
    def test_all_strategies_agree(self, backend_name):
        backend = get_backend(backend_name)
        pairs = {(0, 1), (1, 2), (2, 3), (3, 1), (4, 4)}
        matrix = backend.from_pairs(6, pairs)
        naive = boolean_closure_naive(matrix).to_pair_set()
        incremental = boolean_closure_incremental(matrix).to_pair_set()
        warshall = boolean_closure_warshall(matrix).to_pair_set()
        assert naive == incremental == warshall

    def test_closure_of_chain(self, backend_name):
        backend = get_backend(backend_name)
        matrix = backend.from_pairs(4, [(0, 1), (1, 2), (2, 3)])
        closed = boolean_closure_naive(matrix).to_pair_set()
        assert closed == {(i, j) for i in range(4) for j in range(i + 1, 4)}

    def test_closure_of_cycle_is_complete(self, backend_name):
        backend = get_backend(backend_name)
        matrix = backend.from_pairs(3, [(0, 1), (1, 2), (2, 0)])
        closed = boolean_closure_naive(matrix).to_pair_set()
        assert closed == {(i, j) for i in range(3) for j in range(3)}


pair_sets = st.sets(
    st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=10
)


@given(pairs=pair_sets)
@settings(max_examples=80, deadline=None)
def test_boolean_closure_strategies_agree_property(pairs):
    backend = get_backend("pyset")
    matrix = backend.from_pairs(5, pairs)
    naive = boolean_closure_naive(matrix).to_pair_set()
    incremental = boolean_closure_incremental(matrix).to_pair_set()
    warshall = boolean_closure_warshall(matrix).to_pair_set()
    assert naive == incremental == warshall


@given(pairs=pair_sets)
@settings(max_examples=50, deadline=None)
def test_boolean_closure_idempotent(pairs):
    backend = get_backend("pyset")
    closed = boolean_closure_naive(backend.from_pairs(5, pairs))
    assert boolean_closure_naive(closed).same_pairs(closed)
