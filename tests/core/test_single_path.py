"""Tests for the single-path semantics (Section 5).

The two guarantees from Lemma 5.1 / Theorem 5:
1. every recorded (A, l_A) admits a path of exactly length l_A whose
   labeling derives from A;
2. projecting the annotation away yields the relational answer.
"""

import pytest

from repro.core.matrix_cfpq import solve_matrix_relations
from repro.core.single_path import (
    build_single_path_index,
    extract_path,
    iter_single_paths,
    path_is_valid,
    path_word,
)
from repro.errors import PathNotFoundError
from repro.grammar.cnf import to_cnf
from repro.grammar.recognizer import cyk_recognize
from repro.grammar.symbols import Nonterminal
from repro.graph.generators import random_graph, two_cycles, word_chain

S = Nonterminal("S")


class TestIndexConstruction:
    def test_initial_lengths_are_one(self, ab_cnf_grammar):
        index = build_single_path_index(word_chain(["a", "b"]), ab_cnf_grammar,
                                        normalize=False)
        assert index.length_of(Nonterminal("A"), 0, 1) == 1
        assert index.length_of(Nonterminal("B"), 1, 2) == 1

    def test_composed_length_sums(self, ab_cnf_grammar):
        index = build_single_path_index(word_chain(["a", "a", "b", "b"]),
                                        ab_cnf_grammar, normalize=False)
        assert index.length_of(S, 1, 3) == 2     # a b
        assert index.length_of(S, 0, 4) == 4     # a a b b

    def test_missing_pair_is_none(self, ab_cnf_grammar):
        index = build_single_path_index(word_chain(["a", "b"]), ab_cnf_grammar,
                                        normalize=False)
        assert index.length_of(S, 1, 0) is None

    def test_length_never_rewritten(self, dyck_grammar):
        """Once recorded, a length must stay (the paper's no-update rule);
        on a cyclic graph later iterations would find longer paths."""
        graph = two_cycles(2, 3)
        index = build_single_path_index(graph, dyck_grammar)
        first = {
            (pair, nt): length
            for pair, entries in index.cells.items()
            for nt, length in entries.items()
        }
        rebuilt = build_single_path_index(graph, dyck_grammar)
        second = {
            (pair, nt): length
            for pair, entries in rebuilt.cells.items()
            for nt, length in entries.items()
        }
        assert first == second

    def test_relations_projection_matches_relational_engine(self, dyck_grammar):
        graph = two_cycles(2, 3)
        index = build_single_path_index(graph, dyck_grammar)
        relational = solve_matrix_relations(graph, dyck_grammar)
        assert index.relations().same_as(relational)


class TestExtraction:
    def test_path_on_chain(self, anbn_grammar):
        graph = word_chain(["a", "a", "b", "b"])
        index = build_single_path_index(graph, anbn_grammar)
        path = extract_path(index, S, 0, 4)
        assert path_word(path) == ("a", "a", "b", "b")
        assert path_is_valid(index, path)

    def test_path_length_matches_annotation(self, dyck_grammar):
        graph = two_cycles(2, 3)
        index = build_single_path_index(graph, dyck_grammar)
        for (i, j), entries in index.cells.items():
            if S in entries:
                path = extract_path(index, S, graph.node_at(i), graph.node_at(j))
                assert len(path) == entries[S]

    def test_extracted_word_derives_from_nonterminal(self, dyck_grammar):
        graph = two_cycles(2, 3)
        cnf = to_cnf(dyck_grammar)
        index = build_single_path_index(graph, cnf, normalize=False)
        for i, j, path in iter_single_paths(index, S):
            word = list(path_word(path))
            assert cyk_recognize(cnf, S, word), (i, j, word)

    def test_paths_are_contiguous_graph_walks(self, dyck_grammar):
        graph = two_cycles(3, 4)
        index = build_single_path_index(graph, dyck_grammar)
        for _i, _j, path in iter_single_paths(index, S):
            assert path_is_valid(index, path)

    def test_missing_pair_raises(self, anbn_grammar):
        index = build_single_path_index(word_chain(["a", "b"]), anbn_grammar)
        with pytest.raises(PathNotFoundError):
            extract_path(index, S, 1, 0)

    def test_accepts_string_nonterminal(self, anbn_grammar):
        index = build_single_path_index(word_chain(["a", "b"]), anbn_grammar)
        assert path_word(extract_path(index, "S", 0, 2)) == ("a", "b")


class TestOnRandomGraphs:
    @pytest.mark.parametrize("seed", range(5))
    def test_every_witness_is_sound(self, dyck_grammar, seed):
        graph = random_graph(8, 20, ["a", "b"], seed=seed)
        cnf = to_cnf(dyck_grammar)
        index = build_single_path_index(graph, cnf, normalize=False)
        count = 0
        for i, j, path in iter_single_paths(index, S):
            assert path[0][0] == i and path[-1][2] == j
            assert path_is_valid(index, path)
            assert cyk_recognize(cnf, S, list(path_word(path)))
            count += 1
        relational = solve_matrix_relations(graph, cnf, normalize=False)
        assert count == len(relational.pairs(S))
