"""Tests for bounded all-path enumeration."""

import pytest

from repro.core.allpath import AllPathEnumerator, count_paths
from repro.core.matrix_cfpq import solve_matrix_relations
from repro.core.single_path import path_word
from repro.errors import UnknownSymbolError
from repro.grammar.cnf import to_cnf
from repro.grammar.recognizer import cyk_recognize
from repro.grammar.symbols import Nonterminal
from repro.graph.generators import two_cycles, word_chain

S = Nonterminal("S")


class TestOnChains:
    def test_unique_path(self, anbn_grammar):
        enumerator = AllPathEnumerator(word_chain(["a", "b"]), anbn_grammar)
        paths = enumerator.paths(S, 0, 2, max_length=5)
        assert len(paths) == 1
        assert path_word(next(iter(paths))) == ("a", "b")

    def test_budget_excludes_long_paths(self, anbn_grammar):
        graph = word_chain(["a", "a", "b", "b"])
        enumerator = AllPathEnumerator(graph, anbn_grammar)
        assert enumerator.paths(S, 0, 4, max_length=3) == frozenset()
        assert len(enumerator.paths(S, 0, 4, max_length=4)) == 1

    def test_no_paths_outside_relation(self, anbn_grammar):
        enumerator = AllPathEnumerator(word_chain(["a", "b"]), anbn_grammar)
        assert enumerator.paths(S, 1, 0, max_length=10) == frozenset()


class TestOnCycles:
    def test_multiple_witnesses_enumerated(self, dyck_grammar):
        """On two cycles the number of witnesses grows with the bound."""
        graph = two_cycles(1, 1)  # a-loop and b-loop on one node
        enumerator = AllPathEnumerator(graph, dyck_grammar)
        short = enumerator.paths(S, 0, 0, max_length=2)
        longer = enumerator.paths(S, 0, 0, max_length=6)
        assert len(short) == 1           # just "ab"
        assert len(longer) > len(short)  # ab, aabb, abab, ...

    def test_every_enumerated_path_is_sound(self, dyck_grammar):
        graph = two_cycles(2, 3)
        cnf = to_cnf(dyck_grammar)
        enumerator = AllPathEnumerator(graph, cnf, normalize=False)
        for i, j, path in enumerator.iter_paths(S, max_length=6):
            assert path[0][0] == i and path[-1][2] == j
            assert cyk_recognize(cnf, S, list(path_word(path)))

    def test_relation_converges_to_relational_answer(self, dyck_grammar):
        graph = two_cycles(2, 3)
        relational = solve_matrix_relations(graph, dyck_grammar).pairs(S)
        enumerator = AllPathEnumerator(graph, dyck_grammar)
        # With a generous bound the bounded relation covers R_S entirely.
        bounded = enumerator.relation_pairs(S, max_length=12)
        assert bounded == relational

    def test_bounded_relation_is_monotone_and_sound(self, dyck_grammar):
        graph = two_cycles(2, 3)
        relational = solve_matrix_relations(graph, dyck_grammar).pairs(S)
        enumerator = AllPathEnumerator(graph, dyck_grammar)
        previous: frozenset = frozenset()
        for bound in [2, 4, 6, 8]:
            current = enumerator.relation_pairs(S, max_length=bound)
            assert previous <= current
            assert current <= relational
            previous = current


class TestCycleRegression:
    """Regression for the pre-semiring enumerator's cycle handling.

    The old recursive enumerator seeded its memo with partial results
    and could return *incomplete* path sets when re-entered on a cycle;
    the engine-backed enumerator recurses on exact path lengths (which
    strictly decrease at every split), so cyclic graphs terminate by
    construction and the answer is complete.
    """

    def test_cyclic_enumeration_terminates_with_distinct_paths(
            self, dyck_grammar):
        graph = two_cycles(1, 1)  # an a-loop and a b-loop on one node
        cnf = to_cnf(dyck_grammar)
        enumerator = AllPathEnumerator(graph, cnf, normalize=False)
        listed = list(enumerator.iter_paths(S, max_length=8))
        # Terminated (we got here), every path distinct and sound.
        assert len(listed) == len(set(listed))
        for i, j, path in listed:
            assert path[0][0] == i and path[-1][2] == j
            assert len(path) <= 8
            assert cyk_recognize(cnf, S, list(path_word(path)))

    def test_cyclic_count_is_complete(self, dyck_grammar):
        """On the two-loop graph the Dyck words of length ≤ 2k are the
        balanced ab-words — Catalan-counted; the old memo guard
        undercounted re-entrant cells."""
        graph = two_cycles(1, 1)
        enumerator = AllPathEnumerator(graph, dyck_grammar)
        # Dyck words of length 2, 4, 6: 1, 2, 5 (Catalan numbers).
        assert len(enumerator.paths(S, 0, 0, max_length=2)) == 1
        assert len(enumerator.paths(S, 0, 0, max_length=4)) == 1 + 2
        assert len(enumerator.paths(S, 0, 0, max_length=6)) == 1 + 2 + 5

    def test_cycle_through_multiple_nodes(self, dyck_grammar):
        graph = two_cycles(2, 3)
        cnf = to_cnf(dyck_grammar)
        enumerator = AllPathEnumerator(graph, cnf, normalize=False)
        paths = enumerator.paths(S, 0, 0, max_length=14)
        assert paths, "S(0,0) has witnesses within the bound"
        assert all(len(p) <= 14 for p in paths)
        assert len({path_word(p) for p in paths}) == len(paths)


class TestCountPaths:
    def test_chain_has_exactly_one(self, anbn_grammar):
        assert count_paths(word_chain(["a", "b"]), anbn_grammar, S, 4) == 1

    def test_unknown_nonterminal_rejected(self, anbn_grammar):
        enumerator = AllPathEnumerator(word_chain(["a", "b"]), anbn_grammar)
        with pytest.raises(UnknownSymbolError):
            enumerator.paths(Nonterminal("Nope"), 0, 1, max_length=3)
