"""Property tests for path extraction and all-path enumeration.

The guarantees the paper states (Lemma 5.1 / Theorem 5 and the §7
forest reading), checked on seeded random grammars × graphs rather than
only the worked examples: every path any semantics returns must be

(a) a real, contiguous path in the graph,
(b) derivable from the queried non-terminal (CYK on its label word),
(c) of exactly the recorded length / within the requested bound,

plus the cross-semantics coherence properties that fall out of the
shared semiring engine: the single-path annotation *is* the minimal
witness length the all-path forest computes, and the bounded all-path
answer always contains the single-path witness.
"""

from __future__ import annotations

import pytest

from repro.core.path_index import AllPathIndex
from repro.core.single_path import (
    build_single_path_index,
    extract_path,
    path_is_valid,
    path_word,
)
from repro.grammar.recognizer import cyk_recognize
from repro.graph.generators import random_graph, two_cycles

from test_semiring_differential import STRATEGIES, make_case

SEEDS = tuple(range(8))


def _word_is_derivable(grammar, nonterminal, path) -> bool:
    """(b) for any path including the empty one: ε is witnessed by the
    recorded nullability of the original grammar (the CNF grammar
    itself cannot derive ε, so CYK cannot check it)."""
    if not path:
        return nonterminal in grammar.nullable_diagonal
    return cyk_recognize(grammar, nonterminal, list(path_word(path)))


def _paths_are_contiguous(graph, path) -> bool:
    previous = None
    for i, label, j in path:
        if previous is not None and i != previous:
            return False
        if not graph.has_edge(graph.node_at(i), label, graph.node_at(j)):
            return False
        previous = j
    return True


@pytest.mark.parametrize("seed", SEEDS)
def test_extracted_path_properties(seed):
    graph, grammar = make_case(seed)
    index = build_single_path_index(graph, grammar, normalize=False)
    for (i, j), entries in index.cells.items():
        for nonterminal, length in entries.items():
            path = extract_path(index, nonterminal, graph.node_at(i),
                                graph.node_at(j))
            if path:
                assert path[0][0] == i and path[-1][2] == j
            else:
                assert i == j  # empty path: nullable diagonal
            assert path_is_valid(index, path)                       # (a)
            assert _word_is_derivable(grammar, nonterminal, path)   # (b)
            assert len(path) == length                              # (c)


@pytest.mark.parametrize("seed", SEEDS)
def test_enumerated_path_properties(seed):
    graph, grammar = make_case(seed, max_nodes=4, max_edges=8)
    index = AllPathIndex.build(graph, grammar)
    bound = 5
    for nonterminal in grammar.nonterminals:
        for i, j in index.relations.pairs(nonterminal):
            enumerated = list(index.iter_paths(
                nonterminal, graph.node_at(i), graph.node_at(j), bound))
            assert len(enumerated) == len(set(enumerated))  # distinct
            for path in enumerated:
                if path:
                    assert path[0][0] == i and path[-1][2] == j
                else:
                    assert i == j  # empty path: nullable diagonal
                assert _paths_are_contiguous(graph, path)           # (a)
                assert _word_is_derivable(grammar, nonterminal, path)  # (b)
                assert len(path) <= bound                           # (c)


@pytest.mark.parametrize("seed", SEEDS)
def test_single_path_annotation_is_minimal_witness_length(seed):
    """The length semiring's ⊕ = min makes Section 5's annotation the
    forest's shortest witness — the two modules must agree exactly."""
    graph, grammar = make_case(seed)
    index = build_single_path_index(graph, grammar, normalize=False)
    forest = AllPathIndex.build(graph, grammar)
    for (i, j), entries in index.cells.items():
        for nonterminal, length in entries.items():
            assert forest.shortest_path_length(
                nonterminal, graph.node_at(i), graph.node_at(j)
            ) == length, (nonterminal, i, j)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_bounded_answer_contains_single_path_witness(seed, strategy):
    graph, grammar = make_case(seed, max_nodes=4, max_edges=8)
    index = build_single_path_index(graph, grammar, normalize=False,
                                    strategy=strategy)
    forest = AllPathIndex.build(graph, grammar, strategy=strategy)
    for (i, j), entries in index.cells.items():
        for nonterminal, length in entries.items():
            if length > 5:
                continue
            witness = extract_path(index, nonterminal, graph.node_at(i),
                                   graph.node_at(j))
            bounded = set(forest.iter_paths(
                nonterminal, graph.node_at(i), graph.node_at(j), length))
            assert witness in bounded


def test_enumeration_on_dense_cyclic_graph_terminates_and_is_sound():
    """A denser cyclic case than two_cycles: every bounded path is a
    distinct, valid, derivable walk."""
    graph = random_graph(4, 14, ["a", "b"], seed=11)
    graph.add_edge(0, "a", 0)  # guarantee a self-loop cycle
    _graph2, grammar = make_case(1)
    index = AllPathIndex.build(graph, grammar)
    for nonterminal in grammar.nonterminals:
        for i, j in index.relations.pairs(nonterminal):
            paths = list(index.iter_paths(nonterminal, graph.node_at(i),
                                          graph.node_at(j), 5))
            assert len(paths) == len(set(paths))
            for path in paths:
                assert _paths_are_contiguous(graph, path)
                assert _word_is_derivable(grammar, nonterminal, path)


def test_cyclic_graph_shortest_first_order(dyck_grammar):
    index = AllPathIndex.build(two_cycles(1, 1), dyck_grammar)
    lengths = [len(p) for p in index.iter_paths("S", 0, 0, max_length=8)]
    assert lengths[0] == 2
    assert lengths == sorted(lengths)
