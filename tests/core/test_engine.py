"""Tests for the high-level CFPQEngine facade."""

import pytest

from repro.core.engine import CFPQEngine, cfpq
from repro.core.single_path import path_word
from repro.errors import PathNotFoundError, SemanticsError, UnknownSymbolError
from repro.graph.generators import two_cycles, word_chain
from repro.graph.labeled_graph import LabeledGraph


class TestRelational:
    def test_returns_node_objects(self, anbn_grammar):
        graph = LabeledGraph.from_edges([
            ("x", "a", "y"), ("y", "b", "z"),
        ])
        engine = CFPQEngine(graph, anbn_grammar)
        assert engine.relational("S") == {("x", "z")}

    def test_count(self, anbn_grammar, aabb_chain):
        engine = CFPQEngine(aabb_chain, anbn_grammar)
        assert engine.count("S") == 2

    def test_unknown_start_symbol(self, anbn_grammar, aabb_chain):
        engine = CFPQEngine(aabb_chain, anbn_grammar)
        with pytest.raises(UnknownSymbolError):
            engine.relational("Nope")

    def test_backend_override_cached_separately(self, anbn_grammar, aabb_chain):
        engine = CFPQEngine(aabb_chain, anbn_grammar, backend="sparse")
        sparse = engine.relational("S")
        dense = engine.relational("S", backend="dense")
        assert sparse == dense
        assert set(engine._matrix_results) == {
            ("sparse", engine.strategy), ("dense", engine.strategy)
        }

    def test_strategy_override_cached_separately(self, anbn_grammar,
                                                 aabb_chain):
        engine = CFPQEngine(aabb_chain, anbn_grammar, strategy="delta")
        delta = engine.relational("S")
        naive = engine.relational("S", strategy="naive")
        assert delta == naive
        assert set(engine._matrix_results) == {
            (engine.backend, "delta"), (engine.backend, "naive")
        }

    def test_solve_result_cached(self, anbn_grammar, aabb_chain):
        engine = CFPQEngine(aabb_chain, anbn_grammar)
        assert engine.solve() is engine.solve()

    def test_cfpq_one_shot(self, anbn_grammar, aabb_chain):
        assert cfpq(aabb_chain, anbn_grammar, "S") == {(0, 4), (1, 3)}


class TestSinglePath:
    def test_witness_path(self, anbn_grammar, aabb_chain):
        engine = CFPQEngine(aabb_chain, anbn_grammar)
        path = engine.single_path("S", 0, 4)
        assert path_word(path) == ("a", "a", "b", "b")

    def test_path_length(self, anbn_grammar, aabb_chain):
        engine = CFPQEngine(aabb_chain, anbn_grammar)
        assert engine.path_length("S", 0, 4) == 4
        assert engine.path_length("S", 4, 0) is None

    def test_missing_pair_raises(self, anbn_grammar, aabb_chain):
        engine = CFPQEngine(aabb_chain, anbn_grammar)
        with pytest.raises(PathNotFoundError):
            engine.single_path("S", 4, 0)

    def test_index_cached(self, anbn_grammar, aabb_chain):
        engine = CFPQEngine(aabb_chain, anbn_grammar)
        engine.single_path("S", 0, 4)
        assert engine.single_path_index() is engine.single_path_index()


class TestAllPaths:
    def test_bounded_enumeration(self, dyck_grammar):
        engine = CFPQEngine(two_cycles(1, 1), dyck_grammar)
        paths = engine.all_paths("S", 0, 0, max_length=4)
        words = {path_word(p) for p in paths}
        assert ("a", "b") in words
        assert ("a", "a", "b", "b") in words
        assert ("a", "b", "a", "b") in words


class TestEvaluateDispatch:
    def test_relational(self, anbn_grammar, aabb_chain):
        engine = CFPQEngine(aabb_chain, anbn_grammar)
        assert engine.evaluate("S") == {(0, 4), (1, 3)}

    def test_single_path_semantics(self, anbn_grammar, aabb_chain):
        engine = CFPQEngine(aabb_chain, anbn_grammar)
        answer = engine.evaluate("S", semantics="single-path")
        assert set(answer) == {(0, 4), (1, 3)}
        assert path_word(answer[(1, 3)]) == ("a", "b")

    def test_all_path_semantics(self, anbn_grammar, aabb_chain):
        engine = CFPQEngine(aabb_chain, anbn_grammar)
        answer = engine.evaluate("S", semantics="all-path", max_length=6)
        assert set(answer) == {(0, 4), (1, 3)}

    def test_all_path_requires_bound(self, anbn_grammar, aabb_chain):
        engine = CFPQEngine(aabb_chain, anbn_grammar)
        with pytest.raises(SemanticsError):
            engine.evaluate("S", semantics="all-path")

    def test_unknown_semantics(self, anbn_grammar, aabb_chain):
        engine = CFPQEngine(aabb_chain, anbn_grammar)
        with pytest.raises(SemanticsError):
            engine.evaluate("S", semantics="exotic")


class TestSemanticsConsistency:
    """The three semantics must agree on which pairs are related."""

    def test_pairs_agree_across_semantics(self, dyck_grammar):
        graph = two_cycles(2, 3)
        engine = CFPQEngine(graph, dyck_grammar)
        relational = engine.relational("S")
        single = set(engine.evaluate("S", semantics="single-path"))
        assert single == relational


class TestIncrementalEntryPoint:
    def test_engine_incremental_shares_configuration(self, dyck_grammar):
        engine = CFPQEngine(two_cycles(2, 3), dyck_grammar,
                            backend="pyset", strategy="delta")
        solver = engine.incremental()
        assert solver.graph is engine.graph
        assert solver.strategy == "delta"
        before = engine.relational("S")
        assert solver.pairs("S") == {
            (engine.graph.node_id(a), engine.graph.node_id(b))
            for a, b in before
        }
        solver.add_edges([(0, "a", 9), (9, "b", 0)])
        solver.remove_edge(0, "a", 9)
        from repro.core.matrix_cfpq import solve_matrix_relations

        assert solver.relations().same_as(
            solve_matrix_relations(engine.graph, engine.grammar,
                                   normalize=False))

    def test_engine_incremental_single_path(self, dyck_grammar):
        engine = CFPQEngine(two_cycles(2, 3), dyck_grammar)
        solver = engine.incremental(single_path=True)
        assert solver.length_of("S", 0, 0) == engine.path_length("S", 0, 0)
