"""Tests for the derivation index (parse-forest over closed matrices)."""

import pytest

from repro.core.allpath import AllPathEnumerator
from repro.core.path_index import PathIndex
from repro.core.single_path import path_word
from repro.grammar.cnf import to_cnf
from repro.grammar.parser import parse_grammar
from repro.grammar.recognizer import cyk_recognize
from repro.grammar.symbols import Nonterminal
from repro.graph.generators import random_graph, two_cycles, word_chain

S = Nonterminal("S")


@pytest.fixture
def chain_index(anbn_grammar):
    return PathIndex.build(word_chain(["a", "a", "b", "b"]), anbn_grammar)


class TestForestStructure:
    def test_terminal_edges(self, chain_index):
        grammar = chain_index.grammar
        # find the CNF proxy for 'a'
        a_heads = grammar.heads_for_terminal(
            next(t for t in grammar.terminals if t.label == "a")
        )
        head = next(iter(a_heads))
        assert chain_index.terminal_edges(head, 0, 1) == ["a"]
        assert chain_index.terminal_edges(head, 2, 3) == []  # b edge

    def test_splits_reconstruct_derivation(self, chain_index):
        splits = chain_index.splits(S, 0, 4)
        assert splits, "S(0,4) must decompose"
        for left, right, mid in splits:
            assert chain_index.node_exists(left, 0, mid)
            assert chain_index.node_exists(right, mid, 4)

    def test_node_exists_matches_relation(self, chain_index):
        assert chain_index.node_exists(S, 0, 4)
        assert chain_index.node_exists(S, 1, 3)
        assert not chain_index.node_exists(S, 0, 3)


class TestEnumeration:
    def test_chain_single_path(self, chain_index):
        paths = list(chain_index.iter_paths(S, 0, 4, max_length=8))
        assert len(paths) == 1
        assert path_word(paths[0]) == ("a", "a", "b", "b")

    def test_lengths_non_decreasing(self, dyck_grammar):
        index = PathIndex.build(two_cycles(1, 1), dyck_grammar)
        lengths = [len(p) for p in index.iter_paths(S, 0, 0, max_length=8)]
        assert lengths == sorted(lengths)
        assert lengths[0] == 2

    def test_matches_allpath_enumerator(self, dyck_grammar):
        """The forest enumerator and the recursive enumerator must
        produce exactly the same path sets."""
        graph = two_cycles(2, 3)
        cnf = to_cnf(dyck_grammar)
        index = PathIndex.build(graph, cnf)
        recursive = AllPathEnumerator(graph, cnf, normalize=False)
        for i in range(graph.node_count):
            for j in range(graph.node_count):
                from_index = set(index.iter_paths(
                    S, graph.node_at(i), graph.node_at(j), max_length=6))
                from_recursive = recursive.paths(S, graph.node_at(i),
                                                 graph.node_at(j), 6)
                assert from_index == from_recursive, (i, j)

    def test_all_paths_are_valid_words(self, dyck_grammar):
        graph = random_graph(6, 15, ["a", "b"], seed=4)
        cnf = to_cnf(dyck_grammar)
        index = PathIndex.build(graph, cnf)
        for i in range(graph.node_count):
            for j in range(graph.node_count):
                for path in index.iter_paths(S, i, j, max_length=6):
                    assert cyk_recognize(cnf, S, list(path_word(path)))

    def test_missing_pair_yields_nothing(self, chain_index):
        assert list(chain_index.iter_paths(S, 4, 0, max_length=10)) == []


class TestCounting:
    def test_chain_count(self, chain_index):
        assert chain_index.count_paths(S, 0, 4, max_length=10) == 1
        assert chain_index.count_paths(S, 0, 4, max_length=3) == 0

    def test_count_matches_enumeration(self, dyck_grammar):
        index = PathIndex.build(two_cycles(1, 1), dyck_grammar)
        for bound in [2, 4, 6]:
            enumerated = len(list(index.iter_paths(S, 0, 0, max_length=bound)))
            counted = index.count_paths(S, 0, 0, max_length=bound)
            assert counted == enumerated, bound

    def test_unambiguous_grammar_dp_path(self):
        """Single-rule-per-head grammar takes the DP shortcut."""
        grammar = parse_grammar("S -> A B\nA -> a\nB -> b",
                                terminals=["a", "b"])
        index = PathIndex.build(word_chain(["a", "b"]), grammar)
        assert index.count_paths(S, 0, 2, max_length=4) == 1


class TestShortestLength:
    def test_chain(self, chain_index):
        assert chain_index.shortest_path_length(S, 0, 4) == 4
        assert chain_index.shortest_path_length(S, 1, 3) == 2
        assert chain_index.shortest_path_length(S, 0, 3) is None

    def test_cycles_minimum(self, dyck_grammar):
        index = PathIndex.build(two_cycles(1, 1), dyck_grammar)
        assert index.shortest_path_length(S, 0, 0) == 2  # "ab"

    def test_minimal_leq_single_path_annotation(self, dyck_grammar):
        """Section 5's recorded lengths need not be minimal; the forest
        minimum is a lower bound on them."""
        from repro.core.single_path import build_single_path_index

        graph = two_cycles(2, 3)
        cnf = to_cnf(dyck_grammar)
        index = PathIndex.build(graph, cnf)
        annotated = build_single_path_index(graph, cnf, normalize=False)
        for (i, j), entries in annotated.cells.items():
            if S in entries:
                minimal = index.shortest_path_length(S, graph.node_at(i),
                                                     graph.node_at(j))
                assert minimal is not None
                assert minimal <= entries[S]
