"""Tests for the ContextFreeRelations result object."""

from repro.core.relations import ContextFreeRelations
from repro.grammar.symbols import Nonterminal
from repro.graph.labeled_graph import LabeledGraph

S, A = Nonterminal("S"), Nonterminal("A")


def make_graph() -> LabeledGraph:
    return LabeledGraph.from_edges([("x", "e", "y"), ("y", "e", "z")])


def test_pairs_by_name_or_symbol():
    relations = ContextFreeRelations(make_graph(), {S: [(0, 1)]})
    assert relations.pairs("S") == {(0, 1)}
    assert relations.pairs(S) == {(0, 1)}
    assert relations.pairs("Missing") == frozenset()


def test_node_pairs_map_back_to_objects():
    relations = ContextFreeRelations(make_graph(), {S: [(0, 2)]})
    assert relations.node_pairs(S) == {("x", "z")}


def test_contains_by_node_object():
    relations = ContextFreeRelations(make_graph(), {S: [(0, 2)]})
    assert relations.contains(S, "x", "z")
    assert not relations.contains(S, "z", "x")


def test_count():
    relations = ContextFreeRelations(make_graph(), {S: [(0, 1), (1, 2)]})
    assert relations.count(S) == 2
    assert relations.count("Other") == 0


def test_triples_sorted():
    relations = ContextFreeRelations(
        make_graph(), {S: [(1, 2), (0, 1)], A: [(2, 2)]}
    )
    assert list(relations.triples()) == [
        (A, 2, 2), (S, 0, 1), (S, 1, 2),
    ]


def test_restrict_to():
    relations = ContextFreeRelations(make_graph(), {S: [(0, 1)], A: [(1, 1)]})
    restricted = relations.restrict_to(["S"])
    assert restricted.nonterminals == {S}
    assert restricted.pairs(S) == {(0, 1)}


def test_same_as_handles_missing_as_empty():
    graph = make_graph()
    left = ContextFreeRelations(graph, {S: [(0, 1)], A: []})
    right = ContextFreeRelations(graph, {S: [(0, 1)]})
    assert left.same_as(right)
    assert right.same_as(left)


def test_same_as_restricted():
    graph = make_graph()
    left = ContextFreeRelations(graph, {S: [(0, 1)], A: [(0, 0)]})
    right = ContextFreeRelations(graph, {S: [(0, 1)], A: [(1, 1)]})
    assert not left.same_as(right)
    assert left.same_as(right, nonterminals=["S"])


def test_diff():
    graph = make_graph()
    left = ContextFreeRelations(graph, {S: [(0, 1), (1, 2)]})
    right = ContextFreeRelations(graph, {S: [(1, 2), (2, 2)]})
    only_left, only_right = left.diff(right, S)
    assert only_left == {(0, 1)}
    assert only_right == {(2, 2)}


def test_as_dict_sorted():
    relations = ContextFreeRelations(make_graph(), {S: [(1, 0), (0, 1)]})
    assert relations.as_dict() == {"S": [(0, 1), (1, 0)]}


def test_repr_shows_sizes():
    relations = ContextFreeRelations(make_graph(), {S: [(0, 1)]})
    assert "S:1" in repr(relations)
