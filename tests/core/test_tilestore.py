"""Unit tests for the spillable tile store (out-of-core working set).

Covers budget parsing, LRU spill/reload round-trips on both spill
formats (raw buffer + mmap for bitset/dense, pickle for the rest), the
version-keyed payload cache, pinning, the spill-file lifecycle, the
``SpillableMatrixMap`` wrapper — and the out-of-core acceptance
property: a closure whose tiles exceed the budget completes with the
store's accounted peak resident bytes within the budget.
"""

import os

import pytest

from repro.core.tilestore import (
    MEMORY_BUDGET_ENV,
    SPILL_DIR_ENV,
    SpillableMatrixMap,
    TileStore,
    available_memory_bytes,
    matrix_nbytes,
    parse_memory_budget,
    resolve_memory_budget,
    resolve_spill_dir,
)
from repro.matrices.base import available_backends, get_backend


# ----------------------------------------------------------------------
# Budget parsing / resolution
# ----------------------------------------------------------------------

@pytest.mark.parametrize("value,expected", [
    (None, None),
    ("", None),
    ("0", None),
    ("none", None),
    ("OFF", None),
    (0, None),
    (-5, None),
    (65536, 65536),
    (65536.0, 65536),
    ("65536", 65536),
    ("64K", 64 * 1024),
    ("64k", 64 * 1024),
    ("64KB", 64 * 1024),
    ("64KiB", 64 * 1024),
    ("8M", 8 * 1024 ** 2),
    ("1.5M", int(1.5 * 1024 ** 2)),
    ("1G", 1024 ** 3),
    ("2T", 2 * 1024 ** 4),
    ("512B", 512),
])
def test_parse_memory_budget(value, expected):
    assert parse_memory_budget(value) == expected


@pytest.mark.parametrize("value", ["64Q", "lots", "K64", "6 4K"])
def test_parse_memory_budget_rejects_garbage(value):
    with pytest.raises(ValueError):
        parse_memory_budget(value)


def test_resolve_memory_budget_env(monkeypatch):
    monkeypatch.setenv(MEMORY_BUDGET_ENV, "4M")
    assert resolve_memory_budget(None) == 4 * 1024 ** 2
    assert resolve_memory_budget("64K") == 64 * 1024  # explicit wins
    monkeypatch.delenv(MEMORY_BUDGET_ENV)
    assert resolve_memory_budget(None) is None


def test_resolve_spill_dir_env(monkeypatch, tmp_path):
    monkeypatch.setenv(SPILL_DIR_ENV, str(tmp_path))
    assert resolve_spill_dir(None) == str(tmp_path)
    assert resolve_spill_dir("elsewhere") == "elsewhere"
    monkeypatch.delenv(SPILL_DIR_ENV)
    assert resolve_spill_dir(None) is None


def test_available_memory_bytes_measures_something():
    measured = available_memory_bytes()
    assert measured is None or measured > 0


@pytest.mark.parametrize("backend_name", available_backends())
def test_matrix_nbytes_positive(backend_name):
    backend = get_backend(backend_name)
    matrix = backend.from_pairs(8, [(0, 1), (3, 7), (5, 5)])
    assert matrix_nbytes(matrix) > 0


# ----------------------------------------------------------------------
# Spill / reload round-trips
# ----------------------------------------------------------------------

def _sample_tiles(backend, count=6, size=8):
    tiles = {}
    for t in range(count):
        pairs = [((t + k) % size, (t * 3 + k) % size) for k in range(size)]
        tiles[("A", t, 0)] = backend.from_pairs(size, pairs)
    return tiles


@pytest.mark.parametrize("backend_name", available_backends())
def test_spill_reload_round_trip(backend_name, tmp_path):
    """Every backend round-trips through its spill format (raw buffer
    or pickle) byte-identically when evicted and reloaded."""
    backend = get_backend(backend_name)
    tiles = _sample_tiles(backend)
    one_tile = matrix_nbytes(next(iter(tiles.values())))
    store = TileStore(budget_bytes=2 * one_tile, spill_dir=str(tmp_path))
    for key, tile in tiles.items():
        store.put(key, tile)
    assert store.stats.tiles_spilled > 0
    for key, original in tiles.items():
        reloaded = store.get(key)
        assert reloaded.to_pair_set() == original.to_pair_set(), key
    assert store.stats.tiles_reloaded > 0
    store.close()


def test_zero_size_tile_spills_and_reloads(tmp_path):
    backend = get_backend("bitset")
    store = TileStore(budget_bytes=1, spill_dir=str(tmp_path))
    store.put(("Z", 0, 0), backend.zeros(0))
    filler = backend.from_pairs(8, [(0, 1)])
    store.put(("F", 0, 0), filler)  # evicts the zero-size tile
    reloaded = store.get(("Z", 0, 0))
    assert reloaded.shape == (0, 0)
    store.close()


def test_reloaded_tile_is_mutable_and_private(tmp_path):
    """The mmap reload must hand back a writable matrix whose mutations
    never leak into later reloads (ACCESS_COPY semantics)."""
    backend = get_backend("bitset")
    store = TileStore(budget_bytes=1, spill_dir=str(tmp_path))
    store.put(("A", 0, 0), backend.from_pairs(8, [(1, 2)]))
    store.put(("B", 0, 0), backend.from_pairs(8, [(3, 4)]))  # spills A
    first = store.get(("A", 0, 0))
    first.union_update(backend.from_pairs(8, [(7, 7)]))  # private mutation
    store.put(("B2", 0, 0), backend.from_pairs(8, [(5, 6)]))  # spills A again?
    # Drop and reload A without marking it changed: the spill file is
    # authoritative and must not contain the private mutation.
    store.discard(("A", 0, 0))
    store.put(("A", 0, 0), backend.from_pairs(8, [(1, 2)]))
    assert store.get(("A", 0, 0)).to_pair_set() == {(1, 2)}
    store.close()


# ----------------------------------------------------------------------
# Version-keyed payload cache (the re-serialization regression)
# ----------------------------------------------------------------------

def test_payload_cached_per_version():
    backend = get_backend("bitset")
    store = TileStore()
    store.put(("A", 0, 0), backend.from_pairs(8, [(0, 1)]))
    first = store.payload(("A", 0, 0))
    assert store.stats.payload_encodes == 1
    assert store.payload(("A", 0, 0)) is first
    assert store.stats.payload_encodes == 1  # cache hit, no re-encode
    store.mark_changed(("A", 0, 0))
    store.payload(("A", 0, 0))
    assert store.stats.payload_encodes == 2  # version bump re-encodes
    store.close()


def test_put_unchanged_keeps_payload_valid():
    backend = get_backend("bitset")
    store = TileStore()
    tile = backend.from_pairs(8, [(0, 1)])
    store.put(("A", 0, 0), tile)
    store.payload(("A", 0, 0))
    store.put(("A", 0, 0), tile, changed=False)
    store.payload(("A", 0, 0))
    assert store.stats.payload_encodes == 1
    store.put(("A", 0, 0), tile, changed=True)
    store.payload(("A", 0, 0))
    assert store.stats.payload_encodes == 2
    store.close()


def test_spilled_tile_ships_payload_without_materializing(tmp_path):
    """A spilled-clean tile's payload comes from the file bytes; no
    matrix is rebuilt in the parent (reload counter stays put)."""
    backend = get_backend("bitset")
    store = TileStore(budget_bytes=1, spill_dir=str(tmp_path))
    store.put(("A", 0, 0), backend.from_pairs(8, [(2, 3)]))
    store.put(("B", 0, 0), backend.from_pairs(8, [(4, 5)]))  # spills A
    reloads_before = store.stats.tiles_reloaded
    payload = store.payload(("A", 0, 0))
    assert payload[0] == "bitset"
    assert store.stats.tiles_reloaded == reloads_before
    from repro.core.tiles import matrix_from_payload

    assert matrix_from_payload(payload).to_pair_set() == {(2, 3)}
    store.close()


def test_payload_cache_disabled_reencodes():
    backend = get_backend("bitset")
    store = TileStore(payload_cache=False)
    store.put(("A", 0, 0), backend.from_pairs(8, [(0, 1)]))
    store.payload(("A", 0, 0))
    store.payload(("A", 0, 0))
    assert store.stats.payload_encodes == 2
    store.close()


# ----------------------------------------------------------------------
# Pinning and eviction
# ----------------------------------------------------------------------

def test_pinned_tiles_never_evicted(tmp_path):
    backend = get_backend("bitset")
    tiles = _sample_tiles(backend)
    one_tile = matrix_nbytes(next(iter(tiles.values())))
    store = TileStore(budget_bytes=one_tile, spill_dir=str(tmp_path))
    pinned_key = ("A", 0, 0)
    store.put(pinned_key, tiles[pinned_key])
    with store.pinned([pinned_key]):
        for key, tile in tiles.items():
            if key != pinned_key:
                store.put(key, tile)
        # The pinned tile stayed resident through all the evictions.
        assert store.get(pinned_key).to_pair_set() \
            == tiles[pinned_key].to_pair_set()
        assert store.stats.tiles_reloaded == 0
    store.close()


def test_evict_to_budget_and_spill_all(tmp_path):
    backend = get_backend("dense")
    store = TileStore(budget_bytes=None, spill_dir=str(tmp_path))
    for key, tile in _sample_tiles(backend).items():
        store.put(key, tile)
    assert store.resident_bytes > 0
    store.evict_to_budget()  # unbounded: no-op
    assert store.resident_bytes > 0
    store.spill_all()
    assert store.resident_bytes == 0
    assert store.stats.tiles_spilled == 6
    store.close()


# ----------------------------------------------------------------------
# Spill-file lifecycle
# ----------------------------------------------------------------------

def test_close_removes_spill_files_and_owned_dir(tmp_path):
    backend = get_backend("bitset")
    target = tmp_path / "spill"
    store = TileStore(budget_bytes=1, spill_dir=str(target))
    store.put(("A", 0, 0), backend.from_pairs(8, [(0, 1)]))
    store.put(("B", 0, 0), backend.from_pairs(8, [(1, 2)]))
    assert target.is_dir() and list(target.iterdir())
    store.close()
    assert not target.exists()  # store created it, store removes it


def test_close_keep_spill_preserves_files(tmp_path):
    backend = get_backend("bitset")
    target = tmp_path / "spill"
    store = TileStore(budget_bytes=1, spill_dir=str(target))
    store.put(("A", 0, 0), backend.from_pairs(8, [(0, 1)]))
    store.put(("B", 0, 0), backend.from_pairs(8, [(1, 2)]))
    store.close(keep_spill=True)
    assert target.is_dir() and list(target.iterdir())  # crash post-mortem


def test_preexisting_spill_dir_not_removed(tmp_path):
    backend = get_backend("bitset")
    store = TileStore(budget_bytes=1, spill_dir=str(tmp_path))
    store.put(("A", 0, 0), backend.from_pairs(8, [(0, 1)]))
    store.put(("B", 0, 0), backend.from_pairs(8, [(1, 2)]))
    store.close()
    assert tmp_path.is_dir()  # caller-owned directory survives
    assert not list(tmp_path.iterdir())  # but the tile files are gone


def test_discard_unlinks_spill_file(tmp_path):
    backend = get_backend("bitset")
    store = TileStore(budget_bytes=1, spill_dir=str(tmp_path))
    store.put(("A", 0, 0), backend.from_pairs(8, [(0, 1)]))
    store.put(("B", 0, 0), backend.from_pairs(8, [(1, 2)]))
    assert len(list(tmp_path.iterdir())) == 1  # A's spill file
    store.discard(("A", 0, 0))
    assert len(list(tmp_path.iterdir())) == 0
    store.close()


def test_respill_unlinks_superseded_file(tmp_path):
    backend = get_backend("bitset")
    store = TileStore(budget_bytes=1, spill_dir=str(tmp_path))
    store.put(("A", 0, 0), backend.from_pairs(8, [(0, 1)]))
    store.put(("B", 0, 0), backend.from_pairs(8, [(1, 2)]))  # spill A v1
    store.put(("A", 0, 0), backend.from_pairs(8, [(0, 1), (5, 5)]))
    store.put(("B", 0, 0), backend.from_pairs(8, [(1, 2)]),
              changed=False)  # spill A v2 (B is clean, its file is valid)
    files = sorted(os.path.basename(p) for p in
                   (str(f) for f in tmp_path.iterdir()))
    assert len(files) == 2  # one live file per spilled tile, no leaks
    assert store.get(("A", 0, 0)).to_pair_set() == {(0, 1), (5, 5)}
    store.close()


# ----------------------------------------------------------------------
# put_payload (process-scheduler staging)
# ----------------------------------------------------------------------

def test_put_payload_materializes_lazily():
    backend = get_backend("bitset")
    from repro.core.tiles import tile_payload_of

    payload = tile_payload_of(backend.from_pairs(8, [(6, 1)]))
    store = TileStore()
    store.put_payload(("S", 0, 0), payload)
    assert store.resident_bytes == 0  # staged, not materialized
    assert store.get(("S", 0, 0)).to_pair_set() == {(6, 1)}
    assert store.resident_bytes > 0
    store.close()


# ----------------------------------------------------------------------
# SpillableMatrixMap
# ----------------------------------------------------------------------

def test_spillable_matrix_map_mapping_contract(tmp_path):
    backend = get_backend("bitset")
    store = TileStore(budget_bytes=1, spill_dir=str(tmp_path))
    matrices = {"S": backend.from_pairs(8, [(0, 1)]),
                "T": backend.from_pairs(8, [(2, 3)])}
    for symbol, matrix in matrices.items():
        store.put(SpillableMatrixMap.key_for(symbol), matrix)
    mapping = SpillableMatrixMap(store, ["S", "T"])
    assert len(mapping) == 2
    assert set(mapping) == {"S", "T"}
    assert mapping["S"].to_pair_set() == {(0, 1)}
    assert mapping["T"].to_pair_set() == {(2, 3)}
    with pytest.raises(KeyError):
        mapping["U"]
    payload = mapping.payload("S")
    assert payload[0] == "bitset"
    mapping.close()
    assert not tmp_path.exists() or not list(tmp_path.iterdir())


# ----------------------------------------------------------------------
# Out-of-core acceptance: peak resident bytes within budget
# ----------------------------------------------------------------------

def test_closure_peak_resident_within_budget():
    """The ISSUE's acceptance criterion: a closure whose tiles exceed
    the budget completes, stays within the budget by the store's own
    accounting, and is byte-identical to the unbounded run."""
    import sys

    sys.path.insert(0, os.path.dirname(__file__))
    from test_semiring_differential import make_case

    from repro.core.matrix_cfpq import solve_matrix

    graph, grammar = make_case(1)
    unbounded = solve_matrix(graph, grammar, backend="bitset",
                             normalize=False, strategy="blocked",
                             tile_size=2)
    total = unbounded.stats.details["blocked"].peak_resident_bytes
    assert total > 0
    budget = max(total // 3, 200)  # force spilling, allow a working set
    bounded = solve_matrix(graph, grammar, backend="bitset",
                           normalize=False, strategy="blocked",
                           tile_size=2, memory_budget=budget)
    assert bounded.relations.same_as(unbounded.relations)
    stats = bounded.stats.details["blocked"]
    assert stats.budget_bytes == budget
    assert stats.tiles_spilled > 0
    assert stats.peak_resident_bytes <= budget
