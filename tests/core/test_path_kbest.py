"""Differential and streaming tests for lazy k-best enumeration.

The oracle is the bounded brute-force walk enumerator of
``test_semiring_differential`` (edge-by-edge CYK membership, no closure
machinery).  Beyond agreement, the suite pins the protocol properties
the serving tier relies on: rank order, the prefix property
(``top_k(k)`` is a prefix of ``top_k(k + 1)``), and the streaming
guard — asking for a few best paths must expand far fewer search states
than the graph's full path population (the enumeration-counter
acceptance criterion).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))
from test_semiring_differential import (  # noqa: E402
    SEEDS,
    brute_force_paths,
    make_case,
)

from repro.core.path_index import (  # noqa: E402
    AllPathIndex,
    LengthRank,
    ViterbiRank,
)
from repro.core.semiring import ViterbiSemiring  # noqa: E402
from repro.grammar.cfg import CFG  # noqa: E402
from repro.grammar.cnf import to_cnf  # noqa: E402
from repro.graph.labeled_graph import LabeledGraph  # noqa: E402

BOUND = 5


def _parallel_chain(hops: int) -> tuple[LabeledGraph, CFG]:
    """``hops`` layers with two parallel labels per hop: ``2^hops``
    distinct derivation paths end-to-end."""
    grammar = to_cnf(CFG.from_mapping(
        {"S": [["T"], ["T", "S"]], "T": [["a"], ["b"]]},
        terminals=["a", "b"]))
    edges = []
    for hop in range(hops):
        edges += [(hop, "a", hop + 1), (hop, "b", hop + 1)]
    return LabeledGraph.from_edges(edges), grammar


class TestAgainstExhaustiveEnumeration:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_kbest_yields_exactly_the_bounded_path_set(self, seed):
        graph, grammar = make_case(seed)
        index = AllPathIndex.build(graph, grammar)
        checked = 0
        for nonterminal in grammar.nonterminals:
            for i, j in sorted(index.relations.pairs(nonterminal))[:5]:
                expected = brute_force_paths(graph, grammar, nonterminal,
                                             i, j, BOUND)
                got = index.top_k(nonterminal, i, j, len(expected) + 3,
                                  max_length=BOUND)
                assert len(got) == len(set(got)) == len(expected)
                assert set(got) == expected, (seed, nonterminal, i, j)
                lengths = [len(path) for path in got]
                assert lengths == sorted(lengths), "not best-first"
                checked += 1
        if checked == 0:
            pytest.skip("seed produced an empty relation")

    @pytest.mark.parametrize("seed", SEEDS)
    def test_prefix_property(self, seed):
        graph, grammar = make_case(seed)
        index = AllPathIndex.build(graph, grammar)
        for nonterminal in grammar.nonterminals:
            for i, j in sorted(index.relations.pairs(nonterminal))[:5]:
                wider = index.top_k(nonterminal, i, j, 7,
                                    max_length=BOUND)
                for k in range(len(wider) + 1):
                    assert index.top_k(nonterminal, i, j, k,
                                       max_length=BOUND) == wider[:k]

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_unbounded_kbest_contains_every_bounded_path(self, seed):
        """Without a max_length the enumerator ranges over *all* paths;
        its first ``len(bounded) + slack`` entries must cover every
        bounded-length path of minimal lengths."""
        graph, grammar = make_case(seed)
        index = AllPathIndex.build(graph, grammar)
        for nonterminal in grammar.nonterminals:
            for i, j in sorted(index.relations.pairs(nonterminal))[:3]:
                bounded = brute_force_paths(graph, grammar, nonterminal,
                                            i, j, 2)
                if not bounded:
                    continue
                got = index.top_k(nonterminal, i, j, 64)
                assert bounded <= set(got) or len(got) == 64


class TestStreamingGuard:
    def test_top_k_expands_a_tiny_frontier_of_a_huge_path_set(self):
        # Each hop offers a direct a-edge or a two-edge b-detour:
        # 2^hops end-to-end paths with lengths hops..2*hops, a unique
        # shortest one, and exact lower bounds that keep detour-heavy
        # prefixes parked in the heap.
        hops = 14
        grammar = to_cnf(CFG.from_mapping(
            {"S": [["T"], ["T", "S"]], "T": [["a"], ["b"]]},
            terminals=["a", "b"]))
        edges = []
        for hop in range(hops):
            detour = hops + 1 + hop
            edges += [(hop, "a", hop + 1), (hop, "b", detour),
                      (detour, "b", hop + 1)]
        graph = LabeledGraph.from_edges(
            edges, nodes=list(range(2 * hops + 1)))
        index = AllPathIndex.build(graph, grammar)
        paths = index.top_k("S", 0, hops, 3)
        assert len(paths) == 3
        assert [len(path) for path in paths] == [hops, hops + 1, hops + 1]
        stats = index.kbest_stats
        assert stats["yielded"] == 3
        # The acceptance bar: best-first laziness, not exhaustion.  A
        # materializing implementation would touch >= 2^hops states.
        assert stats["expansions"] < 2 ** hops / 100
        assert stats["expansions"] <= 160

    def test_iterating_further_pays_incrementally(self):
        graph, grammar = _parallel_chain(8)
        index = AllPathIndex.build(graph, grammar)
        iterator = index.iter_k_best("S", 0, 8)
        next(iterator)
        first = index.kbest_stats["expansions"]
        next(iterator)
        second = index.kbest_stats["expansions"]
        assert first > 0
        # One more path costs a bounded number of extra expansions, not
        # a re-enumeration.
        assert second - first <= first + 8


class TestRankAdapters:
    def test_viterbi_rank_prefers_probable_over_short(self):
        grammar = to_cnf(CFG.from_mapping(
            {"S": [["T"], ["T", "S"]], "T": [["a"], ["b"]]},
            terminals=["a", "b"]))
        # Direct b-edge 0 -> 2 (length 1, prob 0.1) vs a-a path through
        # node 1 (length 2, prob 0.81).
        graph = LabeledGraph.from_edges(
            [(0, "b", 2), (0, "a", 1), (1, "a", 2)], nodes=[0, 1, 2]
        )
        index = AllPathIndex.build(graph, grammar)
        semiring = ViterbiSemiring(weights={"a": 0.9, "b": 0.1})
        by_probability = index.top_k("S", 0, 2, 2,
                                     rank=ViterbiRank(semiring))
        by_length = index.top_k("S", 0, 2, 2, rank=LengthRank())
        assert [len(p) for p in by_length] == [1, 2]
        assert [len(p) for p in by_probability] == [2, 1]
        assert by_probability[0] == ((0, "a", 1), (1, "a", 2))

    def test_default_viterbi_rank_matches_length_order_lengths(self):
        """Uniform default weights make most-probable-first coincide
        with shortest-first at the length level (the invariant the CI
        viterbi service matrix cell leans on)."""
        graph, grammar = make_case(2)
        index = AllPathIndex.build(graph, grammar)
        for nonterminal in grammar.nonterminals:
            for i, j in sorted(index.relations.pairs(nonterminal))[:4]:
                by_length = index.top_k(nonterminal, i, j, 6,
                                        max_length=BOUND)
                by_viterbi = index.top_k(nonterminal, i, j, 6,
                                         max_length=BOUND,
                                         rank=ViterbiRank())
                assert [len(p) for p in by_length] \
                    == [len(p) for p in by_viterbi]
