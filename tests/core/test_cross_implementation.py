"""Differential tests: every solver must compute identical relations.

Solvers under test:

* literal set-matrix Algorithm 1 (`solve_naive`)
* boolean-decomposed engine × {dense, sparse, pyset}
* Hellings worklist baseline
* GLL-style top-down baseline

plus, on chain graphs, CYK string recognition as the external oracle
(CFPQ on a chain *is* string parsing — the bridge back to Valiant).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.gll import solve_gll
from repro.baselines.hellings import solve_hellings
from repro.core.matrix_cfpq import solve_matrix_relations
from repro.core.naive_closure import solve_naive
from repro.grammar.cnf import to_cnf
from repro.grammar.parser import parse_grammar
from repro.grammar.recognizer import cyk_recognize
from repro.grammar.symbols import Nonterminal
from repro.graph.generators import random_graph, two_cycles, word_chain
from repro.graph.labeled_graph import LabeledGraph

S = Nonterminal("S")

GRAMMARS = {
    "anbn": parse_grammar("S -> a S b | a b", terminals=["a", "b"]),
    "dyck": parse_grammar("S -> a S b | a b | S S", terminals=["a", "b"]),
    "left-recursive": parse_grammar("S -> S a | a", terminals=["a"]),
    "two-nonterminals": parse_grammar(
        "S -> A S | A\nA -> a | b", terminals=["a", "b"]
    ),
}


def all_solver_answers(graph, grammar) -> dict[str, frozenset]:
    """R_S from every implementation."""
    cnf = to_cnf(grammar)
    return {
        "naive": solve_naive(graph, cnf, normalize=False).relations.pairs(S),
        "dense": solve_matrix_relations(graph, cnf, backend="dense",
                                        normalize=False).pairs(S),
        "sparse": solve_matrix_relations(graph, cnf, backend="sparse",
                                         normalize=False).pairs(S),
        "pyset": solve_matrix_relations(graph, cnf, backend="pyset",
                                        normalize=False).pairs(S),
        "hellings": solve_hellings(graph, cnf, normalize=False).pairs(S),
        "gll": solve_gll(graph, grammar, nonterminals=[S]).pairs(S),
    }


def assert_all_agree(graph, grammar, context=""):
    answers = all_solver_answers(graph, grammar)
    reference = answers["naive"]
    for name, pairs in answers.items():
        assert pairs == reference, (
            f"{name} disagrees with naive {context}: "
            f"only_{name}={sorted(pairs - reference)[:5]} "
            f"only_naive={sorted(reference - pairs)[:5]}"
        )
    return reference


class TestFixedCases:
    def test_chain_aabb(self):
        for name, grammar in GRAMMARS.items():
            if name == "left-recursive":
                continue
            assert_all_agree(word_chain(["a", "a", "b", "b"]), grammar, name)

    def test_left_recursion_on_a_chain(self):
        graph = word_chain(["a"] * 5)
        pairs = assert_all_agree(graph, GRAMMARS["left-recursive"])
        assert pairs == {(i, j) for i in range(6) for j in range(i + 1, 6)}

    def test_two_cycles_all_grammars(self):
        graph = two_cycles(2, 3)
        for name, grammar in GRAMMARS.items():
            assert_all_agree(graph, grammar, name)

    def test_empty_graph(self):
        for grammar in GRAMMARS.values():
            assert_all_agree(LabeledGraph(), grammar)

    def test_paper_queries_on_paper_graph(self):
        from repro.grammar.builders import (
            same_generation_query1,
            same_generation_query2,
        )
        from repro.graph.generators import paper_example_graph

        graph = paper_example_graph()
        assert_all_agree(graph, same_generation_query1())
        assert_all_agree(graph, same_generation_query2())


class TestChainEqualsStringParsing:
    """On a chain spelling w, (0, |w|) ∈ R_S iff S ⇒* w (CYK oracle)."""

    WORDS = ["ab", "aabb", "abab", "ba", "aab", "abba", "aaabbb"]

    def test_against_cyk(self):
        for name, grammar in GRAMMARS.items():
            cnf = to_cnf(grammar)
            for word in self.WORDS:
                graph = word_chain(list(word))
                pairs = solve_matrix_relations(graph, cnf,
                                               normalize=False).pairs(S)
                expected = cyk_recognize(cnf, S, list(word))
                assert ((0, len(word)) in pairs) == expected, (name, word)


@given(
    seed=st.integers(0, 10_000),
    node_count=st.integers(2, 8),
    edge_count=st.integers(1, 24),
    grammar_name=st.sampled_from(sorted(GRAMMARS)),
)
@settings(max_examples=60, deadline=None)
def test_all_solvers_agree_on_random_graphs(seed, node_count, edge_count,
                                            grammar_name):
    graph = random_graph(node_count, edge_count, ["a", "b"], seed=seed)
    assert_all_agree(graph, GRAMMARS[grammar_name],
                     f"seed={seed} grammar={grammar_name}")
