"""Regression tests for the kernel buffer fast path and the vectorized
bitset/dense kernels.

The hot-path contract: kernels construct results through ``_wrap`` —
buffers they freshly own — and therefore never pay the defensive
read-only copy of the public constructors; external callers passing
read-only arrays still get the copy.  The vectorized bitset product
(gather + segmented ``bitwise_or.reduceat``) must agree bit-for-bit
with the seed per-row/per-bit loop it replaced
(:meth:`BitsetMatrix.multiply_rowloop`).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.matrices.bitset import BACKEND as BITSET, BitsetMatrix
from repro.matrices.dense import BACKEND as DENSE, DenseMatrix


def _random_pairs(rng, rows, cols, count):
    return {(rng.randrange(rows), rng.randrange(cols)) for _ in range(count)}


class TestWrapFastPath:
    def test_bitset_wrap_does_not_copy(self):
        words = np.zeros((4, 1), dtype=np.uint64)
        matrix = BitsetMatrix._wrap(words, 64)
        assert matrix._words is words

    def test_dense_wrap_does_not_copy(self):
        array = np.zeros((4, 4), dtype=bool)
        matrix = DenseMatrix._wrap(array)
        assert matrix._array is array

    def test_bitset_wrap_rejects_read_only(self):
        words = np.zeros((4, 1), dtype=np.uint64)
        words.setflags(write=False)
        with pytest.raises(AssertionError):
            BitsetMatrix._wrap(words, 64)

    def test_dense_wrap_rejects_read_only(self):
        array = np.zeros((4, 4), dtype=bool)
        array.setflags(write=False)
        with pytest.raises(AssertionError):
            DenseMatrix._wrap(array)

    def test_public_constructors_still_copy_read_only(self):
        """The defensive copy stays for external callers."""
        words = np.zeros((4, 1), dtype=np.uint64)
        words.setflags(write=False)
        matrix = BitsetMatrix(words, 64)
        assert matrix._words is not words
        assert matrix._words.flags.writeable

        array = np.zeros((4, 4), dtype=bool)
        array.setflags(write=False)
        dense = DenseMatrix(array)
        assert dense._array is not array
        assert dense._array.flags.writeable

    def test_kernel_results_own_writable_buffers(self):
        """Every kernel result must come out of the fast path: a fresh
        writable buffer (mutating it cannot throw or alias operands)."""
        rng = random.Random(7)
        a = BITSET.from_pairs(20, _random_pairs(rng, 20, 20, 60))
        b = BITSET.from_pairs(20, _random_pairs(rng, 20, 20, 60))
        for result in (a.multiply(b), a.union(b), a.difference(b),
                       a.transpose(), BITSET.clone(a)):
            assert result._words.flags.writeable
        delta = BITSET.clone(a).union_update(b)
        assert delta._words.flags.writeable

        da = DENSE.from_pairs(20, _random_pairs(rng, 20, 20, 60))
        db = DENSE.from_pairs(20, _random_pairs(rng, 20, 20, 60))
        for result in (da.multiply(db), da.union(db), da.difference(db),
                       da.transpose(), DENSE.clone(da)):
            assert result._array.flags.writeable
        delta = DENSE.clone(da).union_update(db)
        assert delta._array.flags.writeable


class TestVectorizedBitsetKernels:
    @pytest.mark.parametrize("seed", range(8))
    def test_multiply_matches_rowloop(self, seed):
        """The vectorized product equals the seed scalar kernel on
        random rectangular cases spanning word boundaries."""
        rng = random.Random(0xB1757 ^ seed)
        rows = rng.randrange(1, 80)
        inner = rng.randrange(1, 150)
        cols = rng.randrange(1, 150)
        a = BITSET.from_pairs(
            rows, _random_pairs(rng, rows, inner, rng.randrange(0, 200)),
            cols=inner)
        b = BITSET.from_pairs(
            inner, _random_pairs(rng, inner, cols, rng.randrange(0, 200)),
            cols=cols)
        fast = a.multiply(b)
        slow = a.multiply_rowloop(b)
        assert np.array_equal(fast._words, slow._words)
        assert fast.shape == slow.shape == (rows, cols)

    def test_multiply_empty_operands(self):
        a = BITSET.zeros(5, 7)
        b = BITSET.zeros(7, 3)
        assert a.multiply(b).nnz() == 0
        assert a.multiply_rowloop(b).nnz() == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_mxm_into_fused_matches_unfused(self, seed):
        rng = random.Random(0xF00D ^ seed)
        n = 40
        a = BITSET.from_pairs(n, _random_pairs(rng, n, n, 120))
        b = BITSET.from_pairs(n, _random_pairs(rng, n, n, 120))
        accum_pairs = _random_pairs(rng, n, n, 80)
        fused_accum = BITSET.from_pairs(n, accum_pairs)
        merged, delta = BITSET.mxm_into(a, b, fused_accum)
        assert merged is fused_accum
        expected = a.multiply(b).union(BITSET.from_pairs(n, accum_pairs))
        assert merged.same_pairs(expected)
        expected_delta = a.multiply(b).difference(
            BITSET.from_pairs(n, accum_pairs))
        assert delta.same_pairs(expected_delta)

    @pytest.mark.parametrize("seed", range(4))
    def test_union_update_exact_delta(self, seed):
        rng = random.Random(0xDE17A ^ seed)
        n = 30
        base_pairs = _random_pairs(rng, n, n, 90)
        other_pairs = _random_pairs(rng, n, n, 90)
        for backend in (BITSET, DENSE):
            base = backend.from_pairs(n, base_pairs)
            other = backend.from_pairs(n, other_pairs)
            delta = base.union_update(other)
            assert delta.to_pair_set() == \
                frozenset(other_pairs - base_pairs)
            assert base.to_pair_set() == frozenset(base_pairs | other_pairs)

    def test_transpose_matches_pairs(self):
        rng = random.Random(5)
        pairs = _random_pairs(rng, 70, 130, 150)
        matrix = BITSET.from_pairs(70, pairs, cols=130)
        transposed = matrix.transpose()
        assert transposed.shape == (130, 70)
        assert transposed.to_pair_set() == \
            frozenset((j, i) for i, j in pairs)
