"""Tests for the set-valued matrix (the paper's direct formalization)."""

import pytest

from repro.errors import DimensionMismatchError
from repro.grammar.parser import parse_grammar
from repro.grammar.symbols import Nonterminal
from repro.matrices.setmatrix import SetMatrix, initial_matrix

S, A, B = Nonterminal("S"), Nonterminal("A"), Nonterminal("B")


@pytest.fixture
def grammar():
    return parse_grammar(
        """
        S -> A B
        A -> a
        B -> b
        """,
        terminals=["a", "b"],
    )


def test_empty_cells_default(grammar):
    matrix = SetMatrix(2, grammar)
    assert matrix[(0, 0)] == frozenset()
    assert matrix.nonterminal_count() == 0


def test_cells_cleaned_and_frozen(grammar):
    matrix = SetMatrix(2, grammar, {(0, 1): [A], (1, 0): []})
    assert matrix[(0, 1)] == {A}
    assert list(matrix.cells()) == [((0, 1), frozenset({A}))]


def test_out_of_range_cell_rejected(grammar):
    with pytest.raises(ValueError):
        SetMatrix(2, grammar, {(2, 0): [A]})


def test_multiply_uses_grammar_product(grammar):
    # A at (0,1), B at (1,2): product has S at (0,2).
    matrix = SetMatrix(3, grammar, {(0, 1): [A], (1, 2): [B]})
    product = matrix.multiply(matrix)
    assert product[(0, 2)] == {S}
    assert product.nonterminal_count() == 1


def test_multiply_no_rule_no_result(grammar):
    # B then A has no production B A -> ...
    matrix = SetMatrix(3, grammar, {(0, 1): [B], (1, 2): [A]})
    assert matrix.multiply(matrix).nonterminal_count() == 0


def test_union(grammar):
    left = SetMatrix(2, grammar, {(0, 0): [A]})
    right = SetMatrix(2, grammar, {(0, 0): [B], (1, 1): [S]})
    union = left.union(right)
    assert union[(0, 0)] == {A, B}
    assert union[(1, 1)] == {S}


def test_operators(grammar):
    matrix = SetMatrix(3, grammar, {(0, 1): [A], (1, 2): [B]})
    assert (matrix @ matrix)[(0, 2)] == {S}
    assert (matrix | matrix) == matrix


def test_dominates_partial_order(grammar):
    small = SetMatrix(2, grammar, {(0, 0): [A]})
    big = SetMatrix(2, grammar, {(0, 0): [A, B], (1, 1): [S]})
    assert big.dominates(small)
    assert not small.dominates(big)
    assert small.dominates(small)


def test_size_mismatch(grammar):
    with pytest.raises(DimensionMismatchError):
        SetMatrix(2, grammar).multiply(SetMatrix(3, grammar))


def test_pairs_with(grammar):
    matrix = SetMatrix(2, grammar, {(0, 1): [A, S], (1, 0): [S]})
    assert matrix.pairs_with(S) == {(0, 1), (1, 0)}
    assert matrix.pairs_with(B) == frozenset()


def test_equality_and_hash(grammar):
    m1 = SetMatrix(2, grammar, {(0, 1): [A]})
    m2 = SetMatrix(2, grammar, {(0, 1): [A]})
    assert m1 == m2
    assert hash(m1) == hash(m2)


def test_initial_matrix_matches_algorithm1(grammar):
    edges = [(0, "a", 1), (1, "b", 2), (0, "zzz", 2)]
    matrix = initial_matrix(3, grammar, edges)
    assert matrix[(0, 1)] == {A}
    assert matrix[(1, 2)] == {B}
    assert matrix[(0, 2)] == frozenset()  # unknown label ignored


def test_initial_matrix_multi_edge_union():
    grammar = parse_grammar("A -> x\nB -> y", terminals=["x", "y"])
    matrix = initial_matrix(2, grammar, [(0, "x", 1), (0, "y", 1)])
    assert matrix[(0, 1)] == {Nonterminal("A"), Nonterminal("B")}


def test_render_contains_subsets(grammar):
    matrix = SetMatrix(2, grammar, {(0, 1): [A, S]})
    text = matrix.render()
    assert "{A,S}" in text
    assert "." in text


def test_to_nested_lists(grammar):
    matrix = SetMatrix(2, grammar, {(1, 0): [B]})
    nested = matrix.to_nested_lists()
    assert nested[1][0] == {B}
    assert nested[0][0] == frozenset()
