"""Property tests for the mutable kernel API.

Contracts under test, for every registered backend:

* ``union_update`` mutates the target to the union and returns
  **exactly** the genuinely-new entries (the semi-naive frontier);
* ``difference`` is plain set difference on coordinates;
* ``MatrixBackend.mxm_into`` equals multiply-then-union, delta
  included;
* the value-semantics fallback serves matrices that never implemented
  the in-place kernels (third-party backend compatibility).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionMismatchError
from repro.matrices.base import (
    BooleanMatrix,
    MatrixBackend,
    available_backends,
    get_backend,
)

_SIZE = 5
pair_sets = st.sets(
    st.tuples(st.integers(0, _SIZE - 1), st.integers(0, _SIZE - 1)),
    max_size=12,
)


@given(target_pairs=pair_sets, other_pairs=pair_sets)
@settings(max_examples=100, deadline=None)
def test_union_update_returns_exact_delta(target_pairs, other_pairs):
    for name in available_backends():
        backend = get_backend(name)
        target = backend.from_pairs(_SIZE, target_pairs)
        other = backend.from_pairs(_SIZE, other_pairs)
        merged, delta = backend.union_update(target, other)
        assert merged is target, f"{name} did not merge in place"
        assert delta.to_pair_set() == other_pairs - target_pairs, name
        assert merged.to_pair_set() == target_pairs | other_pairs, name
        # The source operand must be untouched.
        assert other.to_pair_set() == other_pairs, name


@given(left_pairs=pair_sets, right_pairs=pair_sets)
@settings(max_examples=100, deadline=None)
def test_difference_is_set_difference(left_pairs, right_pairs):
    for name in available_backends():
        backend = get_backend(name)
        left = backend.from_pairs(_SIZE, left_pairs)
        right = backend.from_pairs(_SIZE, right_pairs)
        result = left.difference(right)
        assert result.to_pair_set() == left_pairs - right_pairs, name
        # Value semantics: neither operand changes.
        assert left.to_pair_set() == left_pairs, name
        assert right.to_pair_set() == right_pairs, name


@given(left_pairs=pair_sets, right_pairs=pair_sets, accum_pairs=pair_sets)
@settings(max_examples=100, deadline=None)
def test_mxm_into_equals_multiply_union(left_pairs, right_pairs, accum_pairs):
    expected_product = {
        (i, j)
        for i, k in left_pairs
        for k2, j in right_pairs
        if k == k2
    }
    for name in available_backends():
        backend = get_backend(name)
        left = backend.from_pairs(_SIZE, left_pairs)
        right = backend.from_pairs(_SIZE, right_pairs)
        accum = backend.from_pairs(_SIZE, accum_pairs)
        merged, delta = backend.mxm_into(left, right, accum)
        assert merged.to_pair_set() == accum_pairs | expected_product, name
        assert delta.to_pair_set() == expected_product - accum_pairs, name


@given(pairs=pair_sets)
@settings(max_examples=50, deadline=None)
def test_clone_is_independent(pairs):
    for name in available_backends():
        backend = get_backend(name)
        original = backend.from_pairs(_SIZE, pairs)
        copy = backend.clone(original)
        assert copy.to_pair_set() == frozenset(pairs), name
        backend.union_update(copy, backend.from_pairs(_SIZE, [(0, 0), (4, 4)]))
        assert original.to_pair_set() == frozenset(pairs), (
            f"{name} clone shares storage"
        )


@pytest.mark.parametrize("name", available_backends())
def test_union_update_self_is_empty_delta(name):
    backend = get_backend(name)
    matrix = backend.from_pairs(_SIZE, [(0, 1), (2, 3)])
    merged, delta = backend.union_update(matrix, matrix)
    assert delta.nnz() == 0
    assert merged.to_pair_set() == {(0, 1), (2, 3)}


@pytest.mark.parametrize("name", available_backends())
def test_union_update_shape_mismatch(name):
    backend = get_backend(name)
    with pytest.raises(DimensionMismatchError):
        backend.union_update(backend.zeros(2), backend.zeros(3))


@pytest.mark.parametrize("name", available_backends())
def test_mxm_into_aliasing_accumulator(name):
    """accum may be one of the product operands; the kernels must not
    corrupt the product by mutating mid-multiply."""
    backend = get_backend(name)
    # chain 0->1->2->3 squared into itself: adds the distance-2 pairs.
    matrix = backend.from_pairs(4, [(0, 1), (1, 2), (2, 3)])
    merged, delta = backend.mxm_into(matrix, matrix, matrix)
    assert merged.to_pair_set() == {(0, 1), (1, 2), (2, 3), (0, 2), (1, 3)}
    assert delta.to_pair_set() == {(0, 2), (1, 3)}


# ----------------------------------------------------------------------
# Third-party compatibility: immutable matrices go through the fallback.
# ----------------------------------------------------------------------

class _FrozenMatrix(BooleanMatrix):
    """A minimal immutable third-party matrix: only the abstract API."""

    def __init__(self, shape, pairs):
        self._shape = shape
        self._pairs = frozenset(pairs)

    @property
    def shape(self):
        return self._shape

    def __getitem__(self, index):
        return index in self._pairs

    def nonzero_pairs(self):
        return iter(self._pairs)

    def nnz(self):
        return len(self._pairs)

    def multiply(self, other):
        self._require_chainable(other)
        other_pairs = set(other.nonzero_pairs())
        return _FrozenMatrix(
            (self._shape[0], other.shape[1]),
            {(i, j) for i, k in self._pairs for k2, j in other_pairs
             if k == k2},
        )

    def union(self, other):
        self._require_same_shape(other)
        return _FrozenMatrix(self._shape,
                             self._pairs | set(other.nonzero_pairs()))

    def transpose(self):
        return _FrozenMatrix((self._shape[1], self._shape[0]),
                             {(j, i) for i, j in self._pairs})


class _FrozenBackend(MatrixBackend):
    name = "frozen-test"

    def zeros(self, rows, cols=None):
        return _FrozenMatrix((rows, cols if cols is not None else rows), ())

    def from_pairs(self, size, pairs, cols=None):
        return _FrozenMatrix((size, cols if cols is not None else size),
                             pairs)


class TestImmutableFallback:
    def test_flags(self):
        matrix = _FrozenBackend().from_pairs(3, [(0, 1)])
        assert not matrix.supports_inplace
        assert matrix.backend_name == "abstract"

    def test_union_update_fallback_value_semantics(self):
        backend = _FrozenBackend()
        target = backend.from_pairs(3, [(0, 1)])
        other = backend.from_pairs(3, [(0, 1), (1, 2)])
        merged, delta = backend.union_update(target, other)
        assert merged is not target
        assert target.to_pair_set() == {(0, 1)}
        assert merged.to_pair_set() == {(0, 1), (1, 2)}
        assert delta.to_pair_set() == {(1, 2)}

    def test_union_update_fallback_no_change_returns_target(self):
        backend = _FrozenBackend()
        target = backend.from_pairs(3, [(0, 1)])
        merged, delta = backend.union_update(target,
                                             backend.from_pairs(3, [(0, 1)]))
        assert merged is target
        assert delta.nnz() == 0

    def test_generic_difference_interoperates(self):
        backend = _FrozenBackend()
        left = backend.from_pairs(3, [(0, 1), (1, 2)])
        right = backend.from_pairs(3, [(1, 2)])
        delta = left.difference(right)
        assert delta.to_pair_set() == {(0, 1)}

    def test_direct_union_update_raises(self):
        matrix = _FrozenBackend().from_pairs(3, [(0, 1)])
        with pytest.raises(NotImplementedError):
            matrix.union_update(matrix)

    def test_mxm_into_fallback(self):
        backend = _FrozenBackend()
        left = backend.from_pairs(3, [(0, 1)])
        right = backend.from_pairs(3, [(1, 2)])
        accum = backend.from_pairs(3, [(2, 2)])
        merged, delta = backend.mxm_into(left, right, accum)
        assert merged.to_pair_set() == {(0, 2), (2, 2)}
        assert delta.to_pair_set() == {(0, 2)}

    def test_closure_runs_on_immutable_backend(self):
        """The engine end-to-end on a backend without in-place kernels."""
        from repro.core.closure import run_closure

        backend = _FrozenBackend()
        matrices = {
            "A": backend.from_pairs(3, [(0, 1)]),
            "B": backend.from_pairs(3, [(1, 2)]),
            "S": backend.zeros(3),
        }
        result = run_closure(matrices, [("S", "A", "B")], backend,
                             strategy="delta")
        assert result.matrices["S"].to_pair_set() == {(0, 2)}
