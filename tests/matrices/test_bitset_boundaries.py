"""Word-boundary tests for the bit-packed backend.

The bitset backend packs 64 columns per uint64 word; sizes at and
around the word boundary (63/64/65, 127/128/129) are where packing
bugs live, so they get dedicated coverage beyond the generic
backend-parametrized suite (which uses small matrices).
"""

import pytest

from repro.core.transitive_closure import boolean_closure_naive
from repro.matrices.base import get_backend

BOUNDARY_SIZES = [1, 63, 64, 65, 127, 128, 130]


@pytest.fixture
def bitset():
    return get_backend("bitset")


@pytest.fixture
def pyset():
    return get_backend("pyset")


@pytest.mark.parametrize("size", BOUNDARY_SIZES)
def test_corner_cells_round_trip(bitset, size):
    corners = {(0, 0), (0, size - 1), (size - 1, 0), (size - 1, size - 1)}
    matrix = bitset.from_pairs(size, corners)
    assert matrix.to_pair_set() == corners
    assert matrix.nnz() == len(corners)
    for pair in corners:
        assert matrix[pair]


@pytest.mark.parametrize("size", BOUNDARY_SIZES)
def test_identity_multiply_at_boundaries(bitset, size):
    identity = bitset.identity(size)
    diagonal_shifted = bitset.from_pairs(
        size, [(i, (i + 1) % size) for i in range(size)]
    )
    product = diagonal_shifted.multiply(identity)
    assert product.same_pairs(diagonal_shifted)


@pytest.mark.parametrize("size", [63, 64, 65, 128])
def test_multiply_across_word_boundary(bitset, pyset, size):
    """Entries on both sides of the 64-column split must compose."""
    pairs_left = {(0, 62), (0, 1)}
    pairs_right = {(62, 5), (1, 8)}
    if size > 63:
        pairs_left.add((0, 63))
        pairs_right.add((63, 6))
    if size > 64:
        pairs_left.add((0, size - 1))
        pairs_right.add((size - 1, 7))
    bit_product = (bitset.from_pairs(size, pairs_left)
                   .multiply(bitset.from_pairs(size, pairs_right)))
    ref_product = (pyset.from_pairs(size, pairs_left)
                   .multiply(pyset.from_pairs(size, pairs_right)))
    assert bit_product.to_pair_set() == ref_product.to_pair_set()


def test_rectangular_padding_isolated(bitset):
    """Padding bits beyond the logical column count must never leak
    into products (a 70-column matrix uses two words, 58 bits padding)."""
    left = bitset.from_pairs(2, [(0, 69)], cols=70)
    right = bitset.from_pairs(70, [(69, 1)], cols=2)
    assert left.multiply(right).to_pair_set() == {(0, 1)}


def test_transpose_at_boundary(bitset):
    pairs = {(0, 63), (63, 0), (64, 65), (65, 64)}
    matrix = bitset.from_pairs(66, pairs)
    assert matrix.transpose().to_pair_set() == {(j, i) for i, j in pairs}


def test_closure_on_long_cycle(bitset):
    """A 100-node cycle closes to the complete relation — exercises
    repeated cross-word products."""
    matrix = bitset.from_pairs(100, [(i, (i + 1) % 100) for i in range(100)])
    closed = boolean_closure_naive(matrix)
    assert closed.nnz() == 100 * 100


def test_nnz_popcount_large(bitset):
    pairs = {(i, (i * 37) % 200) for i in range(200)}
    assert bitset.from_pairs(200, pairs).nnz() == len(pairs)


def test_out_of_range_pair_rejected(bitset):
    with pytest.raises(ValueError):
        bitset.from_pairs(4, [(0, 4)])


# ----------------------------------------------------------------------
# Spill/mmap round-trips at word boundaries
# ----------------------------------------------------------------------
# The tile store spills bitset tiles as raw word buffers and reloads
# them through a private mmap; widths not divisible by 64 are where a
# sliced or mis-sized buffer would corrupt the pad bits.

def _dense_boundary_pairs(size):
    """Every cell of the last column plus a diagonal — touches the
    highest bit of the last word in every row."""
    pairs = {(i, size - 1) for i in range(size)}
    pairs.update((i, i) for i in range(size))
    return pairs


@pytest.mark.parametrize("size", BOUNDARY_SIZES)
def test_spill_reload_round_trip_at_boundaries(bitset, size, tmp_path):
    from repro.core.tilestore import TileStore

    pairs = _dense_boundary_pairs(size)
    store = TileStore(budget_bytes=1, spill_dir=str(tmp_path))
    store.put(("A", 0, 0), bitset.from_pairs(size, pairs))
    store.put(("B", 0, 0), bitset.identity(size))  # evicts A to disk
    reloaded = store.get(("A", 0, 0))
    assert reloaded.to_pair_set() == pairs
    assert reloaded.nnz() == len(pairs)
    store.close()


@pytest.mark.parametrize("size", [63, 65, 127, 130])
def test_pad_words_stay_zero_after_reload(bitset, size, tmp_path):
    """The mmap reload must hand back the exact word buffer: the pad
    bits beyond the logical column count stay zero, so popcounts and
    products after a reload match the never-spilled matrix."""
    import numpy as np

    from repro.core.tilestore import TileStore

    pairs = _dense_boundary_pairs(size)
    store = TileStore(budget_bytes=1, spill_dir=str(tmp_path))
    store.put(("A", 0, 0), bitset.from_pairs(size, pairs))
    store.put(("B", 0, 0), bitset.identity(size))
    reloaded = store.get(("A", 0, 0))
    words = reloaded._words  # the packed uint64 buffer
    pad_bits = -size % 64
    pad_mask = np.uint64(((1 << pad_bits) - 1) << (size % 64))
    assert not np.any(words[:, -1] & pad_mask)
    # A product through the reloaded matrix must not see pad columns.
    product = reloaded.multiply(bitset.identity(size))
    assert product.to_pair_set() == pairs
    store.close()


@pytest.mark.parametrize("size", [63, 65, 130])
def test_mutation_after_reload_stays_private(bitset, size, tmp_path):
    """ACCESS_COPY semantics: writing into a reloaded matrix must not
    corrupt the spill file that later reloads read."""
    from repro.core.tilestore import TileStore

    pairs = {(0, size - 1)}
    store = TileStore(budget_bytes=1, spill_dir=str(tmp_path))
    store.put(("A", 0, 0), bitset.from_pairs(size, pairs))
    store.put(("B", 0, 0), bitset.identity(size))  # spill A
    first = store.get(("A", 0, 0))
    first.union_update(bitset.from_pairs(size, [(size - 1, 0)]))
    store.put(("C", 0, 0), bitset.identity(size))  # evict A again
    # A was never marked changed, so its spill file is authoritative.
    assert store.get(("A", 0, 0)).to_pair_set() == pairs
    store.close()
