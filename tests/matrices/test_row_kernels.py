"""Row kernels (``gather_rows`` / ``mask_rows``) across all backends.

These back the batched mask path: ``gather_rows`` stacks arbitrary rows
of a closed matrix into a fresh seed block, ``mask_rows`` restricts a
matrix to a row subset without changing its shape.  Every backend's
native override must agree exactly with the generic coordinate
implementation on :class:`~repro.matrices.base.MatrixBackend`.
"""

from __future__ import annotations

import random

import pytest

from repro.matrices.base import MatrixBackend, available_backends, get_backend

PAIRS = {(0, 1), (0, 3), (1, 2), (2, 0), (3, 3), (3, 1)}


def _generic(backend, method, *args):
    """Call the base-class (generic) implementation against a backend's
    own matrices, bypassing any native override."""
    return getattr(MatrixBackend, method)(backend, *args)


class TestGatherRows:
    def test_stacks_listed_rows(self, backend):
        matrix = backend.from_pairs(4, PAIRS)
        gathered = backend.gather_rows(matrix, [3, 0])
        assert gathered.shape == (2, 4)
        assert set(gathered.nonzero_pairs()) == {
            (0, 3), (0, 1),  # old row 3
            (1, 1), (1, 3),  # old row 0
        }

    def test_duplicates_and_order(self, backend):
        matrix = backend.from_pairs(4, PAIRS)
        gathered = backend.gather_rows(matrix, [1, 1, 2])
        assert gathered.shape == (3, 4)
        assert set(gathered.nonzero_pairs()) == {(0, 2), (1, 2), (2, 0)}

    def test_empty_row_list(self, backend):
        matrix = backend.from_pairs(4, PAIRS)
        gathered = backend.gather_rows(matrix, [])
        assert gathered.shape == (0, 4)
        assert gathered.nnz() == 0

    def test_result_is_a_copy(self, backend):
        matrix = backend.from_pairs(4, PAIRS)
        gathered = backend.gather_rows(matrix, [0, 1])
        backend.union_update(gathered,
                             backend.from_pairs(2, {(0, 0)}, cols=4))
        assert not matrix[0, 0]

    def test_out_of_range(self, backend):
        matrix = backend.from_pairs(4, PAIRS)
        with pytest.raises(IndexError):
            backend.gather_rows(matrix, [4])
        with pytest.raises(IndexError):
            backend.gather_rows(matrix, [-1])

    def test_rectangular(self, backend):
        matrix = backend.from_pairs(3, {(0, 4), (2, 1)}, cols=5)
        gathered = backend.gather_rows(matrix, [2, 0])
        assert gathered.shape == (2, 5)
        assert set(gathered.nonzero_pairs()) == {(0, 1), (1, 4)}


class TestMaskRows:
    def test_keeps_only_listed_rows(self, backend):
        matrix = backend.from_pairs(4, PAIRS)
        masked = backend.mask_rows(matrix, [0, 3])
        assert masked.shape == (4, 4)
        assert set(masked.nonzero_pairs()) == {
            (0, 1), (0, 3), (3, 3), (3, 1)
        }

    def test_empty_keep(self, backend):
        matrix = backend.from_pairs(4, PAIRS)
        masked = backend.mask_rows(matrix, [])
        assert masked.shape == (4, 4)
        assert masked.nnz() == 0

    def test_result_is_a_copy(self, backend):
        matrix = backend.from_pairs(4, PAIRS)
        masked = backend.mask_rows(matrix, [0])
        backend.union_update(masked, backend.from_pairs(4, {(2, 2)}))
        assert not matrix[2, 2]

    def test_out_of_range(self, backend):
        matrix = backend.from_pairs(4, PAIRS)
        with pytest.raises(IndexError):
            backend.mask_rows(matrix, [7])


class TestNativeMatchesGeneric:
    """Every backend's fast path must agree with the generic kernel."""

    def test_gather_parity(self, backend):
        rng = random.Random(11)
        for _ in range(10):
            pairs = {(rng.randrange(6), rng.randrange(6))
                     for _ in range(rng.randrange(1, 14))}
            matrix = backend.from_pairs(6, pairs)
            rows = [rng.randrange(6) for _ in range(rng.randrange(1, 9))]
            native = backend.gather_rows(matrix, rows)
            generic = _generic(backend, "gather_rows", matrix, rows)
            assert native.shape == generic.shape
            assert set(native.nonzero_pairs()) \
                == set(generic.nonzero_pairs())

    def test_mask_parity(self, backend):
        rng = random.Random(13)
        for _ in range(10):
            pairs = {(rng.randrange(6), rng.randrange(6))
                     for _ in range(rng.randrange(1, 14))}
            matrix = backend.from_pairs(6, pairs)
            keep = {rng.randrange(6) for _ in range(rng.randrange(0, 5))}
            native = backend.mask_rows(matrix, keep)
            generic = _generic(backend, "mask_rows", matrix, keep)
            assert native.shape == generic.shape
            assert set(native.nonzero_pairs()) \
                == set(generic.nonzero_pairs())


def test_foreign_matrix_gather():
    """A backend must gather rows of another backend's matrix (the
    generic path goes through nonzero_pairs, so this is exercised
    whenever fewer than two backends are installed too)."""
    names = available_backends()
    if len(names) < 2:
        pytest.skip("needs two backends")
    left = get_backend(names[0])
    right = get_backend(names[1])
    matrix = right.from_pairs(4, PAIRS)
    gathered = MatrixBackend.gather_rows(left, matrix, [3, 0])
    assert gathered.shape == (2, 4)
    assert set(gathered.nonzero_pairs()) == {
        (0, 3), (0, 1), (1, 1), (1, 3)
    }
