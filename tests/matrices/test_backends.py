"""Backend-parametrized and property tests for boolean matrices.

The three backends must be observationally identical; the pure-Python
``pyset`` backend serves as the specification the NumPy/SciPy ones are
checked against.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionMismatchError, UnknownBackendError
from repro.matrices.base import available_backends, get_backend


class TestRegistry:
    def test_three_default_backends(self):
        assert set(available_backends()) >= {"dense", "sparse", "pyset"}

    def test_get_backend_by_name(self):
        assert get_backend("dense").name == "dense"

    def test_get_backend_passthrough(self):
        backend = get_backend("sparse")
        assert get_backend(backend) is backend

    def test_unknown_backend(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            get_backend("gpu")
        assert "dense" in str(excinfo.value)


class TestBasics:
    def test_zeros(self, backend):
        matrix = backend.zeros(3)
        assert matrix.shape == (3, 3)
        assert matrix.nnz() == 0
        assert matrix.is_square

    def test_rectangular(self, backend):
        matrix = backend.zeros(2, 5)
        assert matrix.shape == (2, 5)
        assert not matrix.is_square

    def test_from_pairs_and_getitem(self, backend):
        matrix = backend.from_pairs(3, [(0, 1), (2, 2)])
        assert matrix[(0, 1)] and matrix[(2, 2)]
        assert not matrix[(1, 1)]
        assert matrix.nnz() == 2

    def test_nonzero_pairs(self, backend):
        pairs = {(0, 1), (1, 2), (2, 0)}
        matrix = backend.from_pairs(3, pairs)
        assert set(matrix.nonzero_pairs()) == pairs

    def test_identity(self, backend):
        matrix = backend.identity(4)
        assert matrix.to_pair_set() == {(i, i) for i in range(4)}

    def test_from_dense_rows(self, backend):
        matrix = backend.from_dense_rows([[0, 1], [1, 0]])
        assert matrix.to_pair_set() == {(0, 1), (1, 0)}

    def test_transpose(self, backend):
        matrix = backend.from_pairs(3, [(0, 2), (1, 0)])
        assert matrix.transpose().to_pair_set() == {(2, 0), (0, 1)}


class TestAlgebra:
    def test_multiply_path_composition(self, backend):
        # edges 0->1, 1->2: the product holds exactly 0->2
        matrix = backend.from_pairs(3, [(0, 1), (1, 2)])
        product = matrix.multiply(matrix)
        assert product.to_pair_set() == {(0, 2)}

    def test_multiply_operator(self, backend):
        matrix = backend.from_pairs(2, [(0, 1)])
        assert (matrix @ matrix).nnz() == 0

    def test_union(self, backend):
        left = backend.from_pairs(2, [(0, 0)])
        right = backend.from_pairs(2, [(1, 1)])
        assert (left | right).to_pair_set() == {(0, 0), (1, 1)}

    def test_union_idempotent(self, backend):
        matrix = backend.from_pairs(2, [(0, 1)])
        assert matrix.union(matrix).same_pairs(matrix)

    def test_multiply_identity(self, backend):
        matrix = backend.from_pairs(3, [(0, 1), (2, 2)])
        identity = backend.identity(3)
        assert matrix.multiply(identity).same_pairs(matrix)
        assert identity.multiply(matrix).same_pairs(matrix)

    def test_rectangular_multiply(self, backend):
        left = backend.from_pairs(2, [(0, 0), (1, 2)], cols=3)
        right = backend.from_pairs(3, [(0, 1), (2, 0)], cols=2)
        product = left.multiply(right)
        assert product.shape == (2, 2)
        assert product.to_pair_set() == {(0, 1), (1, 0)}

    def test_shape_mismatch_union(self, backend):
        with pytest.raises(DimensionMismatchError):
            backend.zeros(2).union(backend.zeros(3))

    def test_shape_mismatch_multiply(self, backend):
        with pytest.raises(DimensionMismatchError):
            backend.zeros(2, 3).multiply(backend.zeros(2, 3))

    def test_dominates(self, backend):
        big = backend.from_pairs(2, [(0, 0), (0, 1)])
        small = backend.from_pairs(2, [(0, 0)])
        assert big.dominates(small)
        assert not small.dominates(big)

    def test_same_pairs(self, backend):
        a = backend.from_pairs(2, [(0, 1)])
        b = backend.from_pairs(2, [(0, 1)])
        c = backend.from_pairs(2, [(1, 0)])
        assert a.same_pairs(b)
        assert not a.same_pairs(c)


class TestCrossBackendMixing:
    """Operations accept matrices from other backends (conversion)."""

    def test_union_mixed(self):
        dense = get_backend("dense").from_pairs(2, [(0, 0)])
        sparse = get_backend("sparse").from_pairs(2, [(1, 1)])
        assert dense.union(sparse).to_pair_set() == {(0, 0), (1, 1)}

    def test_multiply_mixed(self):
        pyset = get_backend("pyset").from_pairs(2, [(0, 1)])
        dense = get_backend("dense").from_pairs(2, [(1, 0)])
        assert pyset.multiply(dense).to_pair_set() == {(0, 0)}


# ----------------------------------------------------------------------
# Property tests: all backends agree with the pyset specification.
# ----------------------------------------------------------------------

_SIZE = 5
pair_sets = st.sets(
    st.tuples(st.integers(0, _SIZE - 1), st.integers(0, _SIZE - 1)),
    max_size=12,
)


@given(left_pairs=pair_sets, right_pairs=pair_sets)
@settings(max_examples=100, deadline=None)
def test_backends_agree_on_multiply(left_pairs, right_pairs):
    reference = None
    for name in available_backends():
        backend = get_backend(name)
        left = backend.from_pairs(_SIZE, left_pairs)
        right = backend.from_pairs(_SIZE, right_pairs)
        result = left.multiply(right).to_pair_set()
        if reference is None:
            reference = result
        else:
            assert result == reference, f"{name} disagrees on multiply"


@given(left_pairs=pair_sets, right_pairs=pair_sets)
@settings(max_examples=100, deadline=None)
def test_backends_agree_on_union(left_pairs, right_pairs):
    expected = left_pairs | right_pairs
    for name in available_backends():
        backend = get_backend(name)
        left = backend.from_pairs(_SIZE, left_pairs)
        right = backend.from_pairs(_SIZE, right_pairs)
        assert left.union(right).to_pair_set() == expected


@given(pairs=pair_sets)
@settings(max_examples=50, deadline=None)
def test_transpose_involution(pairs):
    for name in available_backends():
        backend = get_backend(name)
        matrix = backend.from_pairs(_SIZE, pairs)
        assert matrix.transpose().transpose().to_pair_set() == pairs


@given(a=pair_sets, b=pair_sets, c=pair_sets)
@settings(max_examples=60, deadline=None)
def test_multiply_distributes_over_union(a, b, c):
    """(a ∪ b) × c == (a × c) ∪ (b × c) — the semiring law the closure
    correctness rests on."""
    backend = get_backend("pyset")
    ma = backend.from_pairs(_SIZE, a)
    mb = backend.from_pairs(_SIZE, b)
    mc = backend.from_pairs(_SIZE, c)
    left = ma.union(mb).multiply(mc).to_pair_set()
    right = ma.multiply(mc).union(mb.multiply(mc)).to_pair_set()
    assert left == right
