"""Differential guarantee: tracing observes, it never steers.

The same solve with tracing off and tracing on (full sampling, every
span recorded) must produce **byte-identical** results — relation pair
sets, iteration counts, multiplication counts — across every closure
strategy × backend combination.  Metrics share the guarantee: nothing
on a query path reads the registry.
"""

from __future__ import annotations

import json

import pytest

from repro.core.closure import available_strategies
from repro.core.matrix_cfpq import solve_matrix
from repro.graph.generators import random_graph
from repro.grammar.parser import parse_grammar
from repro.matrices.base import available_backends
from repro.obs.trace import MemorySink, configure_tracing, reset_tracing

GRAMMAR = parse_grammar("S -> a S b | a b | S S", terminals=["a", "b"])


def _canonical(result) -> bytes:
    """A byte-level fingerprint of everything a solve reports."""
    payload = {
        "pairs": sorted(map(list, result.relations.pairs("S"))),
        "iterations": result.stats.iterations,
        "multiplications": result.stats.multiplications,
        "delta_nnz": list(result.stats.delta_nnz_per_round),
        "total_entries": result.stats.total_entries,
    }
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def _solve(backend: str, strategy: str):
    graph = random_graph(40, 140, ["a", "b"], seed=11)
    options = {}
    if strategy in ("blocked", "autotune"):
        options["tile_size"] = 16
    return solve_matrix(graph, GRAMMAR, backend=backend,
                        strategy=strategy, **options)


@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("strategy", available_strategies())
def test_trace_on_off_byte_identity(backend, strategy):
    configure_tracing(enabled=False)
    untraced = _canonical(_solve(backend, strategy))

    sink = MemorySink()
    configure_tracing(sink=sink)
    traced = _canonical(_solve(backend, strategy))
    records = sink.drain()
    reset_tracing()

    assert traced == untraced
    # And tracing actually happened — a vacuous pass would prove nothing.
    assert any(record["name"] == "closure" for record in records)


def test_sampled_tracing_is_also_non_semantic():
    configure_tracing(enabled=False)
    untraced = _canonical(_solve("pyset", "delta"))
    configure_tracing(sink=MemorySink(), sample_every=5)
    sampled = _canonical(_solve("pyset", "delta"))
    reset_tracing()
    assert sampled == untraced
