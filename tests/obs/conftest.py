"""Observability test isolation: every test gets a fresh registry and
a clean (environment-resolved) tracer, and leaves none behind."""

from __future__ import annotations

import pytest

from repro.obs.metrics import reset_metrics
from repro.obs.trace import reset_tracing


@pytest.fixture(autouse=True)
def _fresh_observability():
    reset_metrics()
    reset_tracing()
    yield
    reset_metrics()
    reset_tracing()
