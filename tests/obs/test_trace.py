"""Tracing: span nesting (including across thread and process tile
schedulers), root sampling, sinks, the decorator, and the summarizer."""

from __future__ import annotations

import json
import threading

import pytest

from repro.graph.generators import random_graph
from repro.obs.summarize import render_summary, summarize_trace
from repro.obs.trace import (
    NULL_TRACER,
    MemorySink,
    TraceFileSink,
    Tracer,
    configure_tracing,
    get_tracer,
    reset_tracing,
    stopwatch,
    traced,
)


def _by_name(records):
    return {record["name"]: record for record in records}


class TestStopwatch:
    def test_freezes_on_exit(self):
        with stopwatch() as timer:
            pass
        frozen = timer.elapsed
        assert frozen == timer.elapsed >= 0

    def test_live_reading_grows(self):
        timer = stopwatch()
        first = timer.elapsed
        assert timer.elapsed >= first


class TestSpanNesting:
    def test_parent_child_ids(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer", kind="test") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        records = _by_name(sink.drain())
        assert records["inner"]["parent_id"] == records["outer"]["span_id"]
        assert records["outer"]["parent_id"] is None
        assert records["outer"]["attrs"] == {"kind": "test"}
        assert records["inner"]["dur_s"] <= records["outer"]["dur_s"]

    def test_siblings_share_parent(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("parent") as parent:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        records = _by_name(sink.drain())
        assert records["a"]["parent_id"] == parent.span_id
        assert records["b"]["parent_id"] == parent.span_id

    def test_explicit_parent_ref_across_threads(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("root"):
            ref = tracer.current_ref()

            def worker():
                with tracer.span("threaded", parent_ref=ref):
                    pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        records = _by_name(sink.drain())
        assert records["threaded"]["parent_id"] == records["root"]["span_id"]
        assert records["threaded"]["trace_id"] == records["root"]["trace_id"]

    def test_ingest_splices_worker_records(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("parent") as parent:
            # Simulate a process worker: separate tracer, shipped records.
            worker_sink = MemorySink()
            worker = Tracer(worker_sink)
            with worker.span("shipped", parent_ref=parent.ref):
                pass
            tracer.ingest(worker_sink.drain())
        records = _by_name(sink.drain())
        assert records["shipped"]["parent_id"] == records["parent"]["span_id"]

    def test_collect_sees_concurrent_records(self):
        tracer = Tracer(None)
        with tracer.collect() as records:
            with tracer.span("watched"):
                pass
        assert [record["name"] for record in records] == ["watched"]
        with tracer.span("after"):
            pass
        assert len(records) == 1  # collector detached


class TestSampling:
    def test_every_nth_root_kept(self):
        sink = MemorySink()
        tracer = Tracer(sink, sample_every=3)
        for _ in range(9):
            with tracer.span("root"):
                with tracer.span("child"):
                    pass
        records = sink.drain()
        assert sum(r["name"] == "root" for r in records) == 3
        # Children of sampled-out roots are suppressed, not new roots.
        assert sum(r["name"] == "child" for r in records) == 3
        assert all(r["parent_id"] is None for r in records
                   if r["name"] == "root")


class TestNullTracer:
    def test_null_is_free_and_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything", attr=1) as span:
            span.set("ignored", True)
        assert NULL_TRACER.current_ref() is None

    def test_environment_defaults_to_null(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_FILE", raising=False)
        reset_tracing()
        assert get_tracer() is NULL_TRACER

    def test_environment_file_enables(self, monkeypatch, tmp_path):
        path = tmp_path / "trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE_FILE", str(path))
        reset_tracing()
        tracer = get_tracer()
        assert tracer.enabled
        with tracer.span("envroot"):
            pass
        reset_tracing()
        assert "envroot" in path.read_text()


class TestTraceFileSink:
    def test_writes_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = configure_tracing(trace_file=str(path))
        with tracer.span("a"):
            pass
        reset_tracing()
        lines = [json.loads(line)
                 for line in path.read_text().splitlines() if line]
        assert lines[0]["name"] == "a"

    def test_rotation_keeps_two_generations(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = TraceFileSink(str(path), max_bytes=400)
        tracer = Tracer(sink)
        for index in range(40):
            with tracer.span(f"span{index}"):
                pass
        sink.close()
        assert path.exists()
        assert (tmp_path / "trace.jsonl.1").exists()


class TestDecorator:
    def test_traced_uses_global_tracer(self):
        sink = MemorySink()
        configure_tracing(sink=sink)

        @traced(stage="t")
        def work(x):
            return x * 2

        assert work(21) == 42
        records = sink.drain()
        assert records[0]["name"].endswith("work")
        assert records[0]["attrs"] == {"stage": "t"}
        reset_tracing()


class TestSchedulerSpanNesting:
    """Tile-group spans must parent onto the closure scheduler span for
    every scheduler — threads and processes cannot rely on implicit
    contextvar inheritance."""

    @pytest.mark.parametrize("scheduler", ["serial", "threads", "process"])
    def test_tile_groups_parent_on_scheduler_span(self, scheduler):
        from repro.core.matrix_cfpq import solve_matrix
        from repro.grammar.parser import parse_grammar

        sink = MemorySink()
        configure_tracing(sink=sink)
        graph = random_graph(48, 160, ["e"], seed=7)
        grammar = parse_grammar("S -> e | S S", terminals=["e"])
        solve_matrix(graph, grammar, backend="pyset", strategy="blocked",
                     tile_size=16, scheduler=scheduler)
        records = sink.drain()
        reset_tracing()
        groups = [r for r in records if r["name"] == "tile.group"]
        scheduler_ids = {r["span_id"] for r in records
                         if r["name"] == "closure.scheduler"}
        assert groups, "blocked closure produced no tile.group spans"
        assert all(g["parent_id"] in scheduler_ids for g in groups)
        assert all(g["attrs"]["scheduler"] == scheduler for g in groups)


class TestSummarize:
    def _records(self):
        return [
            json.dumps({"name": "closure", "trace_id": "t", "span_id": "1",
                        "parent_id": None, "ts": 0.0, "dur_s": 1.0,
                        "attrs": {}}),
            json.dumps({"name": "closure.round", "trace_id": "t",
                        "span_id": "2", "parent_id": "1", "ts": 0.0,
                        "dur_s": 0.6, "attrs": {}}),
            json.dumps({"name": "closure.round", "trace_id": "t",
                        "span_id": "3", "parent_id": "1", "ts": 0.0,
                        "dur_s": 0.3, "attrs": {}}),
        ]

    def test_self_time_subtracts_direct_children(self):
        summary = summarize_trace(self._records())
        closure = summary["spans"]["closure"]
        rounds = summary["spans"]["closure.round"]
        assert closure["total_s"] == pytest.approx(1.0)
        assert closure["self_s"] == pytest.approx(0.1)
        assert rounds["count"] == 2
        assert rounds["self_s"] == pytest.approx(0.9)
        assert summary["total_self_s"] == pytest.approx(1.0)
        assert summary["traces"] == 1

    def test_render_contains_table(self):
        text = render_summary(summarize_trace(self._records()))
        assert "phase" in text and "self_s" in text
        assert "closure.round" in text

    def test_summarize_reads_files(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(self._records()) + "\n")
        summary = summarize_trace(str(path))
        assert summary["records"] == 3
