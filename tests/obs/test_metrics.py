"""Metrics registry: counters, gauges, histogram bucket math, the
Prometheus text exposition, and registry get-or-create semantics."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    render_prometheus,
    reset_metrics,
)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labelled_series_are_independent(self):
        counter = Counter("c", "help", ("op",))
        counter.inc(op="query")
        counter.inc(3, op="update")
        assert counter.value(op="query") == 1
        assert counter.value(op="update") == 3
        assert counter.value(op="ping") == 0

    def test_counters_only_go_up(self):
        with pytest.raises(ValueError):
            Counter("c", "help").inc(-1)

    def test_label_mismatch_rejected(self):
        counter = Counter("c", "help", ("op",))
        with pytest.raises(ValueError):
            counter.inc(wrong="x")
        with pytest.raises(ValueError):
            counter.inc()


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g", "help")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value() == 12


class TestHistogramBucketMath:
    def test_bucket_assignment_is_first_upper_bound_at_or_above(self):
        histogram = Histogram("h", "help", buckets=(1, 2, 4))
        for value in (0.5, 1.0, 1.5, 4.0, 99.0):
            histogram.observe(value)
        # Raw (non-cumulative) counts: le=1 gets 0.5 and 1.0; le=2 gets
        # 1.5; le=4 gets 4.0; +Inf gets 99.0.
        samples = dict(((name, key), value)
                       for name, key, value in histogram.samples())
        assert samples[("h_bucket", ("1",))] == 2           # cumulative
        assert samples[("h_bucket", ("2",))] == 3
        assert samples[("h_bucket", ("4",))] == 4
        assert samples[("h_bucket", ("+Inf",))] == 5
        assert samples[("h_count", ())] == 5
        assert samples[("h_sum", ())] == pytest.approx(106.0)

    def test_count_and_sum_accessors(self):
        histogram = Histogram("h", "help", ("k",), buckets=(1, 10))
        histogram.observe(0.5, k="a")
        histogram.observe(5, k="a")
        assert histogram.count(k="a") == 2
        assert histogram.sum(k="a") == pytest.approx(5.5)
        assert histogram.count(k="b") == 0

    def test_quantile_interpolates_within_bucket(self):
        histogram = Histogram("h", "help", buckets=(10, 20))
        for _ in range(10):
            histogram.observe(15)  # all land in the (10, 20] bucket
        # Rank q*10 observations into a bucket spanning 10..20: the
        # interpolated quantile moves linearly across the bucket.
        assert histogram.quantile(0.0) == pytest.approx(10.0)
        assert histogram.quantile(0.5) == pytest.approx(15.0)
        assert histogram.quantile(1.0) == pytest.approx(20.0)

    def test_quantile_clamps_inf_bucket_and_handles_empty(self):
        histogram = Histogram("h", "help", buckets=(1, 2))
        assert histogram.quantile(0.5) is None
        histogram.observe(1000)
        assert histogram.quantile(0.99) == pytest.approx(2.0)

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram("h", "help", buckets=(1,)).quantile(1.5)

    def test_bucket_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", "help", buckets=(1, 1))
        with pytest.raises(ValueError):
            Histogram("h", "help", buckets=())


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("requests", "help", ("op",))
        again = registry.counter("requests", "different help", ("op",))
        assert first is again

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x", "help")
        with pytest.raises(ValueError):
            registry.gauge("x", "help")

    def test_label_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x", "help", ("a",))
        with pytest.raises(ValueError):
            registry.counter("x", "help", ("b",))

    def test_reset_swaps_default_registry(self):
        before = get_registry()
        before.counter("leftover", "x").inc()
        after = reset_metrics()
        assert get_registry() is after
        assert after is not before
        assert after.get("leftover") is None

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c", "help", ("op",)).inc(op="query")
        snapshot = registry.snapshot()
        assert snapshot["c"]["kind"] == "counter"
        assert snapshot["c"]["samples"] == [["c", ["query"], 1]]


class TestPrometheusRendering:
    def test_golden_exposition(self):
        registry = MetricsRegistry()
        registry.counter("repro_requests_total", "Requests handled",
                         ("op",)).inc(3, op="query")
        registry.gauge("repro_lag", "Replay lag").set(2)
        histogram = registry.histogram("repro_seconds", "Latency",
                                       buckets=(0.5, 1))
        histogram.observe(0.25)
        histogram.observe(0.75)
        histogram.observe(5)
        assert render_prometheus(registry) == (
            "# HELP repro_lag Replay lag\n"
            "# TYPE repro_lag gauge\n"
            "repro_lag 2\n"
            "# HELP repro_requests_total Requests handled\n"
            "# TYPE repro_requests_total counter\n"
            'repro_requests_total{op="query"} 3\n'
            "# HELP repro_seconds Latency\n"
            "# TYPE repro_seconds histogram\n"
            'repro_seconds_bucket{le="0.5"} 1\n'
            'repro_seconds_bucket{le="1"} 2\n'
            'repro_seconds_bucket{le="+Inf"} 3\n'
            "repro_seconds_sum 6\n"
            "repro_seconds_count 3\n"
        )

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", "h", ("v",)).inc(v='say "hi"\nplease\\now')
        text = render_prometheus(registry)
        assert 'v="say \\"hi\\"\\nplease\\\\now"' in text
