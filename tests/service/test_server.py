"""JSONL server: request handling, stdio loop, TCP transport, CLI."""

from __future__ import annotations

import io
import json
import os
import socket
import subprocess
import sys
import threading

import pytest

from repro import QueryService, parse_grammar
from repro.graph.generators import two_cycles, word_chain
from repro.graph.io import save_graph_file
from repro.service.server import (
    JSONLServer,
    handle_request,
    serve_stream,
)

ANBN = parse_grammar("S -> a S b | a b", terminals=["a", "b"])


@pytest.fixture
def service():
    return QueryService(two_cycles(2, 3), ANBN, single_path=True)


class TestHandleRequest:
    def test_relational_query(self, service):
        response = handle_request(service, {"op": "query", "start": "S"})
        assert response["ok"] is True
        assert [0, 0] in response["result"]

    def test_membership_and_path(self, service):
        member = handle_request(service, {
            "op": "query", "start": "S", "source": 0, "target": 0,
        })
        assert member["result"] is True
        path = handle_request(service, {
            "op": "query", "start": "S", "source": 0, "target": 0,
            "semantics": "single-path",
        })
        assert path["ok"] and len(path["result"]) >= 2
        assert all(len(edge) == 3 for edge in path["result"])

    def test_node_coercion_for_string_tokens(self, service):
        # Graph nodes are ints; JSON clients may send "0".
        response = handle_request(service, {
            "op": "query", "start": "S", "source": "0", "target": "0",
        })
        assert response["result"] is True

    def test_update_coerces_node_tokens_like_queries(self, service):
        """String tokens in updates must attach to the existing integer
        nodes, not silently create twin nodes."""
        nodes_before = service.graph.node_count
        response = handle_request(service, {
            "op": "update",
            "insert": [["0", "a", "1"]],        # both nodes exist as ints
            "delete": [["0", "a", "1"]],
        })
        assert response["ok"], response
        assert service.graph.node_count == nodes_before
        assert not service.graph.has_node("0")
        assert service.query("S", 0, 0) is False  # real edge 0-a->1 deleted

    def test_update_and_stats(self, service):
        handle_request(service, {"op": "query", "start": "S"})
        update = handle_request(service, {
            "op": "update",
            "ops": [["insert", "u", "a", "v"], ["delete", "u", "a", "v"],
                    ["insert", "u", "a", "v"]],
            "insert": [["v", "b", "u"]],
        })
        assert update["ok"] is True
        assert update["result"]["coalesced_away"] == 2
        assert update["result"]["frontier_runs"] == 1
        stats = handle_request(service, {"op": "stats"})["result"]
        assert stats["ticks"] == 1
        assert stats["cache_invalidations"] == update["result"][
            "invalidated_entries"]

    def test_save_and_reload(self, service, tmp_path):
        path = str(tmp_path / "via-server.snapshot")
        response = handle_request(service, {"op": "save", "path": path})
        assert response["ok"] and response["result"]["bytes"] > 0
        warm = QueryService.from_snapshot(path)
        assert warm.stats["startup"]["closure_iterations"] == 0

    def test_errors_are_responses_not_exceptions(self, service):
        for request in (
            "not an object",
            {"op": "no-such-op"},
            {"op": "query"},                              # missing start
            {"op": "query", "start": "Missing"},          # unknown symbol
            {"op": "query", "start": "S", "source": 0},   # half endpoints
            {"op": "query", "start": "S", "source": 9, "target": 9,
             "semantics": "single-path"},                 # no such path
            {"op": "update"},
            {"op": "save"},
        ):
            response = handle_request(service, request)
            assert response["ok"] is False
            assert response["error"]

    def test_stats_attachment(self, service):
        response = handle_request(service, {"op": "ping"},
                                  include_stats=True)
        assert response["result"] == "pong"
        assert "cache_hit_rate" in response["stats"]
        assert "startup" in response["stats"]


class TestStdioLoop:
    def test_scripted_session(self, service):
        lines = [
            {"op": "query", "start": "S"},
            {"op": "query", "start": "S"},
            "this is not json",
            {"op": "stats"},
        ]
        stdin = io.StringIO("\n".join(
            line if isinstance(line, str) else json.dumps(line)
            for line in lines
        ) + "\n")
        stdout = io.StringIO()
        served = serve_stream(service, stdin, stdout)
        responses = [json.loads(line)
                     for line in stdout.getvalue().splitlines()]
        assert served == 4
        assert [r["ok"] for r in responses] == [True, True, False, True]
        assert responses[3]["result"]["cache_hits"] == 1

    def test_shutdown_op_ends_loop(self, service):
        stdin = io.StringIO(
            json.dumps({"op": "shutdown"}) + "\n"
            + json.dumps({"op": "ping"}) + "\n"
        )
        stdout = io.StringIO()
        assert serve_stream(service, stdin, stdout) == 1


class TestTCP:
    def test_concurrent_clients_share_state(self, service):
        server = JSONLServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]

        def session(requests):
            with socket.create_connection((host, port), timeout=10) as sock:
                stream = sock.makefile("rw", encoding="utf-8")
                out = []
                for request in requests:
                    stream.write(json.dumps(request) + "\n")
                    stream.flush()
                    out.append(json.loads(stream.readline()))
                return out

        try:
            results: list = [None, None]

            def client(index):
                results[index] = session([{"op": "query", "start": "S"}])

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert results[0][0]["result"] == results[1][0]["result"]

            # An update through one connection is visible to the next.
            session([{"op": "update", "insert": [["p", "a", "q"],
                                                 ["q", "b", "p"]]}])
            check = session([{"op": "query", "start": "S",
                              "source": "p", "target": "p"}])
            assert check[0]["result"] is True
            stats = session([{"op": "stats"}])[0]["result"]
            assert stats["ticks"] == 1 and stats["queries"] >= 3
        finally:
            server.shutdown()
            server.server_close()


class TestServeCLI:
    def test_snapshot_then_serve_session(self, tmp_path):
        """The CI service-smoke recipe: snapshot, then a scripted
        query/update/query stdio session asserting invalidation stats."""
        graph_file = str(tmp_path / "chain.txt")
        save_graph_file(word_chain(["a", "a", "b", "b"]), graph_file)
        snapshot = str(tmp_path / "chain.snapshot")
        env = {**os.environ,
               "PYTHONPATH": "src" + os.pathsep
               + os.environ.get("PYTHONPATH", "")}
        cwd = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))

        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "snapshot",
             "--graph", graph_file, "--grammar-name", "dyck1",
             "--output", snapshot,
             "--semantics", "relational", "single-path"],
            capture_output=True, text=True, env=env, cwd=cwd, timeout=120,
        )
        assert result.returncode == 0, result.stderr

        session = "\n".join(json.dumps(line) for line in [
            {"op": "query", "start": "S"},
            {"op": "query", "start": "S"},
            {"op": "update", "insert": [[4, "a", 5], [5, "b", 6]]},
            {"op": "query", "start": "S"},
            {"op": "stats"},
        ]) + "\n"
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "serve",
             "--snapshot", snapshot, "--stats"],
            input=session, capture_output=True, text=True, env=env,
            cwd=cwd, timeout=120,
        )
        assert result.returncode == 0, result.stderr
        responses = [json.loads(line)
                     for line in result.stdout.splitlines()]
        assert all(r["ok"] for r in responses)
        # Warm start: zero closure rounds before the first answer.
        assert responses[0]["stats"]["startup"]["closure_iterations"] == 0
        # Second identical query was a cache hit...
        assert responses[1]["stats"]["cache_hit_rate"] == 0.5
        # ...the tick invalidated it...
        assert responses[2]["stats"]["cache_invalidations"] == 1
        # ...and the re-query sees the new fixpoint.
        assert responses[3]["result"] != responses[1]["result"]
        final = responses[4]["result"]
        assert final["ticks"] == 1 and final["frontier_runs"] == 1
