"""JSONL server: request handling, stdio loop, TCP transport, CLI."""

from __future__ import annotations

import io
import json
import os
import socket
import struct
import subprocess
import sys
import threading
import time

import pytest

from repro import QueryService, parse_grammar
from repro.graph.generators import two_cycles, word_chain
from repro.graph.io import save_graph_file
from repro.graph.labeled_graph import LabeledGraph
from repro.service.server import (
    DEFAULT_MAX_LINE_BYTES,
    ServerThread,
    handle_request,
    serve_stream,
)

ANBN = parse_grammar("S -> a S b | a b", terminals=["a", "b"])


@pytest.fixture
def service():
    return QueryService(two_cycles(2, 3), ANBN, single_path=True)


class TestHandleRequest:
    def test_relational_query(self, service):
        response = handle_request(service, {"op": "query", "start": "S"})
        assert response["ok"] is True
        assert [0, 0] in response["result"]

    def test_membership_and_path(self, service):
        member = handle_request(service, {
            "op": "query", "start": "S", "source": 0, "target": 0,
        })
        assert member["result"] is True
        path = handle_request(service, {
            "op": "query", "start": "S", "source": 0, "target": 0,
            "semantics": "single-path",
        })
        assert path["ok"] and len(path["result"]) >= 2
        assert all(len(edge) == 3 for edge in path["result"])

    def test_node_coercion_for_string_tokens(self, service):
        # Graph nodes are ints; JSON clients may send "0".
        response = handle_request(service, {
            "op": "query", "start": "S", "source": "0", "target": "0",
        })
        assert response["result"] is True

    def test_update_coerces_node_tokens_like_queries(self, service):
        """String tokens in updates must attach to the existing integer
        nodes, not silently create twin nodes."""
        nodes_before = service.graph.node_count
        response = handle_request(service, {
            "op": "update",
            "insert": [["0", "a", "1"]],        # both nodes exist as ints
            "delete": [["0", "a", "1"]],
        })
        assert response["ok"], response
        assert service.graph.node_count == nodes_before
        assert not service.graph.has_node("0")
        assert service.query("S", 0, 0) is False  # real edge 0-a->1 deleted

    def test_update_and_stats(self, service):
        handle_request(service, {"op": "query", "start": "S"})
        update = handle_request(service, {
            "op": "update",
            "ops": [["insert", "u", "a", "v"], ["delete", "u", "a", "v"],
                    ["insert", "u", "a", "v"]],
            "insert": [["v", "b", "u"]],
        })
        assert update["ok"] is True
        assert update["result"]["coalesced_away"] == 2
        assert update["result"]["frontier_runs"] == 1
        stats = handle_request(service, {"op": "stats"})["result"]
        assert stats["ticks"] == 1
        assert stats["cache_invalidations"] == update["result"][
            "invalidated_entries"]

    def test_save_and_reload(self, service, tmp_path):
        path = str(tmp_path / "via-server.snapshot")
        response = handle_request(service, {"op": "save", "path": path})
        assert response["ok"] and response["result"]["bytes"] > 0
        warm = QueryService.from_snapshot(path)
        assert warm.stats["startup"]["closure_iterations"] == 0

    def test_errors_are_responses_not_exceptions(self, service):
        for request in (
            "not an object",
            {"op": "no-such-op"},
            {"op": "query"},                              # missing start
            {"op": "query", "start": "Missing"},          # unknown symbol
            {"op": "query", "start": "S", "source": 0},   # half endpoints
            {"op": "query", "start": "S", "source": 9, "target": 9,
             "semantics": "single-path"},                 # no such path
            {"op": "update"},
            {"op": "save"},
        ):
            response = handle_request(service, request)
            assert response["ok"] is False
            assert response["error"]

    def test_stats_attachment(self, service):
        response = handle_request(service, {"op": "ping"},
                                  include_stats=True)
        assert response["result"] == "pong"
        assert "cache_hit_rate" in response["stats"]
        assert "startup" in response["stats"]

    def test_stats_captured_in_operation_critical_section(self, service):
        """Regression: attached stats used to be read *after* the
        response was built, outside any lock — a concurrent tick could
        make them disagree with the response they ride on.  They are
        now snapshotted inside the op's own critical section, so an
        update's stats always reflect exactly that tick."""
        response = handle_request(service, {
            "op": "update", "insert": [["p", "a", "q"]],
        }, include_stats=True)
        assert response["ok"]
        assert response["stats"]["ticks"] == 1

        # A tick racing the stats attachment cannot skew it: the
        # captured dict is immune to later mutations of the service.
        captured = response["stats"]
        service.tick([("delete", ("p", "a", "q"))])
        assert captured["ticks"] == 1
        assert service.stats["ticks"] == 2


class TestTopKOp:
    @pytest.fixture
    def topk_service(self):
        # Three a-paths 1 -> 5, of lengths 1, 2 and 3.
        graph = LabeledGraph.from_edges([
            (1, "a", 5),
            (1, "a", 2), (2, "a", 5),
            (1, "a", 3), (3, "a", 4), (4, "a", 5),
        ])
        grammar = parse_grammar("S -> a | a S", terminals=["a"])
        return QueryService(graph, grammar)

    def test_best_first_page(self, topk_service):
        response = handle_request(topk_service, {
            "op": "top_k", "start": "S", "source": 1, "target": 5, "k": 2,
        })
        assert response["ok"], response
        result = response["result"]
        assert [len(path) for path in result["paths"]] == [1, 2]
        assert result["paths"][0] == [[1, "a", 5]]
        assert result["next_cursor"] == 2
        assert result["exhausted"] is False

    def test_cursor_pagination_protocol(self, topk_service):
        collected = []
        cursor, exhausted = 0, False
        while not exhausted:
            response = handle_request(topk_service, {
                "op": "top_k", "start": "S", "source": 1, "target": 5,
                "k": 2, "cursor": cursor,
            })
            assert response["ok"], response
            result = response["result"]
            collected.extend(result["paths"])
            cursor, exhausted = result["next_cursor"], result["exhausted"]
        assert [len(path) for path in collected] == [1, 2, 3]
        assert cursor == 3

    def test_string_tokens_coerce_and_bound_applies(self, topk_service):
        response = handle_request(topk_service, {
            "op": "top_k", "start": "S", "source": "1", "target": "5",
            "k": 5, "max_length": 2,
        })
        assert response["ok"], response
        result = response["result"]
        assert [len(path) for path in result["paths"]] == [1, 2]

    def test_missing_node_is_empty_and_exhausted(self, topk_service):
        response = handle_request(topk_service, {
            "op": "top_k", "start": "S", "source": 99, "target": 5, "k": 3,
        })
        assert response["ok"], response
        assert response["result"] == {
            "paths": [], "next_cursor": 0, "exhausted": True,
        }

    def test_malformed_top_k_requests_are_error_responses(self, topk_service):
        for request in (
            {"op": "top_k"},                                   # no start
            {"op": "top_k", "start": "S"},                     # no endpoints
            {"op": "top_k", "start": "S", "source": 1},        # half
            {"op": "top_k", "start": "Missing",
             "source": 1, "target": 5},                        # unknown NT
            {"op": "top_k", "start": "S", "source": 1,
             "target": 5, "k": -2},                            # bad k
        ):
            response = handle_request(topk_service, request)
            assert response["ok"] is False, request
            assert response["error"]

    def test_top_k_over_tcp_sees_ticks(self, topk_service):
        with ServerThread(topk_service) as server:
            [before] = _session(server.address, [
                {"op": "top_k", "start": "S",
                 "source": 2, "target": 5, "k": 2},
            ])
            assert [len(p) for p in before["result"]["paths"]] == [1]
            responses = _session(server.address, [
                {"op": "update", "insert": [[2, "a", 4]]},
                {"op": "top_k", "start": "S",
                 "source": 2, "target": 5, "k": 3},
            ])
            assert all(r["ok"] for r in responses)
            assert [len(p) for p in responses[1]["result"]["paths"]] \
                == [1, 2]


class TestStdioLoop:
    def test_scripted_session(self, service):
        lines = [
            {"op": "query", "start": "S"},
            {"op": "query", "start": "S"},
            "this is not json",
            {"op": "stats"},
        ]
        stdin = io.StringIO("\n".join(
            line if isinstance(line, str) else json.dumps(line)
            for line in lines
        ) + "\n")
        stdout = io.StringIO()
        served = serve_stream(service, stdin, stdout)
        responses = [json.loads(line)
                     for line in stdout.getvalue().splitlines()]
        assert served == 4
        assert [r["ok"] for r in responses] == [True, True, False, True]
        assert responses[3]["result"]["cache_hits"] == 1

    def test_shutdown_op_ends_loop(self, service):
        stdin = io.StringIO(
            json.dumps({"op": "shutdown"}) + "\n"
            + json.dumps({"op": "ping"}) + "\n"
        )
        stdout = io.StringIO()
        assert serve_stream(service, stdin, stdout) == 1


def _session(address, requests):
    """Open one connection, run *requests*, return the responses."""
    with socket.create_connection(address, timeout=10) as sock:
        stream = sock.makefile("rw", encoding="utf-8")
        out = []
        for request in requests:
            stream.write(json.dumps(request) + "\n")
            stream.flush()
            out.append(json.loads(stream.readline()))
        return out


class TestTCP:
    def test_concurrent_clients_share_state(self, service):
        with ServerThread(service) as server:
            results: list = [None, None]

            def client(index):
                results[index] = _session(server.address,
                                          [{"op": "query", "start": "S"}])

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert results[0][0]["result"] == results[1][0]["result"]

            # An update through one connection is visible to the next.
            _session(server.address,
                     [{"op": "update", "insert": [["p", "a", "q"],
                                                  ["q", "b", "p"]]}])
            check = _session(server.address,
                             [{"op": "query", "start": "S",
                               "source": "p", "target": "p"}])
            assert check[0]["result"] is True
            stats = _session(server.address,
                             [{"op": "stats"}])[0]["result"]
            assert stats["ticks"] == 1 and stats["queries"] >= 3

    def test_concurrent_mixed_query_update_sessions(self, service):
        """Many connections interleaving queries and ticks: every
        response is well-formed, and queries always observe a completed
        fixpoint (True/False, never an exception response)."""
        with ServerThread(service) as server:
            errors: list = []

            def reader():
                for _ in range(10):
                    [response] = _session(server.address, [
                        {"op": "query", "start": "S",
                         "source": 0, "target": 0},
                    ])
                    if not response["ok"]:
                        errors.append(response)

            def writer(name):
                for i in range(5):
                    edge = [f"{name}-{i}", "a", f"{name}-{i + 1}"]
                    for op in ("insert", "delete"):
                        [response] = _session(server.address,
                                              [{"op": "update",
                                                op: [edge]}])
                        if not response["ok"]:
                            errors.append(response)

            threads = [threading.Thread(target=reader) for _ in range(4)]
            threads += [threading.Thread(target=writer, args=(f"w{i}",))
                        for i in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []
            stats = _session(server.address, [{"op": "stats"}])[0]["result"]
            assert stats["ticks"] == 20
            # All the writers' scratch edges were deleted again.
            assert _session(server.address, [
                {"op": "query", "start": "S", "source": 0, "target": 0},
            ])[0]["result"] is True

    def test_shutdown_stops_whole_server(self, service):
        """Regression: a ``shutdown`` op must stop the *server*, not
        just the issuing connection — another open connection observes
        the close, and new connections are refused."""
        with ServerThread(service) as server:
            bystander = socket.create_connection(server.address, timeout=10)
            bystander_stream = bystander.makefile("rw", encoding="utf-8")
            # Prove the bystander connection is live first.
            bystander_stream.write(json.dumps({"op": "ping"}) + "\n")
            bystander_stream.flush()
            assert json.loads(bystander_stream.readline())["ok"]

            [response] = _session(server.address, [{"op": "shutdown"}])
            assert response["ok"] and response["result"] == "bye"

            # The second connection reads EOF: the whole server stopped.
            bystander.settimeout(10)
            assert bystander_stream.readline() == ""
            bystander.close()

            server._thread.join(timeout=10)
            assert not server._thread.is_alive()
            with pytest.raises(OSError):
                socket.create_connection(server.address, timeout=2)

    def test_client_disconnect_mid_line_is_absorbed(self, service):
        """Regression: a client vanishing mid-request (or before reading
        its response) must not take the server down or leak into other
        connections."""
        with ServerThread(service) as server:
            # Half a request, then a hard close (RST via SO_LINGER).
            rude = socket.create_connection(server.address, timeout=10)
            rude.sendall(b'{"op": "query", "start"')
            rude.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                            struct.pack("ii", 1, 0))
            rude.close()

            # A full request whose response is never read, then RST.
            rude2 = socket.create_connection(server.address, timeout=10)
            rude2.sendall(json.dumps({"op": "query", "start": "S"})
                          .encode() + b"\n")
            rude2.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                             struct.pack("ii", 1, 0))
            rude2.close()

            # The server still serves politely-behaved clients.
            deadline = time.monotonic() + 10
            while True:
                try:
                    [response] = _session(server.address,
                                          [{"op": "ping"}])
                    break
                except (OSError, json.JSONDecodeError):
                    assert time.monotonic() < deadline
                    time.sleep(0.05)
            assert response["result"] == "pong"

    def test_oversized_frame_is_refused(self, service):
        with ServerThread(service, max_line_bytes=4096) as server:
            with socket.create_connection(server.address,
                                          timeout=10) as sock:
                stream = sock.makefile("rw", encoding="utf-8")
                stream.write('{"op": "query", "start": "'
                             + "S" * 8192 + '"}\n')
                stream.flush()
                response = json.loads(stream.readline())
                assert response["ok"] is False
                assert response["error_type"] == "FrameTooLongError"
                # The connection is closed: the stream cannot be
                # re-framed after an overlong line.
                assert stream.readline() == ""
            assert DEFAULT_MAX_LINE_BYTES > 4096
            # The server survives and accepts fresh connections.
            assert _session(server.address,
                            [{"op": "ping"}])[0]["result"] == "pong"

    def test_malformed_frames_get_error_responses(self, service):
        with ServerThread(service) as server:
            with socket.create_connection(server.address,
                                          timeout=10) as sock:
                stream = sock.makefile("rw", encoding="utf-8")
                for frame, expected in [
                    ("this is not json", "JSONDecodeError"),
                    ('["not", "an", "object"]', "ValueError"),
                    ('{"op": "no-such-op"}', "ValueError"),
                ]:
                    stream.write(frame + "\n")
                    stream.flush()
                    response = json.loads(stream.readline())
                    assert response["ok"] is False
                    assert response["error_type"] == expected
                # Blank lines are skipped, the connection stays usable.
                stream.write("\n" + json.dumps({"op": "ping"}) + "\n")
                stream.flush()
                assert json.loads(stream.readline())["result"] == "pong"

    def test_stats_ride_on_tcp_responses(self, service):
        with ServerThread(service, include_stats=True) as server:
            responses = _session(server.address, [
                {"op": "query", "start": "S"},
                {"op": "query", "start": "S"},
            ])
            assert responses[1]["stats"]["cache_hit_rate"] == 0.5


class TestServeCLI:
    def test_snapshot_then_serve_session(self, tmp_path):
        """The CI service-smoke recipe: snapshot, then a scripted
        query/update/query stdio session asserting invalidation stats."""
        graph_file = str(tmp_path / "chain.txt")
        save_graph_file(word_chain(["a", "a", "b", "b"]), graph_file)
        snapshot = str(tmp_path / "chain.snapshot")
        env = {**os.environ,
               "PYTHONPATH": "src" + os.pathsep
               + os.environ.get("PYTHONPATH", "")}
        cwd = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))

        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "snapshot",
             "--graph", graph_file, "--grammar-name", "dyck1",
             "--output", snapshot,
             "--semantics", "relational", "single-path"],
            capture_output=True, text=True, env=env, cwd=cwd, timeout=120,
        )
        assert result.returncode == 0, result.stderr

        session = "\n".join(json.dumps(line) for line in [
            {"op": "query", "start": "S"},
            {"op": "query", "start": "S"},
            {"op": "update", "insert": [[4, "a", 5], [5, "b", 6]]},
            {"op": "query", "start": "S"},
            {"op": "stats"},
        ]) + "\n"
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "serve",
             "--snapshot", snapshot, "--stats"],
            input=session, capture_output=True, text=True, env=env,
            cwd=cwd, timeout=120,
        )
        assert result.returncode == 0, result.stderr
        responses = [json.loads(line)
                     for line in result.stdout.splitlines()]
        assert all(r["ok"] for r in responses)
        # Warm start: zero closure rounds before the first answer.
        assert responses[0]["stats"]["startup"]["closure_iterations"] == 0
        # Second identical query was a cache hit...
        assert responses[1]["stats"]["cache_hit_rate"] == 0.5
        # ...the tick invalidated it...
        assert responses[2]["stats"]["cache_invalidations"] == 1
        # ...and the re-query sees the new fixpoint.
        assert responses[3]["result"] != responses[1]["result"]
        final = responses[4]["result"]
        assert final["ticks"] == 1 and final["frontier_runs"] == 1
