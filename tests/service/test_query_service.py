"""Query service: caching, fine-grained invalidation, coalesced ticks,
warm starts, and consistency with from-scratch solves."""

from __future__ import annotations

import random
import threading

import pytest

from repro import QueryService, parse_grammar
from repro.core.matrix_cfpq import solve_matrix_relations
from repro.core.single_path import build_single_path_index
from repro.errors import PathNotFoundError, SemanticsError
from repro.graph.generators import two_cycles
from repro.graph.labeled_graph import LabeledGraph
from repro.grammar.builders import chain_reachability, same_generation_query1
from repro.grammar.cnf import to_cnf

ANBN = parse_grammar("S -> a S b | a b", terminals=["a", "b"])

#: Two *independent* relations in one grammar: S over a-chains, T over
#: b-chains — the probe for per-non-terminal cache invalidation.
TWO_STARTS = parse_grammar("S -> a | a S\nT -> b | b T",
                           terminals=["a", "b"])


def _service(**kwargs):
    return QueryService(two_cycles(2, 3), ANBN, **kwargs)


class TestCaching:
    def test_repeat_is_a_hit(self):
        service = _service()
        first = service.query("S")
        assert service.query("S") == first
        stats = service.stats
        assert (stats["cache_hits"], stats["cache_misses"]) == (1, 1)
        assert stats["cache_hit_rate"] == 0.5

    def test_distinct_keys_are_distinct_entries(self):
        service = _service()
        service.query("S")
        service.query("S", 0, 0)
        service.query("S", 0, 1)
        assert service.stats["cache_misses"] == 3
        assert service.stats["cache_entries"] == 3

    def test_lru_eviction(self):
        service = _service(cache_size=2)
        service.query("S", 0, 0)
        service.query("S", 0, 1)
        service.query("S", 0, 0)      # refresh: (0,0) is now most recent
        service.query("S", 0, 2)      # evicts (0,1)
        assert service.stats["cache_evictions"] == 1
        service.query("S", 0, 0)      # still cached
        assert service.stats["cache_hits"] == 2
        service.query("S", 0, 1)      # evicted: a miss
        assert service.stats["cache_misses"] == 4

    def test_membership_and_relation_queries(self):
        service = _service()
        pairs = service.query("S")
        some = next(iter(pairs))
        assert service.query("S", some[0], some[1]) is True
        assert service.query("S", "ghost", "nodes") is False

    def test_semantics_validation(self):
        service = _service()  # single_path defaults off
        with pytest.raises(SemanticsError):
            service.query("S", 0, None)
        with pytest.raises(SemanticsError):
            service.query("S", 0, 0, semantics="single-path")
        with pytest.raises(SemanticsError):
            service.query("S", 0, 0, semantics="all-path")


class TestInvalidation:
    def test_only_changed_nonterminals_invalidate(self):
        graph = LabeledGraph.from_edges([("u", "a", "v"), ("x", "b", "y")])
        service = QueryService(graph, TWO_STARTS)
        service.query("S")
        service.query("T")
        # Insert a b-edge: only T's matrix changes.
        report = service.update(inserts=[("y", "b", "z")])
        assert "S" not in report.changed_nonterminals
        assert report.invalidated_entries == 1
        service.query("S")   # survived the tick: a hit
        assert service.stats["cache_hits"] == 1
        assert service.query("T", "x", "z") is True

    def test_no_op_tick_invalidates_nothing(self):
        service = _service()
        service.query("S")
        report = service.update(inserts=[(0, "a", 1)])  # already present
        assert report.facts_added == 0
        assert report.invalidated_entries == 0
        service.query("S")
        assert service.stats["cache_hits"] == 1

    def test_single_path_entries_invalidate_on_refinement(self):
        """A shorter witness refines the length annotation without
        changing the relation — cached paths/lengths must still drop."""
        graph = LabeledGraph.from_edges(
            [("s", "a", "m1"), ("m1", "a", "m2"), ("m2", "a", "t")]
        )
        service = QueryService(graph, to_cnf(chain_reachability("a")),
                               single_path=True)
        assert service.query("S", "s", "t", semantics="length") == 3
        service.query("S", "s", "t", semantics="single-path")
        report = service.update(inserts=[("s", "a", "t")])  # shortcut
        # (s, t) was already in R_S — the S matrix changed by length
        # *refinement* only, and that alone must invalidate.
        assert "S" in report.changed_nonterminals
        assert report.invalidated_entries >= 2
        assert service.query("S", "s", "t", semantics="length") == 1
        assert len(service.query("S", "s", "t",
                                 semantics="single-path")) == 1

    def test_deletion_drops_cached_paths_even_without_cell_deltas(self):
        """Regression: deleting one of two parallel derivations leaves
        every matrix cell (and length) unchanged — DRed re-derives the
        fact identically via the other edge — but a cached witness path
        through the deleted edge is stale and must drop."""
        grammar = parse_grammar("S -> a | b", terminals=["a", "b"])
        graph = LabeledGraph.from_edges([("u", "a", "v"), ("u", "b", "v")])
        service = QueryService(graph, grammar, single_path=True)
        first = service.query("S", "u", "v", semantics="single-path")
        deleted_label = first[0][1]
        report = service.update(deletes=[("u", deleted_label, "v")])
        assert report.facts_removed == 0          # fact survives via twin
        assert report.invalidated_entries == 1    # ...but the path drops
        fresh = service.query("S", "u", "v", semantics="single-path")
        assert service.graph.has_edge(fresh[0][0], fresh[0][1], fresh[0][2])
        assert fresh[0][1] != deleted_label

    def test_absent_edge_deletes_skip_the_dred_pass(self):
        service = _service()
        report = service.update(deletes=[("ghost", "a", "edge")])
        assert report.dred_passes == 0
        assert report.deletes_applied == 0
        # No support index was built for the no-op.
        assert service.solver.stats["support_entries"] == 0

    def test_deletion_invalidates_and_raises(self):
        service = _service(single_path=True)
        assert service.query("S", 0, 0, semantics="single-path")
        report = service.update(deletes=[(0, "a", 1)])
        assert report.facts_removed > 0
        assert service.query("S", 0, 0, semantics="relational") is False
        with pytest.raises(PathNotFoundError):
            service.query("S", 0, 0, semantics="single-path")


class TestCoalescedTicks:
    def test_mixed_1000_edge_tick_is_one_dred_one_frontier(self):
        """The acceptance demo: a 1000-op interleaved insert/delete tick
        runs as exactly one DRed pass + one frontier run."""
        grammar = to_cnf(chain_reachability("a"))
        rng = random.Random(11)
        base = [(rng.randrange(120), "a", rng.randrange(120))
                for _ in range(400)]
        service = QueryService(LabeledGraph.from_edges(base), grammar)
        service.query("S")

        ops = []
        for _ in range(1000):
            edge = (rng.randrange(160), "a", rng.randrange(160))
            ops.append((rng.choice(("insert", "delete")), edge))
        report = service.tick(ops)

        assert report.inserts_requested + report.deletes_requested == 1000
        assert report.dred_passes == 1
        assert report.frontier_runs == 1
        stats = service.stats
        assert stats["ticks"] == 1
        assert stats["dred_passes"] == 1
        assert stats["frontier_runs"] == 1
        assert stats["tick_ops_requested"] == 1000
        # Post-tick state is the fixpoint of the final graph.
        scratch = solve_matrix_relations(service.graph, grammar,
                                         normalize=False)
        assert service.solver.relations().same_as(scratch)
        assert service.query("S") == scratch.node_pairs("S")

    def test_last_op_per_edge_wins(self):
        service = _service()
        before = service.query("S")
        report = service.tick([
            ("insert", ("n1", "a", "n2")),
            ("delete", ("n1", "a", "n2")),
            ("insert", ("n1", "a", "n2")),
        ])
        assert report.coalesced_away == 2
        assert report.inserts_applied == 1
        assert report.deletes_applied == 0
        assert service.graph.has_edge("n1", "a", "n2")
        # And the reverse order nets out to a delete.
        report = service.tick([
            ("insert", ("n1", "a", "n2")),
            ("delete", ("n1", "a", "n2")),
        ])
        assert report.deletes_applied == 1
        assert not service.graph.has_edge("n1", "a", "n2")
        assert service.query("S") == before

    @pytest.mark.parametrize("seed", [3, 7, 23])
    def test_interleavings_agree_with_scratch(self, seed):
        grammar = to_cnf(chain_reachability("a"))
        rng = random.Random(seed)
        service = QueryService(LabeledGraph(), grammar, single_path=True)
        for _tick in range(5):
            ops = [
                (rng.choice(("insert", "delete")),
                 (rng.randrange(12), "a", rng.randrange(12)))
                for _ in range(rng.randrange(1, 30))
            ]
            service.tick(ops)
            scratch = solve_matrix_relations(service.graph, grammar,
                                             normalize=False)
            assert service.solver.relations().same_as(scratch)
            fresh = build_single_path_index(service.graph, grammar,
                                            normalize=False)
            for (i, j), entries in fresh.cells.items():
                for nonterminal, length in entries.items():
                    assert service.solver.length_of(
                        nonterminal, service.graph.node_at(i),
                        service.graph.node_at(j)) == length

    def test_bad_op_rejected(self):
        service = _service()
        with pytest.raises(ValueError):
            service.tick([("upsert", (0, "a", 1))])


class TestWarmStart:
    def test_funding_x8_snapshot_first_query_zero_rounds(self, tmp_path):
        """The acceptance demo: `serve --snapshot` on funding×8 answers
        the first query with zero closure rounds run."""
        from repro.core.engine import CFPQEngine
        from repro.datasets.registry import build_graph
        from repro.graph.generators import repeat_graph

        graph = repeat_graph(build_graph("funding"), 8)
        grammar = same_generation_query1()
        engine = CFPQEngine(graph, grammar)
        expected = engine.relational("S")

        path = str(tmp_path / "funding_x8.snapshot")
        assert engine.save_snapshot(path, semantics=("relational",)) > 0

        service = QueryService.from_snapshot(path)
        startup = service.stats["startup"]
        assert startup["warm_start"] is True
        assert startup["closure_iterations"] == 0
        assert service.solver.initial_closure_iterations == 0
        assert service.query("S") == expected
        assert service.stats["snapshot_bytes"] > 0

    def test_service_snapshot_round_trip(self, tmp_path):
        service = _service(single_path=True)
        service.update(inserts=[("x", "a", "y"), ("y", "b", "x")])
        answer = service.query("S")
        length = service.query("S", 0, 0, semantics="length")

        path = str(tmp_path / "service.snapshot")
        size = service.save_snapshot(path)
        assert size == service.stats["snapshot_bytes"]

        warm = QueryService.from_snapshot(path)
        assert warm.single_path is True     # lengths were in the snapshot
        assert warm.stats["startup"]["closure_iterations"] == 0
        assert warm.query("S") == answer
        assert warm.query("S", 0, 0, semantics="length") == length
        # Engines can warm-start from service snapshots too.
        engine = QueryService.from_engine(
            __import__("repro").CFPQEngine.from_snapshot(path)
        )
        assert engine.query("S") == answer

    def test_from_engine_reuses_solved_state(self):
        from repro import CFPQEngine

        engine = CFPQEngine(two_cycles(2, 3), ANBN)
        engine.solve()
        service = QueryService.from_engine(engine, single_path=True)
        assert service.stats["startup"]["closure_iterations"] == 0
        assert service.query("S") == engine.relational("S")


#: A DAG with exactly three a-paths s -> t, of lengths 1, 2 and 3.
THREE_PATHS = [
    ("s", "a", "t"),
    ("s", "a", "m1"), ("m1", "a", "t"),
    ("s", "a", "m2"), ("m2", "a", "m3"), ("m3", "a", "t"),
]


class TestTopK:
    def _chain_service(self, **kwargs):
        return QueryService(LabeledGraph.from_edges(THREE_PATHS),
                            to_cnf(chain_reachability("a")), **kwargs)

    def test_best_first_order_and_prefix(self):
        service = self._chain_service()
        best = service.top_k("S", "s", "t", 3)
        assert [len(path) for path in best] == [1, 2, 3]
        assert best[0] == (("s", "a", "t"),)
        assert service.top_k("S", "s", "t", 2) == best[:2]

    def test_pagination_walks_one_stream(self):
        service = self._chain_service()
        pages = []
        cursor, exhausted = 0, False
        while not exhausted:
            page, cursor, exhausted = service.top_k_page(
                "S", "s", "t", 1, cursor=cursor)
            pages.extend(page)
        assert pages == service.top_k("S", "s", "t", 5)
        assert cursor == 3
        # The walk extended ONE cached stream: every page after the
        # first was a stream hit, nothing was re-enumerated.
        stats = service.stats["top_k"]
        assert stats["cached_streams"] == 1
        assert stats["stream_hits"] == stats["queries"] - 1

    def test_distinct_bounds_are_distinct_streams(self):
        service = self._chain_service()
        assert [len(p) for p in service.top_k("S", "s", "t", 3,
                                              max_length=2)] == [1, 2]
        assert [len(p) for p in service.top_k("S", "s", "t", 3)] \
            == [1, 2, 3]
        stats = service.stats["top_k"]
        assert stats["cached_streams"] == 2
        assert stats["stream_hits"] == 0

    def test_insert_invalidates_and_reranks(self):
        service = QueryService(
            LabeledGraph.from_edges([("s", "a", "m"), ("m", "a", "t")]),
            to_cnf(chain_reachability("a")))
        assert service.top_k("S", "s", "t", 2) \
            == [(("s", "a", "m"), ("m", "a", "t"))]
        report = service.update(inserts=[("s", "a", "t")])
        assert report.facts_added >= 1
        assert service.stats["top_k"]["cached_streams"] == 0
        best = service.top_k("S", "s", "t", 2)
        assert best[0] == (("s", "a", "t"),)
        assert len(best) == 2
        assert service.stats["top_k"]["stream_hits"] == 0

    def test_deletion_drops_streams(self):
        service = self._chain_service()
        service.top_k("S", "s", "t", 3)
        service.update(deletes=[("s", "a", "t")])
        assert service.stats["top_k"]["cached_streams"] == 0
        assert [len(p) for p in service.top_k("S", "s", "t", 3)] == [2, 3]

    def test_missing_nodes_exhaust_immediately(self):
        service = self._chain_service()
        assert service.top_k_page("S", "ghost", "t", 2) == ([], 0, True)
        assert service.top_k("S", "s", "nowhere", 2) == []

    def test_validation(self):
        service = self._chain_service()
        with pytest.raises(ValueError):
            service.top_k("S", "s", "t", -1)
        with pytest.raises(ValueError):
            service.top_k_page("S", "s", "t", 1, cursor=-1)
        with pytest.raises(Exception):
            service.top_k("Missing", "s", "t", 1)

    def test_semiring_selection(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_SEMIRING", raising=False)
        assert self._chain_service().stats["semiring"] == "length"
        assert self._chain_service(
            semiring="viterbi").stats["semiring"] == "viterbi"
        monkeypatch.setenv("REPRO_SERVICE_SEMIRING", "Viterbi")
        assert self._chain_service().stats["semiring"] == "viterbi"
        with pytest.raises(SemanticsError):
            self._chain_service(semiring="tropical-deluxe")

    def test_viterbi_service_agrees_with_length_on_uniform_weights(self):
        """Uniform default weights: most-probable-first coincides with
        shortest-first — the invariant behind the CI cell that reruns
        the service suite under REPRO_SERVICE_SEMIRING=viterbi."""
        viterbi = self._chain_service(semiring="viterbi")
        assert [len(p) for p in viterbi.top_k("S", "s", "t", 3)] \
            == [1, 2, 3]
        assert viterbi.top_k("S", "s", "t", 3) \
            == self._chain_service().top_k("S", "s", "t", 3)

    def test_snapshot_warm_start_serves_top_k(self, tmp_path):
        service = self._chain_service()
        expected = service.top_k("S", "s", "t", 3)
        path = str(tmp_path / "topk.snapshot")
        service.save_snapshot(path)
        warm = QueryService.from_snapshot(path, semiring="viterbi")
        assert warm.stats["startup"]["closure_iterations"] == 0
        assert warm.stats["semiring"] == "viterbi"
        assert warm.top_k("S", "s", "t", 3) == expected


class TestConcurrency:
    def test_queries_during_ticks_see_consistent_snapshots(self):
        grammar = to_cnf(chain_reachability("a"))
        service = QueryService(
            LabeledGraph.from_edges([(i, "a", i + 1) for i in range(30)]),
            grammar,
        )
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    pairs = service.query(
                        "S", 0, 30, semantics="relational")
                    assert pairs in (True, False)
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for tick in range(10):
                service.update(deletes=[(15, "a", 16)])
                service.update(inserts=[(15, "a", 16)])
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not errors
        assert service.query("S", 0, 30) is True
