"""Server-side observability: the ``metrics`` wire op, request
metrics, the slow-query log, and the HTTP scrape endpoint."""

from __future__ import annotations

import io
import json
import urllib.error
import urllib.request

import pytest

from repro import QueryService, parse_grammar
from repro.graph.generators import two_cycles
from repro.obs.export import start_metrics_server
from repro.obs.metrics import get_registry, reset_metrics
from repro.obs.trace import configure_tracing, reset_tracing
from repro.service.server import (
    handle_request,
    serve_stream,
    set_slow_query_log,
)

ANBN = parse_grammar("S -> a S b | a b", terminals=["a", "b"])


@pytest.fixture(autouse=True)
def _fresh_observability(monkeypatch):
    monkeypatch.delenv("REPRO_SLOW_QUERY_MS", raising=False)
    monkeypatch.delenv("REPRO_SLOW_QUERY_LOG", raising=False)
    reset_metrics()
    reset_tracing()
    set_slow_query_log(None)
    yield
    reset_metrics()
    reset_tracing()
    set_slow_query_log(None)


@pytest.fixture
def service():
    return QueryService(two_cycles(2, 3), ANBN)


class TestMetricsOp:
    def test_metrics_op_returns_prometheus_text(self, service):
        handle_request(service, {"op": "ping"})
        response = handle_request(service, {"op": "metrics"})
        assert response["ok"] is True
        assert response["result"]["format"] == "prometheus"
        text = response["result"]["text"]
        assert 'repro_requests_total{op="ping"} 1' in text
        assert "# TYPE repro_requests_total counter" in text
        assert "# TYPE repro_request_seconds histogram" in text

    def test_request_metrics_count_every_op(self, service):
        handle_request(service, {"op": "query", "start": "S"})
        handle_request(service, {"op": "query", "start": "S"})
        handle_request(service, {"op": "nonsense"})
        registry = get_registry()
        requests = registry.get("repro_requests_total")
        assert requests.value(op="query") == 2
        # Errors still count under the op they claimed.
        assert requests.value(op="nonsense") == 1
        latency = registry.get("repro_request_seconds")
        assert latency.count(op="query") == 2

    def test_metrics_op_over_stdio_session(self, service):
        session = "\n".join([
            json.dumps({"op": "query", "start": "S"}),
            json.dumps({"op": "metrics"}),
        ]) + "\n"
        out = io.StringIO()
        serve_stream(service, io.StringIO(session), out)
        responses = [json.loads(line)
                     for line in out.getvalue().splitlines()]
        assert all(response["ok"] for response in responses)
        text = responses[1]["result"]["text"]
        assert 'repro_requests_total{op="query"} 1' in text
        # The query also published cache-outcome metrics.
        assert "repro_cache_requests_total" in text

    def test_unknown_op_error_advertises_metrics(self, service):
        response = handle_request(service, {"op": "bogus"})
        assert response["ok"] is False
        assert "metrics" in response["error"]


class TestSlowQueryLog:
    def test_slow_request_recorded_with_span_tree(self, service,
                                                  tmp_path):
        log_path = tmp_path / "slow.jsonl"
        configure_tracing(enabled=True)
        set_slow_query_log(0.0, str(log_path))  # everything is "slow"
        handle_request(service, {"op": "query", "start": "S"})
        entries = [json.loads(line)
                   for line in log_path.read_text().splitlines()]
        assert len(entries) == 1
        entry = entries[0]
        assert entry["op"] == "query"
        assert entry["seconds"] >= 0
        names = {span["name"] for span in entry["spans"]}
        assert "server.request" in names
        request_span = next(span for span in entry["spans"]
                            if span["name"] == "server.request")
        assert request_span["attrs"]["op"] == "query"
        assert request_span["attrs"]["rid"] == entry["rid"]
        # Every recorded span belongs to this request's trace.
        assert {span["trace_id"] for span in entry["spans"]} \
            == {request_span["trace_id"]}

    def test_fast_request_not_recorded(self, service, tmp_path):
        log_path = tmp_path / "slow.jsonl"
        configure_tracing(enabled=True)
        set_slow_query_log(60_000.0, str(log_path))  # a minute
        handle_request(service, {"op": "query", "start": "S"})
        assert not log_path.exists()

    def test_environment_config_resolved_lazily(self, service, tmp_path,
                                                monkeypatch):
        log_path = tmp_path / "slow.jsonl"
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "0")
        monkeypatch.setenv("REPRO_SLOW_QUERY_LOG", str(log_path))
        configure_tracing(enabled=True)
        set_slow_query_log(None)  # force re-read of the environment
        handle_request(service, {"op": "ping"})
        entries = log_path.read_text().splitlines()
        assert len(entries) == 1
        assert json.loads(entries[0])["op"] == "ping"

    def test_disabled_without_tracer(self, service, tmp_path):
        # Slow-query needs live spans; with the NULL tracer it is inert.
        log_path = tmp_path / "slow.jsonl"
        set_slow_query_log(0.0, str(log_path))
        handle_request(service, {"op": "query", "start": "S"})
        assert not log_path.exists()


class TestMetricsHTTPEndpoint:
    def test_scrape_and_404(self, service):
        handle_request(service, {"op": "ping"})
        server = start_metrics_server("127.0.0.1:0")
        try:
            host, port = server.address
            with urllib.request.urlopen(
                    f"http://{host}:{port}/metrics", timeout=5) as reply:
                body = reply.read().decode("utf-8")
                content_type = reply.headers["Content-Type"]
            assert 'repro_requests_total{op="ping"} 1' in body
            assert content_type.startswith("text/plain")
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://{host}:{port}/other", timeout=5)
        finally:
            server.close()

    def test_port_only_address(self):
        server = start_metrics_server("0")
        try:
            assert server.address[1] > 0
        finally:
            server.close()
