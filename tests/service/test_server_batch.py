"""The ``batch`` wire op and the server-side micro-batching window.

Two layers under test: the explicit ``batch`` request (a list of query
specs in, an ordered list of per-item envelopes out) and the opt-in
``batch_window_ms`` coalescer, which parks concurrent single ``query``
requests and answers them through one ``query_batch`` call — with
responses indistinguishable from the unbatched path.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro import QueryService, parse_grammar
from repro.graph.generators import two_cycles
from repro.service.server import AsyncJSONLServer, ServerThread, handle_request

ANBN = parse_grammar("S -> a S b | a b", terminals=["a", "b"])


@pytest.fixture
def service():
    return QueryService(two_cycles(2, 3), ANBN, single_path=True)


def _session(address, requests):
    with socket.create_connection(address, timeout=10) as sock:
        stream = sock.makefile("rw", encoding="utf-8")
        out = []
        for request in requests:
            stream.write(json.dumps(request) + "\n")
            stream.flush()
            out.append(json.loads(stream.readline()))
        return out


class TestBatchOp:
    def test_ordered_answers(self, service):
        response = handle_request(service, {"op": "batch", "queries": [
            {"start": "S", "source": 0, "target": 0},
            {"start": "S"},
            {"start": "S", "source": "0", "target": "1"},  # coerced tokens
        ]})
        assert response["ok"] is True
        items = response["result"]
        assert len(items) == 3
        assert items[0] == {"ok": True, "result": True}
        assert items[1]["ok"] and [0, 0] in items[1]["result"]
        assert items[2]["ok"] and isinstance(items[2]["result"], bool)
        # The batch matches the single-query op item by item.
        single = handle_request(service, {
            "op": "query", "start": "S", "source": 0, "target": 0,
        })
        assert items[0]["result"] == single["result"]

    def test_per_item_errors_do_not_fail_the_batch(self, service):
        response = handle_request(service, {"op": "batch", "queries": [
            {"start": "S", "source": 0, "target": 0},
            {"start": "NoSuchNT", "source": 0, "target": 0},
            {"source": 0},
            {"start": "S", "source": 0, "target": 0,
             "semantics": "nope"},
        ]})
        assert response["ok"] is True
        items = response["result"]
        assert items[0]["ok"] is True
        assert items[1]["ok"] is False
        assert items[1]["error_type"] == "UnknownSymbolError"
        assert items[2]["ok"] is False
        assert items[2]["error_type"] == "SemanticsError"
        assert items[3]["ok"] is False and "nope" in items[3]["error"]

    def test_queries_must_be_a_list(self, service):
        for bad in ({"op": "batch"},
                    {"op": "batch", "queries": "not-a-list"}):
            response = handle_request(service, bad)
            assert response["ok"] is False
            assert "queries" in response["error"]

    def test_over_tcp(self, service):
        with ServerThread(service) as server:
            [response] = _session(server.address, [
                {"op": "batch", "queries": [
                    {"start": "S", "source": 0, "target": 0},
                    {"start": "S", "source": 0, "target": 1},
                ]},
            ])
        assert response["ok"] is True
        assert [item["ok"] for item in response["result"]] == [True, True]


class TestBatchFanOut:
    def test_leader_forwards_batches_to_replicas(self, service, tmp_path):
        """A ``batch`` request hits the read fan-out like a single
        query: the whole list is answered by a follower replica."""
        from repro.service.replica import FollowerService, ReplicatedService
        from repro.service.wal import TickLog

        leader = ReplicatedService(service, TickLog(str(tmp_path / "wal")))
        snapshot = str(tmp_path / "index.snapshot")
        leader.save_snapshot(snapshot)
        follower = FollowerService.from_snapshot(snapshot, leader.log.path)
        with ServerThread(follower, follower_poll_seconds=0.01) as f0:
            with ServerThread(leader, replicas=[f0.address]) as front:
                [response] = _session(front.address, [
                    {"op": "batch", "queries": [
                        {"start": "S", "source": 0, "target": 0},
                        {"start": "S", "source": 0, "target": 1},
                    ]},
                ])
                assert response["ok"] is True
                assert [item["ok"] for item in response["result"]] \
                    == [True, True]
                assert response["result"][0]["result"] is True
        # The leader itself never answered: the follower served it.
        assert follower.stats["queries"] >= 2
        assert leader.stats["queries"] == 0


class TestMicroBatchWindow:
    def test_disabled_by_default(self, service, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH_WINDOW_MS", raising=False)
        server = AsyncJSONLServer(service)
        assert server.batch_window_ms == 0

    def test_env_var_fallback(self, service, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_WINDOW_MS", "7.5")
        assert AsyncJSONLServer(service).batch_window_ms == 7.5
        # An explicit argument wins over the environment.
        assert AsyncJSONLServer(service, batch_window_ms=2).batch_window_ms \
            == 2
        monkeypatch.setenv("REPRO_BATCH_WINDOW_MS", "")
        assert AsyncJSONLServer(service).batch_window_ms == 0

    def test_concurrent_queries_coalesce(self, service):
        """Concurrent single queries inside the window are answered by
        fewer closures than clients, and every response keeps the
        single-query shape."""
        with ServerThread(service, batch_window_ms=25,
                          include_stats=True) as server:
            responses: list = [None] * 8

            def client(index):
                source = index % 4
                responses[index] = _session(server.address, [
                    {"op": "query", "start": "S",
                     "source": source, "target": source},
                ])[0]

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            expected = {i: service.query("S", i, i) for i in range(4)}
            for index, response in enumerate(responses):
                assert response["ok"] is True, response
                assert response["op"] == "query"
                assert response["result"] == expected[index % 4], index
                assert "stats" in response
            stats = service.stats["batch"]
            assert stats["queries"] >= 8
            # Coalescing happened: fewer batch flushes than clients.
            assert 1 <= stats["closures"] < 8

    def test_sequential_queries_still_correct(self, service):
        """A lone request inside a window is just a batch of one."""
        with ServerThread(service, batch_window_ms=5) as server:
            responses = _session(server.address, [
                {"op": "query", "start": "S", "source": 0, "target": 0},
                {"op": "query", "start": "S"},
                {"op": "query", "start": "Nope"},
                {"op": "ping"},
            ])
        assert responses[0] == {"ok": True, "op": "query", "result": True}
        assert responses[1]["ok"] and [0, 0] in responses[1]["result"]
        assert responses[2]["ok"] is False
        assert responses[2]["error_type"] == "UnknownSymbolError"
        assert responses[3]["ok"] is True

    def test_missing_start_error_envelope(self, service):
        with ServerThread(service, batch_window_ms=5) as server:
            [response] = _session(server.address, [
                {"op": "query", "source": 0, "target": 0},
            ])
        assert response["ok"] is False
        assert "start" in response["error"]

    def test_updates_bypass_the_window(self, service):
        """Only single queries are parked; updates and batches run
        immediately on the executor path."""
        with ServerThread(service, batch_window_ms=50) as server:
            responses = _session(server.address, [
                {"op": "update", "insert": [["p", "a", "q"],
                                            ["q", "b", "p"]]},
                {"op": "query", "start": "S",
                 "source": "p", "target": "p"},
            ])
        assert responses[0]["ok"] is True
        # FIFO per connection: the query observes the tick before it.
        assert responses[1]["result"] is True
