"""Snapshot store: lossless round trips across backends × semantics.

The differential contract: an engine loaded from a snapshot must answer
**byte-identically** to the engine that saved it — for the relational,
single-path and all-path semantics, on every registered backend,
including loading under a *different* backend than the snapshot was
saved with (the payload-codec conversion path) — while running zero
closure rounds.  Plus the format guardrails: magic and version checks.
"""

from __future__ import annotations

import pickle

import pytest

from repro import CFPQEngine, IncrementalCFPQ, parse_grammar
from repro.errors import SnapshotError, SnapshotVersionError
from repro.core.single_path import extract_path, path_is_valid
from repro.graph.generators import two_cycles, word_chain
from repro.matrices.base import available_backends
from repro.service import snapshot as snapshot_store
from repro.service.snapshot import (
    SNAPSHOT_VERSION,
    load_engine_snapshot,
    read_snapshot,
    save_engine_snapshot,
    write_snapshot,
)

BACKENDS = available_backends()

ANBN = parse_grammar("S -> a S b | a b", terminals=["a", "b"])
#: Nullable variant: exercises the empty-path diagonal in every section.
ANBN_EPS = parse_grammar("S -> a S b | eps", terminals=["a", "b"])

SEMANTICS = ("relational", "single-path", "all-path")


def _graph():
    return two_cycles(2, 3)


def _relational_answer(engine):
    return engine.relational("S")


def _single_path_answers(engine):
    """Every recorded (pair → path), byte-identical across engines
    because extraction scans the index cells in storage order."""
    index = engine.single_path_index()
    out = {}
    for (i, j), entries in index.cells.items():
        for nonterminal in entries:
            out[(nonterminal, i, j)] = extract_path(
                index, nonterminal,
                engine.graph.node_at(i), engine.graph.node_at(j),
            )
    return out


def _all_path_answers(engine, bound=6):
    return {
        (i, j): engine.all_paths("S", engine.graph.node_at(i),
                                 engine.graph.node_at(j), max_length=bound)
        for i in range(engine.graph.node_count)
        for j in range(engine.graph.node_count)
    }


@pytest.mark.parametrize("grammar", [ANBN, ANBN_EPS],
                         ids=["anbn", "anbn-nullable"])
@pytest.mark.parametrize("backend", BACKENDS)
def test_round_trip_same_backend(tmp_path, backend, grammar):
    engine = CFPQEngine(_graph(), grammar, backend=backend)
    relational = _relational_answer(engine)
    single = _single_path_answers(engine)
    allp = _all_path_answers(engine)

    path = str(tmp_path / "index.snapshot")
    size = save_engine_snapshot(path, engine, semantics=SEMANTICS)
    assert size > 0

    warm = load_engine_snapshot(path)
    assert warm.backend == backend
    # Zero closure rounds for every semantics.
    assert warm.solve().stats.iterations == 0
    assert warm.solve().stats.multiplications == 0
    assert warm.single_path_index().iterations == 0
    # Byte-identical answers.
    assert warm.relational("S") == relational
    assert _single_path_answers(warm) == single
    assert _all_path_answers(warm) == allp
    # The length index round-trips *exactly* (cells, values and order).
    assert list(warm.single_path_index().cells.items()) \
        == list(engine.single_path_index().cells.items())


@pytest.mark.parametrize("save_backend", BACKENDS)
@pytest.mark.parametrize("load_backend", BACKENDS)
def test_round_trip_cross_backend(tmp_path, save_backend, load_backend):
    engine = CFPQEngine(_graph(), ANBN, backend=save_backend)
    relational = _relational_answer(engine)
    single = _single_path_answers(engine)

    path = str(tmp_path / "index.snapshot")
    save_engine_snapshot(path, engine, semantics=SEMANTICS)
    warm = load_engine_snapshot(path, backend=load_backend)
    assert warm.backend == load_backend
    assert warm.solve().stats.backend == load_backend
    assert warm.solve().stats.iterations == 0
    assert warm.relational("S") == relational
    assert _single_path_answers(warm) == single
    # The re-materialized matrices really are the target backend's type.
    some_matrix = next(iter(warm.solve().matrices.values()))
    assert some_matrix.backend_name in (load_backend, "abstract")


def test_snapshot_paths_stay_valid(tmp_path):
    engine = CFPQEngine(word_chain(["a", "a", "b", "b"]), ANBN)
    path = str(tmp_path / "index.snapshot")
    save_engine_snapshot(path, engine)
    warm = load_engine_snapshot(path)
    index = warm.single_path_index()
    witness = extract_path(index, "S", 0, 4)
    assert path_is_valid(index, witness)
    assert len(witness) == 4


def test_partial_snapshot_solves_missing_sections(tmp_path):
    """A relational-only snapshot still serves single-path queries —
    by solving them lazily, not by failing."""
    engine = CFPQEngine(_graph(), ANBN)
    path = str(tmp_path / "index.snapshot")
    save_engine_snapshot(path, engine, semantics=("relational",))
    warm = load_engine_snapshot(path)
    assert warm.solve().stats.iterations == 0
    assert warm.single_path("S", 0, 0)  # lazily solved
    assert warm.single_path_index().iterations > 0


def _header(version) -> bytes:
    return (snapshot_store.MAGIC.encode() + b"\x00"
            + str(version).encode() + b"\n")


def test_version_mismatch_is_rejected(tmp_path):
    path = str(tmp_path / "future.snapshot")
    with open(path, "wb") as stream:
        stream.write(_header(99))
        pickle.dump({"payload": {}}, stream)
    with pytest.raises(SnapshotVersionError) as excinfo:
        read_snapshot(path)
    assert "99" in str(excinfo.value)
    assert str(SNAPSHOT_VERSION) in str(excinfo.value)


def test_foreign_files_are_rejected(tmp_path):
    not_pickle = tmp_path / "garbage.snapshot"
    not_pickle.write_bytes(b"\x00not a snapshot at all")
    with pytest.raises(SnapshotError):
        read_snapshot(str(not_pickle))

    wrong_magic = tmp_path / "other.snapshot"
    with open(wrong_magic, "wb") as stream:
        pickle.dump({"something": "else"}, stream)
    with pytest.raises(SnapshotError):
        read_snapshot(str(wrong_magic))

    missing = tmp_path / "does-not-exist.snapshot"
    with pytest.raises(SnapshotError):
        read_snapshot(str(missing))


def test_crafted_pickle_body_cannot_reach_classes(tmp_path):
    """The body is unpickled through a loader that refuses every class
    lookup, so a pickle smuggling a callable (the classic
    os.system-style gadget) dies in find_class instead of executing."""
    path = str(tmp_path / "evil.snapshot")
    with open(path, "wb") as stream:
        stream.write(_header(SNAPSHOT_VERSION))
        pickle.dump({"payload": {"gadget": print}}, stream)
    with pytest.raises(SnapshotError) as excinfo:
        read_snapshot(path)
    assert "plain containers" in str(excinfo.value)


def test_envelope_records_version(tmp_path):
    path = str(tmp_path / "v.snapshot")
    write_snapshot(path, {"hello": [1, 2, 3]})
    with open(path, "rb") as stream:
        assert stream.readline() == _header(SNAPSHOT_VERSION)
    assert read_snapshot(path) == {"hello": [1, 2, 3]}


def test_incremental_state_round_trip(tmp_path):
    """Facts, lengths and DRed supports survive encode→decode, and a
    warm solver continues updating exactly like the original."""
    graph = two_cycles(2, 3)
    solver = IncrementalCFPQ(graph, ANBN)
    solver.add_edges([("x", "a", "y"), ("y", "b", "x")])
    solver.remove_edges([("x", "a", "y")])  # activates the support index

    doc = snapshot_store.encode_incremental_state(solver.export_state())
    state = snapshot_store.decode_incremental_state(doc)
    twin_graph = two_cycles(2, 3)
    twin_graph.add_edges([("x", "a", "y"), ("y", "b", "x")])
    twin_graph.remove_edge("x", "a", "y")
    twin = IncrementalCFPQ(twin_graph, ANBN, warm_state=state)
    assert twin.initial_closure_iterations == 0
    assert twin.relations().same_as(solver.relations())
    assert twin._supports == solver._supports

    # Updates after the warm start stay in lockstep.
    batch = [("p", "a", "q"), ("q", "b", "p")]
    assert twin.add_edges(batch) == solver.add_edges(batch)
    assert twin.remove_edges(batch[:1]) == solver.remove_edges(batch[:1])
    assert twin.relations().same_as(solver.relations())


def test_counting_and_tuple_dred_snapshots_byte_identical(tmp_path):
    """The acceptance contract for counting-based DRed: after an
    interleaved insert/delete sequence, services running the counting
    support index and the tuple-set oracle save **byte-identical**
    snapshot files."""
    import filecmp
    import random

    from repro import QueryService

    paths = {}
    for mode in ("counting", "tuples"):
        service = QueryService(two_cycles(2, 3), ANBN,
                               support_mode=mode)
        rng = random.Random(0xD1FF)
        for _ in range(6):
            edge = (rng.randrange(8), rng.choice("ab"), rng.randrange(8))
            service.update(inserts=[edge])
            if rng.random() < 0.5:
                service.update(deletes=[edge])
        paths[mode] = str(tmp_path / f"{mode}.snapshot")
        assert service.save_snapshot(paths[mode]) > 0
    assert filecmp.cmp(paths["counting"], paths["tuples"], shallow=False)
