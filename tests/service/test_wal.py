"""Write-ahead tick log: append/tail, recovery, anchored truncation."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import WALError
from repro.service.wal import TickLog, TickLogReader, decode_ops, encode_ops

OPS = [("insert", (0, "a", 1)), ("delete", ("u", "b", "v"))]


class TestOpCodec:
    def test_roundtrip(self):
        encoded = encode_ops(OPS)
        assert encoded == [["insert", 0, "a", 1], ["delete", "u", "b", "v"]]
        assert decode_ops(encoded) == OPS

    @pytest.mark.parametrize("bad", [
        [("insert",)],                       # no edge
        [("insert", (0, "a"))],              # short edge
        [("upsert", (0, "a", 1))],           # unknown kind
        [("insert", (0, 7, 1))],             # non-string label
        ["insert"],                          # not even a pair
    ])
    def test_malformed_ops_rejected(self, bad):
        with pytest.raises(WALError):
            encode_ops(bad)


class TestTickLog:
    def test_append_assigns_increasing_seq(self, tmp_path):
        with TickLog(str(tmp_path / "wal")) as log:
            assert log.append(OPS) == 1
            assert log.append(OPS[:1]) == 2
            assert log.last_seq == 2

    def test_reopen_resumes_sequence(self, tmp_path):
        path = str(tmp_path / "wal")
        with TickLog(path) as log:
            log.append(OPS)
        with TickLog(path) as log:
            assert log.last_seq == 1
            assert log.append(OPS) == 2
        with TickLog(path) as log:
            assert list(log.records()) == [(1, encode_ops(OPS)),
                                           (2, encode_ops(OPS))]

    def test_partial_tail_is_trimmed_on_open(self, tmp_path):
        path = str(tmp_path / "wal")
        with TickLog(path) as log:
            log.append(OPS)
        with open(path, "ab") as stream:  # crash mid-append
            stream.write(b'{"kind": "tick", "seq": 2, "op')
        with TickLog(path) as log:
            assert log.last_seq == 1
            assert log.append(OPS) == 2
        assert [seq for seq, _ in TickLogReader(path).poll()] == [1, 2]

    def test_corrupt_record_raises(self, tmp_path):
        path = str(tmp_path / "wal")
        with open(path, "wb") as stream:
            stream.write(b"garbage, not json\n")
            stream.write(json.dumps({"kind": "tick", "seq": 1,
                                     "ops": []}).encode() + b"\n")
        with pytest.raises(WALError, match="corrupt"):
            TickLog(path)
        with pytest.raises(WALError, match="corrupt"):
            TickLogReader(path).poll()

    def test_backwards_sequence_raises(self, tmp_path):
        path = str(tmp_path / "wal")
        with open(path, "wb") as stream:
            for seq in (2, 1):
                stream.write(json.dumps({"kind": "tick", "seq": seq,
                                         "ops": []}).encode() + b"\n")
        with pytest.raises(WALError, match="backwards"):
            TickLog(path)

    def test_bad_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(WALError, match="fsync"):
            TickLog(str(tmp_path / "wal"), fsync="sometimes")

    @pytest.mark.parametrize("policy", ["always", "batch", "never"])
    def test_policies_all_persist_records(self, tmp_path, policy):
        path = str(tmp_path / f"wal-{policy}")
        with TickLog(path, fsync=policy) as log:
            for _ in range(5):
                log.append(OPS)
        assert len(TickLogReader(path).poll()) == 5

    def test_anchor_beyond_log_rejected(self, tmp_path):
        with TickLog(str(tmp_path / "wal")) as log:
            log.append(OPS)
            with pytest.raises(WALError, match="anchor"):
                log.anchor("snap", seq=9)

    def test_truncate_drops_anchored_prefix(self, tmp_path):
        path = str(tmp_path / "wal")
        with TickLog(path) as log:
            for _ in range(4):
                log.append(OPS)
            log.anchor("index.snapshot", seq=3)
            assert log.truncate() == 3
            assert log.anchor_seq == 3 and log.last_seq == 4
            # Appends continue past the truncation point.
            assert log.append(OPS) == 5
            assert [seq for seq, _ in log.records()] == [4, 5]
        # Anchor survives reopen so a second truncate is still anchored.
        with TickLog(path) as log:
            assert log.anchor_seq == 3 and log.last_seq == 5

    def test_truncate_with_snapshot_anchors_first(self, tmp_path):
        with TickLog(str(tmp_path / "wal")) as log:
            for _ in range(3):
                log.append(OPS)
            assert log.truncate(snapshot="index.snapshot") == 3
            assert log.anchor_seq == 3
            assert list(log.records()) == []


class TestTickLogReader:
    def test_missing_file_is_empty(self, tmp_path):
        assert TickLogReader(str(tmp_path / "nope")).poll() == []

    def test_tailing_delivers_only_new_records(self, tmp_path):
        path = str(tmp_path / "wal")
        reader = TickLogReader(path)
        with TickLog(path) as log:
            log.append(OPS)
            assert [seq for seq, _ in reader.poll()] == [1]
            assert reader.poll() == []
            log.append(OPS)
            log.append(OPS)
            assert [seq for seq, _ in reader.poll()] == [2, 3]
            assert reader.last_seq == 3

    def test_after_seq_skips_replayed_prefix(self, tmp_path):
        path = str(tmp_path / "wal")
        with TickLog(path) as log:
            for _ in range(4):
                log.append(OPS)
        reader = TickLogReader(path, after_seq=2)
        assert [seq for seq, _ in reader.poll()] == [3, 4]

    def test_reader_survives_truncation(self, tmp_path):
        """Leader truncates (atomic rewrite → new inode) while a
        follower tails: nothing redelivered, nothing lost."""
        path = str(tmp_path / "wal")
        reader = TickLogReader(path)
        with TickLog(path) as log:
            log.append(OPS)
            log.append(OPS)
            assert [seq for seq, _ in reader.poll()] == [1, 2]
            log.truncate(snapshot="snap")   # drops 1..2
            log.append(OPS)                 # seq 3
            assert [seq for seq, _ in reader.poll()] == [3]

    def test_partial_tail_held_back(self, tmp_path):
        path = str(tmp_path / "wal")
        with TickLog(path) as log:
            log.append(OPS)
        reader = TickLogReader(path)
        with open(path, "ab") as stream:
            stream.write(b'{"kind": "tick", "seq": 2')
            stream.flush()
            assert [seq for seq, _ in reader.poll()] == [1]
            stream.write(b', "ops": []}\n')
            stream.flush()
            assert [seq for seq, _ in reader.poll()] == [2]
