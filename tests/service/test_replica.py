"""Leader/follower replication: WAL-ahead writes, deterministic replay,
byte-identical convergence, read fan-out."""

from __future__ import annotations

import filecmp
import json
import os
import socket
import subprocess
import sys
import textwrap
import time

import pytest

from repro import QueryService, parse_grammar
from repro.errors import ReadOnlyReplicaError, WALError
from repro.graph.generators import two_cycles
from repro.service.replica import (
    FollowerService,
    ReplicatedService,
    open_role,
)
from repro.service.server import ServerThread, handle_request
from repro.service.wal import TickLog, TickLogReader

ANBN = parse_grammar("S -> a S b | a b", terminals=["a", "b"])

TICKS = [
    [("insert", ("p", "a", "q")), ("insert", ("q", "b", "p"))],
    [("delete", (0, "a", 1))],
    [("insert", (0, "a", 1)), ("insert", ("q", "b", "q"))],
    [("delete", ("q", "b", "q"))],
]


def _service():
    return QueryService(two_cycles(2, 3), ANBN, single_path=True)


def _leader(tmp_path, name="wal"):
    return ReplicatedService(_service(), TickLog(str(tmp_path / name)))


class TestLeader:
    def test_tick_is_logged_before_applied(self, tmp_path):
        leader = _leader(tmp_path)
        report = leader.tick(TICKS[0])
        assert report.frontier_runs == 1
        assert leader.applied_seq == 1 == leader.log.last_seq
        (seq, ops), = TickLogReader(leader.log.path).poll()
        assert seq == 1
        assert ops == [["insert", "p", "a", "q"], ["insert", "q", "b", "p"]]

    def test_malformed_tick_never_reaches_log_or_state(self, tmp_path):
        leader = _leader(tmp_path)
        ticks_before = leader.stats["ticks"]
        with pytest.raises(WALError):
            leader.tick([("upsert", ("p", "a", "q"))])
        assert leader.log.last_seq == 0
        assert leader.stats["ticks"] == ticks_before

    def test_update_convenience(self, tmp_path):
        leader = _leader(tmp_path)
        leader.update(inserts=[("p", "a", "q"), ("q", "b", "p")])
        assert leader.query("S", "p", "p") is True
        assert leader.applied_seq == 1

    def test_snapshot_stamps_wal_seq_and_anchors(self, tmp_path):
        leader = _leader(tmp_path)
        for ops in TICKS[:2]:
            leader.tick(ops)
        path = str(tmp_path / "index.snapshot")
        leader.save_snapshot(path)
        assert leader.log.anchor_seq == 2
        warm = QueryService.from_snapshot(path)
        assert warm.snapshot_meta["wal_seq"] == 2

    def test_snapshot_truncate_shrinks_log(self, tmp_path):
        leader = _leader(tmp_path)
        for ops in TICKS:
            leader.tick(ops)
        leader.save_snapshot(str(tmp_path / "index.snapshot"),
                             truncate=True)
        assert list(leader.log.records()) == []
        leader.tick(TICKS[0])
        assert leader.applied_seq == 5

    def test_recover_replays_past_snapshot(self, tmp_path):
        wal = str(tmp_path / "wal")
        snapshot = str(tmp_path / "index.snapshot")
        continuous = _leader(tmp_path, "wal-continuous")

        leader = ReplicatedService(_service(), TickLog(wal))
        leader.tick(TICKS[0])
        continuous.tick(TICKS[0])
        leader.save_snapshot(snapshot)
        for ops in TICKS[1:]:
            leader.tick(ops)
            continuous.tick(ops)
        leader.flush()
        leader.close()  # "crash" after the ticks were logged

        recovered = ReplicatedService.recover(snapshot, wal)
        assert recovered.applied_seq == len(TICKS)
        a = str(tmp_path / "recovered.snapshot")
        b = str(tmp_path / "continuous.snapshot")
        recovered.save_snapshot(a)
        continuous.save_snapshot(b)
        assert filecmp.cmp(a, b, shallow=False)

    def test_recover_covers_write_ahead_crash_window(self, tmp_path):
        """A tick appended to the log but never applied (crash between
        write-ahead and apply) is replayed on recovery."""
        wal = str(tmp_path / "wal")
        snapshot = str(tmp_path / "index.snapshot")
        leader = ReplicatedService(_service(), TickLog(wal))
        leader.save_snapshot(snapshot)
        leader.log.append(TICKS[0])  # logged, not applied: the crash
        leader.flush()
        leader.close()

        recovered = ReplicatedService.recover(snapshot, wal)
        assert recovered.applied_seq == 1
        assert recovered.query("S", "p", "p") is True

    def test_stats_carry_replication_block(self, tmp_path):
        leader = _leader(tmp_path)
        leader.tick(TICKS[0])
        replication = leader.stats["replication"]
        assert replication["role"] == "leader"
        assert replication["wal_seq"] == 1
        assert replication["wal_fsync"] == "batch"


class TestFollower:
    def _pair(self, tmp_path):
        leader = _leader(tmp_path)
        snapshot = str(tmp_path / "index.snapshot")
        leader.save_snapshot(snapshot)
        follower = FollowerService.from_snapshot(snapshot, leader.log.path)
        return leader, follower

    def test_replay_converges_to_byte_identical_index(self, tmp_path):
        leader, follower = self._pair(tmp_path)
        for ops in TICKS:
            leader.tick(ops)
        synced = follower.replay()
        assert synced == {"applied_ticks": len(TICKS), "seq": len(TICKS)}
        assert follower.replay() == {"applied_ticks": 0, "seq": len(TICKS)}

        a = str(tmp_path / "leader.snapshot")
        b = str(tmp_path / "follower.snapshot")
        leader.save_snapshot(a)
        follower.save_snapshot(b)
        assert filecmp.cmp(a, b, shallow=False)
        assert follower.query("S", "p", "p") is leader.query("S", "p", "p")

    def test_reads_serve_at_replay_horizon(self, tmp_path):
        leader, follower = self._pair(tmp_path)
        leader.tick(TICKS[0])
        # Not replayed yet: the follower still answers from its horizon.
        assert follower.query("S", "p", "p") is False
        follower.replay()
        assert follower.query("S", "p", "p") is True

    def test_writes_are_refused(self, tmp_path):
        _, follower = self._pair(tmp_path)
        with pytest.raises(ReadOnlyReplicaError):
            follower.tick(TICKS[0])
        with pytest.raises(ReadOnlyReplicaError):
            follower.update(inserts=[("p", "a", "q")])
        response = handle_request(follower, {
            "op": "update", "insert": [["p", "a", "q"]],
        })
        assert response["ok"] is False
        assert response["error_type"] == "ReadOnlyReplicaError"

    def test_sync_op_fast_forwards(self, tmp_path):
        leader, follower = self._pair(tmp_path)
        leader.tick(TICKS[0])
        response = handle_request(follower, {"op": "sync"})
        assert response["ok"] is True
        assert response["result"]["applied_ticks"] == 1
        # A plain service has nothing to sync.
        plain = handle_request(_service(), {"op": "sync"})
        assert plain["ok"] is False

    def test_top_k_serves_on_follower(self, tmp_path):
        leader, follower = self._pair(tmp_path)
        leader.tick(TICKS[0])
        follower.replay()
        response = handle_request(follower, {
            "op": "top_k", "start": "S",
            "source": "p", "target": "p", "k": 1,
        })
        assert response["ok"], response
        paths = response["result"]["paths"]
        assert paths == [[["p", "a", "q"], ["q", "b", "p"]]]

    def test_node_coercion_replicates_faithfully(self, tmp_path):
        """The protocol coerces "0" → int node 0 on the leader *before*
        logging, so the follower replays the coerced edge instead of
        growing a string twin node."""
        leader, follower = self._pair(tmp_path)
        response = handle_request(leader, {
            "op": "update", "insert": [["0", "a", "1"]],
            "delete": [["1", "a", "0"]],
        })
        assert response["ok"], response
        follower.replay()
        assert not follower.graph.has_node("0")
        assert follower.graph.node_count == leader.graph.node_count
        a = str(tmp_path / "leader.snapshot")
        b = str(tmp_path / "follower.snapshot")
        leader.save_snapshot(a)
        follower.save_snapshot(b)
        assert filecmp.cmp(a, b, shallow=False)

    def test_stats_carry_replication_block(self, tmp_path):
        leader, follower = self._pair(tmp_path)
        leader.tick(TICKS[0])
        follower.replay()
        replication = follower.stats["replication"]
        assert replication["role"] == "follower"
        assert replication["wal_seq"] == 1
        assert replication["ticks_replayed"] == 1


class TestCrossProcessDeterminism:
    def test_snapshots_byte_identical_across_hash_seeds(self, tmp_path):
        """The convergence guarantee must hold across *processes*:
        PYTHONHASHSEED randomizes set/dict iteration, so only canonical
        snapshot encoding makes leader and follower bytes comparable."""
        script = textwrap.dedent("""
            import sys
            from repro import QueryService, parse_grammar
            from repro.graph.generators import two_cycles

            grammar = parse_grammar("S -> a S b | a b",
                                    terminals=["a", "b"])
            service = QueryService(two_cycles(2, 3), grammar,
                                   single_path=True)
            service.tick([("insert", ("p", "a", "q")),
                          ("insert", ("q", "b", "p"))])
            service.tick([("delete", (0, "a", 1))])
            service.save_snapshot(sys.argv[1], extra={"wal_seq": 2})
        """)
        env = {**os.environ,
               "PYTHONPATH": "src" + os.pathsep
               + os.environ.get("PYTHONPATH", "")}
        cwd = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        outputs = []
        for seed in ("1", "4242"):
            out = str(tmp_path / f"seed-{seed}.snapshot")
            result = subprocess.run(
                [sys.executable, "-c", script, out],
                env={**env, "PYTHONHASHSEED": seed},
                capture_output=True, text=True, cwd=cwd, timeout=120,
            )
            assert result.returncode == 0, result.stderr
            outputs.append(out)
        assert filecmp.cmp(outputs[0], outputs[1], shallow=False)


class TestOpenRole:
    def test_single_passthrough(self):
        service = _service()
        assert open_role("single", service) is service

    def test_leader_wraps_and_recovers(self, tmp_path):
        wal = str(tmp_path / "wal")
        with TickLog(wal) as log:
            log.append(TICKS[0])
        leader = open_role("leader", _service(), wal=wal)
        assert leader.role == "leader"
        assert leader.applied_seq == 1
        assert leader.query("S", "p", "p") is True
        leader.close()

    def test_follower_catches_up(self, tmp_path):
        leader = _leader(tmp_path)
        snapshot = str(tmp_path / "index.snapshot")
        leader.save_snapshot(snapshot)
        leader.tick(TICKS[0])
        follower = open_role("follower", None, snapshot=snapshot,
                             wal=leader.log.path)
        assert follower.role == "follower"
        assert follower.replay_seq == leader.applied_seq

    def test_bad_configurations_rejected(self, tmp_path):
        with pytest.raises(WALError, match="--wal"):
            open_role("leader", _service())
        with pytest.raises(WALError, match="snapshot"):
            open_role("follower", None, wal=str(tmp_path / "wal"))
        with pytest.raises(WALError, match="unknown role"):
            open_role("primary", _service(), wal=str(tmp_path / "wal"))


def _request(address, request, timeout=10):
    with socket.create_connection(address, timeout=timeout) as sock:
        stream = sock.makefile("rw", encoding="utf-8")
        stream.write(json.dumps(request) + "\n")
        stream.flush()
        return json.loads(stream.readline())


class TestReplicatedServing:
    def test_leader_and_follower_servers_converge(self, tmp_path):
        """End-to-end over TCP: updates to the leader become visible on
        the follower through WAL tailing alone."""
        leader = _leader(tmp_path)
        snapshot = str(tmp_path / "index.snapshot")
        leader.save_snapshot(snapshot)
        follower = FollowerService.from_snapshot(snapshot, leader.log.path)

        with ServerThread(leader) as leader_server, \
                ServerThread(follower,
                             follower_poll_seconds=0.01) as follower_server:
            response = _request(leader_server.address, {
                "op": "update", "insert": [["p", "a", "q"],
                                           ["q", "b", "p"]],
            })
            assert response["ok"], response
            query = {"op": "query", "start": "S",
                     "source": "p", "target": "p"}
            deadline = time.monotonic() + 10
            while True:
                answer = _request(follower_server.address, query)
                if answer["result"] is True:
                    break
                assert time.monotonic() < deadline, answer
                time.sleep(0.02)
            # The follower refuses writes even over the wire.
            refused = _request(follower_server.address, {
                "op": "update", "insert": [["x", "a", "y"]],
            })
            assert refused["error_type"] == "ReadOnlyReplicaError"

    def test_leader_fans_reads_out_to_replicas(self, tmp_path):
        leader = _leader(tmp_path)
        snapshot = str(tmp_path / "index.snapshot")
        leader.save_snapshot(snapshot)
        followers = [
            FollowerService.from_snapshot(snapshot, leader.log.path)
            for _ in range(2)
        ]
        with ServerThread(followers[0], follower_poll_seconds=0.01) as f0, \
                ServerThread(followers[1], follower_poll_seconds=0.01) as f1:
            with ServerThread(leader, include_stats=True,
                              replicas=[f0.address, f1.address]) as front:
                _request(front.address, {
                    "op": "update", "insert": [["p", "a", "q"],
                                               ["q", "b", "p"]],
                })
                query = {"op": "query", "start": "S",
                         "source": "p", "target": "p"}
                deadline = time.monotonic() + 10
                roles = set()
                while time.monotonic() < deadline:
                    answer = _request(front.address, query)
                    assert answer["ok"], answer
                    # Responses come from the followers: their stats are
                    # not attached (follower servers run stats-less) —
                    # but a forwarded True means replication delivered.
                    if answer["result"] is True:
                        roles.add("follower")
                        break
                    time.sleep(0.02)
                assert "follower" in roles
                # Updates still run on the leader itself.
                stats = leader.stats["replication"]
                assert stats["wal_seq"] == 1

    def test_leader_falls_back_when_replicas_die(self, tmp_path):
        leader = _leader(tmp_path)
        snapshot = str(tmp_path / "index.snapshot")
        leader.save_snapshot(snapshot)
        follower = FollowerService.from_snapshot(snapshot, leader.log.path)
        with ServerThread(follower) as f0:
            dead_address = f0.address
        # The follower server is gone; the leader serves reads itself.
        with ServerThread(leader, replicas=[dead_address]) as front:
            answer = _request(front.address, {
                "op": "query", "start": "S", "source": 0, "target": 0,
            })
            assert answer["ok"] and answer["result"] is True

    def test_shutdown_flushes_leader_wal(self, tmp_path):
        leader = ReplicatedService(
            _service(), TickLog(str(tmp_path / "wal"), fsync="never"))
        with ServerThread(leader) as server:
            _request(server.address, {"op": "update",
                                      "insert": [["p", "a", "q"]]})
            response = _request(server.address, {"op": "shutdown"})
            assert response["ok"]
            server._thread.join(timeout=10)
        # After shutdown the record is on disk despite fsync="never".
        assert [seq for seq, _ in
                TickLogReader(str(tmp_path / "wal")).poll()] == [1]
