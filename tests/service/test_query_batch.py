"""``QueryService.query_batch``: partitioning, caching, errors, races.

The service contract: a batch answers exactly what the same queries
asked one-by-one would answer, populates the same LRU entries, reports
per-item failures in-band, and — because the whole batch runs under one
read-lock acquisition — is linearizable against concurrent ticks:
correlated membership probes in one batch see all-old or all-new state,
never a mix.
"""

from __future__ import annotations

import threading

import pytest

from repro import QueryService, parse_grammar
from repro.errors import GrammarError, SemanticsError
from repro.graph.generators import two_cycles, word_chain

ANBN = parse_grammar("S -> a S b | a b", terminals=["a", "b"])


@pytest.fixture
def service():
    return QueryService(two_cycles(2, 3), ANBN, backend="pyset")


def _all_probes(graph):
    nodes = [graph.node_at(i) for i in range(graph.node_count)]
    return [("S", a, b) for a in nodes for b in nodes]


class TestBatchAnswers:
    def test_matches_per_query(self, service):
        probes = _all_probes(service.graph)
        batch = probes + [("S",), {"start": "S", "source": 0, "target": 0}]
        reference = QueryService(two_cycles(2, 3), ANBN, backend="pyset")
        answers = service.query_batch(batch)
        for item, answer in zip(probes, answers):
            assert answer == reference.query(*item), item
        assert answers[len(probes)] == reference.query("S")
        assert answers[len(probes) + 1] == reference.query("S", 0, 0)

    def test_matches_per_query_after_tick(self, service):
        probes = _all_probes(service.graph)
        service.query_batch(probes)
        ops = [("insert", (0, "a", 99)), ("insert", (99, "b", 0))]
        service.tick(ops)
        reference = QueryService(two_cycles(2, 3), ANBN, backend="pyset")
        reference.tick(ops)
        for item, answer in zip(probes, service.query_batch(probes)):
            assert answer == reference.query(*item), item

    def test_populates_cache_per_query(self, service):
        probes = _all_probes(service.graph)[:6]
        service.query_batch(probes)
        stats = service.stats
        assert stats["cache_entries"] >= len(probes)
        assert stats["batch"]["closures"] == 1
        # Second pass: all hits, no new closure.
        service.query_batch(probes)
        stats = service.stats
        assert stats["cache_hits"] >= len(probes)
        assert stats["batch"]["closures"] == 1
        # The single-query path shares the same keys.
        before = service.stats["cache_misses"]
        service.query("S", *probes[0][1:])
        assert service.stats["cache_misses"] == before

    def test_membership_probe_uses_masked_path(self, service):
        """A batch of misses answers through one warm masked closure,
        not one relation materialization per probe."""
        probes = _all_probes(service.graph)[:5]
        answers = service.query_batch(probes)
        assert service.stats["batch"]["closures"] == 1
        assert any(answers) or not all(answers)

    def test_empty_batch(self, service):
        assert service.query_batch([]) == []

    def test_mixed_semantics(self):
        service = QueryService(word_chain(["a", "a", "b", "b"]), ANBN,
                               backend="pyset", single_path=True)
        answers = service.query_batch([
            ("S", 0, 4, "length"),
            ("S", 0, 4, "single-path"),
            ("S", 0, 4),
            ("S",),
        ])
        assert answers[0] == 4
        assert len(answers[1]) == 4
        assert answers[2] is True
        assert answers[3] == frozenset({(0, 4), (1, 3)})


class TestBatchErrors:
    def test_per_item_errors_in_band(self, service):
        answers = service.query_batch([
            ("S", 0, 0),
            ("NoSuchNT", 0, 0),
            {"source": 0},                     # missing start
            ("S", 0, None),                    # half-restricted
            ("S", 0, 0, "bogus-semantics"),
            ("S", 1, 1),
        ])
        assert answers[0] in (True, False)
        assert isinstance(answers[1], GrammarError)
        assert isinstance(answers[2], SemanticsError)
        assert isinstance(answers[3], SemanticsError)
        assert isinstance(answers[4], SemanticsError)
        assert answers[5] in (True, False)

    def test_errors_are_not_cached(self, service):
        service.query_batch([("NoSuchNT", 0, 0)])
        assert service.stats["cache_entries"] == 0

    def test_absent_nodes_are_false_and_cached(self, service):
        answers = service.query_batch([("S", "ghost", 0)])
        assert answers == [False]
        assert service.stats["cache_entries"] == 1


class TestMembershipEvaluate:
    def test_single_query_membership_matches_relation(self, service):
        pairs = service.query("S")
        graph = service.graph
        for i in range(graph.node_count):
            for j in range(graph.node_count):
                a, b = graph.node_at(i), graph.node_at(j)
                assert service.query("S", a, b) == ((a, b) in pairs)


class TestLinearizability:
    def test_batch_racing_tick_sees_consistent_state(self):
        """A tick toggles two correlated facts atomically; a batch
        probing both under the read lock must never observe a mix."""
        # Chain 0-a->1-b->2: S relates (0, 2).  The toggle inserts and
        # removes the edge pair that makes (3, 5) derivable too.
        base = [(0, "a", 1), (1, "b", 2)]
        extra = [(3, "a", 4), (4, "b", 5)]
        service = QueryService(
            word_chain(["a", "b"]), ANBN, backend="pyset", cache_size=1)
        # Register the extra nodes so probes resolve.
        service.tick([("insert", edge) for edge in extra])
        service.tick([("delete", edge) for edge in extra])

        # The RW lock prefers writers, so the toggler must be bounded —
        # probers read whenever they win the lock and stop when the
        # toggling is over (at least one probe always runs).
        done = threading.Event()
        violations: list = []

        def toggler():
            try:
                for _ in range(100):
                    service.tick([("insert", edge) for edge in extra])
                    service.tick([("delete", edge) for edge in extra])
            finally:
                done.set()

        def prober():
            probes = 0
            while probes == 0 or not done.is_set():
                probes += 1
                stable, toggled = service.query_batch(
                    [("S", 0, 2), ("S", 3, 5)])
                # The stable fact must always hold; the toggled fact is
                # whatever the tick left, but never an error/mixture.
                if stable is not True or not isinstance(toggled, bool):
                    violations.append((stable, toggled))

        threads = [threading.Thread(target=prober) for _ in range(3)]
        threads.append(threading.Thread(target=toggler))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not violations

    def test_batch_cache_invalidated_by_tick(self):
        service = QueryService(word_chain(["a", "b"]), ANBN,
                               backend="pyset")
        assert service.query_batch([("S", 0, 2)]) == [True]
        service.tick([("delete", (0, "a", 1))])
        assert service.query_batch([("S", 0, 2)]) == [False]
        service.tick([("insert", (0, "a", 1))])
        assert service.query_batch([("S", 0, 2)]) == [True]
