"""Tests for the exception hierarchy and the top-level public API."""

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if (isinstance(obj, type) and issubclass(obj, Exception)
                    and obj is not errors.ReproError):
                assert issubclass(obj, errors.ReproError), name

    def test_parse_errors_carry_location(self):
        error = errors.GrammarParseError("bad", line_number=3, line_text="x y z")
        assert error.line_number == 3
        assert "line 3" in str(error)
        assert "x y z" in str(error)

    def test_unknown_backend_lists_available(self):
        error = errors.UnknownBackendError("gpu", ["dense", "sparse"])
        assert "gpu" in str(error)
        assert "dense" in str(error)

    def test_catching_base_class(self):
        with pytest.raises(errors.ReproError):
            raise errors.PathNotFoundError("nope")


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_quickstart_from_docstring(self):
        """The module docstring example must actually run."""
        from repro import CFPQEngine, parse_grammar
        from repro.graph import two_cycles

        grammar = parse_grammar("S -> a S b | a b", terminals=["a", "b"])
        engine = CFPQEngine(two_cycles(2, 3), grammar)
        assert engine.relational("S")
        assert engine.single_path("S", 0, 0)

    def test_one_import_workflow(self):
        """End-to-end through only top-level names."""
        grammar = repro.parse_grammar("S -> e | e S", terminals=["e"])
        graph = repro.LabeledGraph.from_edges([
            ("a", "e", "b"), ("b", "e", "c"),
        ])
        pairs = repro.cfpq(graph, grammar, "S")
        assert pairs == {("a", "b"), ("a", "c"), ("b", "c")}
