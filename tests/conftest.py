"""Shared fixtures: canonical grammars, graphs and backend parametrization."""

from __future__ import annotations

import pytest

from repro.grammar import CFG, parse_grammar
from repro.graph import LabeledGraph, two_cycles, word_chain
from repro.matrices import available_backends, get_backend


@pytest.fixture
def anbn_grammar() -> CFG:
    """``S -> a S b | a b`` — the canonical {aⁿbⁿ} grammar (non-CNF)."""
    return parse_grammar("S -> a S b | a b", terminals=["a", "b"])


@pytest.fixture
def dyck_grammar() -> CFG:
    """Dyck-1 over a/b: ``S -> a S b | a b | S S``."""
    return parse_grammar("S -> a S b | a b | S S", terminals=["a", "b"])


@pytest.fixture
def ab_cnf_grammar() -> CFG:
    """{aⁿbⁿ} already in CNF: S -> A S1 | A B; S1 -> S B; A -> a; B -> b."""
    return parse_grammar(
        """
        S -> A S1
        S -> A B
        S1 -> S B
        A -> a
        B -> b
        """,
        terminals=["a", "b"],
    )


@pytest.fixture
def two_cycle_graph() -> LabeledGraph:
    """The classic worst case: an a-cycle of length 2 and a b-cycle of
    length 3 sharing node 0."""
    return two_cycles(2, 3, "a", "b")


@pytest.fixture
def aabb_chain() -> LabeledGraph:
    """A chain spelling 'aabb' — S must relate exactly (0,4) and (1,3)."""
    return word_chain(["a", "a", "b", "b"])


@pytest.fixture(params=available_backends())
def backend_name(request) -> str:
    """Parametrize a test over every registered matrix backend."""
    return request.param


@pytest.fixture
def backend(backend_name):
    """The backend object for :func:`backend_name`."""
    return get_backend(backend_name)
