"""RPQ through the closure engine vs the kept naive-loop oracle.

``solve_rpq`` now routes the product-graph reachability through
:func:`repro.core.matrix_cfpq.run_closure` (one nonterminal, rule
``R -> R R``) and demuxes start rows with ``mask_rows``;
``solve_rpq_reference`` keeps the original repeated-squaring loop as
the test oracle.  ``solve_rpq_batch`` answers many regexes with one
block-diagonal closure.
"""

from __future__ import annotations

import random

import pytest

from repro.graph.labeled_graph import LabeledGraph
from repro.matrices import available_backends
from repro.regular.rpq import solve_rpq, solve_rpq_batch, solve_rpq_reference

REGEXES = ("a", "a b", "(a | b)+", "a* b a*", "(a b)+")
STRATEGIES = ("naive", "delta", "blocked")


def _graphs():
    rng = random.Random(7)
    graphs = []
    for _ in range(4):
        edges = [(rng.randrange(7), rng.choice("ab"), rng.randrange(7))
                 for _ in range(14)]
        graphs.append(LabeledGraph.from_edges(edges))
    return graphs


class TestClosureRouteMatchesOracle:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_differential(self, strategy):
        for graph in _graphs():
            for backend in available_backends():
                for regex in REGEXES:
                    oracle = solve_rpq_reference(graph, regex,
                                                 backend=backend)
                    routed = solve_rpq(graph, regex, backend=backend,
                                       strategy=strategy)
                    assert routed == oracle, (regex, backend, strategy)

    def test_empty_graph(self):
        graph = LabeledGraph.from_edges([])
        assert solve_rpq(graph, "a+") \
            == solve_rpq_reference(graph, "a+") == frozenset()


class TestBatchRPQ:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_block_diagonal_matches_per_query(self, strategy):
        for graph in _graphs()[:2]:
            for backend in available_backends():
                batched = solve_rpq_batch(graph, REGEXES, backend=backend,
                                          strategy=strategy)
                assert len(batched) == len(REGEXES)
                for regex, answer in zip(REGEXES, batched):
                    assert answer == solve_rpq_reference(
                        graph, regex, backend=backend), (regex, backend)

    def test_empty_batch(self):
        assert solve_rpq_batch(_graphs()[0], []) == []
