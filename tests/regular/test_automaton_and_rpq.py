"""Tests for the NFA construction and the matrix-based RPQ solver."""

from itertools import product as iter_product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import chain, cycle, random_graph, word_chain
from repro.graph.labeled_graph import LabeledGraph
from repro.regular.automaton import regex_to_nfa
from repro.regular.regex import parse_regex
from repro.regular.rpq import rpq_pairs_by_id, solve_rpq


def nfa(expression: str):
    return regex_to_nfa(parse_regex(expression))


class TestNFA:
    @pytest.mark.parametrize("expression,accepted,rejected", [
        ("a", [["a"]], [[], ["b"], ["a", "a"]]),
        ("a b", [["a", "b"]], [["a"], ["b", "a"]]),
        ("a | b", [["a"], ["b"]], [[], ["a", "b"]]),
        ("a*", [[], ["a"], ["a", "a", "a"]], [["b"]]),
        ("a+", [["a"], ["a", "a"]], [[]]),
        ("a?", [[], ["a"]], [["a", "a"]]),
        ("(a b)*", [[], ["a", "b"], ["a", "b", "a", "b"]],
         [["a"], ["a", "b", "a"]]),
        ("(a | b)+ c", [["a", "c"], ["b", "a", "c"]], [["c"], ["a"]]),
    ])
    def test_acceptance(self, expression, accepted, rejected):
        automaton = nfa(expression)
        for word in accepted:
            assert automaton.accepts(word), (expression, word)
        for word in rejected:
            assert not automaton.accepts(word), (expression, word)

    def test_accepts_empty(self):
        assert nfa("a*").accepts_empty()
        assert not nfa("a").accepts_empty()

    def test_labels(self):
        assert nfa("a b | c*").labels == {"a", "b", "c"}


class TestRPQ:
    def test_single_label_is_edge_relation(self):
        graph = chain(3)
        assert rpq_pairs_by_id(graph, "a") == {(0, 1), (1, 2), (2, 3)}

    def test_plus_is_transitive_reachability(self):
        graph = chain(3)
        assert rpq_pairs_by_id(graph, "a+") == {
            (i, j) for i in range(4) for j in range(i + 1, 4)
        }

    def test_star_adds_reflexive_pairs(self):
        graph = chain(2)
        pairs = rpq_pairs_by_id(graph, "a*")
        assert {(0, 0), (1, 1), (2, 2)} <= pairs
        assert (0, 2) in pairs

    def test_concatenation_on_labels(self):
        graph = word_chain(["a", "b", "a"])
        assert rpq_pairs_by_id(graph, "a b") == {(0, 2)}
        assert rpq_pairs_by_id(graph, "b a") == {(1, 3)}

    def test_union(self):
        graph = word_chain(["a", "b"])
        assert rpq_pairs_by_id(graph, "a | b") == {(0, 1), (1, 2)}

    def test_cycle_reachability(self):
        graph = cycle(3)
        assert rpq_pairs_by_id(graph, "a+") == {
            (i, j) for i in range(3) for j in range(3)
        }

    def test_same_generation_regular_approximation(self):
        """The regular query subClassOf_r+ subClassOf+ OVER-approximates
        the context-free same-generation query (no depth matching)."""
        from repro.core.matrix_cfpq import solve_matrix_relations
        from repro.grammar.parser import parse_grammar

        graph = LabeledGraph.from_edges([
            ("b", "subClassOf", "a"), ("c", "subClassOf", "a"),
            ("d", "subClassOf", "b"),
        ]).with_inverse_edges()
        cf_grammar = parse_grammar(
            "S -> subClassOf_r S subClassOf | subClassOf_r subClassOf",
            terminals=["subClassOf", "subClassOf_r"],
        )
        cf_pairs = solve_matrix_relations(graph, cf_grammar).pairs("S")
        rpq_pairs = rpq_pairs_by_id(graph, "subClassOf_r+ subClassOf+")
        assert cf_pairs <= rpq_pairs       # over-approximation
        # and strictly so: (a, b) matches regular (depths 2 vs 1) but is
        # not same-generation
        assert rpq_pairs - cf_pairs

    def test_node_objects_returned(self):
        graph = LabeledGraph.from_edges([("x", "knows", "y")])
        assert solve_rpq(graph, "knows") == {("x", "y")}

    def test_empty_graph(self):
        assert solve_rpq(LabeledGraph(), "a*") == frozenset()

    def test_backends_agree(self):
        graph = random_graph(6, 15, ["a", "b"], seed=1)
        answers = {
            backend: rpq_pairs_by_id(graph, "(a | b)* a", backend=backend)
            for backend in ["dense", "sparse", "pyset", "bitset"]
        }
        assert len(set(answers.values())) == 1


# ----------------------------------------------------------------------
# Property: matrix RPQ == brute-force (enumerate words up to a bound,
# check NFA acceptance against path existence).
# ----------------------------------------------------------------------

EXPRESSIONS = ["a", "a b", "a | b", "a*", "a+ b", "(a b)+", "a? b*"]


@given(
    seed=st.integers(0, 500),
    expression=st.sampled_from(EXPRESSIONS),
)
@settings(max_examples=50, deadline=None)
def test_rpq_matches_bruteforce(seed, expression):
    graph = random_graph(4, 8, ["a", "b"], seed=seed)
    automaton = regex_to_nfa(parse_regex(expression))
    answer = rpq_pairs_by_id(graph, expression)

    # brute force: all label words up to length 4, tested against both
    # the automaton and actual path existence.
    adjacency = {}
    for i, label, j in graph.edges_by_id():
        adjacency.setdefault(i, []).append((label, j))

    expected = set()
    if automaton.accepts_empty():
        expected.update((v, v) for v in range(graph.node_count))
    for start in range(graph.node_count):
        frontier = [(start, ())]
        for _depth in range(4):
            next_frontier = []
            for node, word in frontier:
                for label, target in adjacency.get(node, ()):
                    extended = word + (label,)
                    next_frontier.append((target, extended))
                    if automaton.accepts(list(extended)):
                        expected.add((start, target))
            frontier = next_frontier

    # our answer may contain pairs needing words longer than 4; the
    # brute-force set must be a subset, and agree exactly on short words
    assert expected <= answer
