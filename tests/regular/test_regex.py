"""Tests for the regex parser and AST."""

import pytest

from repro.errors import GrammarParseError
from repro.regular.regex import (
    Concat,
    Label,
    Optional_,
    Plus,
    Star,
    Union,
    parse_regex,
    regex_labels,
)


def test_single_label():
    assert parse_regex("a") == Label("a")


def test_multichar_labels():
    assert parse_regex("subClassOf_r") == Label("subClassOf_r")


def test_concatenation():
    assert parse_regex("a b") == Concat(Label("a"), Label("b"))


def test_union():
    assert parse_regex("a | b") == Union(Label("a"), Label("b"))


def test_precedence_concat_over_union():
    assert parse_regex("a b | c") == Union(
        Concat(Label("a"), Label("b")), Label("c")
    )


def test_postfix_operators():
    assert parse_regex("a*") == Star(Label("a"))
    assert parse_regex("a+") == Plus(Label("a"))
    assert parse_regex("a?") == Optional_(Label("a"))


def test_stacked_postfix():
    assert parse_regex("a*?") == Optional_(Star(Label("a")))


def test_parentheses_group():
    assert parse_regex("(a b)*") == Star(Concat(Label("a"), Label("b")))


def test_nested_expression():
    node = parse_regex("(a | b)+ c")
    assert node == Concat(Plus(Union(Label("a"), Label("b"))), Label("c"))


def test_empty_rejected():
    with pytest.raises(GrammarParseError):
        parse_regex("   ")


def test_unbalanced_paren_rejected():
    with pytest.raises(GrammarParseError):
        parse_regex("(a b")


def test_dangling_operator_rejected():
    with pytest.raises(GrammarParseError):
        parse_regex("| a")


def test_bad_character_rejected():
    with pytest.raises(GrammarParseError):
        parse_regex("a & b")


def test_regex_labels():
    assert regex_labels(parse_regex("(a b)* | c+")) == {"a", "b", "c"}
