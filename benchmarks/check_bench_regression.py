"""Benchmark regression gate: fresh JSON numbers vs committed baselines.

Usage (what CI's bench-smoke job runs)::

    PYTHONPATH=src python benchmarks/bench_single_path.py \
        --datasets skos travel --output /tmp/semantics.json
    PYTHONPATH=src python benchmarks/check_bench_regression.py \
        --baseline benchmarks/BENCH_semantics.json \
        --current /tmp/semantics.json --factor 2.0

The checker walks both JSON documents in lockstep and compares every
leaf whose key ends in ``wall_time_s``:

* current > baseline × factor × calibration  →  regression, exit 1,
  reporting suite, case, baseline seconds, current seconds and the
  slowdown ratio so the failing metric is identifiable from the log;
* the cell is missing from the current run  →  coverage loss, exit 1;
* baseline below ``--min-seconds`` (default 0.02) → skipped, such cells
  are timer noise on CI runners;
* ``agree`` flags that are false in the current run → correctness
  failure, exit 1 (strategies must stay byte-identical);
* ``within_*`` boolean leaves that are false in the current run →
  budget failure, exit 1 (the producing benchmark self-asserts a
  budget — e.g. bench_obs.py's ``within_overhead`` tracing gate);
* cells naming a backend whose optional dependency is not importable
  on this host (``sparse`` needs SciPy; ``dense``/``bitset`` need
  NumPy) are skipped with a notice instead of reported as coverage
  loss — a dependency-free runner checks what it can run.

``calibration`` absorbs machine-speed differences between the baseline
host and the CI runner: it is the *median* current/baseline ratio over
all compared cells, clamped to ≥ 1.  A uniformly slower runner raises
every ratio equally and the median absorbs it; a genuine strategy
regression is an outlier against the median and still trips the
factor.  ``--no-calibrate`` restores raw absolute comparison.

Regenerate a baseline by re-running the producing benchmark with
``--output benchmarks/BENCH_<name>.json`` on a quiet machine.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys

#: Backend name → the module its kernels import.  A baseline cell whose
#: path names one of these backends is only comparable when the module
#: is importable on the checking host.
OPTIONAL_BACKEND_MODULES = {
    "sparse": "scipy",
    "dense": "numpy",
    "bitset": "numpy",
}


def unavailable_backends() -> set[str]:
    """The backends whose optional dependency this host cannot import."""
    return {
        backend
        for backend, module in OPTIONAL_BACKEND_MODULES.items()
        if importlib.util.find_spec(module) is None
    }


def _names_unavailable_backend(path: tuple, missing: set[str]) -> bool:
    """True when any path component is (or is suffixed by) a backend
    whose dependency is missing — ``solvers.sparse`` and
    ``funding_x16_bitset`` alike."""
    if not missing:
        return False
    for component in path:
        for backend in missing:
            if component == backend or component.endswith(f"_{backend}"):
                return True
    return False


def iter_cells(document, path=()):
    """Yield (path, value) for every leaf of the nested JSON document."""
    if isinstance(document, dict):
        for key, value in document.items():
            yield from iter_cells(value, path + (str(key),))
    elif isinstance(document, list):
        for index, value in enumerate(document):
            yield from iter_cells(value, path + (str(index),))
    else:
        yield path, document


def lookup(document, path):
    node = document
    for key in path:
        if isinstance(node, dict):
            if key not in node:
                return None
            node = node[key]
        elif isinstance(node, list):
            index = int(key)
            if index >= len(node):
                return None
            node = node[index]
        else:
            return None
    return node


def compare(baseline: dict, current: dict, factor: float,
            min_seconds: float, calibrate: bool = True,
            missing_backends: set[str] | None = None,
            skipped: list[str] | None = None) -> list[str]:
    problems: list[str] = []
    timed: list[tuple[str, float, float]] = []
    missing = (unavailable_backends() if missing_backends is None
               else missing_backends)
    for path, value in iter_cells(baseline):
        dotted = ".".join(path)
        if _names_unavailable_backend(path, missing):
            if skipped is not None and (
                    path[-1] == "agree" or path[-1].endswith("wall_time_s")):
                skipped.append(dotted)
            continue
        if path and path[-1] == "agree":
            now = lookup(current, path)
            if now is False:
                problems.append(f"{dotted}: strategies disagree in the "
                                f"current run")
            continue
        if path and path[-1].startswith("within_"):
            # Self-asserted budget leaves (e.g. bench_obs.py's
            # within_overhead): the producing benchmark computed the
            # pass/fail verdict; a false in the current run is a gate
            # failure regardless of the baseline's numbers.
            now = lookup(current, path)
            if now is False:
                problems.append(f"{dotted}: budget exceeded in the "
                                f"current run")
            continue
        if not path or not path[-1].endswith("wall_time_s"):
            continue
        if not isinstance(value, (int, float)) or value < min_seconds:
            continue
        now = lookup(current, path)
        if now is None:
            problems.append(f"{dotted}: cell missing from the current run")
            continue
        timed.append((dotted, float(value), float(now)))

    calibration = 1.0
    if calibrate and timed:
        ratios = sorted(now / value for _dotted, value, now in timed)
        median = ratios[len(ratios) // 2]
        calibration = max(1.0, median)

    for dotted, value, now in timed:
        if now > value * factor * calibration:
            problems.append(
                f"case {dotted}: baseline {value:.4f}s, current "
                f"{now:.4f}s, ratio {now / value:.2f}x (limit "
                f"{factor:.1f}x after {calibration:.2f}x machine "
                f"calibration)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when benchmark wall times regress vs a baseline"
    )
    parser.add_argument("--baseline", required=True, action="append",
                        help="committed BENCH_*.json (repeatable)")
    parser.add_argument("--current", required=True, action="append",
                        help="freshly produced JSON, paired positionally "
                             "with --baseline")
    parser.add_argument("--factor", type=float, default=2.0,
                        help="allowed slowdown factor (default 2.0)")
    parser.add_argument("--min-seconds", type=float, default=0.02,
                        help="ignore cells whose baseline is below this "
                             "(timer noise)")
    parser.add_argument("--no-calibrate", action="store_true",
                        help="compare raw wall times instead of "
                             "median-ratio machine calibration")
    args = parser.parse_args(argv)
    if len(args.baseline) != len(args.current):
        parser.error("--baseline and --current must be paired")

    missing = unavailable_backends()
    failures: list[str] = []
    for baseline_path, current_path in zip(args.baseline, args.current):
        with open(baseline_path, "r", encoding="utf-8") as stream:
            baseline = json.load(stream)
        with open(current_path, "r", encoding="utf-8") as stream:
            current = json.load(stream)
        skipped: list[str] = []
        for problem in compare(baseline, current, args.factor,
                               args.min_seconds,
                               calibrate=not args.no_calibrate,
                               missing_backends=missing, skipped=skipped):
            failures.append(f"suite {baseline_path}: {problem}")
        if skipped:
            print(f"{baseline_path}: skipped {len(skipped)} cell(s) "
                  f"needing unavailable backends "
                  f"({', '.join(sorted(missing))})")

    if failures:
        print("benchmark regression gate FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("benchmark regression gate OK "
          f"(factor {args.factor:.1f}x, floor {args.min_seconds}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
