"""Incremental maintenance vs. recompute-from-scratch.

Quantifies the dynamic-graph extension (`repro.core.incremental`): after
an initial solve on the funding ontology, how much does keeping R_S up
to date under a stream of subclass-edge insertions cost, versus
re-running the batch engine after every insertion?

Expected shape: per-insertion delta propagation is orders of magnitude
cheaper than a batch re-solve, because a single edge's consequences are
local in the fixpoint (only genuinely new facts propagate).
"""

from __future__ import annotations

import pytest

from repro.core.incremental import IncrementalCFPQ
from repro.core.matrix_cfpq import solve_matrix_relations
from repro.datasets.registry import build_graph
from repro.graph.labeled_graph import LabeledGraph

INSERTIONS = [
    (f"NewClass{k}", "subClassOf", f"Class{k}") for k in range(10)
]


def _base_graph() -> LabeledGraph:
    return build_graph("funding")


def test_initial_incremental_solve(benchmark, query1_cnf):
    graph = _base_graph()
    solver = benchmark.pedantic(
        IncrementalCFPQ, args=(graph, query1_cnf), iterations=1, rounds=1,
    )
    assert solver.pairs("S")


def test_insertion_stream_incremental(benchmark, query1_cnf):
    graph = _base_graph()
    solver = IncrementalCFPQ(graph, query1_cnf)

    def insert_stream() -> int:
        derived = 0
        for child, label, parent in INSERTIONS:
            derived += solver.add_edge(child, label, parent)
            derived += solver.add_edge(parent, f"{label}_r", child)
        return derived

    benchmark.pedantic(insert_stream, iterations=1, rounds=1)
    # consistency gate: incremental state equals a batch solve
    batch = solve_matrix_relations(solver.graph, query1_cnf,
                                   normalize=False)
    assert solver.relations().same_as(batch)


def test_insertion_stream_recompute(benchmark, query1_cnf):
    """The baseline the incremental solver is saving: full re-solve
    after every insertion."""
    graph = _base_graph()
    working = LabeledGraph.from_edges(graph.edges())

    def recompute_stream() -> int:
        total = 0
        for child, label, parent in INSERTIONS:
            working.add_edge(child, label, parent)
            working.add_edge(parent, f"{label}_r", child)
            total += solve_matrix_relations(working, query1_cnf,
                                            normalize=False).count("S")
        return total

    result = benchmark.pedantic(recompute_stream, iterations=1, rounds=1)
    assert result > 0
