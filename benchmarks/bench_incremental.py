"""Incremental maintenance vs. recompute-from-scratch, and the batch
insertion path vs. the per-tuple loop.

Two layers:

1. pytest-benchmark tests on the funding ontology: initial solve,
   per-insertion delta propagation vs. full re-solve per insertion, and
   DRed deletion, each gated by a consistency check against the batch
   engine.

2. a machine-readable batch-size sweep (run this module as a script)::

       PYTHONPATH=src python benchmarks/bench_incremental.py \
           --batch-sizes 10 100 1000 --output incremental.json

   For each batch size the sweep inserts the same random-reachability
   edge batch twice — once through the per-tuple ``add_edge`` loop,
   once through the matrix-granular ``add_edges`` frontier — and
   reports wall time, derived facts/s and the batch-over-per-tuple
   speedup, plus the DRed wall time for deleting a tenth of the batch.
   The workload (S -> a | a S over a random graph with ~3 edges per
   node) makes insertions *interact* heavily — the regime a
   graph-database bulk load lives in: per-tuple pays one worklist pop
   plus a Python-level join per derived fact, while the batch path
   derives the same facts in ~graph-diameter frontier × matrix
   products.  ``benchmarks/BENCH_incremental.json`` pins the
   acceptance number (batch ≥2× at 1000 edges) and CI's bench-smoke
   gate re-measures it.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import pytest

from repro.core.incremental import IncrementalCFPQ
from repro.core.matrix_cfpq import solve_matrix_relations
from repro.datasets.registry import build_graph
from repro.graph.labeled_graph import LabeledGraph

INSERTIONS = [
    (f"NewClass{k}", "subClassOf", f"Class{k}") for k in range(10)
]


def _base_graph() -> LabeledGraph:
    return build_graph("funding")


def test_initial_incremental_solve(benchmark, query1_cnf):
    graph = _base_graph()
    solver = benchmark.pedantic(
        IncrementalCFPQ, args=(graph, query1_cnf), iterations=1, rounds=1,
    )
    assert solver.pairs("S")


def test_insertion_stream_incremental(benchmark, query1_cnf):
    graph = _base_graph()
    solver = IncrementalCFPQ(graph, query1_cnf)

    def insert_stream() -> int:
        derived = 0
        for child, label, parent in INSERTIONS:
            derived += solver.add_edge(child, label, parent)
            derived += solver.add_edge(parent, f"{label}_r", child)
        return derived

    benchmark.pedantic(insert_stream, iterations=1, rounds=1)
    # consistency gate: incremental state equals a batch solve
    batch = solve_matrix_relations(solver.graph, query1_cnf,
                                   normalize=False)
    assert solver.relations().same_as(batch)


def test_insertion_stream_recompute(benchmark, query1_cnf):
    """The baseline the incremental solver is saving: full re-solve
    after every insertion."""
    graph = _base_graph()
    working = LabeledGraph.from_edges(graph.edges())

    def recompute_stream() -> int:
        total = 0
        for child, label, parent in INSERTIONS:
            working.add_edge(child, label, parent)
            working.add_edge(parent, f"{label}_r", child)
            total += solve_matrix_relations(working, query1_cnf,
                                            normalize=False).count("S")
        return total

    result = benchmark.pedantic(recompute_stream, iterations=1, rounds=1)
    assert result > 0


def test_deletion_stream_dred(benchmark, query1_cnf):
    """DRed delete-and-rederive for an insertion's worth of edges —
    the dynamic-workload counterpart of the insertion stream."""
    graph = _base_graph()
    solver = IncrementalCFPQ(graph, query1_cnf)
    batch = [(child, label, parent) for child, label, parent in INSERTIONS]
    batch += [(parent, f"{label}_r", child)
              for child, label, parent in INSERTIONS]
    solver.add_edges(batch)

    benchmark.pedantic(solver.remove_edges, args=(batch,),
                       iterations=1, rounds=1)
    scratch = solve_matrix_relations(solver.graph, query1_cnf,
                                     normalize=False)
    assert solver.relations().same_as(scratch)


# ----------------------------------------------------------------------
# Batch vs per-tuple sweep (machine-readable)
# ----------------------------------------------------------------------

def _random_batch(batch_size: int, edges_per_node: float = 3.5,
                  seed: int = 7) -> list:
    """*batch_size* distinct random a-edges over ``batch_size /
    edges_per_node`` nodes (deterministic in *seed*)."""
    import random

    nodes = max(4, round(batch_size / edges_per_node))
    rng = random.Random(seed)
    seen: set = set()
    edges: list = []
    while len(edges) < batch_size:
        edge = (rng.randrange(nodes), "a", rng.randrange(nodes))
        if edge not in seen:
            seen.add(edge)
            edges.append(edge)
    return edges


def run_incremental_suite(batch_sizes: tuple[int, ...] = (10, 100, 1000),
                          edges_per_node: float = 3.5,
                          backend: str | None = None,
                          strategy: str = "delta",
                          repeats: int = 2) -> dict:
    """Time ``add_edges`` vs the ``add_edge`` loop per batch size.

    Returns ``{batch_sizes: {size: {batch_wall_time_s,
    per_tuple_wall_time_s, speedup, facts, batch_facts_per_s,
    delete_wall_time_s, agree}}}``.
    """
    from repro.grammar.builders import chain_reachability
    from repro.grammar.cnf import to_cnf
    from repro.matrices.base import default_backend

    grammar = to_cnf(chain_reachability("a"))
    backend = backend or default_backend()
    report: dict = {
        "benchmark": "incremental batch vs per-tuple insertion",
        "workload": f"random a-graph, ~{edges_per_node:g} edges/node, "
                    "S -> a | a S",
        "backend": backend,
        "strategy": strategy,
        "batch_sizes": {},
    }
    for size in batch_sizes:
        edges = _random_batch(size, edges_per_node=edges_per_node)

        # Best-of-repeats per path: fresh solver per repetition, only
        # the mutation calls are timed.
        tuple_seconds = batch_seconds = float("inf")
        for _ in range(max(1, repeats)):
            per_tuple = IncrementalCFPQ(LabeledGraph(), grammar,
                                        backend=backend, strategy=strategy)
            started = time.perf_counter()
            tuple_facts = sum(per_tuple.add_edge(*edge) for edge in edges)
            tuple_seconds = min(tuple_seconds,
                                time.perf_counter() - started)

            batched = IncrementalCFPQ(LabeledGraph(), grammar,
                                      backend=backend, strategy=strategy)
            started = time.perf_counter()
            batch_facts = batched.add_edges(edges)
            batch_seconds = min(batch_seconds,
                                time.perf_counter() - started)

        agree = (batch_facts == tuple_facts
                 and batched.relations().same_as(per_tuple.relations()))

        # DRed: delete a tenth of the batch in one call.
        victims = edges[::10]
        started = time.perf_counter()
        removed = batched.remove_edges(victims)
        delete_seconds = time.perf_counter() - started
        agree = agree and batched.relations().same_as(
            solve_matrix_relations(batched.graph, grammar, backend=backend,
                                   normalize=False))

        report["batch_sizes"][str(size)] = {
            "edges": len(edges),
            "facts": batch_facts,
            "per_tuple_wall_time_s": round(tuple_seconds, 6),
            "batch_wall_time_s": round(batch_seconds, 6),
            "speedup": round(tuple_seconds / batch_seconds, 3)
            if batch_seconds else float("inf"),
            "batch_facts_per_s": round(batch_facts / batch_seconds, 1)
            if batch_seconds else float("inf"),
            "delete_wall_time_s": round(delete_seconds, 6),
            "facts_removed": removed,
            "agree": agree,
        }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="incremental batch-insertion benchmark (JSON summary)"
    )
    parser.add_argument("--batch-sizes", type=int, nargs="+",
                        default=[10, 100, 1000])
    parser.add_argument("--edges-per-node", type=int, default=3)
    parser.add_argument("--backend", default=None)
    parser.add_argument("--strategy", default="delta")
    parser.add_argument("--output", default=None,
                        help="write JSON here (default: stdout)")
    args = parser.parse_args(argv)

    report = run_incremental_suite(batch_sizes=tuple(args.batch_sizes),
                                   edges_per_node=args.edges_per_node,
                                   backend=args.backend,
                                   strategy=args.strategy)
    payload = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            stream.write(payload + "\n")
        print(f"wrote {args.output}")
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
