"""Table 1 reproduction: Query 1 (same generation) on the paper's datasets.

Paper columns → our benchmarks:

* GLL        → ``test_table1_gll``        (descriptor-driven baseline)
* dGPU       → ``test_table1_dense``      (NumPy dense; small graphs only,
                                           the paper also omits dense on
                                           g1–g3)
* sCPU/sGPU  → ``test_table1_sparse``     (SciPy CSR)

Each benchmark also asserts the solver returns the calibrated result
count, so a silent correctness regression cannot hide behind a fast
time.  Expected *shape* (paper): all solvers agree on #results; sparse
scales to g1–g3 where dense cannot; the matrix engine's advantage over
the baseline grows with graph size.
"""

from __future__ import annotations

import pytest

from repro.baselines.gll import solve_gll
from repro.core.matrix_cfpq import solve_matrix_relations
from repro.datasets.registry import ONTOLOGY_NAMES, SYNTHETIC_NAMES

#: Small ontologies where the dense (dGPU stand-in) column is measured.
DENSE_DATASETS = ("skos", "generations", "travel", "univ-bench",
                  "atom-primitive", "biomedical-measure-primitive", "foaf",
                  "people-pets")


def _expected_count(dataset_graphs, query1_cnf, name: str) -> int:
    """The calibrated #results for this dataset (computed once, cached
    on the function object)."""
    cache = _expected_count.__dict__.setdefault("cache", {})
    if name not in cache:
        relations = solve_matrix_relations(dataset_graphs(name), query1_cnf,
                                           backend="sparse", normalize=False)
        cache[name] = relations.count("S")
    return cache[name]


@pytest.mark.parametrize("dataset", ONTOLOGY_NAMES)
def test_table1_sparse(benchmark, dataset_graphs, query1_cnf, dataset):
    graph = dataset_graphs(dataset)
    relations = benchmark(solve_matrix_relations, graph, query1_cnf,
                          "sparse", False)
    assert relations.count("S") == _expected_count(dataset_graphs, query1_cnf,
                                                   dataset)


@pytest.mark.parametrize("dataset", DENSE_DATASETS)
def test_table1_dense(benchmark, dataset_graphs, query1_cnf, dataset):
    graph = dataset_graphs(dataset)
    relations = benchmark.pedantic(
        solve_matrix_relations, args=(graph, query1_cnf, "dense", False),
        iterations=1, rounds=1,
    )
    assert relations.count("S") == _expected_count(dataset_graphs, query1_cnf,
                                                   dataset)


@pytest.mark.parametrize("dataset", ONTOLOGY_NAMES)
def test_table1_gll(benchmark, dataset_graphs, query1_grammar, query1_cnf,
                    dataset):
    graph = dataset_graphs(dataset)
    relations = benchmark(solve_gll, graph, query1_grammar, ["S"])
    assert relations.count("S") == _expected_count(dataset_graphs, query1_cnf,
                                                   dataset)


@pytest.mark.parametrize("dataset", SYNTHETIC_NAMES)
def test_table1_sparse_large(benchmark, dataset_graphs, query1_cnf, dataset):
    """g1-g3 rows: sparse only (like the paper's sCPU/sGPU columns;
    dense is omitted there too).  Single round — these take seconds."""
    graph = dataset_graphs(dataset)
    relations = benchmark.pedantic(
        solve_matrix_relations, args=(graph, query1_cnf, "sparse", False),
        iterations=1, rounds=1,
    )
    # The paper's identity: every g-row count is 8 x its base row.
    base = {"g1": "funding", "g2": "wine", "g3": "pizza"}[dataset]
    assert relations.count("S") == 8 * _expected_count(
        dataset_graphs, query1_cnf, base
    )


@pytest.mark.parametrize("dataset", SYNTHETIC_NAMES)
def test_table1_gll_large(benchmark, dataset_graphs, query1_grammar,
                          query1_cnf, dataset):
    graph = dataset_graphs(dataset)
    relations = benchmark.pedantic(
        solve_gll, args=(graph, query1_grammar, ["S"]),
        iterations=1, rounds=1,
    )
    base = {"g1": "funding", "g2": "wine", "g3": "pizza"}[dataset]
    assert relations.count("S") == 8 * _expected_count(
        dataset_graphs, query1_cnf, base
    )
