"""Table 1 reproduction: Query 1 (same generation) on the paper's datasets.

Paper columns → our benchmarks:

* GLL        → ``test_table1_gll``        (descriptor-driven baseline)
* dGPU       → ``test_table1_dense``      (NumPy dense; small graphs only,
                                           the paper also omits dense on
                                           g1–g3)
* sCPU/sGPU  → ``test_table1_sparse``     (SciPy CSR)

Each benchmark also asserts the solver returns the calibrated result
count, so a silent correctness regression cannot hide behind a fast
time.  Expected *shape* (paper): all solvers agree on #results; sparse
scales to g1–g3 where dense cannot; the matrix engine's advantage over
the baseline grows with graph size.

Run this module as a script for the machine-readable Table 1 sweep over
the shared :mod:`repro.bench.harness` (timings also land in the
observability metrics registry as ``repro_bench_measure_seconds``)::

    PYTHONPATH=src python benchmarks/bench_table1_query1.py \
        --datasets skos generations travel --output table1.json
"""

from __future__ import annotations

import argparse
import json
import sys

import pytest

from repro.baselines.gll import solve_gll
from repro.core.matrix_cfpq import solve_matrix_relations
from repro.datasets.registry import ONTOLOGY_NAMES, SYNTHETIC_NAMES

#: Small ontologies where the dense (dGPU stand-in) column is measured.
DENSE_DATASETS = ("skos", "generations", "travel", "univ-bench",
                  "atom-primitive", "biomedical-measure-primitive", "foaf",
                  "people-pets")


def _expected_count(dataset_graphs, query1_cnf, name: str) -> int:
    """The calibrated #results for this dataset (computed once, cached
    on the function object)."""
    cache = _expected_count.__dict__.setdefault("cache", {})
    if name not in cache:
        relations = solve_matrix_relations(dataset_graphs(name), query1_cnf,
                                           backend="sparse", normalize=False)
        cache[name] = relations.count("S")
    return cache[name]


@pytest.mark.parametrize("dataset", ONTOLOGY_NAMES)
def test_table1_sparse(benchmark, dataset_graphs, query1_cnf, dataset):
    graph = dataset_graphs(dataset)
    relations = benchmark(solve_matrix_relations, graph, query1_cnf,
                          "sparse", False)
    assert relations.count("S") == _expected_count(dataset_graphs, query1_cnf,
                                                   dataset)


@pytest.mark.parametrize("dataset", DENSE_DATASETS)
def test_table1_dense(benchmark, dataset_graphs, query1_cnf, dataset):
    graph = dataset_graphs(dataset)
    relations = benchmark.pedantic(
        solve_matrix_relations, args=(graph, query1_cnf, "dense", False),
        iterations=1, rounds=1,
    )
    assert relations.count("S") == _expected_count(dataset_graphs, query1_cnf,
                                                   dataset)


@pytest.mark.parametrize("dataset", ONTOLOGY_NAMES)
def test_table1_gll(benchmark, dataset_graphs, query1_grammar, query1_cnf,
                    dataset):
    graph = dataset_graphs(dataset)
    relations = benchmark(solve_gll, graph, query1_grammar, ["S"])
    assert relations.count("S") == _expected_count(dataset_graphs, query1_cnf,
                                                   dataset)


@pytest.mark.parametrize("dataset", SYNTHETIC_NAMES)
def test_table1_sparse_large(benchmark, dataset_graphs, query1_cnf, dataset):
    """g1-g3 rows: sparse only (like the paper's sCPU/sGPU columns;
    dense is omitted there too).  Single round — these take seconds."""
    graph = dataset_graphs(dataset)
    relations = benchmark.pedantic(
        solve_matrix_relations, args=(graph, query1_cnf, "sparse", False),
        iterations=1, rounds=1,
    )
    # The paper's identity: every g-row count is 8 x its base row.
    base = {"g1": "funding", "g2": "wine", "g3": "pizza"}[dataset]
    assert relations.count("S") == 8 * _expected_count(
        dataset_graphs, query1_cnf, base
    )


@pytest.mark.parametrize("dataset", SYNTHETIC_NAMES)
def test_table1_gll_large(benchmark, dataset_graphs, query1_grammar,
                          query1_cnf, dataset):
    graph = dataset_graphs(dataset)
    relations = benchmark.pedantic(
        solve_gll, args=(graph, query1_grammar, ["S"]),
        iterations=1, rounds=1,
    )
    base = {"g1": "funding", "g2": "wine", "g3": "pizza"}[dataset]
    assert relations.count("S") == 8 * _expected_count(
        dataset_graphs, query1_cnf, base
    )

# ----------------------------------------------------------------------
# Harness-based Table 1 sweep (machine-readable)
# ----------------------------------------------------------------------

def run_table1_suite(datasets: "tuple[str, ...] | None" = None,
                     solvers: "tuple[str, ...] | None" = None,
                     repeats: int = 1) -> dict:
    """Time the paper's Table 1 solver columns through the shared
    measurement harness.

    Returns ``{"datasets": {name: {nodes, edges, agree, solvers:
    {solver: {results, wall_time_s}}}}}``; ``agree`` asserts every
    solver returned the same result count (the correctness check the
    pytest benchmarks above make per-cell).  Dense is measured only on
    the small ontologies, like the paper."""
    from repro.bench.harness import PAPER_SOLVERS, measure
    from repro.datasets.registry import build_graph
    from repro.grammar.builders import same_generation_query1

    grammar = same_generation_query1()
    names = tuple(datasets or ONTOLOGY_NAMES)
    solver_names = tuple(solvers or PAPER_SOLVERS)
    report: dict = {"table": "table1", "query": "query1", "datasets": {}}
    for name in names:
        graph = build_graph(name)
        cells: dict = {}
        counts: set[int] = set()
        for solver in solver_names:
            if solver == "dense" and name not in DENSE_DATASETS:
                continue
            result = measure(solver, graph, grammar, "S", repeats=repeats)
            counts.add(result.results)
            cells[solver] = {
                "results": result.results,
                "wall_time_s": round(result.milliseconds / 1000.0, 6),
            }
        report["datasets"][name] = {
            "nodes": graph.node_count,
            "edges": graph.edge_count,
            "agree": len(counts) == 1,
            "solvers": cells,
        }
    return report


def main(argv: "list[str] | None" = None) -> int:
    from repro.bench.harness import PAPER_SOLVERS, SOLVERS

    parser = argparse.ArgumentParser(
        description="Table 1 (Query 1) harness sweep (JSON summary)"
    )
    parser.add_argument("--datasets", nargs="+", default=None,
                        choices=ONTOLOGY_NAMES,
                        help="ontologies to time (default: all of them)")
    parser.add_argument("--solvers", nargs="+", default=list(PAPER_SOLVERS),
                        choices=sorted(SOLVERS),
                        help="harness solver columns (default: the "
                             "paper's GLL/dense/sparse)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="best-of-N timing repeats per cell")
    parser.add_argument("--output", default=None,
                        help="write JSON here (default: stdout)")
    args = parser.parse_args(argv)

    report = run_table1_suite(
        datasets=None if args.datasets is None else tuple(args.datasets),
        solvers=tuple(args.solvers), repeats=args.repeats,
    )
    payload = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            stream.write(payload + "\n")
        print(f"wrote {args.output}")
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
