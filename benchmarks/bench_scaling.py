"""Scaling study: the paper's g1–g3 construction, parameterized.

The paper's headline observation is that "acceleration from the GPU
increases with the graph size growth" — i.e. the matrix engine's edge
over the baseline widens as the graph is repeated.  We repeat the
funding ontology k times (the exact g1 recipe) for k ∈ {1, 2, 4, 8}
and benchmark the sparse matrix engine against both baselines.

Expected shape: all engines are linear-ish in k on disjoint copies
(the relation itself is k times larger), with the matrix engine's
constant factor pulling ahead of the worklist baseline as k grows.
"""

from __future__ import annotations

import pytest

from repro.baselines.gll import solve_gll
from repro.baselines.hellings import solve_hellings
from repro.core.matrix_cfpq import solve_matrix_relations
from repro.datasets.registry import build_graph
from repro.graph.generators import repeat_graph

COPIES = (1, 2, 4, 8)


def _repeated(copies: int):
    cache = _repeated.__dict__.setdefault("cache", {})
    if copies not in cache:
        cache[copies] = repeat_graph(build_graph("funding"), copies)
    return cache[copies]


@pytest.mark.parametrize("copies", COPIES)
def test_scaling_sparse(benchmark, query1_cnf, copies):
    graph = _repeated(copies)
    relations = benchmark.pedantic(
        solve_matrix_relations, args=(graph, query1_cnf, "sparse", False),
        iterations=1, rounds=1,
    )
    base = solve_matrix_relations(_repeated(1), query1_cnf,
                                  "sparse", False).count("S")
    assert relations.count("S") == copies * base


@pytest.mark.parametrize("copies", COPIES)
def test_scaling_gll(benchmark, query1_grammar, copies):
    graph = _repeated(copies)
    relations = benchmark.pedantic(
        solve_gll, args=(graph, query1_grammar, ["S"]),
        iterations=1, rounds=1,
    )
    assert relations.count("S") > 0


@pytest.mark.parametrize("copies", (1, 2, 4))
def test_scaling_hellings(benchmark, query1_cnf, copies):
    """The worklist baseline; capped at 4 copies (it is the slowest)."""
    graph = _repeated(copies)
    relations = benchmark.pedantic(
        solve_hellings, args=(graph, query1_cnf, False),
        iterations=1, rounds=1,
    )
    assert relations.count("S") > 0
