"""Scaling study: the paper's g1–g3 construction, parameterized.

The paper's headline observation is that "acceleration from the GPU
increases with the graph size growth" — i.e. the matrix engine's edge
over the baseline widens as the graph is repeated.  We repeat the
funding ontology k times (the exact g1 recipe) for k ∈ {1, 2, 4, 8}
and benchmark the sparse matrix engine against both baselines.

Two layers (like the other bench scripts):

1. pytest-benchmark tests below;
2. a machine-readable sweep on the shared measurement harness
   (:mod:`repro.bench.harness` — the paper-column solver registry).
   Run this module as a script::

       PYTHONPATH=src python benchmarks/bench_scaling.py \
           --copies 1 2 4 --solvers sparse gll hellings \
           --output scaling.json

   Every (workload, solver) cell reports the result count and
   best-of-repeats wall time; ``agree`` asserts all solvers found the
   same |R_S|.  ``benchmarks/BENCH_scaling.json`` pins the committed
   numbers and CI's bench-smoke regression gate re-measures them.

Expected shape: all engines are linear-ish in k on disjoint copies
(the relation itself is k times larger), with the matrix engine's
constant factor pulling ahead of the worklist baseline as k grows.
"""

from __future__ import annotations

import argparse
import json
import sys

import pytest

from bench_workloads import repeated_funding as _repeated
from repro.baselines.gll import solve_gll
from repro.baselines.hellings import solve_hellings
from repro.core.matrix_cfpq import solve_matrix_relations
from repro.datasets.registry import build_graph
from repro.graph.generators import repeat_graph

COPIES = (1, 2, 4, 8)

#: The worklist baseline is the slowest; larger workloads skip it.
HELLINGS_MAX_COPIES = 4


@pytest.mark.parametrize("copies", COPIES)
def test_scaling_sparse(benchmark, query1_cnf, copies):
    graph = _repeated(copies)
    relations = benchmark.pedantic(
        solve_matrix_relations, args=(graph, query1_cnf, "sparse", False),
        iterations=1, rounds=1,
    )
    base = solve_matrix_relations(_repeated(1), query1_cnf,
                                  "sparse", False).count("S")
    assert relations.count("S") == copies * base


@pytest.mark.parametrize("copies", COPIES)
def test_scaling_gll(benchmark, query1_grammar, copies):
    graph = _repeated(copies)
    relations = benchmark.pedantic(
        solve_gll, args=(graph, query1_grammar, ["S"]),
        iterations=1, rounds=1,
    )
    assert relations.count("S") > 0


@pytest.mark.parametrize("copies", (1, 2, 4))
def test_scaling_hellings(benchmark, query1_cnf, copies):
    """The worklist baseline; capped at 4 copies (it is the slowest)."""
    graph = _repeated(copies)
    relations = benchmark.pedantic(
        solve_hellings, args=(graph, query1_cnf, False),
        iterations=1, rounds=1,
    )
    assert relations.count("S") > 0


# ----------------------------------------------------------------------
# Scaling sweep on the shared harness (machine-readable)
# ----------------------------------------------------------------------

def run_scaling_suite(copies: tuple[int, ...] = (1, 2, 4),
                      solvers: tuple[str, ...] = ("sparse", "gll",
                                                  "hellings"),
                      repeats: int = 2) -> dict:
    """Measure each harness solver on the repeated funding ontology.

    Returns ``{workloads: {funding_xk: {nodes, edges, agree,
    solvers: {name: {results, wall_time_s}}}}}`` — the bench-smoke
    regression gate compares every ``wall_time_s`` leaf.
    """
    from repro.bench.harness import SOLVERS, measure
    from repro.grammar.builders import same_generation_query1

    unknown = set(solvers) - set(SOLVERS)
    if unknown:
        raise KeyError(f"unknown solvers: {sorted(unknown)}; "
                       f"known: {sorted(SOLVERS)}")
    grammar = same_generation_query1()
    report: dict = {
        "benchmark": "scaling sweep (paper g1 recipe: funding × k, Q1)",
        "workloads": {},
    }
    base = build_graph("funding")
    for k in copies:
        graph = repeat_graph(base, k)
        cells: dict = {}
        counts: set[int] = set()
        for solver in solvers:
            if solver == "hellings" and k > HELLINGS_MAX_COPIES:
                continue
            measurement = measure(solver, graph, grammar, start="S",
                                  repeats=repeats)
            counts.add(measurement.results)
            cells[solver] = {
                "results": measurement.results,
                "wall_time_s": round(measurement.milliseconds / 1000.0, 6),
            }
        report["workloads"][f"funding_x{k}"] = {
            "nodes": graph.node_count,
            "edges": graph.edge_count,
            "agree": len(counts) == 1,
            "solvers": cells,
        }
    return report


# ----------------------------------------------------------------------
# Out-of-core spill sweep (past ×8: workloads that exceed the budget)
# ----------------------------------------------------------------------

#: (backend, copies, budget): sized so the closure's unbounded peak
#: resident tile bytes (measured: bitset ×16 ≈ 78 MiB, dense ×8 ≈
#: 161 MiB) overflows the budget several times over, forcing the tile
#: store to spill on every round.
SPILL_CASES = (
    ("bitset", 16, 16 * 2 ** 20),
    ("dense", 8, 32 * 2 ** 20),
)


def run_spill_suite(cases: tuple = SPILL_CASES, repeats: int = 1) -> dict:
    """Benchmark the blocked closure under a memory budget vs unbounded.

    Each cell solves Q1 on funding × k twice — once fully in memory,
    once with a budget the working set cannot fit — and records the
    wall times, the spill/reload counters and whether the budgeted run
    stayed within its budget by the tile store's own accounting.
    ``agree`` asserts the budgeted answer is identical.
    """
    import time as _time

    from repro.core.matrix_cfpq import solve_matrix
    from repro.grammar.builders import same_generation_query1
    from repro.grammar.cnf import ensure_cnf

    grammar = ensure_cnf(same_generation_query1())
    report: dict = {
        "benchmark": "out-of-core spill sweep (funding × k under a "
                     "memory budget, Q1)",
        "workloads": {},
    }
    base = build_graph("funding")

    def timed(**options):
        best = None
        result = None
        for _ in range(max(1, repeats)):
            started = _time.perf_counter()
            result = solve_matrix(graph, grammar, normalize=False,
                                  strategy="blocked", tile_size=128,
                                  **options)
            elapsed = _time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        return result, best

    for backend, copies, budget in cases:
        graph = _repeated(copies)
        unbounded, unbounded_s = timed(backend=backend)
        budgeted, budgeted_s = timed(backend=backend, memory_budget=budget)
        stats = budgeted.stats.details["blocked"]
        count = unbounded.relations.count("S")
        report["workloads"][f"funding_x{copies}_{backend}"] = {
            "nodes": graph.node_count,
            "edges": graph.edge_count,
            "budget_bytes": budget,
            "agree": budgeted.relations.count("S") == count,
            "within_budget": stats.peak_resident_bytes <= budget,
            "solvers": {
                "blocked_unbounded": {
                    "results": count,
                    "wall_time_s": round(unbounded_s, 6),
                },
                "blocked_budgeted": {
                    "results": budgeted.relations.count("S"),
                    "wall_time_s": round(budgeted_s, 6),
                    "tiles_spilled": stats.tiles_spilled,
                    "tiles_reloaded": stats.tiles_reloaded,
                    "spill_bytes": stats.spill_bytes,
                    "peak_resident_bytes": stats.peak_resident_bytes,
                },
            },
        }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="scaling benchmark on the shared harness "
                    "(JSON summary)"
    )
    parser.add_argument("--suite", choices=("scaling", "spill"),
                        default="scaling",
                        help="'scaling' sweeps harness solvers over "
                             "funding × k; 'spill' measures the blocked "
                             "closure under a memory budget on workloads "
                             "whose tiles overflow it")
    parser.add_argument("--copies", type=int, nargs="+", default=[1, 2, 4],
                        help="funding-ontology repetition factors")
    parser.add_argument("--solvers", nargs="+",
                        default=["sparse", "gll", "hellings"],
                        help="harness solver names (see "
                             "repro.bench.harness.SOLVERS)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="best-of-N timing repeats per cell "
                             "(default: 2 for scaling, 1 for spill)")
    parser.add_argument("--output", default=None,
                        help="write JSON here (default: stdout)")
    args = parser.parse_args(argv)

    if args.suite == "spill":
        report = run_spill_suite(repeats=args.repeats or 1)
    else:
        report = run_scaling_suite(copies=tuple(args.copies),
                                   solvers=tuple(args.solvers),
                                   repeats=args.repeats or 2)
    payload = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            stream.write(payload + "\n")
        print(f"wrote {args.output}")
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
