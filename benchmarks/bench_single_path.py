"""Single-path and all-path semantics benchmarks (Sections 5 / 7).

The paper reports no timings for these semantics ("depends
significantly on the implementation of the path searching"), so these
benchmarks are shape-only: they establish the cost of (a) building the
length-annotated closure, (b) extracting one witness path per related
pair, and (c) building the witness forest and enumerating bounded
all-path answers, relative to the plain relational closure on the same
graph.  Both annotated closures run on the unified semiring engine, so
the per-strategy sweep below doubles as the regression surface for the
``delta`` / ``blocked`` speedups on annotated workloads.

Two modes:

1. pytest-benchmark micro tests (``pytest benchmarks/ --benchmark-only``);
2. a machine-readable JSON sweep over strategies × datasets::

       PYTHONPATH=src python benchmarks/bench_single_path.py \
           --datasets skos travel funding --output semantics.json

   The committed ``BENCH_semantics.json`` pins these numbers; CI's
   bench-smoke job re-runs the sweep and fails on a >2× wall-time
   regression in any cell (see ``check_bench_regression.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import pytest

from repro.core.closure import available_strategies
from repro.core.path_index import AllPathIndex
from repro.core.single_path import (
    build_single_path_index,
    extract_path,
    iter_single_paths,
)
from repro.datasets.registry import build_graph
from repro.grammar.symbols import Nonterminal

S = Nonterminal("S")
DATASETS = ("skos", "travel", "univ-bench")


def _index(dataset: str, grammar):
    cache = _index.__dict__.setdefault("cache", {})
    if dataset not in cache:
        cache[dataset] = build_single_path_index(
            build_graph(dataset), grammar, normalize=False
        )
    return cache[dataset]


@pytest.mark.parametrize("dataset", DATASETS)
def test_build_single_path_index(benchmark, query1_cnf, dataset):
    graph = build_graph(dataset)
    index = benchmark.pedantic(
        build_single_path_index, args=(graph, query1_cnf, False),
        iterations=1, rounds=1,
    )
    assert index.entry_count() > 0


@pytest.mark.parametrize("dataset", DATASETS)
def test_extract_all_witness_paths(benchmark, query1_cnf, dataset):
    """Extract a witness for every pair in R_S (the full single-path
    semantics answer)."""
    index = _index(dataset, query1_cnf)

    def extract_all() -> int:
        return sum(1 for _ in iter_single_paths(index, S))

    count = benchmark.pedantic(extract_all, iterations=1, rounds=1)
    assert count == len(index.relations().pairs(S))


def test_extract_one_path(benchmark, query1_cnf):
    index = _index("skos", query1_cnf)
    (i, j), _entries = next(
        (pair, entries) for pair, entries in sorted(index.cells.items())
        if S in entries
    )
    source, target = index.graph.node_at(i), index.graph.node_at(j)
    path = benchmark(extract_path, index, S, source, target)
    assert len(path) == index.length_of(S, i, j)


@pytest.mark.parametrize("dataset", ("skos", "travel"))
def test_build_allpath_forest(benchmark, query1_cnf, dataset):
    """Witness-semiring closure: the §7 parse forest as one engine run."""
    graph = build_graph(dataset)
    forest = benchmark.pedantic(
        AllPathIndex.build, args=(graph, query1_cnf), iterations=1, rounds=1,
    )
    assert forest.relations.pairs(S)


def test_enumerate_bounded_paths(benchmark, query1_cnf):
    """Bounded all-path answers for the first few related pairs."""
    graph = build_graph("skos")
    forest = AllPathIndex.build(graph, query1_cnf)
    pairs = sorted(forest.relations.pairs(S))[:10]

    def enumerate_all() -> int:
        return sum(
            1
            for i, j in pairs
            for _ in forest.iter_paths(S, graph.node_at(i),
                                       graph.node_at(j), 6)
        )

    count = benchmark.pedantic(enumerate_all, iterations=1, rounds=1)
    assert count >= len(pairs)


# ----------------------------------------------------------------------
# Machine-readable semantics × strategy sweep
# ----------------------------------------------------------------------

def run_semantics_suite(datasets: tuple[str, ...] = ("skos", "travel",
                                                     "funding"),
                        strategies: tuple[str, ...] | None = None,
                        max_length: int = 6,
                        extraction_pairs: int = 25) -> dict:
    """Time the annotated closures per (dataset, strategy).

    Per cell: single-path index build + witness extraction for the
    first *extraction_pairs* pairs of ``R_S``, and the ``bench_allpath``
    case — witness-forest build + bounded enumeration.  An ``agree``
    flag per dataset asserts every strategy produced identical
    annotations (the differential property, re-checked on the real
    workloads).
    """
    from repro.grammar.builders import same_generation_query1
    from repro.grammar.cnf import to_cnf

    grammar = to_cnf(same_generation_query1())
    names = tuple(strategies or available_strategies())
    report: dict = {
        "benchmark": "query semantics x closure strategies",
        "grammar": "Q1 (same-generation, Figure 10)",
        "max_length": max_length,
        "workloads": {},
    }
    for dataset in datasets:
        graph = build_graph(dataset)
        single_cells: dict = {}
        allpath_cells: dict = {}
        reference_lengths = None
        reference_forest = None
        agree = True
        for strategy in names:
            started = time.perf_counter()
            index = build_single_path_index(graph, grammar, normalize=False,
                                            strategy=strategy)
            build_elapsed = time.perf_counter() - started
            pairs = sorted(
                pair for pair, entries in index.cells.items()
                if S in entries
            )[:extraction_pairs]
            started = time.perf_counter()
            extracted = [
                extract_path(index, S, graph.node_at(i), graph.node_at(j))
                for i, j in pairs
            ]
            extract_elapsed = time.perf_counter() - started
            if reference_lengths is None:
                reference_lengths = index.cells
            elif index.cells != reference_lengths:
                agree = False
            single_cells[strategy] = {
                "wall_time_s": round(build_elapsed, 6),
                "iterations": index.iterations,
                "entries": index.entry_count(),
                "extracted_paths": len(extracted),
                "extraction_wall_time_s": round(extract_elapsed, 6),
            }

            started = time.perf_counter()
            forest = AllPathIndex.build(graph, grammar, strategy=strategy)
            forest_elapsed = time.perf_counter() - started
            enum_pairs = sorted(forest.relations.pairs(S))[:10]
            started = time.perf_counter()
            enumerated = sum(
                1
                for i, j in enum_pairs
                for _ in forest.iter_paths(S, graph.node_at(i),
                                           graph.node_at(j), max_length)
            )
            enum_elapsed = time.perf_counter() - started
            forest_pairs = frozenset(forest.relations.pairs(S))
            if reference_forest is None:
                reference_forest = forest_pairs
            elif forest_pairs != reference_forest:
                agree = False
            allpath_cells[strategy] = {
                "wall_time_s": round(forest_elapsed, 6),
                "relation_size": len(forest_pairs),
                "enumerated_paths": enumerated,
                "enumeration_wall_time_s": round(enum_elapsed, 6),
            }
        report["workloads"][dataset] = {
            "nodes": graph.node_count,
            "edges": graph.edge_count,
            "agree": agree,
            "single_path": single_cells,
            "bench_allpath": allpath_cells,
        }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="single-path / all-path semantics benchmark "
                    "(JSON summary)"
    )
    parser.add_argument("--datasets", nargs="+",
                        default=["skos", "travel", "funding"])
    parser.add_argument("--strategies", nargs="+", default=None,
                        choices=available_strategies())
    parser.add_argument("--max-length", type=int, default=6)
    parser.add_argument("--output", default=None,
                        help="write JSON here (default: stdout)")
    args = parser.parse_args(argv)

    report = run_semantics_suite(datasets=tuple(args.datasets),
                                 strategies=args.strategies,
                                 max_length=args.max_length)
    payload = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            stream.write(payload + "\n")
        print(f"wrote {args.output}")
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
