"""Single-path semantics benchmarks (Section 5).

The paper reports no timings for this semantics ("depends significantly
on the implementation of the path searching"), so these benchmarks are
shape-only: they establish the cost of (a) building the
length-annotated closure and (b) extracting one witness path per
related pair, relative to the plain relational closure on the same
graph.

Expected shape: index construction costs a small constant factor over
the relational closure (same fixpoint, heavier cell payload); each
individual extraction is cheap relative to the closure.
"""

from __future__ import annotations

import pytest

from repro.core.single_path import (
    build_single_path_index,
    extract_path,
    iter_single_paths,
)
from repro.datasets.registry import build_graph
from repro.grammar.symbols import Nonterminal

S = Nonterminal("S")
DATASETS = ("skos", "travel", "univ-bench")


def _index(dataset: str, grammar):
    cache = _index.__dict__.setdefault("cache", {})
    if dataset not in cache:
        cache[dataset] = build_single_path_index(
            build_graph(dataset), grammar, normalize=False
        )
    return cache[dataset]


@pytest.mark.parametrize("dataset", DATASETS)
def test_build_single_path_index(benchmark, query1_cnf, dataset):
    graph = build_graph(dataset)
    index = benchmark.pedantic(
        build_single_path_index, args=(graph, query1_cnf, False),
        iterations=1, rounds=1,
    )
    assert index.entry_count() > 0


@pytest.mark.parametrize("dataset", DATASETS)
def test_extract_all_witness_paths(benchmark, query1_cnf, dataset):
    """Extract a witness for every pair in R_S (the full single-path
    semantics answer)."""
    index = _index(dataset, query1_cnf)

    def extract_all() -> int:
        return sum(1 for _ in iter_single_paths(index, S))

    count = benchmark.pedantic(extract_all, iterations=1, rounds=1)
    assert count == len(index.relations().pairs(S))


def test_extract_one_path(benchmark, query1_cnf):
    index = _index("skos", query1_cnf)
    (i, j), _entries = next(
        (pair, entries) for pair, entries in sorted(index.cells.items())
        if S in entries
    )
    source, target = index.graph.node_at(i), index.graph.node_at(j)
    path = benchmark(extract_path, index, S, source, target)
    assert len(path) == index.length_of(S, i, j)
