"""Serving-tier benchmark: concurrent JSONL clients against the asyncio
TCP server, single node and leader + N replicas.

Each workload stands up a server (``ServerThread``), opens ``--clients``
concurrent connections, and drives a mixed stream — mostly point
queries with periodic update ticks — measuring per-request latency on
the client side.  Reported per workload:

* ``p50_latency_s`` / ``p99_latency_s`` — request latency percentiles;
* ``queries_per_s`` — completed requests / wall time;
* ``wall_time_s`` — the whole workload (the regression-gated cell);
* ``agree`` — every response well-formed and, for replicated
  workloads, leader and follower snapshots byte-identical at the end.

Workloads:

* ``single_<C>c``   — one server owning reads and writes;
* ``single_<C>c_batch8`` — the same stream with queries grouped into
  ``batch`` ops of 8 (one round-trip, one coalesced answer batch);
* ``leader_1r_<C>c`` / ``leader_2r_<C>c`` — a WAL-writing leader
  fanning reads out to 1 / 2 follower replicas (replica scaling).

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py \
        --output benchmarks/BENCH_serving.json
"""

from __future__ import annotations

import argparse
import filecmp
import json
import os
import tempfile

from bench_workloads import drive_mixed_stream, make_service
from repro.service.replica import FollowerService, ReplicatedService
from repro.service.server import ServerThread
from repro.service.wal import TickLog


def bench_single(clients: int, requests_per_client: int,
                 update_every: int, batch_size: int = 0) -> dict:
    service = make_service(2, 3)
    with ServerThread(service) as server:
        metrics = drive_mixed_stream(server.address, clients,
                                     requests_per_client, update_every,
                                     batch_size=batch_size)
    metrics["agree"] = metrics.pop("ok")
    return metrics


def bench_replicated(replicas: int, clients: int,
                     requests_per_client: int, update_every: int) -> dict:
    """Leader + N read replicas; convergence is asserted by comparing
    leader and follower snapshot bytes after the stream drains."""
    with tempfile.TemporaryDirectory() as tmp:
        wal = os.path.join(tmp, "wal")
        snapshot = os.path.join(tmp, "index.snapshot")
        leader = ReplicatedService(make_service(2, 3), TickLog(wal))
        leader.save_snapshot(snapshot)
        followers = [FollowerService.from_snapshot(snapshot, wal)
                     for _ in range(replicas)]

        follower_servers = [ServerThread(follower,
                                         follower_poll_seconds=0.005)
                            for follower in followers]
        for server in follower_servers:
            server.__enter__()
        try:
            with ServerThread(
                leader,
                replicas=[server.address for server in follower_servers],
            ) as front:
                metrics = drive_mixed_stream(front.address, clients,
                                             requests_per_client,
                                             update_every)
        finally:
            for server in follower_servers:
                server.__exit__(None, None, None)

        converged = True
        leader_snapshot = os.path.join(tmp, "leader.final")
        leader.save_snapshot(leader_snapshot)
        for index, follower in enumerate(followers):
            follower.replay()
            follower_snapshot = os.path.join(tmp, f"follower{index}.final")
            follower.save_snapshot(follower_snapshot)
            converged &= filecmp.cmp(leader_snapshot, follower_snapshot,
                                     shallow=False)
        leader.close()
        metrics["agree"] = metrics.pop("ok") and converged
        metrics["replicas"] = replicas
        return metrics


def run(clients: int, requests_per_client: int,
        update_every: int) -> dict:
    workloads = {}
    name = f"single_{clients}c"
    print(f"  {name}...", flush=True)
    workloads[name] = bench_single(clients, requests_per_client,
                                   update_every)
    name = f"single_{clients}c_batch8"
    print(f"  {name}...", flush=True)
    workloads[name] = bench_single(clients, requests_per_client,
                                   update_every, batch_size=8)
    for replicas in (1, 2):
        name = f"leader_{replicas}r_{clients}c"
        print(f"  {name}...", flush=True)
        workloads[name] = bench_replicated(replicas, clients,
                                           requests_per_client,
                                           update_every)
    return {
        "benchmark": "serving",
        "clients": clients,
        "requests_per_client": requests_per_client,
        "update_every": update_every,
        "workloads": workloads,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="concurrent-client serving benchmark "
                    "(latency percentiles, throughput, replica scaling)"
    )
    parser.add_argument("--clients", type=int, default=32,
                        help="concurrent client connections (default 32)")
    parser.add_argument("--requests", type=int, default=25,
                        help="requests per client (default 25)")
    parser.add_argument("--update-every", type=int, default=10,
                        help="every Nth request per client is an update "
                             "tick (0 = read-only; default 10)")
    parser.add_argument("--output", help="write JSON here (default stdout)")
    args = parser.parse_args(argv)

    print(f"serving benchmark: {args.clients} clients x "
          f"{args.requests} requests", flush=True)
    document = run(args.clients, args.requests, args.update_every)
    rendered = json.dumps(document, indent=2)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            stream.write(rendered + "\n")
        print(f"wrote {args.output}")
    else:
        print(rendered)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
