"""Shared workload and client helpers for the benchmark scripts.

Two helper families used to be copied between benchmark scripts; one
copy of each lives here so ``bench_batch.py`` does not become a third:

* the serving-tier JSONL machinery — the serving grammar, the
  two-cycles service factory, latency percentiles, the socket client
  and the mixed query/update stream driver (``bench_serving.py``);
* the paper's repeated-funding-ontology workload cache — funding × k,
  the exact g1 recipe (``bench_scaling.py``, ``bench_batch.py``).
"""

from __future__ import annotations

import json
import socket
import threading
import time

from repro import QueryService, parse_grammar
from repro.datasets.registry import build_graph
from repro.graph.generators import repeat_graph, two_cycles

#: The serving-tier benchmark grammar: balanced a/b nesting.
SERVING_GRAMMAR = parse_grammar("S -> a S b | a b", terminals=["a", "b"])

_FUNDING_CACHE: dict[int, object] = {}


def repeated_funding(copies: int):
    """The funding ontology repeated *copies* times (the paper's g1
    recipe), cached per process so sweeps over k never rebuild."""
    if copies not in _FUNDING_CACHE:
        _FUNDING_CACHE[copies] = repeat_graph(build_graph("funding"),
                                              copies)
    return _FUNDING_CACHE[copies]


def make_service(cycle_a: int, cycle_b: int) -> QueryService:
    """The serving benchmark's service: two cycles over the grammar."""
    return QueryService(two_cycles(cycle_a, cycle_b), SERVING_GRAMMAR)


def percentile(samples: list, fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(len(ordered) * fraction))
    return ordered[index]


def run_client(address, requests: list, latencies: list, errors: list):
    """One JSONL client connection: send each request, wait for its
    response, record latency.  A ``batch`` request records one latency
    sample per item (the stream's unit of work is the logical query)
    and checks every per-item envelope."""
    try:
        with socket.create_connection(address, timeout=30) as sock:
            stream = sock.makefile("rw", encoding="utf-8")
            for request in requests:
                started = time.perf_counter()
                stream.write(json.dumps(request) + "\n")
                stream.flush()
                response = json.loads(stream.readline())
                elapsed = time.perf_counter() - started
                if request.get("op") == "batch":
                    if not response.get("ok"):
                        errors.append(response)
                        continue
                    for item in response["result"]:
                        latencies.append(elapsed)
                        if not item.get("ok"):
                            errors.append(item)
                else:
                    latencies.append(elapsed)
                    if not response.get("ok"):
                        errors.append(response)
    except (OSError, json.JSONDecodeError) as error:
        errors.append({"error": repr(error)})


def _client_plan(client_index: int, requests_per_client: int,
                 update_every: int, batch_size: int) -> list:
    """One client's request stream: point queries with a periodic
    insert+delete update tick.  With *batch_size* > 0, consecutive
    queries are grouped into ``batch`` ops (updates stay single)."""
    query = {"op": "query", "start": "S", "source": 0, "target": 0}
    plan: list = []
    run: list = []

    def flush():
        if run:
            plan.append({"op": "batch", "queries": list(run)})
            run.clear()

    for i in range(requests_per_client):
        if update_every and i % update_every == update_every - 1:
            flush()
            node = f"c{client_index}-{i}"
            plan.append({"op": "update",
                         "insert": [[node, "a", node + "'"]],
                         "delete": [[node, "a", node + "'"]]})
        elif batch_size:
            run.append({key: value for key, value in query.items()
                        if key != "op"})
            if len(run) >= batch_size:
                flush()
        else:
            plan.append(query)
    flush()
    return plan


def drive_mixed_stream(address, clients: int, requests_per_client: int,
                       update_every: int, batch_size: int = 0) -> dict:
    """Run the mixed stream; returns latency/throughput metrics.
    Throughput counts logical queries, so batched and unbatched
    workloads compare apples-to-apples."""
    latencies: list = []
    errors: list = []
    threads = []
    for client_index in range(clients):
        plan = _client_plan(client_index, requests_per_client,
                            update_every, batch_size)
        threads.append(threading.Thread(
            target=run_client, args=(address, plan, latencies, errors)))
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    total = clients * requests_per_client
    return {
        "requests": total,
        "completed": len(latencies),
        "errors": len(errors),
        "p50_latency_s": percentile(latencies, 0.50),
        "p99_latency_s": percentile(latencies, 0.99),
        "queries_per_s": len(latencies) / wall if wall else 0.0,
        "wall_time_s": wall,
        "ok": not errors and len(latencies) == total,
    }
