"""Ablation: boolean matrix backend choice (the paper's dGPU / sCPU /
sGPU columns reduced to their storage-format essence).

Expected shape: on sparse real-world graphs the CSR backend dominates
the dense one, and the gap widens with graph size — the reason the
paper's Table 1 omits dGPU for g1–g3.  The pure-Python backend trails
both (it exists for auditability, not speed).
"""

from __future__ import annotations

import pytest

from repro.core.matrix_cfpq import solve_matrix_relations
from repro.datasets.registry import build_graph

BACKENDS = ("sparse", "dense", "pyset")
SMALL, MEDIUM = "skos", "funding"


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_small_graph(benchmark, query1_cnf, backend):
    graph = build_graph(SMALL)
    relations = benchmark(solve_matrix_relations, graph, query1_cnf,
                          backend, False)
    assert relations.count("S") > 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_medium_graph(benchmark, query1_cnf, backend):
    graph = build_graph(MEDIUM)
    relations = benchmark.pedantic(
        solve_matrix_relations, args=(graph, query1_cnf, backend, False),
        iterations=1, rounds=1,
    )
    assert relations.count("S") > 0


def test_backends_return_identical_relations(query1_cnf):
    """Correctness gate for the ablation: same answers everywhere."""
    graph = build_graph(SMALL)
    results = {
        backend: solve_matrix_relations(graph, query1_cnf, backend, False)
        for backend in BACKENDS
    }
    reference = results["sparse"]
    for backend, relations in results.items():
        assert relations.same_as(reference), backend
