"""Ablation: boolean matrix backend choice (the paper's dGPU / sCPU /
sGPU columns reduced to their storage-format essence).

Expected shape: on sparse real-world graphs the CSR backend dominates
the dense one, and the gap widens with graph size — the reason the
paper's Table 1 omits dGPU for g1–g3.  The pure-Python backend trails
both (it exists for auditability, not speed).

Two modes (mirroring ``bench_single_path.py``):

1. pytest-benchmark micro tests (``pytest benchmarks/ --benchmark-only``);
2. a machine-readable JSON sweep over backends × datasets, plus a
   kernel micro-benchmark pitting the vectorized bitset ``multiply``
   against the seed row-loop kernel it replaced on a 512-node graph::

       PYTHONPATH=src python benchmarks/bench_backends.py \
           --datasets skos travel funding --output backends.json

   The committed ``BENCH_backends.json`` pins these numbers; CI's
   bench-smoke job re-runs the sweep and fails on a >2× wall-time
   regression in any cell (see ``check_bench_regression.py``), and
   ``tests/bench/test_backend_baseline.py`` asserts the pinned kernel
   speedup stays ≥ 3×.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import pytest

from repro.core.matrix_cfpq import solve_matrix_relations
from repro.datasets.registry import build_graph

BACKENDS = ("sparse", "dense", "pyset")
SMALL, MEDIUM = "skos", "funding"


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_small_graph(benchmark, query1_cnf, backend):
    graph = build_graph(SMALL)
    relations = benchmark(solve_matrix_relations, graph, query1_cnf,
                          backend, False)
    assert relations.count("S") > 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_medium_graph(benchmark, query1_cnf, backend):
    graph = build_graph(MEDIUM)
    relations = benchmark.pedantic(
        solve_matrix_relations, args=(graph, query1_cnf, backend, False),
        iterations=1, rounds=1,
    )
    assert relations.count("S") > 0


def test_backends_return_identical_relations(query1_cnf):
    """Correctness gate for the ablation: same answers everywhere."""
    graph = build_graph(SMALL)
    results = {
        backend: solve_matrix_relations(graph, query1_cnf, backend, False)
        for backend in BACKENDS
    }
    reference = results["sparse"]
    for backend, relations in results.items():
        assert relations.same_as(reference), backend


# ----------------------------------------------------------------------
# Machine-readable backend × dataset sweep + kernel micro-benchmark
# ----------------------------------------------------------------------

#: Backends covered by the JSON sweep (array-storage backends only —
#: the pure-Python ones exist for auditability, not speed).
SWEEP_BACKENDS = ("bitset", "dense", "sparse")

#: Kernel micro-benchmark shape: a 512-node random graph dense enough
#: that the row-loop kernel pays per set bit.
KERNEL_NODES = 512
KERNEL_EDGES = 13_000


def bench_bitset_kernel(nodes: int = KERNEL_NODES,
                        edges: int = KERNEL_EDGES,
                        repeats: int = 10) -> dict:
    """Time vectorized ``BitsetMatrix.multiply`` against the seed
    row-loop kernel (:meth:`BitsetMatrix.multiply_rowloop`) on one
    random boolean matrix squared.  Returns the timing cell with the
    measured speedup (best-of-*repeats* each, so timer noise cannot
    manufacture a regression)."""
    from repro.graph.generators import random_graph
    from repro.graph.matrices import boolean_adjacency

    matrix = boolean_adjacency(
        random_graph(nodes, edges, ["e"], seed=42), backend="bitset"
    )

    def best_of(operation, count: int) -> float:
        best = float("inf")
        for _ in range(count):
            started = time.perf_counter()
            operation()
            best = min(best, time.perf_counter() - started)
        return best

    vectorized = best_of(lambda: matrix.multiply(matrix), repeats)
    rowloop = best_of(lambda: matrix.multiply_rowloop(matrix),
                      max(2, repeats // 3))
    assert matrix.multiply(matrix).same_pairs(
        matrix.multiply_rowloop(matrix))
    return {
        "nodes": nodes,
        "edges": edges,
        "vectorized_wall_time_s": round(vectorized, 6),
        "rowloop_wall_time_s": round(rowloop, 6),
        "speedup": round(rowloop / vectorized, 2),
    }


def run_backend_suite(datasets: tuple[str, ...] = ("skos", "travel",
                                                   "funding"),
                      backends: tuple[str, ...] = SWEEP_BACKENDS) -> dict:
    """Time the relational closure per (dataset, backend) plus the
    bitset kernel micro-benchmark.  An ``agree`` flag per dataset
    asserts every backend produced identical relations."""
    from repro.grammar.builders import same_generation_query1
    from repro.grammar.cnf import to_cnf

    grammar = to_cnf(same_generation_query1())
    report: dict = {
        "benchmark": "matrix backends x datasets",
        "grammar": "Q1 (same-generation, Figure 10)",
        "workloads": {},
        "kernels": {
            "bitset_multiply_512": bench_bitset_kernel(),
        },
    }
    for dataset in datasets:
        graph = build_graph(dataset)
        cells: dict = {}
        reference = None
        agree = True
        for backend in backends:
            started = time.perf_counter()
            relations = solve_matrix_relations(graph, grammar,
                                               backend=backend,
                                               normalize=False)
            elapsed = time.perf_counter() - started
            if reference is None:
                reference = relations
            elif not relations.same_as(reference):
                agree = False
            cells[backend] = {
                "wall_time_s": round(elapsed, 6),
                "relation_size": len(relations.pairs("S")),
            }
        report["workloads"][dataset] = {
            "nodes": graph.node_count,
            "edges": graph.edge_count,
            "agree": agree,
            "backends": cells,
        }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="matrix backend ablation benchmark (JSON summary)"
    )
    parser.add_argument("--datasets", nargs="+",
                        default=["skos", "travel", "funding"])
    parser.add_argument("--backends", nargs="+", default=list(SWEEP_BACKENDS))
    parser.add_argument("--output", default=None,
                        help="write JSON here (default: stdout)")
    args = parser.parse_args(argv)

    report = run_backend_suite(datasets=tuple(args.datasets),
                               backends=tuple(args.backends))
    payload = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            stream.write(payload + "\n")
        print(f"wrote {args.output}")
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
