"""Observability overhead gate: tracing must be (nearly) free.

The obs layer's design claim is two-sided:

* **disabled** (the default ``NULL_TRACER``), instrumentation is a
  handful of no-op calls per closure round — unmeasurable;
* **enabled** with a JSONL file sink, the funding×8 Q1 closure — the
  scaling suite's reference workload — stays within a small overhead
  budget (CI gates at ≤5%), because spans wrap *rounds* and *tile
  groups*, never inner loops.

This module measures the second claim directly: interleaved best-of-N
runs of the same closure with tracing off and on, reporting
``overhead_ratio`` (traced / untraced) and a boolean
``within_overhead`` leaf that ``check_bench_regression.py`` fails on
when false.  ``agree`` asserts the traced run computed a byte-identical
relation — tracing must be provably non-semantic.

Run as a script for the machine-readable summary::

    PYTHONPATH=src python benchmarks/bench_obs.py \
        --copies 8 --rounds 3 --output obs.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

from repro.core.matrix_cfpq import solve_matrix
from repro.obs.trace import configure_tracing, reset_tracing


def _solve(graph, grammar, backend: str):
    result = solve_matrix(graph, grammar, backend=backend, normalize=False)
    return result.relations.pairs("S")


def run_obs_overhead_suite(copies: int = 8, backend: str = "sparse",
                           rounds: int = 3,
                           overhead_budget: float = 1.05) -> dict:
    """Best-of-*rounds* interleaved traced/untraced timings of the
    funding×*copies* Q1 closure.

    Interleaving (off, on, off, on, ...) instead of back-to-back blocks
    keeps cache warm-up and machine drift from biasing either side."""
    from repro.datasets.registry import build_graph
    from repro.grammar.builders import same_generation_query1
    from repro.grammar.cnf import to_cnf
    from repro.graph.generators import repeat_graph

    graph = repeat_graph(build_graph("funding"), copies)
    grammar = to_cnf(same_generation_query1())

    # Warm both paths once outside the timed region (imports, caches).
    reference = _solve(graph, grammar, backend)
    best_off = best_on = float("inf")
    traced_relation = None
    trace_records = 0
    with tempfile.TemporaryDirectory(prefix="repro-bench-obs-") as tempdir:
        trace_path = os.path.join(tempdir, "trace.jsonl")
        for _ in range(max(1, rounds)):
            reset_tracing()
            configure_tracing(enabled=False)
            began = time.perf_counter()
            untraced_relation = _solve(graph, grammar, backend)
            best_off = min(best_off, time.perf_counter() - began)

            configure_tracing(trace_file=trace_path)
            began = time.perf_counter()
            traced_relation = _solve(graph, grammar, backend)
            best_on = min(best_on, time.perf_counter() - began)
            reset_tracing()
        with open(trace_path, "r", encoding="utf-8") as stream:
            trace_records = sum(1 for line in stream if line.strip())

    ratio = best_on / best_off if best_off > 0 else float("inf")
    return {
        "workload": f"funding_x{copies} Q1 closure",
        "backend": backend,
        "rounds": rounds,
        "untraced_wall_time_s": round(best_off, 6),
        "traced_wall_time_s": round(best_on, 6),
        "overhead_ratio": round(ratio, 4),
        "overhead_budget": overhead_budget,
        "within_overhead": ratio <= overhead_budget,
        "trace_records": trace_records,
        "agree": (untraced_relation == reference
                  and traced_relation == reference),
    }


def test_tracing_overhead_and_identity():
    """Tier-friendly smoke: the traced closure agrees with the untraced
    one and emits spans (the ≤5% timing gate itself runs in CI's
    bench-smoke job, where best-of-N makes it meaningful)."""
    report = run_obs_overhead_suite(copies=1, rounds=1,
                                    overhead_budget=float("inf"))
    assert report["agree"]
    assert report["trace_records"] > 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="observability overhead benchmark (JSON summary)"
    )
    parser.add_argument("--copies", type=int, default=8,
                        help="funding-ontology repetition factor")
    parser.add_argument("--backend", default="sparse")
    parser.add_argument("--rounds", type=int, default=3,
                        help="interleaved best-of-N rounds")
    parser.add_argument("--overhead-budget", type=float, default=1.05,
                        help="maximum allowed traced/untraced ratio "
                             "(default 1.05 = 5%%)")
    parser.add_argument("--output", default=None,
                        help="write JSON here (default: stdout)")
    args = parser.parse_args(argv)

    report = run_obs_overhead_suite(copies=args.copies,
                                    backend=args.backend,
                                    rounds=args.rounds,
                                    overhead_budget=args.overhead_budget)
    payload = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            stream.write(payload + "\n")
        print(f"wrote {args.output}")
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
