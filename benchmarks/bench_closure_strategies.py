"""Ablation: transitive-closure strategy (paper §7 — "there are
asymptotically more efficient algorithms for the transitive closure").

Compares, on the plain boolean reachability sub-problem:

* ``naive``       — the paper's squaring iteration  a ← a ∪ a·a
* ``incremental`` — a ← a ∪ a·a₀ (more, cheaper multiplications)
* ``warshall``    — the O(|V|³) Floyd–Warshall reference
* ``blocked``     — the tiled (out-of-core style) squaring closure

Expected shape: squaring needs O(log d) multiplications (d = graph
diameter) and wins on long chains; Warshall's dense triple loop is
uncompetitive in pure Python beyond tiny graphs; blocking adds a
bounded overhead over flat squaring (the price of a bounded working
set).
"""

from __future__ import annotations

import pytest

from repro.core.blocked import boolean_closure_blocked
from repro.core.transitive_closure import (
    boolean_closure_incremental,
    boolean_closure_naive,
    boolean_closure_warshall,
)
from repro.graph.generators import chain, random_graph
from repro.graph.matrices import boolean_adjacency


def _blocked(matrix):
    closed, _stats = boolean_closure_blocked(matrix, tile_size=64)
    return closed


STRATEGIES = {
    "naive": boolean_closure_naive,
    "incremental": boolean_closure_incremental,
    "warshall": boolean_closure_warshall,
    "blocked": _blocked,
}


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_closure_long_chain(benchmark, strategy):
    """Diameter-200 chain: squaring's O(log d) shines here."""
    matrix = boolean_adjacency(chain(200), backend="sparse")
    closed = benchmark(STRATEGIES[strategy], matrix)
    assert closed.nnz() == 200 * 201 // 2


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_closure_random_graph(benchmark, strategy):
    matrix = boolean_adjacency(
        random_graph(150, 450, ["e"], seed=3), backend="sparse"
    )
    closed = benchmark(STRATEGIES[strategy], matrix)
    assert closed.nnz() >= matrix.nnz()


def test_strategies_agree():
    matrix = boolean_adjacency(
        random_graph(60, 200, ["e"], seed=5), backend="sparse"
    )
    answers = {name: fn(matrix).to_pair_set()
               for name, fn in STRATEGIES.items()}
    assert len(set(map(frozenset, answers.values()))) == 1
