"""Ablation: closure strategy (paper §7 — "there are asymptotically
more efficient algorithms for the transitive closure").

Two layers of comparison:

1. plain boolean reachability (pytest-benchmark tests below):

   * ``naive``       — the paper's squaring iteration  a ← a ∪ a·a
   * ``incremental`` — a ← a ∪ a·a₀ (more, cheaper multiplications)
   * ``delta``       — semi-naive frontier propagation (Δ×T ∪ T×Δ)
   * ``warshall``    — the O(|V|³) Floyd–Warshall reference
   * ``blocked``     — the tiled (out-of-core style) squaring closure

2. the full CFPQ closure engine strategies (``naive`` / ``delta`` /
   ``blocked`` from :mod:`repro.core.closure`) on the bench_scaling.py
   workload (repeated funding ontology × Q1).  Run this module as a
   script for a machine-readable summary::

       PYTHONPATH=src python benchmarks/bench_closure_strategies.py \
           --copies 1 2 4 --backend sparse --output strategies.json

   The JSON reports iterations, boolean multiplications and wall time
   per (workload, strategy) cell — the numbers behind the claim that
   ``delta`` does strictly fewer multiplications than ``naive``.

Expected shape: squaring needs O(log d) multiplications (d = graph
diameter) and wins on long chains; delta fires only rules whose bodies
changed, so its multiplication count drops as the frontier shrinks;
Warshall's dense triple loop is uncompetitive in pure Python beyond
tiny graphs; blocking adds a bounded overhead over flat squaring (the
price of a bounded working set).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import pytest

from repro.core.blocked import boolean_closure_blocked
from repro.core.closure import available_strategies
from repro.core.matrix_cfpq import solve_matrix
from repro.core.transitive_closure import (
    boolean_closure_delta,
    boolean_closure_incremental,
    boolean_closure_naive,
    boolean_closure_warshall,
)
from repro.graph.generators import chain, random_graph
from repro.graph.matrices import boolean_adjacency


def _blocked(matrix):
    closed, _stats = boolean_closure_blocked(matrix, tile_size=64)
    return closed


STRATEGIES = {
    "naive": boolean_closure_naive,
    "incremental": boolean_closure_incremental,
    "delta": boolean_closure_delta,
    "warshall": boolean_closure_warshall,
    "blocked": _blocked,
}


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_closure_long_chain(benchmark, strategy):
    """Diameter-200 chain: squaring's O(log d) shines here."""
    matrix = boolean_adjacency(chain(200), backend="sparse")
    closed = benchmark(STRATEGIES[strategy], matrix)
    assert closed.nnz() == 200 * 201 // 2


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_closure_random_graph(benchmark, strategy):
    matrix = boolean_adjacency(
        random_graph(150, 450, ["e"], seed=3), backend="sparse"
    )
    closed = benchmark(STRATEGIES[strategy], matrix)
    assert closed.nnz() >= matrix.nnz()


def test_strategies_agree():
    matrix = boolean_adjacency(
        random_graph(60, 200, ["e"], seed=5), backend="sparse"
    )
    answers = {name: fn(matrix).to_pair_set()
               for name, fn in STRATEGIES.items()}
    assert len(set(map(frozenset, answers.values()))) == 1


# ----------------------------------------------------------------------
# CFPQ closure-engine strategy sweep (machine-readable)
# ----------------------------------------------------------------------

def run_cfpq_strategy_suite(copies: tuple[int, ...] = (1, 2, 4),
                            backend: str = "sparse",
                            strategies: tuple[str, ...] | None = None,
                            ) -> dict:
    """Time every closure strategy on the bench_scaling.py workloads.

    Returns ``{workload: {strategy: {iterations, multiplications,
    wall_time_s, relation_size, total_entries}}}`` plus an ``agree``
    flag per workload asserting all strategies computed the same R_S.
    """
    from repro.datasets.registry import build_graph
    from repro.grammar.builders import same_generation_query1
    from repro.grammar.cnf import to_cnf
    from repro.graph.generators import repeat_graph

    grammar = to_cnf(same_generation_query1())
    names = tuple(strategies or available_strategies())
    report: dict = {
        "workload_family": "funding ontology × Q1 (bench_scaling.py recipe)",
        "backend": backend,
        "workloads": {},
    }
    base = build_graph("funding")
    for k in copies:
        graph = repeat_graph(base, k)
        cells: dict = {}
        reference = None
        agree = True
        for strategy in names:
            started = time.perf_counter()
            result = solve_matrix(graph, grammar, backend=backend,
                                  normalize=False, strategy=strategy)
            elapsed = time.perf_counter() - started
            relation = result.relations.pairs("S")
            if reference is None:
                reference = relation
            elif relation != reference:
                agree = False
            cells[strategy] = {
                "iterations": result.stats.iterations,
                "multiplications": result.stats.multiplications,
                "wall_time_s": round(elapsed, 6),
                "relation_size": len(relation),
                "total_entries": result.stats.total_entries,
            }
        report["workloads"][f"funding_x{k}"] = {
            "nodes": graph.node_count,
            "edges": graph.edge_count,
            "agree": agree,
            "strategies": cells,
        }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="CFPQ closure-strategy benchmark (JSON summary)"
    )
    parser.add_argument("--copies", type=int, nargs="+", default=[1, 2, 4],
                        help="funding-ontology repetition factors")
    parser.add_argument("--backend", default="sparse")
    parser.add_argument("--strategies", nargs="+", default=None,
                        choices=available_strategies())
    parser.add_argument("--output", default=None,
                        help="write JSON here (default: stdout)")
    args = parser.parse_args(argv)

    report = run_cfpq_strategy_suite(copies=tuple(args.copies),
                                     backend=args.backend,
                                     strategies=args.strategies)
    payload = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            stream.write(payload + "\n")
        print(f"wrote {args.output}")
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
