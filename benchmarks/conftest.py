"""Shared benchmark fixtures.

Benchmarks run with ``pytest benchmarks/ --benchmark-only``.  Dataset
graphs are built once per session; grammars are pre-normalized outside
the timed regions (mirroring the paper, which times query evaluation on
a prepared graph, not input parsing).
"""

from __future__ import annotations

import pytest

from repro.datasets.registry import build_graph
from repro.grammar.builders import (
    same_generation_query1,
    same_generation_query2,
)
from repro.grammar.cnf import to_cnf


@pytest.fixture(scope="session")
def query1_grammar():
    """Q1 (Figure 10), original form for GLL."""
    return same_generation_query1()


@pytest.fixture(scope="session")
def query1_cnf():
    """Q1 normalized, for the matrix engines."""
    return to_cnf(same_generation_query1())


@pytest.fixture(scope="session")
def query2_grammar():
    return same_generation_query2()


@pytest.fixture(scope="session")
def query2_cnf():
    return to_cnf(same_generation_query2())


@pytest.fixture(scope="session")
def dataset_graphs():
    """Session-cached dataset graphs, built on first use."""
    cache: dict[str, object] = {}

    def get(name: str):
        if name not in cache:
            cache[name] = build_graph(name)
        return cache[name]

    return get
