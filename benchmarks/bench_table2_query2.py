"""Table 2 reproduction: Query 2 (adjacent generation) on the paper's
datasets.

Q2 walks only ``subClassOf``/``subClassOf_r``, so it is far cheaper
than Q1 on the same graphs — the paper's Table 2 times are uniformly
below Table 1's, and the result counts are one to three orders of
magnitude smaller.  Both shapes are asserted here.

Run this module as a script for the machine-readable Table 2 sweep over
the shared :mod:`repro.bench.harness` (timings also land in the
observability metrics registry as ``repro_bench_measure_seconds``)::

    PYTHONPATH=src python benchmarks/bench_table2_query2.py \
        --datasets skos generations travel --output table2.json
"""

from __future__ import annotations

import argparse
import json
import sys

import pytest

from repro.baselines.gll import solve_gll
from repro.core.matrix_cfpq import solve_matrix_relations
from repro.datasets.registry import ONTOLOGY_NAMES, SYNTHETIC_NAMES


def _expected_count(dataset_graphs, query2_cnf, name: str) -> int:
    cache = _expected_count.__dict__.setdefault("cache", {})
    if name not in cache:
        relations = solve_matrix_relations(dataset_graphs(name), query2_cnf,
                                           backend="sparse", normalize=False)
        cache[name] = relations.count("S")
    return cache[name]


@pytest.mark.parametrize("dataset", ONTOLOGY_NAMES)
def test_table2_sparse(benchmark, dataset_graphs, query2_cnf, dataset):
    graph = dataset_graphs(dataset)
    relations = benchmark(solve_matrix_relations, graph, query2_cnf,
                          "sparse", False)
    assert relations.count("S") == _expected_count(dataset_graphs, query2_cnf,
                                                   dataset)


@pytest.mark.parametrize("dataset", ONTOLOGY_NAMES)
def test_table2_gll(benchmark, dataset_graphs, query2_grammar, query2_cnf,
                    dataset):
    graph = dataset_graphs(dataset)
    relations = benchmark(solve_gll, graph, query2_grammar, ["S"])
    assert relations.count("S") == _expected_count(dataset_graphs, query2_cnf,
                                                   dataset)


@pytest.mark.parametrize("dataset", SYNTHETIC_NAMES)
def test_table2_sparse_large(benchmark, dataset_graphs, query2_cnf, dataset):
    graph = dataset_graphs(dataset)
    relations = benchmark.pedantic(
        solve_matrix_relations, args=(graph, query2_cnf, "sparse", False),
        iterations=1, rounds=1,
    )
    base = {"g1": "funding", "g2": "wine", "g3": "pizza"}[dataset]
    assert relations.count("S") == 8 * _expected_count(
        dataset_graphs, query2_cnf, base
    )


def test_q2_cheaper_than_q1_on_pizza(dataset_graphs, query1_cnf, query2_cnf):
    """Shape check from the paper: Table 2 counts (and costs) are far
    below Table 1 on the same graph."""
    graph = dataset_graphs("pizza")
    q1 = solve_matrix_relations(graph, query1_cnf, "sparse", False).count("S")
    q2 = solve_matrix_relations(graph, query2_cnf, "sparse", False).count("S")
    assert q2 < q1 / 10

# ----------------------------------------------------------------------
# Harness-based Table 2 sweep (machine-readable)
# ----------------------------------------------------------------------

#: The paper's Table 2 columns: Q2 is cheap enough that the dense
#: stand-in adds nothing, so the default sweep times GLL vs sparse.
TABLE2_SOLVERS = ("gll", "sparse")


def run_table2_suite(datasets: "tuple[str, ...] | None" = None,
                     solvers: "tuple[str, ...] | None" = None,
                     repeats: int = 1) -> dict:
    """Time the Table 2 solver columns through the shared measurement
    harness; same report shape as ``run_table1_suite``."""
    from repro.bench.harness import measure
    from repro.datasets.registry import build_graph
    from repro.grammar.builders import same_generation_query2

    grammar = same_generation_query2()
    names = tuple(datasets or ONTOLOGY_NAMES)
    solver_names = tuple(solvers or TABLE2_SOLVERS)
    report: dict = {"table": "table2", "query": "query2", "datasets": {}}
    for name in names:
        graph = build_graph(name)
        cells: dict = {}
        counts: set[int] = set()
        for solver in solver_names:
            result = measure(solver, graph, grammar, "S", repeats=repeats)
            counts.add(result.results)
            cells[solver] = {
                "results": result.results,
                "wall_time_s": round(result.milliseconds / 1000.0, 6),
            }
        report["datasets"][name] = {
            "nodes": graph.node_count,
            "edges": graph.edge_count,
            "agree": len(counts) == 1,
            "solvers": cells,
        }
    return report


def main(argv: "list[str] | None" = None) -> int:
    from repro.bench.harness import SOLVERS

    parser = argparse.ArgumentParser(
        description="Table 2 (Query 2) harness sweep (JSON summary)"
    )
    parser.add_argument("--datasets", nargs="+", default=None,
                        choices=ONTOLOGY_NAMES,
                        help="ontologies to time (default: all of them)")
    parser.add_argument("--solvers", nargs="+", default=list(TABLE2_SOLVERS),
                        choices=sorted(SOLVERS),
                        help="harness solver columns (default: GLL and "
                             "sparse, the paper's Table 2 shape)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="best-of-N timing repeats per cell")
    parser.add_argument("--output", default=None,
                        help="write JSON here (default: stdout)")
    args = parser.parse_args(argv)

    report = run_table2_suite(
        datasets=None if args.datasets is None else tuple(args.datasets),
        solvers=tuple(args.solvers), repeats=args.repeats,
    )
    payload = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            stream.write(payload + "\n")
        print(f"wrote {args.output}")
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
