"""Table 2 reproduction: Query 2 (adjacent generation) on the paper's
datasets.

Q2 walks only ``subClassOf``/``subClassOf_r``, so it is far cheaper
than Q1 on the same graphs — the paper's Table 2 times are uniformly
below Table 1's, and the result counts are one to three orders of
magnitude smaller.  Both shapes are asserted here.
"""

from __future__ import annotations

import pytest

from repro.baselines.gll import solve_gll
from repro.core.matrix_cfpq import solve_matrix_relations
from repro.datasets.registry import ONTOLOGY_NAMES, SYNTHETIC_NAMES


def _expected_count(dataset_graphs, query2_cnf, name: str) -> int:
    cache = _expected_count.__dict__.setdefault("cache", {})
    if name not in cache:
        relations = solve_matrix_relations(dataset_graphs(name), query2_cnf,
                                           backend="sparse", normalize=False)
        cache[name] = relations.count("S")
    return cache[name]


@pytest.mark.parametrize("dataset", ONTOLOGY_NAMES)
def test_table2_sparse(benchmark, dataset_graphs, query2_cnf, dataset):
    graph = dataset_graphs(dataset)
    relations = benchmark(solve_matrix_relations, graph, query2_cnf,
                          "sparse", False)
    assert relations.count("S") == _expected_count(dataset_graphs, query2_cnf,
                                                   dataset)


@pytest.mark.parametrize("dataset", ONTOLOGY_NAMES)
def test_table2_gll(benchmark, dataset_graphs, query2_grammar, query2_cnf,
                    dataset):
    graph = dataset_graphs(dataset)
    relations = benchmark(solve_gll, graph, query2_grammar, ["S"])
    assert relations.count("S") == _expected_count(dataset_graphs, query2_cnf,
                                                   dataset)


@pytest.mark.parametrize("dataset", SYNTHETIC_NAMES)
def test_table2_sparse_large(benchmark, dataset_graphs, query2_cnf, dataset):
    graph = dataset_graphs(dataset)
    relations = benchmark.pedantic(
        solve_matrix_relations, args=(graph, query2_cnf, "sparse", False),
        iterations=1, rounds=1,
    )
    base = {"g1": "funding", "g2": "wine", "g3": "pizza"}[dataset]
    assert relations.count("S") == 8 * _expected_count(
        dataset_graphs, query2_cnf, base
    )


def test_q2_cheaper_than_q1_on_pizza(dataset_graphs, query1_cnf, query2_cnf):
    """Shape check from the paper: Table 2 counts (and costs) are far
    below Table 1 on the same graph."""
    graph = dataset_graphs("pizza")
    q1 = solve_matrix_relations(graph, query1_cnf, "sparse", False).count("S")
    q2 = solve_matrix_relations(graph, query2_cnf, "sparse", False).count("S")
    assert q2 < q1 / 10
