"""Weighted-query benchmarks: counting-based DRed vs the tuple-set
oracle, and lazy k-best vs exhaustive bounded enumeration.

Two layers:

1. pytest-benchmark tests on the funding ontology: the counting and
   Viterbi annotated closures, each gated by a consistency check
   against the relational fixpoint.

2. a machine-readable sweep (run this module as a script)::

       PYTHONPATH=src python benchmarks/bench_weighted.py \
           --batch-sizes 200 600 --output weighted.json

   * **DRed support modes** — per batch size, insert the same random
     reachability batch into two incremental solvers, one running the
     matrix-granular :class:`CountingSupportIndex`
     (``support_mode="counting"``, the default) and one the original
     per-fact tuple sets (``support_mode="tuples"``, the oracle), then
     delete a tenth of the batch from each and assert identical
     relations — reporting both deletion wall times and the ratio.
   * **k-best vs exhaustive** — on a layered detour graph with
     ``2^hops`` end-to-end paths, time ``top_k(k=3)`` (lazy best-first
     over the witness forest) against materializing the full bounded
     path set via ``iter_paths``, and report the expansion counter that
     proves the stream never touched more than a sliver of the
     population.

   ``benchmarks/BENCH_weighted.json`` pins the numbers and CI's
   bench-smoke gate re-measures them.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import pytest

from repro.core.incremental import IncrementalCFPQ
from repro.core.matrix_cfpq import solve_matrix_relations
from repro.core.path_index import AllPathIndex
from repro.core.semiring import (
    COUNTING_SEMIRING,
    ViterbiSemiring,
    solve_annotated,
)
from repro.datasets.registry import build_graph
from repro.grammar.builders import chain_reachability
from repro.grammar.cnf import to_cnf
from repro.graph.labeled_graph import LabeledGraph


def test_counting_closure_funding(benchmark, query1_cnf):
    graph = build_graph("funding")
    result = benchmark.pedantic(
        solve_annotated, args=(graph, query1_cnf, COUNTING_SEMIRING),
        iterations=1, rounds=1,
    )
    # Consistency gate: the counting fixpoint covers exactly the
    # relational one.
    relational = solve_matrix_relations(graph, query1_cnf,
                                        normalize=False)
    for nonterminal in query1_cnf.nonterminals:
        cells = {(i, j) for i, j, _value in
                 result.matrices[nonterminal].nonzero_cells()}
        assert cells == relational.pairs(nonterminal)


def test_viterbi_closure_funding(benchmark, query1_cnf):
    graph = build_graph("funding")
    semiring = ViterbiSemiring()
    result = benchmark.pedantic(
        solve_annotated, args=(graph, query1_cnf, semiring),
        iterations=1, rounds=1,
    )
    assert any(result.matrices[nt].nonzero_cells()
               for nt in query1_cnf.nonterminals)


def test_counting_dred_deletion(benchmark, query1_cnf):
    """DRed deletion with the counting support index (the default)."""
    graph = build_graph("funding")
    solver = IncrementalCFPQ(graph, query1_cnf, support_mode="counting")
    batch = [(f"N{k}", "subClassOf", f"Class{k}") for k in range(10)]
    solver.add_edges(batch)
    benchmark.pedantic(solver.remove_edges, args=(batch,),
                       iterations=1, rounds=1)
    scratch = solve_matrix_relations(solver.graph, query1_cnf,
                                     normalize=False)
    assert solver.relations().same_as(scratch)


# ----------------------------------------------------------------------
# Machine-readable sweep
# ----------------------------------------------------------------------

def _random_batch(batch_size: int, edges_per_node: float = 3.5,
                  seed: int = 7) -> list:
    """*batch_size* distinct random a-edges over ``batch_size /
    edges_per_node`` nodes (deterministic in *seed*)."""
    import random

    nodes = max(4, round(batch_size / edges_per_node))
    rng = random.Random(seed)
    seen: set = set()
    edges: list = []
    while len(edges) < batch_size:
        edge = (rng.randrange(nodes), "a", rng.randrange(nodes))
        if edge not in seen:
            seen.add(edge)
            edges.append(edge)
    return edges


def _detour_graph(hops: int) -> LabeledGraph:
    """Each hop: a direct a-edge or a two-edge b-detour — ``2^hops``
    end-to-end paths, lengths ``hops .. 2 * hops``."""
    edges = []
    for hop in range(hops):
        detour = hops + 1 + hop
        edges += [(hop, "a", hop + 1), (hop, "b", detour),
                  (detour, "b", hop + 1)]
    return LabeledGraph.from_edges(edges, nodes=list(range(2 * hops + 1)))


def _dred_cell(size: int, grammar, backend: str, strategy: str,
               repeats: int) -> dict:
    edges = _random_batch(size)
    victims = edges[::10]
    seconds = {"counting": float("inf"), "tuples": float("inf")}
    solvers: dict = {}
    removed: dict = {}
    for _ in range(max(1, repeats)):
        for mode in ("counting", "tuples"):
            solver = IncrementalCFPQ(LabeledGraph(), grammar,
                                     backend=backend, strategy=strategy,
                                     support_mode=mode)
            solver.add_edges(edges)
            started = time.perf_counter()
            removed[mode] = solver.remove_edges(victims)
            seconds[mode] = min(seconds[mode],
                                time.perf_counter() - started)
            solvers[mode] = solver
    agree = (removed["counting"] == removed["tuples"]
             and solvers["counting"].relations().same_as(
                 solvers["tuples"].relations()))
    return {
        "edges": len(edges),
        "deleted": len(victims),
        "facts_removed": removed["counting"],
        "counting_delete_wall_time_s": round(seconds["counting"], 6),
        "tuples_delete_wall_time_s": round(seconds["tuples"], 6),
        "counting_over_tuples": round(
            seconds["counting"] / seconds["tuples"], 3)
        if seconds["tuples"] else float("inf"),
        "agree": agree,
    }


def _kbest_cell(hops: int, k: int, repeats: int) -> dict:
    from repro import parse_grammar

    grammar = to_cnf(parse_grammar("S -> T | T S\nT -> a | b",
                                   terminals=["a", "b"]))
    graph = _detour_graph(hops)
    index = AllPathIndex.build(graph, grammar)

    kbest_seconds = exhaustive_seconds = float("inf")
    for _ in range(max(1, repeats)):
        fresh = AllPathIndex.build(graph, grammar)
        started = time.perf_counter()
        best = fresh.top_k("S", 0, hops, k)
        kbest_seconds = min(kbest_seconds, time.perf_counter() - started)
        expansions = fresh.kbest_stats["expansions"]

        started = time.perf_counter()
        every = list(index.iter_paths("S", 0, hops, max_length=2 * hops))
        exhaustive_seconds = min(exhaustive_seconds,
                                 time.perf_counter() - started)
    best_lengths = [len(path) for path in best]
    population_lengths = sorted(len(path) for path in every)
    return {
        "hops": hops,
        "k": k,
        "path_population": len(every),
        "kbest_wall_time_s": round(kbest_seconds, 6),
        "exhaustive_wall_time_s": round(exhaustive_seconds, 6),
        "speedup": round(exhaustive_seconds / kbest_seconds, 3)
        if kbest_seconds else float("inf"),
        "expansions": expansions,
        "agree": (len(best) == k
                  and best_lengths == population_lengths[:k]
                  and expansions < len(every)),
    }


def run_weighted_suite(batch_sizes: tuple[int, ...] = (200, 600),
                       hops: int = 12, k: int = 3,
                       backend: str | None = None,
                       strategy: str = "delta",
                       repeats: int = 2) -> dict:
    """Time counting vs tuple DRed and lazy k-best vs exhaustive.

    Returns ``{dred: {size: {counting_delete_wall_time_s,
    tuples_delete_wall_time_s, counting_over_tuples, agree}},
    kbest: {kbest_wall_time_s, exhaustive_wall_time_s, speedup,
    expansions, agree}}``.
    """
    from repro.matrices.base import default_backend

    grammar = to_cnf(chain_reachability("a"))
    backend = backend or default_backend()
    report: dict = {
        "benchmark": "weighted semirings: counting DRed + lazy k-best",
        "workload": "random a-graph deletions; layered detour graph "
                    f"with 2^{hops} paths",
        "backend": backend,
        "strategy": strategy,
        "dred": {},
    }
    for size in batch_sizes:
        report["dred"][str(size)] = _dred_cell(size, grammar, backend,
                                               strategy, repeats)
    report["kbest"] = _kbest_cell(hops, k, repeats)
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="weighted-semiring benchmark (JSON summary)"
    )
    parser.add_argument("--batch-sizes", type=int, nargs="+",
                        default=[200, 600])
    parser.add_argument("--hops", type=int, default=12)
    parser.add_argument("--k", type=int, default=3)
    parser.add_argument("--backend", default=None)
    parser.add_argument("--strategy", default="delta")
    parser.add_argument("--output", default=None,
                        help="write JSON here (default: stdout)")
    args = parser.parse_args(argv)

    report = run_weighted_suite(batch_sizes=tuple(args.batch_sizes),
                                hops=args.hops, k=args.k,
                                backend=args.backend,
                                strategy=args.strategy)
    payload = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            stream.write(payload + "\n")
        print(f"wrote {args.output}")
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
