"""Batched multi-query benchmark: one masked closure vs per-query loops.

The batched path (:func:`repro.core.batch.solve_batch`) stacks one mask
row per query onto the grammar matrices and answers the whole batch
with **one** closure; the unbatched alternative runs one closure per
query.  Each cell measures both on the same query set:

* ``batched``   — one ``solve_batch(queries)`` call;
* ``per_query`` — ``solve_batch([query])`` for each of the first
  ``--sample`` queries (running all of a 32-query loop on funding × 8
  would be pure waiting — the per-query *rate* is what matters);
* ``speedup``   — batched queries/s over per-query queries/s, the
  headline number (target: ≥ 3× at batch 32 on funding × 8, bitset);
* ``agree``     — every batched answer equals the reference computed
  from one all-pairs solve, and every sampled per-query answer matches.

Queries are source-restricted membership probes (one mask row each),
half drawn from the solved relation (answer True) and half random
(mostly False), seeded — every run measures the same batch.

Usage::

    PYTHONPATH=src python benchmarks/bench_batch.py \
        --output benchmarks/BENCH_batch.json
"""

from __future__ import annotations

import argparse
import json
import random
import time

from bench_workloads import repeated_funding
from repro.core.batch import BatchQuery, solve_batch
from repro.core.matrix_cfpq import solve_matrix_relations
from repro.grammar.builders import same_generation_query1
from repro.grammar.cnf import ensure_cnf
from repro.grammar.symbols import Nonterminal

START = Nonterminal("S")
GRAMMAR = ensure_cnf(same_generation_query1())

#: (funding copies, batch size, strategy, backend).  Workload names end
#: ``_<backend>`` so the regression gate skips cells whose optional
#: dependency is missing on the checking host.
DEFAULT_CELLS = (
    (2, 8, "delta", "bitset"),
    (2, 32, "delta", "bitset"),
    (2, 32, "blocked", "bitset"),
    (2, 32, "delta", "sparse"),
    (2, 32, "delta", "setmatrix"),
    (8, 32, "delta", "bitset"),  # the gated ≥3× headline cell
)

_RELATION_CACHE: dict[int, frozenset] = {}


def _relation(copies: int) -> frozenset:
    """The full R_S on funding × copies (one all-pairs solve, cached):
    the answer oracle every batched/per-query result is checked
    against."""
    if copies not in _RELATION_CACHE:
        graph = repeated_funding(copies)
        relations = solve_matrix_relations(graph, GRAMMAR,
                                           normalize=False)
        _RELATION_CACHE[copies] = relations.node_pairs(START)
    return _RELATION_CACHE[copies]


def make_queries(copies: int, count: int, seed: int = 20180414) -> list:
    """*count* seeded membership probes: half (source, target) pairs
    sampled from the solved relation, half uniform random node pairs."""
    graph = repeated_funding(copies)
    relation = sorted(_relation(copies), key=str)
    rng = random.Random(seed)
    queries = []
    for index in range(count):
        if index % 2 == 0 and relation:
            source, target = relation[rng.randrange(len(relation))]
        else:
            source = graph.node_at(rng.randrange(graph.node_count))
            target = graph.node_at(rng.randrange(graph.node_count))
        queries.append(BatchQuery(START, sources=frozenset((source,)),
                                  targets=frozenset((target,)),
                                  semantics="membership"))
    return queries


def bench_cell(copies: int, batch_size: int, strategy: str,
               backend: str, sample: int) -> dict:
    graph = repeated_funding(copies)
    queries = make_queries(copies, batch_size)
    relation = _relation(copies)
    expected = [
        (next(iter(query.sources)), next(iter(query.targets))) in relation
        for query in queries
    ]

    started = time.perf_counter()
    batched = solve_batch(graph, GRAMMAR, queries, backend=backend,
                          strategy=strategy, normalize=False)
    batched_s = time.perf_counter() - started

    measured = min(max(1, sample), batch_size)
    started = time.perf_counter()
    per_query = [
        solve_batch(graph, GRAMMAR, [query], backend=backend,
                    strategy=strategy, normalize=False)[0]
        for query in queries[:measured]
    ]
    per_query_s = time.perf_counter() - started

    batched_qps = batch_size / batched_s if batched_s else 0.0
    per_query_qps = measured / per_query_s if per_query_s else 0.0
    return {
        "nodes": graph.node_count,
        "edges": graph.edge_count,
        "batch_size": batch_size,
        "agree": batched == expected and per_query == expected[:measured],
        "speedup": round(batched_qps / per_query_qps, 3)
        if per_query_qps else 0.0,
        "solvers": {
            "batched": {
                "queries": batch_size,
                "queries_per_s": round(batched_qps, 3),
                "wall_time_s": round(batched_s, 6),
            },
            "per_query": {
                "queries": measured,
                "queries_per_s": round(per_query_qps, 3),
                "wall_time_s": round(per_query_s, 6),
            },
        },
    }


def run(cells=DEFAULT_CELLS, sample: int = 4) -> dict:
    report: dict = {
        "benchmark": "batched multi-query closure (one masked closure "
                     "vs per-query loops, funding × k, Q1 membership)",
        "workloads": {},
    }
    for copies, batch_size, strategy, backend in cells:
        name = f"funding_x{copies}_b{batch_size}_{strategy}_{backend}"
        print(f"  {name}...", flush=True)
        try:
            report["workloads"][name] = bench_cell(
                copies, batch_size, strategy, backend, sample)
        except ImportError as error:
            print(f"    skipped ({error})", flush=True)
    return report


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="batched-query benchmark: one masked closure vs "
                    "per-query loops (JSON summary)"
    )
    parser.add_argument("--sample", type=int, default=4,
                        help="per-query closures measured per cell "
                             "(the rate extrapolates; default 4)")
    parser.add_argument("--cells", type=int, default=None,
                        help="run only the first N sweep cells")
    parser.add_argument("--output", default=None,
                        help="write JSON here (default: stdout)")
    args = parser.parse_args(argv)

    cells = DEFAULT_CELLS[:args.cells] if args.cells else DEFAULT_CELLS
    print(f"batch benchmark: {len(cells)} cells, "
          f"sample={args.sample}", flush=True)
    report = run(cells, sample=args.sample)
    payload = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            stream.write(payload + "\n")
        print(f"wrote {args.output}")
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
