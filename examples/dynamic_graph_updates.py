"""Dynamic graph databases: incremental CFPQ and the RPQ fallback.

Graph databases mutate continuously.  This example maintains a
same-generation query answer **incrementally** while an ontology grows
edge by edge (semi-naive delta propagation over the paper's monotone
fixpoint), bulk-loads a batch through the matrix-granular frontier,
retracts triples with DRed delete-and-rederive, and contrasts the
context-free answer with the cheaper regular-path-query
over-approximation ``subClassOf_r+ subClassOf+`` (which ignores depth
matching).

Run:  python examples/dynamic_graph_updates.py
"""

from repro import IncrementalCFPQ, LabeledGraph, parse_grammar, solve_rpq
from repro.core import solve_matrix_relations

# Sibling-style same generation: climb n levels up, then n levels down
# (nodes with a common ancestor at equal depth).
SAME_GENERATION = parse_grammar(
    "S -> subClassOf S subClassOf_r | subClassOf subClassOf_r",
    terminals=["subClassOf", "subClassOf_r"],
)


def add_subclass(solver: IncrementalCFPQ, child: str, parent: str) -> int:
    """Insert a subClassOf triple with the paper's inverse-edge rule —
    both directions in one matrix-granular batch (the PR 4 API), so the
    triple costs one frontier run instead of two worklist passes."""
    return solver.add_edges([(child, "subClassOf", parent),
                             (parent, "subClassOf_r", child)])


def main() -> None:
    solver = IncrementalCFPQ(LabeledGraph(), SAME_GENERATION)

    print("Growing a class hierarchy, maintaining R_S incrementally:\n")
    inserts = [
        ("Cat", "Mammal"), ("Dog", "Mammal"),
        ("Mammal", "Animal"), ("Bird", "Animal"),
        ("Sparrow", "Bird"), ("Siamese", "Cat"),
    ]
    for child, parent in inserts:
        derived = add_subclass(solver, child, parent)
        same_gen = sorted(
            (a, b) for a, b in solver.relations().node_pairs("S")
            if str(a) < str(b)
        )
        print(f"  + {child} subClassOf {parent:<7}  "
              f"(+{derived} facts)  same-generation: {same_gen}")

    # Bulk load: one matrix-granular batch instead of a per-tuple loop.
    batch_triples = [("Poodle", "Dog"), ("Robin", "Bird"),
                     ("Crow", "Bird")]
    batch_edges = [edge
                   for child, parent in batch_triples
                   for edge in ((child, "subClassOf", parent),
                                (parent, "subClassOf_r", child))]
    derived = solver.add_edges(batch_edges)
    print(f"\n  + bulk batch {batch_triples}  (+{derived} facts)")

    # Retraction: DRed over-deletes the downward closure of the dead
    # triple, then re-derives what other triples still support.
    removed = solver.remove_edges([("Crow", "subClassOf", "Bird"),
                                   ("Bird", "subClassOf_r", "Crow")])
    print(f"  - Crow subClassOf Bird  (-{removed} facts)")

    # Consistency: incremental state == batch solve on the final graph.
    batch = solve_matrix_relations(solver.graph, SAME_GENERATION)
    assert solver.relations().same_as(batch)
    print("\nIncremental state (insert + bulk + delete) verified against "
          "a from-scratch solve.")

    # The regular approximation cannot express depth matching:
    rpq = {
        (a, b) for a, b in solve_rpq(solver.graph,
                                     "subClassOf+ subClassOf_r+")
        if str(a) < str(b)
    }
    cfpq = {
        (a, b) for a, b in solver.relations().node_pairs("S")
        if str(a) < str(b)
    }
    print(f"\nCFPQ same-generation pairs: {sorted(cfpq)}")
    print(f"RPQ  over-approximation   : {sorted(rpq)}")
    extra = sorted(rpq - cfpq)
    print(f"RPQ false positives (depth mismatch): {extra}")
    assert cfpq <= rpq and extra, "RPQ must strictly over-approximate here"
    # e.g. (Siamese, Bird): Siamese is 3 levels below Animal, Bird is 1 —
    # regular queries cannot enforce equal depths.


if __name__ == "__main__":
    main()
