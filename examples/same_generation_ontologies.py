"""The paper's evaluation workload: same-generation queries on ontologies.

Builds the (synthetic substitutes of the) paper's ontology datasets,
runs Query 1 and Query 2 with the sparse matrix engine and the GLL
baseline, and prints the Table 1 / Table 2 rows next to the paper's
published numbers.

Run:  python examples/same_generation_ontologies.py [--all]

Without ``--all`` only the sub-700-triple ontologies are used so the
example finishes in a few seconds.
"""

import sys

from repro.bench import format_table, measure
from repro.datasets import ONTOLOGY_NAMES, build_graph, get_spec
from repro.grammar import same_generation_query1, same_generation_query2


def main() -> None:
    run_all = "--all" in sys.argv
    names = [
        name for name in ONTOLOGY_NAMES
        if run_all or get_spec(name).triples <= 700
    ]

    for query_name, grammar, attr in [
        ("Query 1 (same layer)", same_generation_query1(), "query1"),
        ("Query 2 (adjacent layers)", same_generation_query2(), "query2"),
    ]:
        rows = []
        for name in names:
            graph = build_graph(name)
            sparse = measure("sparse", graph, grammar, "S")
            gll = measure("gll", graph, grammar, "S")
            paper = getattr(get_spec(name), attr)
            rows.append([
                name, get_spec(name).triples,
                sparse.results, paper.results,
                round(sparse.milliseconds, 1), round(gll.milliseconds, 1),
                paper.scpu_ms, paper.gll_ms,
            ])
        print(format_table(
            ["ontology", "#triples", "#results", "paper#res",
             "sparse(ms)", "gll(ms)", "paper-sCPU", "paper-GLL"],
            rows, title=query_name,
        ))
        print()


if __name__ == "__main__":
    main()
