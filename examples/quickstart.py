"""Quickstart: the paper's §4.3 worked example, end to end.

Runs the same-generation query (Figure 3 / Figure 4) on the 3-node
graph of Figure 5, printing the matrix iterations T0..Tk (Figures 6-8)
and the resulting context-free relations (Figure 9), then answers the
same query through the high-level engine.

Run:  python examples/quickstart.py
"""

from repro import CFPQEngine
from repro.core import solve_naive_with_history
from repro.grammar import same_generation_query1, same_generation_query1_cnf
from repro.graph import paper_example_graph


def main() -> None:
    graph = paper_example_graph()
    grammar = same_generation_query1_cnf()   # Figure 4 (already CNF)

    print("Input graph (Figure 5):")
    for source, label, target in graph.edges():
        print(f"  {source} -{label}-> {target}")

    print("\nGrammar (Figure 4):")
    print("\n".join("  " + line for line in grammar.to_text().splitlines()))

    # --- Algorithm 1, step by step (Figures 6-8) -----------------------
    history = solve_naive_with_history(graph, grammar, normalize=False)
    for step, matrix in enumerate(history):
        print(f"\nT{step}:")
        print("\n".join("  " + line for line in matrix.render().splitlines()))
    print(f"\nFixpoint reached: T{len(history) - 1} = T{len(history) - 2} "
          f"(the paper: k = 6 since T6 = T5)")

    # --- Relations (Figure 9) ------------------------------------------
    final = history[-1]
    print("\nContext-free relations R_A (Figure 9):")
    for nonterminal in sorted(grammar.nonterminals, key=lambda nt: nt.name):
        pairs = sorted(final.pairs_with(nonterminal))
        print(f"  R_{nonterminal} = {pairs}")

    # --- The same answer through the public engine ---------------------
    engine = CFPQEngine(graph, same_generation_query1())  # original grammar
    print("\nVia CFPQEngine (original grammar, auto-normalized):")
    print(f"  R_S = {sorted(engine.relational('S'))}")

    path = engine.single_path("S", 1, 2)
    print(f"  witness path for (1, 2): {path}")
    print(f"  its labeling: {' '.join(label for _s, label, _t in path)}")


if __name__ == "__main__":
    main()
