"""Bioinformatics motivation: RNA base-pairing as CFPQ.

The paper's introduction cites RNA secondary structure prediction [3]
as a graph-query application: complementary base pairing (A-U, C-G) is
a context-free property, so "which subsequences can fold into a stem?"
is a context-free path query on a sequence graph.

We build (1) a chain graph for a single RNA sequence and (2) a small
"mutation graph" where alternative bases label parallel edges — the
query then finds foldable regions across *all* sequence variants at
once, something string parsers cannot do directly.

Run:  python examples/rna_secondary_structure.py
"""

from repro import CFPQEngine, LabeledGraph
from repro.grammar import rna_hairpin_grammar
from repro.graph import word_chain


def sequence_example() -> None:
    sequence = "gauaaauc"          # g...c wraps a u...a wraps a stem
    graph = word_chain(list(sequence))
    engine = CFPQEngine(graph, rna_hairpin_grammar())

    print(f"Sequence: {sequence}")
    print("Foldable (stem-forming) regions [i, j):")
    for i, j in sorted(engine.relational("S")):
        region = sequence[i:j]
        print(f"  positions {i}..{j}: {region}")
        path = engine.single_path("S", i, j)
        assert len(path) == j - i


def mutation_graph_example() -> None:
    # Positions 0-3; position 1 is polymorphic: a or c.
    #   0 --g--> 1 --a|c--> 2 --u|g--> 3 --c--> 4
    graph = LabeledGraph()
    graph.add_edge(0, "g", 1)
    graph.add_edge(1, "a", 2)
    graph.add_edge(1, "c", 2)
    graph.add_edge(2, "u", 3)
    graph.add_edge(2, "g", 3)
    graph.add_edge(3, "c", 4)
    engine = CFPQEngine(graph, rna_hairpin_grammar())

    print("\nMutation graph (position 1 ∈ {a, c}, position 2 ∈ {u, g}):")
    pairs = sorted(engine.relational("S"))
    print(f"Foldable spans: {pairs}")
    # The full span 0..4 folds: g (a u | c g) c — both variants work.
    assert (0, 4) in pairs
    path = engine.single_path("S", 0, 4)
    variant = "".join(label for _s, label, _t in path)
    print(f"One foldable variant of the full span: {variant}")


def main() -> None:
    sequence_example()
    mutation_graph_example()


if __name__ == "__main__":
    main()
