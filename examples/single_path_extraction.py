"""Single-path semantics (Section 5): extracting witness paths.

Uses the classic hard instance — two cycles sharing a node, queried
with the Dyck grammar S -> a S b | a b — where witness paths must wind
around both cycles.  For every pair in R_S the example extracts one
witness whose length matches the closure's recorded annotation, and
double-checks the witness labeling really derives from S (via CYK).

Run:  python examples/single_path_extraction.py
"""

from repro import CFPQEngine, parse_grammar
from repro.grammar import Nonterminal, cyk_recognize
from repro.graph import two_cycles


def main() -> None:
    # a-cycle of length 3 and b-cycle of length 4 sharing node 0:
    # balanced a^n b^n paths exist only for n ≡ 0 (mod 3) and (mod 4)
    # alignments, so witnesses are long and wrap both cycles.
    graph = two_cycles(3, 4, "a", "b")
    grammar = parse_grammar("S -> a S b | a b", terminals=["a", "b"])
    engine = CFPQEngine(graph, grammar)

    pairs = sorted(engine.relational("S"))
    print(f"graph: {graph!r}")
    print(f"R_S contains {len(pairs)} pairs\n")

    for source, target in pairs:
        length = engine.path_length("S", source, target)
        path = engine.single_path("S", source, target)
        word = [label for _s, label, _t in path]
        valid = cyk_recognize(engine.grammar, Nonterminal("S"), word)
        rendering = " ".join(word)
        print(f"({source} -> {target})  recorded length {length:2d}  "
              f"witness: {rendering}  [derives from S: {valid}]")
        assert valid and len(path) == length

    print("\nAll witnesses verified: the labeling of every extracted path")
    print("derives from S and its length equals the recorded annotation.")


if __name__ == "__main__":
    main()
