"""Serving CFPQ: snapshots, the query service, and the JSONL protocol.

Walks the full serving story on a small class hierarchy:

1. a :class:`repro.QueryService` answers same-generation queries behind
   an LRU cache (the repeat is a cache hit);
2. a **coalesced update tick** applies an interleaved insert/delete
   stream as one DRed pass + one frontier run, invalidating exactly the
   cache entries whose non-terminal matrices changed;
3. the solved index is **snapshotted** and a second service warm-starts
   from it with *zero* closure rounds, answering identically;
4. the same requests go through the JSONL request handler — the exact
   protocol ``repro-cfpq serve`` speaks over stdio/TCP.

Run:  python examples/service_quickstart.py
"""

import json
import os
import tempfile

from repro import QueryService, parse_grammar
from repro.graph import LabeledGraph
from repro.service.server import handle_request

SAME_GENERATION = parse_grammar(
    "S -> subClassOf S subClassOf_r | subClassOf subClassOf_r",
    terminals=["subClassOf", "subClassOf_r"],
)


def triples(*pairs):
    """subClassOf triples plus the paper's inverse edges."""
    return [edge
            for child, parent in pairs
            for edge in ((child, "subClassOf", parent),
                         (parent, "subClassOf_r", child))]


def main() -> None:
    graph = LabeledGraph.from_edges(triples(
        ("Cat", "Mammal"), ("Dog", "Mammal"),
        ("Mammal", "Animal"), ("Bird", "Animal"),
    ))
    service = QueryService(graph, SAME_GENERATION, single_path=True)

    # -- 1. cached queries ---------------------------------------------
    first = service.query("S")
    again = service.query("S")
    assert first == again and service.stats["cache_hits"] == 1
    same_gen = sorted((a, b) for a, b in first if str(a) < str(b))
    print(f"same-generation pairs: {same_gen}")
    print(f"cache: {service.stats['cache_hits']} hit / "
          f"{service.stats['cache_misses']} miss")

    # -- 2. one coalesced tick -----------------------------------------
    tick = service.tick(
        [("insert", edge) for edge in triples(("Sparrow", "Bird"))]
        + [("insert", ("Robin", "subClassOf", "Bird"))]
        + [("delete", ("Robin", "subClassOf", "Bird"))]   # retracted in-tick
    )
    print(f"\ntick: +{tick.facts_added} facts, "
          f"{tick.coalesced_away} op coalesced away, "
          f"{tick.dred_passes} DRed pass / {tick.frontier_runs} frontier "
          f"run, invalidated {tick.invalidated_entries} cache entries")
    # Robin's insert was coalesced away (its delete, the last op on that
    # edge, wins); the whole interleaved stream ran as ≤1 DRed pass +
    # exactly 1 frontier run.
    assert tick.frontier_runs == 1 and tick.dred_passes <= 1
    assert tick.coalesced_away == 1
    assert service.query("S", "Sparrow", "Cat") is True
    path = service.query("S", "Sparrow", "Cat", semantics="single-path")
    print("witness Sparrow ~ Cat:",
          " ".join(f"{a}-{label}->{b}" for a, label, b in path))

    # -- 3. snapshot + warm restart ------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        snapshot = os.path.join(tmp, "index.snapshot")
        size = service.save_snapshot(snapshot)
        warm = QueryService.from_snapshot(snapshot)
        startup = warm.stats["startup"]
        assert startup["warm_start"] and startup["closure_iterations"] == 0
        assert warm.query("S") == service.query("S")
        print(f"\nsnapshot: {size} bytes; warm restart ran "
              f"{startup['closure_iterations']} closure rounds and "
              "answers identically")

        # -- 4. the serve protocol -------------------------------------
        print("\nJSONL protocol (what `repro-cfpq serve` speaks):")
        for request in (
            {"op": "query", "start": "S", "source": "Sparrow",
             "target": "Cat"},
            {"op": "query", "start": "S", "source": "Sparrow",
             "target": "Cat", "semantics": "length"},
            {"op": "stats"},
        ):
            response = handle_request(warm, request)
            assert response["ok"], response
            shown = (response["result"] if request["op"] != "stats"
                     else {key: response["result"][key]
                           for key in ("queries", "cache_hit_rate")})
            print(f"  -> {json.dumps(request)}")
            print(f"  <- {json.dumps(shown)}")


if __name__ == "__main__":
    main()
