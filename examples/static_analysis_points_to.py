"""CFL-reachability static analysis as a context-free path query.

The paper's Related Works points at static code analysis [5, 20, 26] as
a driving application: alias/points-to analysis is context-free
language reachability over a program's assignment graph.  This example
builds the memory-alias graph of a small C-like program and asks which
pointer expressions may alias, using the grammar from
``repro.grammar.points_to_grammar``:

    M -> d_r V d          two lvalues alias when value flows meet
    V -> (A | M | ...)    value flow through assignments and aliases

Graph encoding (labels):
    d : "dereference/address-of"  — edge  &x -d-> x
    a : assignment                — edge  from -a-> to

Program under analysis::

    p = &x;        q = &y;
    r = p;         s = r;
    q = p;         t = &z;

May-alias pairs expected: x with y (both reachable through q after
``q = p``... precisely: p,r,s,q all hold &x, so *p,*r,*s,*q alias x).

Run:  python examples/static_analysis_points_to.py
"""

from repro import CFPQEngine
from repro.grammar import points_to_grammar
from repro.graph import LabeledGraph


def build_program_graph() -> LabeledGraph:
    """The assignment graph of the program above.

    ``taken-address`` edges: &x -d-> x  (variable x's storage).
    ``assignment`` edges: source value flows to target: rhs -a-> lhs.
    """
    graph = LabeledGraph()
    # address-of chains: &x "points to" storage x
    for var in ["x", "y", "z"]:
        graph.add_edge(f"&{var}", "d", var)
    # p = &x ; q = &y ; t = &z
    graph.add_edge("&x", "a", "p")
    graph.add_edge("&y", "a", "q")
    graph.add_edge("&z", "a", "t")
    # r = p ; s = r ; q = p
    graph.add_edge("p", "a", "r")
    graph.add_edge("r", "a", "s")
    graph.add_edge("p", "a", "q")
    # inverse edges (the grammar uses a_r / d_r)
    return graph.with_inverse_edges()


def main() -> None:
    graph = build_program_graph()
    engine = CFPQEngine(graph, points_to_grammar())

    print("Program:")
    print("  p = &x;  q = &y;  r = p;  s = r;  q = p;  t = &z;\n")

    alias_pairs = sorted(
        (a, b) for a, b in engine.relational("M") if str(a) < str(b)
    )
    print("May-alias pairs (M relation):")
    for a, b in alias_pairs:
        print(f"  {a} ~ {b}")

    # x is reachable from q (q = p, p = &x) — so x and y may alias
    # through q's two possible targets.
    assert ("x", "y") in alias_pairs, "q = p must make x and y may-alias"
    assert not any("z" in pair for pair in alias_pairs), \
        "z is never aliased (t is the only pointer to z)"

    print("\nWitness for the (x, y) alias, via single-path semantics:")
    path = engine.single_path("M", "x", "y")
    for source_id, label, target_id in path:
        source, target = graph.node_at(source_id), graph.node_at(target_id)
        print(f"  {source} -{label}-> {target}")


if __name__ == "__main__":
    main()
