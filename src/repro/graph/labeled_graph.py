"""Edge-labeled directed graph ``D = (V, E)`` with ``E ⊆ V × Σ × V``.

This is the paper's input data model (Section 2).  Nodes may be any
hashable objects externally; internally they are densely enumerated
``0 .. |V|-1`` (the paper enumerates nodes the same way before building
the matrix), and the mapping is kept for presenting results.

The graph is a *multigraph* in the sense that parallel edges with
distinct labels are allowed; parallel edges with identical labels
collapse (they are indistinguishable to any query).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Iterable, Iterator

from ..errors import UnknownNodeError
from ..grammar.symbols import inverse_label

#: A labeled edge as exposed to callers: (source, label, target).
Edge = tuple[Hashable, str, Hashable]


class LabeledGraph:
    """A directed graph with string-labeled edges.

    >>> g = LabeledGraph.from_edges([("u", "knows", "v"), ("v", "knows", "w")])
    >>> g.node_count, g.edge_count
    (3, 2)
    """

    def __init__(self) -> None:
        self._node_ids: dict[Hashable, int] = {}
        self._nodes: list[Hashable] = []
        # label -> set of (source_id, target_id)
        self._edges_by_label: dict[str, set[tuple[int, int]]] = defaultdict(set)
        self._edge_count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[Edge],
                   nodes: Iterable[Hashable] = ()) -> "LabeledGraph":
        """Build a graph from (source, label, target) triples.

        Extra isolated *nodes* may be declared; node enumeration follows
        first-seen order, matching the paper's "enumerate nodes from 0".
        """
        graph = cls()
        for node in nodes:
            graph.add_node(node)
        for source, label, target in edges:
            graph.add_edge(source, label, target)
        return graph

    def add_node(self, node: Hashable) -> int:
        """Add *node* (idempotent); return its dense id."""
        node_id = self._node_ids.get(node)
        if node_id is None:
            node_id = len(self._nodes)
            self._node_ids[node] = node_id
            self._nodes.append(node)
        return node_id

    def add_edge(self, source: Hashable, label: str, target: Hashable) -> None:
        """Add a labeled edge, creating endpoints as needed."""
        if not label:
            raise ValueError("edge label must be a non-empty string")
        source_id = self.add_node(source)
        target_id = self.add_node(target)
        label_edges = self._edges_by_label[label]
        pair = (source_id, target_id)
        if pair not in label_edges:
            label_edges.add(pair)
            self._edge_count += 1

    def add_edges(self, edges: Iterable[Edge]) -> None:
        """Bulk :meth:`add_edge`."""
        for source, label, target in edges:
            self.add_edge(source, label, target)

    def remove_edge(self, source: Hashable, label: str,
                    target: Hashable) -> bool:
        """Remove a labeled edge; returns True when it existed.

        Endpoints stay in the graph (node enumeration is append-only —
        dense ids held by matrices and incremental solvers must remain
        stable), so a removed edge may leave isolated nodes behind.
        """
        pairs = self._edges_by_label.get(label)
        if not pairs:
            return False
        source_id = self._node_ids.get(source)
        target_id = self._node_ids.get(target)
        if source_id is None or target_id is None:
            return False
        pair = (source_id, target_id)
        if pair not in pairs:
            return False
        pairs.discard(pair)
        self._edge_count -= 1
        return True

    def remove_edges(self, edges: Iterable[Edge]) -> int:
        """Bulk :meth:`remove_edge`; returns how many actually existed."""
        return sum(
            1 for source, label, target in edges
            if self.remove_edge(source, label, target)
        )

    def with_inverse_edges(self) -> "LabeledGraph":
        """Return a new graph with, for every edge ``(u, x, v)``, the
        extra edge ``(v, x_r, u)`` — the paper's RDF conversion rule
        (Section 6: for each triple both the edge and its inverse are
        added).  Node enumeration is preserved."""
        graph = LabeledGraph()
        for node in self._nodes:
            graph.add_node(node)
        for label, pairs in self._edges_by_label.items():
            reverse = inverse_label(label)
            for source_id, target_id in pairs:
                graph.add_edge(self._nodes[source_id], label, self._nodes[target_id])
                graph.add_edge(self._nodes[target_id], reverse, self._nodes[source_id])
        return graph

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """``|V|``."""
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        """``|E|`` (distinct (source, label, target) triples)."""
        return self._edge_count

    @property
    def labels(self) -> frozenset[str]:
        """All edge labels present in the graph."""
        return frozenset(
            label for label, pairs in self._edges_by_label.items() if pairs
        )

    @property
    def nodes(self) -> tuple[Hashable, ...]:
        """Nodes in enumeration order (index == dense id)."""
        return tuple(self._nodes)

    def node_id(self, node: Hashable) -> int:
        """The dense id of *node*; raises :class:`UnknownNodeError`."""
        try:
            return self._node_ids[node]
        except KeyError:
            raise UnknownNodeError(f"node {node!r} is not in the graph") from None

    def node_at(self, node_id: int) -> Hashable:
        """The node object with dense id *node_id*."""
        try:
            return self._nodes[node_id]
        except IndexError:
            raise UnknownNodeError(
                f"node id {node_id} out of range 0..{len(self._nodes) - 1}"
            ) from None

    def has_node(self, node: Hashable) -> bool:
        """Membership test by node object."""
        return node in self._node_ids

    def has_edge(self, source: Hashable, label: str, target: Hashable) -> bool:
        """Membership test for a labeled edge."""
        pairs = self._edges_by_label.get(label)
        if not pairs:
            return False
        source_id = self._node_ids.get(source)
        target_id = self._node_ids.get(target)
        if source_id is None or target_id is None:
            return False
        return (source_id, target_id) in pairs

    def has_edge_id(self, source_id: int, label: str, target_id: int) -> bool:
        """Membership test for a labeled edge by dense node ids."""
        pairs = self._edges_by_label.get(label)
        return bool(pairs) and (source_id, target_id) in pairs

    def edges(self) -> Iterator[Edge]:
        """Iterate all edges as (source, label, target) node objects."""
        for label in sorted(self._edges_by_label):
            for source_id, target_id in sorted(self._edges_by_label[label]):
                yield (self._nodes[source_id], label, self._nodes[target_id])

    def edges_by_id(self) -> Iterator[tuple[int, str, int]]:
        """Iterate all edges as (source_id, label, target_id)."""
        for label in sorted(self._edges_by_label):
            for source_id, target_id in sorted(self._edges_by_label[label]):
                yield (source_id, label, target_id)

    def edge_pairs(self, label: str) -> frozenset[tuple[int, int]]:
        """All (source_id, target_id) pairs carrying *label*."""
        return frozenset(self._edges_by_label.get(label, ()))

    def successors(self, node_id: int) -> Iterator[tuple[str, int]]:
        """Outgoing (label, target_id) pairs of *node_id*."""
        for label, pairs in self._edges_by_label.items():
            for source_id, target_id in pairs:
                if source_id == node_id:
                    yield (label, target_id)

    def out_edges_index(self) -> dict[int, list[tuple[str, int]]]:
        """Adjacency index node_id -> [(label, target_id)], built once for
        path searches."""
        index: dict[int, list[tuple[str, int]]] = defaultdict(list)
        for label, pairs in self._edges_by_label.items():
            for source_id, target_id in pairs:
                index[source_id].append((label, target_id))
        return dict(index)

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def relabel(self, mapping: dict[str, str]) -> "LabeledGraph":
        """Return a copy with labels substituted via *mapping*
        (labels absent from the mapping are kept)."""
        graph = LabeledGraph()
        for node in self._nodes:
            graph.add_node(node)
        for source, label, target in self.edges():
            graph.add_edge(source, mapping.get(label, label), target)
        return graph

    def subgraph_labels(self, keep: Iterable[str]) -> "LabeledGraph":
        """Return a copy containing only edges whose label is in *keep*
        (node set and enumeration preserved)."""
        keep_set = set(keep)
        graph = LabeledGraph()
        for node in self._nodes:
            graph.add_node(node)
        for source, label, target in self.edges():
            if label in keep_set:
                graph.add_edge(source, label, target)
        return graph

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabeledGraph):
            return NotImplemented
        return (self._nodes == other._nodes
                and {k: v for k, v in self._edges_by_label.items() if v}
                == {k: v for k, v in other._edges_by_label.items() if v})

    def __repr__(self) -> str:
        return f"LabeledGraph(|V|={self.node_count}, |E|={self.edge_count}, labels={sorted(self.labels)})"
