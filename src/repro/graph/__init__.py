"""Graph substrate: labeled graphs, RDF conversion, generators, IO."""

from .generators import (
    binary_tree,
    chain,
    cycle,
    grid,
    paper_example_graph,
    random_graph,
    repeat_graph,
    two_cycles,
    word_chain,
    worst_case_dyck_graph,
)
from .io import (
    dump_graph,
    dumps_graph,
    load_csv_graph,
    load_graph,
    load_graph_file,
    loads_graph,
    save_graph_file,
)
from .labeled_graph import Edge, LabeledGraph
from .matrices import adjacency_matrices, boolean_adjacency, label_pair_sets
from .rdf import (
    Triple,
    graph_to_triples,
    load_rdf_graph,
    parse_triple_line,
    parse_triples,
    read_triples,
    shorten_iri,
    triples_to_graph,
)
from .stats import GraphStats, graph_stats

__all__ = [
    "Edge",
    "GraphStats",
    "LabeledGraph",
    "Triple",
    "adjacency_matrices",
    "binary_tree",
    "boolean_adjacency",
    "chain",
    "cycle",
    "dump_graph",
    "dumps_graph",
    "graph_stats",
    "graph_to_triples",
    "grid",
    "label_pair_sets",
    "load_csv_graph",
    "load_graph",
    "load_graph_file",
    "load_rdf_graph",
    "loads_graph",
    "paper_example_graph",
    "parse_triple_line",
    "parse_triples",
    "random_graph",
    "read_triples",
    "repeat_graph",
    "save_graph_file",
    "shorten_iri",
    "triples_to_graph",
    "two_cycles",
    "word_chain",
    "worst_case_dyck_graph",
]
