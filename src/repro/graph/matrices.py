"""Extraction of per-label boolean adjacency structure from a graph.

The boolean-decomposed form of the paper's algorithm needs, for every
terminal ``x``, the boolean adjacency matrix ``M_x`` with
``M_x[i, j] = 1`` iff ``(i, x, j) ∈ E``.  This module produces those
matrices in any registered backend, plus plain COO pair sets for the
pure-python code paths.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..matrices.base import BooleanMatrix, get_backend
from .labeled_graph import LabeledGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..matrices.base import MatrixBackend


def label_pair_sets(graph: LabeledGraph) -> dict[str, frozenset[tuple[int, int]]]:
    """label -> frozenset of (source_id, target_id) pairs."""
    return {label: graph.edge_pairs(label) for label in graph.labels}


def adjacency_matrices(graph: LabeledGraph,
                       backend: "str | MatrixBackend" = "sparse",
                       ) -> dict[str, BooleanMatrix]:
    """Build one boolean adjacency matrix per label in *backend*.

    The matrices are ``|V| × |V|``; labels with no edges are omitted.
    """
    backend_obj = get_backend(backend)
    n = graph.node_count
    result: dict[str, BooleanMatrix] = {}
    for label in graph.labels:
        pairs = graph.edge_pairs(label)
        if pairs:
            result[label] = backend_obj.from_pairs(n, pairs)
    return result


def boolean_adjacency(graph: LabeledGraph,
                      backend: "str | MatrixBackend" = "sparse") -> BooleanMatrix:
    """The label-agnostic adjacency matrix (any-edge reachability)."""
    backend_obj = get_backend(backend)
    pairs = {
        (source_id, target_id)
        for source_id, _label, target_id in graph.edges_by_id()
    }
    return backend_obj.from_pairs(graph.node_count, pairs)
