"""Graph generators for tests, examples and benchmarks.

Includes the paper-specific constructions:

* :func:`paper_example_graph` — the 3-node graph of Figure 5 used in the
  §4.3 worked example.
* :func:`repeat_graph` — the paper's g1/g2/g3 construction ("simply
  repeating the existing graphs", Section 6): *k* disjoint copies, with
  an optional connected variant for experimentation.
* :func:`two_cycles` — the classic CFPQ worst case (two cycles of
  coprime lengths sharing a node, queried with a Dyck grammar).

All random generators take an explicit ``seed`` and are deterministic.
"""

from __future__ import annotations

import random
from typing import Hashable, Sequence

from .labeled_graph import LabeledGraph


def paper_example_graph() -> LabeledGraph:
    """The input graph of the paper's Figure 5.

    The exact edge set follows from the initial matrix T0 of Figure 6::

        T0 = [ {S1} {S3}  ∅
               ∅    ∅    {S3}
               {S2} ∅    {S4} ]

    with S1→subClassOf_r, S2→subClassOf, S3→type_r, S4→type, i.e. a
    ``subClassOf_r`` self-loop at node 0, ``type_r`` edges 0→1 and 1→2,
    ``subClassOf`` 2→0 and a ``type`` self-loop at node 2.
    """
    graph = LabeledGraph()
    for node in (0, 1, 2):
        graph.add_node(node)
    graph.add_edge(0, "subClassOf_r", 0)
    graph.add_edge(0, "type_r", 1)
    graph.add_edge(1, "type_r", 2)
    graph.add_edge(2, "subClassOf", 0)
    graph.add_edge(2, "type", 2)
    return graph


def chain(length: int, label: str = "a") -> LabeledGraph:
    """A directed chain ``0 -label-> 1 -label-> ... -> length`` —
    Valiant's linear-input special case (length edges, length+1 nodes)."""
    if length < 0:
        raise ValueError("chain length must be non-negative")
    graph = LabeledGraph()
    graph.add_node(0)
    for i in range(length):
        graph.add_edge(i, label, i + 1)
    return graph


def word_chain(word: Sequence[str]) -> LabeledGraph:
    """A chain spelling *word* — reduces string parsing to CFPQ, the
    bridge back to Valiant's setting used heavily in tests."""
    graph = LabeledGraph()
    graph.add_node(0)
    for i, label in enumerate(word):
        graph.add_edge(i, label, i + 1)
    return graph


def cycle(length: int, label: str = "a") -> LabeledGraph:
    """A directed cycle of *length* nodes with a single label."""
    if length < 1:
        raise ValueError("cycle length must be positive")
    graph = LabeledGraph()
    for i in range(length):
        graph.add_edge(i, label, (i + 1) % length)
    return graph


def two_cycles(first_length: int, second_length: int,
               first_label: str = "a", second_label: str = "b") -> LabeledGraph:
    """Two directed cycles sharing node 0 — the standard CFPQ stress
    graph: with coprime lengths and a Dyck query the answer relation is
    dense, exercising the closure's worst case.

    The first cycle uses nodes ``0..first_length-1`` with *first_label*;
    the second uses ``0, first_length..first_length+second_length-2``
    with *second_label*.
    """
    if first_length < 1 or second_length < 1:
        raise ValueError("cycle lengths must be positive")
    graph = LabeledGraph()
    graph.add_node(0)
    # First cycle: 0 -> 1 -> ... -> first_length-1 -> 0
    for i in range(first_length - 1):
        graph.add_edge(i, first_label, i + 1)
    graph.add_edge(first_length - 1 if first_length > 1 else 0, first_label, 0)
    # Second cycle reuses node 0.
    nodes = [0] + [first_length + i for i in range(second_length - 1)]
    for i in range(len(nodes) - 1):
        graph.add_edge(nodes[i], second_label, nodes[i + 1])
    graph.add_edge(nodes[-1], second_label, 0)
    return graph


def binary_tree(depth: int, label: str = "subClassOf") -> LabeledGraph:
    """A complete binary tree with edges pointing from children to the
    root (the shape of a class hierarchy: ``child -subClassOf-> parent``)."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    graph = LabeledGraph()
    graph.add_node(0)
    next_id = 1
    frontier = [0]
    for _level in range(depth):
        new_frontier = []
        for parent in frontier:
            for _child in range(2):
                child = next_id
                next_id += 1
                graph.add_edge(child, label, parent)
                new_frontier.append(child)
        frontier = new_frontier
    return graph


def grid(rows: int, cols: int, right_label: str = "a",
         down_label: str = "b") -> LabeledGraph:
    """A rows×cols grid with rightward *right_label* edges and downward
    *down_label* edges; node (r, c) has id ``r * cols + c``."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    graph = LabeledGraph()
    for r in range(rows):
        for c in range(cols):
            graph.add_node(r * cols + c)
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                graph.add_edge(node, right_label, node + 1)
            if r + 1 < rows:
                graph.add_edge(node, down_label, node + cols)
    return graph


def random_graph(node_count: int, edge_count: int, labels: Sequence[str],
                 seed: int = 0) -> LabeledGraph:
    """A uniform random multigraph with exactly *node_count* nodes and at
    most *edge_count* distinct labeled edges (duplicates collapse)."""
    if node_count < 1:
        raise ValueError("node_count must be positive")
    if not labels:
        raise ValueError("labels must be non-empty")
    rng = random.Random(seed)
    graph = LabeledGraph()
    for node in range(node_count):
        graph.add_node(node)
    for _ in range(edge_count):
        source = rng.randrange(node_count)
        target = rng.randrange(node_count)
        label = rng.choice(list(labels))
        graph.add_edge(source, label, target)
    return graph


def repeat_graph(base: LabeledGraph, copies: int,
                 connect: bool = False,
                 bridge_label: str | None = None) -> LabeledGraph:
    """The paper's synthetic-graph construction for g1, g2, g3:
    "simply repeating the existing graphs".

    Produces *copies* disjoint copies of *base*; node ``n`` of copy ``k``
    becomes ``(k, n)``.  With ``connect=True`` consecutive copies are
    joined by one *bridge_label* edge from copy k's node 0 to copy k+1's
    node 0 (a documented variant — the paper's construction is the
    disjoint union).
    """
    if copies < 1:
        raise ValueError("copies must be positive")
    graph = LabeledGraph()
    base_nodes = base.nodes
    for k in range(copies):
        for node in base_nodes:
            graph.add_node((k, node))
        for source, label, target in base.edges():
            graph.add_edge((k, source), label, (k, target))
    if connect and copies > 1:
        if not base_nodes:
            raise ValueError("cannot connect copies of an empty graph")
        label = bridge_label or next(iter(sorted(base.labels)), "bridge")
        for k in range(copies - 1):
            graph.add_edge((k, base_nodes[0]), label, (k + 1, base_nodes[0]))
    return graph


def worst_case_dyck_graph(n: int) -> LabeledGraph:
    """Two cycles of lengths n and n+1 over labels a/b sharing a node —
    with the Dyck grammar ``S -> a S b | a b`` this forces Θ(n²) result
    pairs and deep derivations, the standard hardest small input."""
    return two_cycles(n, n + 1, "a", "b")
