"""Minimal RDF triple handling.

The paper's evaluation converts each RDF triple ``(o, p, s)`` into the
two graph edges ``(o, p, s)`` and ``(s, p⁻¹, o)`` (Section 6).  We
implement:

* an N-Triples-style line parser (``<subj> <pred> <obj> .``) that also
  accepts a simplified whitespace-separated ``subj pred obj`` form;
* :func:`triples_to_graph` performing the paper's conversion;
* :func:`graph_to_triples` for round-tripping generated datasets.

This is intentionally *not* a full RDF stack (no literals-with-datatypes
semantics, no Turtle prefixes beyond a convenience expansion): the
evaluation queries only touch ``subClassOf``/``type`` predicates, and a
full parser adds nothing to the reproduction.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, TextIO

from ..errors import GraphParseError
from .labeled_graph import LabeledGraph

#: A parsed RDF triple: (subject, predicate, object), all strings.
Triple = tuple[str, str, str]

_NTRIPLE_RE = re.compile(
    r"""^\s*
        (?:<(?P<s_iri>[^>]*)>|(?P<s_plain>\S+))\s+
        (?:<(?P<p_iri>[^>]*)>|(?P<p_plain>\S+))\s+
        (?:<(?P<o_iri>[^>]*)>|"(?P<o_lit>[^"]*)"(?:\^\^<[^>]*>|@\w[\w-]*)?|(?P<o_plain>\S+))\s*
        (?:\.\s*)?$""",
    re.VERBOSE,
)

#: Common RDF/RDFS/OWL IRIs reduced to the short predicate names the
#: paper's queries use.
WELL_KNOWN_PREDICATES = {
    "http://www.w3.org/2000/01/rdf-schema#subClassOf": "subClassOf",
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type": "type",
    "http://www.w3.org/2002/07/owl#onProperty": "onProperty",
    "http://www.w3.org/2000/01/rdf-schema#domain": "domain",
    "http://www.w3.org/2000/01/rdf-schema#range": "range",
}


def shorten_iri(iri: str) -> str:
    """Map an IRI to a short local name (well-known predicates get the
    paper's names; otherwise take the fragment / last path segment)."""
    if iri in WELL_KNOWN_PREDICATES:
        return WELL_KNOWN_PREDICATES[iri]
    if "#" in iri:
        fragment = iri.rsplit("#", 1)[1]
        if fragment:
            return fragment
    if "/" in iri:
        segment = iri.rstrip("/").rsplit("/", 1)[-1]
        if segment:
            return segment
    return iri


def parse_triple_line(line: str, line_number: int | None = None) -> Triple | None:
    """Parse one N-Triples-ish line; returns ``None`` for blank/comment
    lines, raises :class:`GraphParseError` on malformed input."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    match = _NTRIPLE_RE.match(stripped)
    if not match:
        raise GraphParseError("malformed triple", line_number, line)
    groups = match.groupdict()
    subject = groups["s_iri"] if groups["s_iri"] is not None else groups["s_plain"]
    predicate = groups["p_iri"] if groups["p_iri"] is not None else groups["p_plain"]
    if groups["o_iri"] is not None:
        obj = groups["o_iri"]
    elif groups["o_lit"] is not None:
        obj = groups["o_lit"]
    else:
        obj = groups["o_plain"]
    if not subject or not predicate or not obj:
        raise GraphParseError("triple has an empty component", line_number, line)
    return (subject, predicate, obj)


def parse_triples(text: str) -> list[Triple]:
    """Parse a whole N-Triples-ish document."""
    triples: list[Triple] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        triple = parse_triple_line(line, line_number)
        if triple is not None:
            triples.append(triple)
    return triples


def read_triples(stream: TextIO) -> Iterator[Triple]:
    """Stream triples from an open text file."""
    for line_number, line in enumerate(stream, start=1):
        triple = parse_triple_line(line, line_number)
        if triple is not None:
            yield triple


def triples_to_graph(triples: Iterable[Triple], add_inverses: bool = True,
                     shorten: bool = True) -> LabeledGraph:
    """The paper's conversion: each triple ``(o, p, s)`` yields the edge
    ``(o, p, s)`` and, with *add_inverses* (the paper always does),
    ``(s, p_r, o)``.

    With *shorten*, IRIs are reduced to local names so that grammar
    terminals like ``subClassOf`` match.
    """
    graph = LabeledGraph()
    for subject, predicate, obj in triples:
        if shorten:
            subject, predicate, obj = (
                shorten_iri(subject), shorten_iri(predicate), shorten_iri(obj),
            )
        graph.add_edge(subject, predicate, obj)
    if add_inverses:
        graph = graph.with_inverse_edges()
    return graph


def graph_to_triples(graph: LabeledGraph,
                     skip_inverse_labels: bool = True) -> list[Triple]:
    """Export a graph back to triples (dropping the generated ``_r``
    inverse edges by default so a round-trip is stable)."""
    from ..grammar.symbols import is_inverse_label

    triples: list[Triple] = []
    for source, label, target in graph.edges():
        if skip_inverse_labels and is_inverse_label(label):
            continue
        triples.append((str(source), label, str(target)))
    return triples


def load_rdf_graph(path: str, add_inverses: bool = True) -> LabeledGraph:
    """Read a triple file from *path* and convert per the paper's rule."""
    with open(path, "r", encoding="utf-8") as stream:
        return triples_to_graph(read_triples(stream), add_inverses=add_inverses)
