"""Graph serialization: a simple edge-list text format and CSV.

Edge-list format (one edge per line)::

    # comment
    0 subClassOf 1
    1 type 2

Values are treated as opaque strings; :func:`load_graph` optionally
coerces integer-looking node names to ``int`` so round-trips through the
generators' integer node ids are stable.
"""

from __future__ import annotations

import csv
import io as _io
from typing import Hashable, TextIO

from ..errors import GraphParseError
from .labeled_graph import LabeledGraph


def _coerce_node(token: str, integer_nodes: bool) -> Hashable:
    if integer_nodes:
        try:
            return int(token)
        except ValueError:
            return token
    return token


def dump_graph(graph: LabeledGraph, stream: TextIO) -> None:
    """Write *graph* in edge-list format."""
    for source, label, target in graph.edges():
        stream.write(f"{source} {label} {target}\n")


def dumps_graph(graph: LabeledGraph) -> str:
    """Edge-list text for *graph*."""
    buffer = _io.StringIO()
    dump_graph(graph, buffer)
    return buffer.getvalue()


def load_graph(stream: TextIO, integer_nodes: bool = True) -> LabeledGraph:
    """Read an edge-list graph from *stream*."""
    graph = LabeledGraph()
    for line_number, raw_line in enumerate(stream, start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 3:
            raise GraphParseError(
                "expected 'source label target'", line_number, raw_line
            )
        source, label, target = parts
        graph.add_edge(
            _coerce_node(source, integer_nodes),
            label,
            _coerce_node(target, integer_nodes),
        )
    return graph


def loads_graph(text: str, integer_nodes: bool = True) -> LabeledGraph:
    """Parse an edge-list graph from a string."""
    return load_graph(_io.StringIO(text), integer_nodes=integer_nodes)


def load_graph_file(path: str, integer_nodes: bool = True) -> LabeledGraph:
    """Read an edge-list graph from *path*."""
    with open(path, "r", encoding="utf-8") as stream:
        return load_graph(stream, integer_nodes=integer_nodes)


def save_graph_file(graph: LabeledGraph, path: str) -> None:
    """Write *graph* to *path* in edge-list format."""
    with open(path, "w", encoding="utf-8") as stream:
        dump_graph(graph, stream)


def load_csv_graph(stream: TextIO, source_column: str = "source",
                   label_column: str = "label",
                   target_column: str = "target",
                   integer_nodes: bool = True) -> LabeledGraph:
    """Read a graph from CSV with a header row."""
    reader = csv.DictReader(stream)
    graph = LabeledGraph()
    for row_number, row in enumerate(reader, start=2):
        try:
            source = row[source_column]
            label = row[label_column]
            target = row[target_column]
        except KeyError as missing:
            raise GraphParseError(
                f"CSV row missing column {missing}", row_number
            ) from None
        graph.add_edge(
            _coerce_node(source, integer_nodes),
            label,
            _coerce_node(target, integer_nodes),
        )
    return graph
