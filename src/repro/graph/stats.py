"""Descriptive statistics for graphs, used in benchmark reports.

The paper's tables report ``#triples`` per dataset; we additionally
report node counts, per-label edge counts and density, so the harness
output makes the workloads reproducible at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .labeled_graph import LabeledGraph


@dataclass(frozen=True)
class GraphStats:
    """Structural summary of a labeled graph."""

    node_count: int
    edge_count: int
    label_counts: dict[str, int] = field(default_factory=dict)

    @property
    def density(self) -> float:
        """Edges per node pair, ``|E| / |V|²`` (0 for the empty graph)."""
        if self.node_count == 0:
            return 0.0
        return self.edge_count / (self.node_count ** 2)

    @property
    def triple_count(self) -> int:
        """Number of 'forward' edges (labels without the ``_r`` suffix) —
        comparable to the paper's #triples column when the graph came
        from the RDF conversion."""
        from ..grammar.symbols import is_inverse_label

        return sum(
            count for label, count in self.label_counts.items()
            if not is_inverse_label(label)
        )

    def as_dict(self) -> dict:
        """Plain-dict form for JSON reports."""
        return {
            "node_count": self.node_count,
            "edge_count": self.edge_count,
            "triple_count": self.triple_count,
            "density": self.density,
            "label_counts": dict(sorted(self.label_counts.items())),
        }


def graph_stats(graph: LabeledGraph) -> GraphStats:
    """Compute :class:`GraphStats` for *graph*."""
    label_counts = {
        label: len(graph.edge_pairs(label)) for label in sorted(graph.labels)
    }
    return GraphStats(
        node_count=graph.node_count,
        edge_count=graph.edge_count,
        label_counts=label_counts,
    )
