"""A small regular-expression language over edge labels.

Regular path queries (RPQs) are the regular-language little sibling of
CFPQ (paper Related Works [2, 8, 16, 21]); the library supports them so
users can fall back to the cheaper formalism when context-free power is
not needed — and so the CFPQ-vs-RPQ expressiveness boundary is testable.

Syntax (labels are identifiers; whitespace ignored)::

    expr    := term ('|' term)*
    term    := factor+                 (concatenation)
    factor  := atom ('*' | '+' | '?')*
    atom    := label | '(' expr ')'

Example: ``subClassOf_r* subClassOf+`` or ``(a b)* | c``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import GrammarParseError


class RegexNode:
    """Base class of the regex AST."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Label(RegexNode):
    """A single edge label."""

    name: str


@dataclass(frozen=True, slots=True)
class Concat(RegexNode):
    """Sequential composition."""

    left: RegexNode
    right: RegexNode


@dataclass(frozen=True, slots=True)
class Union(RegexNode):
    """Alternation."""

    left: RegexNode
    right: RegexNode


@dataclass(frozen=True, slots=True)
class Star(RegexNode):
    """Kleene star (zero or more)."""

    inner: RegexNode


@dataclass(frozen=True, slots=True)
class Plus(RegexNode):
    """One or more."""

    inner: RegexNode


@dataclass(frozen=True, slots=True)
class Optional_(RegexNode):
    """Zero or one."""

    inner: RegexNode


_TOKEN_RE = re.compile(r"\s*(?:(?P<label>[A-Za-z_][A-Za-z0-9_]*)"
                       r"|(?P<op>[()|*+?]))")


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if not match or match.end() == position:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise GrammarParseError(
                f"unexpected character in regex at {remainder[:10]!r}"
            )
        tokens.append(match.group("label") or match.group("op"))
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser for the grammar in the module docstring."""

    def __init__(self, tokens: list[str]):
        self.tokens = tokens
        self.position = 0

    def peek(self) -> str | None:
        return self.tokens[self.position] if self.position < len(self.tokens) else None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise GrammarParseError("unexpected end of regex")
        self.position += 1
        return token

    def parse(self) -> RegexNode:
        node = self.expr()
        if self.peek() is not None:
            raise GrammarParseError(f"trailing regex input at {self.peek()!r}")
        return node

    def expr(self) -> RegexNode:
        node = self.term()
        while self.peek() == "|":
            self.take()
            node = Union(node, self.term())
        return node

    def term(self) -> RegexNode:
        node = self.factor()
        while self.peek() is not None and self.peek() not in ("|", ")"):
            node = Concat(node, self.factor())
        return node

    def factor(self) -> RegexNode:
        node = self.atom()
        while self.peek() in ("*", "+", "?"):
            operator = self.take()
            if operator == "*":
                node = Star(node)
            elif operator == "+":
                node = Plus(node)
            else:
                node = Optional_(node)
        return node

    def atom(self) -> RegexNode:
        token = self.take()
        if token == "(":
            node = self.expr()
            if self.take() != ")":
                raise GrammarParseError("unbalanced parenthesis in regex")
            return node
        if token in ("|", ")", "*", "+", "?"):
            raise GrammarParseError(f"unexpected {token!r} in regex")
        return Label(token)


def parse_regex(text: str) -> RegexNode:
    """Parse *text* into a regex AST.

    Raises :class:`~repro.errors.GrammarParseError` on malformed input.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise GrammarParseError("empty regular expression")
    return _Parser(tokens).parse()


def regex_labels(node: RegexNode) -> frozenset[str]:
    """All edge labels mentioned by the expression."""
    if isinstance(node, Label):
        return frozenset({node.name})
    if isinstance(node, (Concat, Union)):
        return regex_labels(node.left) | regex_labels(node.right)
    if isinstance(node, (Star, Plus, Optional_)):
        return regex_labels(node.inner)
    raise TypeError(f"unknown regex node {node!r}")
