"""Regular path query evaluation by automaton-graph product.

The regular analogue of the paper's reduction: for an NFA
``A = (Q, Σ, δ, q0, F)`` and graph ``D = (V, E)``, node pair ``(m, n)``
satisfies the RPQ iff an accepting automaton run can be driven by some
path ``m π n``.  On matrices this is reachability in the product graph,

    M_x^prod = A_x ⊗ G_x   (Kronecker product per label x)

followed by a boolean transitive closure — the same kernel Algorithm 1
uses, which is why the module reuses :mod:`repro.matrices`.  (The
Kronecker formulation is also the bridge to the tensor-based CFPQ
algorithms that followed the paper.)
"""

from __future__ import annotations

from typing import Hashable

from ..graph.labeled_graph import LabeledGraph
from ..matrices.base import BooleanMatrix, MatrixBackend, get_backend
from .automaton import NFA, regex_to_nfa
from .regex import parse_regex


def product_adjacency(nfa: NFA, graph: LabeledGraph,
                      backend: MatrixBackend) -> BooleanMatrix:
    """The product-graph adjacency matrix.

    Product node ``(q, v)`` is encoded as ``q * |V| + v``; there is an
    edge ``(q, v) → (q', v')`` iff some label x has both the automaton
    transition ``q →x q'`` and the graph edge ``v →x v'`` — exactly the
    Kronecker product ``A_x ⊗ G_x`` summed over x.
    """
    node_count = graph.node_count
    pairs: set[tuple[int, int]] = set()
    for label in nfa.labels & graph.labels:
        graph_pairs = graph.edge_pairs(label)
        for (q, q_next) in nfa.transitions[label]:
            base_q = q * node_count
            base_next = q_next * node_count
            for (v, v_next) in graph_pairs:
                pairs.add((base_q + v, base_next + v_next))
    return backend.from_pairs(nfa.state_count * node_count, pairs)


def solve_rpq(graph: LabeledGraph, query: "str | NFA",
              backend: "str | MatrixBackend" = "sparse",
              ) -> frozenset[tuple[Hashable, Hashable]]:
    """Evaluate an RPQ; returns the satisfied (source, target) node
    pairs (as node objects).

    *query* is a regex string (see :mod:`repro.regular.regex`) or a
    prebuilt NFA.  ε (the empty path) contributes the reflexive pairs
    when the expression is nullable, matching the RPQ literature.
    """
    nfa = regex_to_nfa(parse_regex(query)) if isinstance(query, str) else query
    backend_obj = get_backend(backend)
    node_count = graph.node_count
    if node_count == 0:
        return frozenset()

    adjacency = product_adjacency(nfa, graph, backend_obj)
    # Reachability from all (start, v): closure then filter rows.
    from ..core.transitive_closure import boolean_closure_naive

    closed = boolean_closure_naive(adjacency)

    answers: set[tuple[Hashable, Hashable]] = set()
    accept_bases = {q * node_count for q in nfa.accept_states}
    for source_id, target_id in closed.nonzero_pairs():
        source_state, source_node = divmod(source_id, node_count)
        target_state, target_node = divmod(target_id, node_count)
        if (source_state in nfa.start_states
                and target_state in nfa.accept_states):
            answers.add((graph.node_at(source_node), graph.node_at(target_node)))
    if nfa.accepts_empty():
        for node in graph.nodes:
            answers.add((node, node))
    return frozenset(answers)


def rpq_pairs_by_id(graph: LabeledGraph, query: "str | NFA",
                    backend: "str | MatrixBackend" = "sparse",
                    ) -> frozenset[tuple[int, int]]:
    """Like :func:`solve_rpq` but with dense node ids (test-friendly)."""
    return frozenset(
        (graph.node_id(source), graph.node_id(target))
        for source, target in solve_rpq(graph, query, backend=backend)
    )
