"""Regular path query evaluation by automaton-graph product.

The regular analogue of the paper's reduction: for an NFA
``A = (Q, Σ, δ, q0, F)`` and graph ``D = (V, E)``, node pair ``(m, n)``
satisfies the RPQ iff an accepting automaton run can be driven by some
path ``m π n``.  On matrices this is reachability in the product graph,

    M_x^prod = A_x ⊗ G_x   (Kronecker product per label x)

followed by a boolean transitive closure — the same kernel Algorithm 1
uses, which is why the module reuses :mod:`repro.matrices`.  (The
Kronecker formulation is also the bridge to the tensor-based CFPQ
algorithms that followed the paper.)
"""

from __future__ import annotations

from typing import Hashable, Iterable

from ..core.closure import run_closure
from ..core.matrix_cfpq import DEFAULT_STRATEGY
from ..grammar.symbols import Nonterminal
from ..graph.labeled_graph import LabeledGraph
from ..matrices.base import BooleanMatrix, MatrixBackend, get_backend
from .automaton import NFA, regex_to_nfa
from .regex import parse_regex

#: The one-nonterminal grammar an RPQ compiles to: transitive closure
#: is the single pair rule ``R → R R`` over the product adjacency.
_REACH = Nonterminal("__rpq_reach__")


def product_adjacency(nfa: NFA, graph: LabeledGraph,
                      backend: MatrixBackend) -> BooleanMatrix:
    """The product-graph adjacency matrix.

    Product node ``(q, v)`` is encoded as ``q * |V| + v``; there is an
    edge ``(q, v) → (q', v')`` iff some label x has both the automaton
    transition ``q →x q'`` and the graph edge ``v →x v'`` — exactly the
    Kronecker product ``A_x ⊗ G_x`` summed over x.
    """
    node_count = graph.node_count
    pairs: set[tuple[int, int]] = set()
    for label in nfa.labels & graph.labels:
        graph_pairs = graph.edge_pairs(label)
        for (q, q_next) in nfa.transitions[label]:
            base_q = q * node_count
            base_next = q_next * node_count
            for (v, v_next) in graph_pairs:
                pairs.add((base_q + v, base_next + v_next))
    return backend.from_pairs(nfa.state_count * node_count, pairs)


def _product_closure(adjacency: BooleanMatrix, backend: MatrixBackend,
                     strategy: str) -> BooleanMatrix:
    """Transitive closure ``A⁺`` of the product adjacency, computed by
    the CFPQ closure engine: an RPQ is the one-nonterminal grammar
    ``R → R R`` whose sole matrix starts as the adjacency — so every
    closure strategy (naive/delta/blocked/autotune) applies unchanged.
    """
    matrices = {_REACH: backend.clone(adjacency)}
    result = run_closure(matrices, [(_REACH, _REACH, _REACH)], backend,
                         strategy=strategy)
    return result.matrices[_REACH]


def _demux_rpq(closed: BooleanMatrix, nfa: NFA, graph: LabeledGraph,
               backend: MatrixBackend, offset: int = 0,
               ) -> frozenset[tuple[Hashable, Hashable]]:
    """Read one query's (source, target) pairs out of a closed product
    matrix whose block starts at row *offset*: keep only the start-state
    rows (a :meth:`~repro.matrices.base.MatrixBackend.mask_rows` kernel
    apply, not a Python filter over the full closure), then accept-state
    columns."""
    node_count = graph.node_count
    start_rows = [offset + q * node_count + v
                  for q in nfa.start_states for v in range(node_count)]
    masked = backend.mask_rows(closed, start_rows)
    span = nfa.state_count * node_count
    answers: set[tuple[Hashable, Hashable]] = set()
    for source_id, target_id in masked.nonzero_pairs():
        if not offset <= target_id < offset + span:
            continue
        _state, source_node = divmod(source_id - offset, node_count)
        target_state, target_node = divmod(target_id - offset, node_count)
        if target_state in nfa.accept_states:
            answers.add((graph.node_at(source_node),
                         graph.node_at(target_node)))
    if nfa.accepts_empty():
        for node in graph.nodes:
            answers.add((node, node))
    return frozenset(answers)


def solve_rpq(graph: LabeledGraph, query: "str | NFA",
              backend: "str | MatrixBackend" = "sparse",
              strategy: str = DEFAULT_STRATEGY,
              ) -> frozenset[tuple[Hashable, Hashable]]:
    """Evaluate an RPQ; returns the satisfied (source, target) node
    pairs (as node objects).

    *query* is a regex string (see :mod:`repro.regular.regex`) or a
    prebuilt NFA.  ε (the empty path) contributes the reflexive pairs
    when the expression is nullable, matching the RPQ literature.
    Evaluation runs through the CFPQ closure engine (see
    :func:`_product_closure`), so *strategy* picks any registered
    closure strategy; :func:`solve_rpq_reference` keeps the original
    self-contained squaring loop as the differential oracle.
    """
    nfa = regex_to_nfa(parse_regex(query)) if isinstance(query, str) else query
    backend_obj = get_backend(backend)
    if graph.node_count == 0:
        return frozenset()
    adjacency = product_adjacency(nfa, graph, backend_obj)
    closed = _product_closure(adjacency, backend_obj, strategy)
    return _demux_rpq(closed, nfa, graph, backend_obj)


def solve_rpq_batch(graph: LabeledGraph,
                    queries: Iterable["str | NFA"],
                    backend: "str | MatrixBackend" = "sparse",
                    strategy: str = DEFAULT_STRATEGY,
                    ) -> list[frozenset[tuple[Hashable, Hashable]]]:
    """Evaluate many RPQs with **one** closure: each query's product
    graph becomes one block of a block-diagonal adjacency (blocks never
    interact — there are no cross-block edges), the closure runs once
    over the stacked matrix, and per-query answers demultiplex from
    each block's start-state rows."""
    nfas = [regex_to_nfa(parse_regex(query)) if isinstance(query, str)
            else query for query in queries]
    backend_obj = get_backend(backend)
    node_count = graph.node_count
    if not nfas:
        return []
    if node_count == 0:
        return [frozenset() for _ in nfas]
    offsets: list[int] = []
    total = 0
    for nfa in nfas:
        offsets.append(total)
        total += nfa.state_count * node_count
    pairs: set[tuple[int, int]] = set()
    for nfa, offset in zip(nfas, offsets):
        block = product_adjacency(nfa, graph, backend_obj)
        pairs.update((offset + i, offset + j)
                     for i, j in block.nonzero_pairs())
    closed = _product_closure(backend_obj.from_pairs(total, pairs),
                              backend_obj, strategy)
    return [_demux_rpq(closed, nfa, graph, backend_obj, offset=offset)
            for nfa, offset in zip(nfas, offsets)]


def solve_rpq_reference(graph: LabeledGraph, query: "str | NFA",
                        backend: "str | MatrixBackend" = "sparse",
                        ) -> frozenset[tuple[Hashable, Hashable]]:
    """The original self-contained evaluation loop (squaring closure +
    Python row filter), kept verbatim as the differential oracle for
    the engine-routed :func:`solve_rpq`."""
    nfa = regex_to_nfa(parse_regex(query)) if isinstance(query, str) else query
    backend_obj = get_backend(backend)
    node_count = graph.node_count
    if node_count == 0:
        return frozenset()

    adjacency = product_adjacency(nfa, graph, backend_obj)
    # Reachability from all (start, v): closure then filter rows.
    from ..core.transitive_closure import boolean_closure_naive

    closed = boolean_closure_naive(adjacency)

    answers: set[tuple[Hashable, Hashable]] = set()
    for source_id, target_id in closed.nonzero_pairs():
        source_state, source_node = divmod(source_id, node_count)
        target_state, target_node = divmod(target_id, node_count)
        if (source_state in nfa.start_states
                and target_state in nfa.accept_states):
            answers.add((graph.node_at(source_node), graph.node_at(target_node)))
    if nfa.accepts_empty():
        for node in graph.nodes:
            answers.add((node, node))
    return frozenset(answers)


def rpq_pairs_by_id(graph: LabeledGraph, query: "str | NFA",
                    backend: "str | MatrixBackend" = "sparse",
                    ) -> frozenset[tuple[int, int]]:
    """Like :func:`solve_rpq` but with dense node ids (test-friendly)."""
    return frozenset(
        (graph.node_id(source), graph.node_id(target))
        for source, target in solve_rpq(graph, query, backend=backend)
    )
