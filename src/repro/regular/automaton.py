"""Thompson construction: regex AST → ε-NFA → ε-free NFA.

The RPQ solver works on the ε-free form (transition relation per label
plus start/accept state sets), which maps directly onto the boolean
matrix machinery: one |Q|×|Q| boolean matrix per label.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from .regex import Concat, Label, Optional_, Plus, RegexNode, Star, Union


@dataclass
class NFA:
    """An ε-free NFA over edge labels.

    States are ``0 .. state_count-1``; ``transitions[label]`` is a set
    of (source, target) state pairs.
    """

    state_count: int
    start_states: frozenset[int]
    accept_states: frozenset[int]
    transitions: dict[str, frozenset[tuple[int, int]]] = field(default_factory=dict)

    @property
    def labels(self) -> frozenset[str]:
        """All labels with at least one transition."""
        return frozenset(label for label, pairs in self.transitions.items() if pairs)

    def accepts_empty(self) -> bool:
        """True when some start state is accepting (ε ∈ L)."""
        return bool(self.start_states & self.accept_states)

    def accepts(self, word: list[str] | tuple[str, ...]) -> bool:
        """Direct NFA simulation (the oracle used in tests)."""
        current = set(self.start_states)
        for symbol in word:
            pairs = self.transitions.get(symbol, frozenset())
            current = {t for (s, t) in pairs if s in current}
            if not current:
                return False
        return bool(current & self.accept_states)


class _Builder:
    """Thompson construction with ε-transitions, eliminated at the end."""

    def __init__(self) -> None:
        self.count = 0
        self.epsilon: set[tuple[int, int]] = set()
        self.labeled: dict[str, set[tuple[int, int]]] = defaultdict(set)

    def fresh(self) -> int:
        state = self.count
        self.count += 1
        return state

    def build(self, node: RegexNode) -> tuple[int, int]:
        """Return (entry, exit) states of the fragment for *node*."""
        if isinstance(node, Label):
            entry, exit_ = self.fresh(), self.fresh()
            self.labeled[node.name].add((entry, exit_))
            return entry, exit_
        if isinstance(node, Concat):
            left_in, left_out = self.build(node.left)
            right_in, right_out = self.build(node.right)
            self.epsilon.add((left_out, right_in))
            return left_in, right_out
        if isinstance(node, Union):
            entry, exit_ = self.fresh(), self.fresh()
            for branch in (node.left, node.right):
                branch_in, branch_out = self.build(branch)
                self.epsilon.add((entry, branch_in))
                self.epsilon.add((branch_out, exit_))
            return entry, exit_
        if isinstance(node, Star):
            entry, exit_ = self.fresh(), self.fresh()
            inner_in, inner_out = self.build(node.inner)
            self.epsilon.update([
                (entry, exit_), (entry, inner_in),
                (inner_out, inner_in), (inner_out, exit_),
            ])
            return entry, exit_
        if isinstance(node, Plus):
            inner_in, inner_out = self.build(node.inner)
            self.epsilon.add((inner_out, inner_in))
            return inner_in, inner_out
        if isinstance(node, Optional_):
            entry, exit_ = self.fresh(), self.fresh()
            inner_in, inner_out = self.build(node.inner)
            self.epsilon.update([
                (entry, exit_), (entry, inner_in), (inner_out, exit_),
            ])
            return entry, exit_
        raise TypeError(f"unknown regex node {node!r}")


def regex_to_nfa(node: RegexNode) -> NFA:
    """Compile a regex AST into an ε-free NFA."""
    builder = _Builder()
    start, accept = builder.build(node)

    # ε-closure per state.
    closure: dict[int, set[int]] = {
        state: {state} for state in range(builder.count)
    }
    changed = True
    while changed:
        changed = False
        for source, target in builder.epsilon:
            extension = closure[target] - closure[source]
            if extension:
                closure[source] |= extension
                changed = True

    # ε-elimination: label transition (s, t) becomes (s', closure(t))
    # for every s' whose closure contains s... standard construction:
    # new transitions = {(s, t') | (q, t) labeled, q ∈ closure(s), t' = t};
    # then accepting = states whose closure meets {accept}.
    transitions: dict[str, set[tuple[int, int]]] = defaultdict(set)
    for label, pairs in builder.labeled.items():
        labeled_by_source: dict[int, set[int]] = defaultdict(set)
        for source, target in pairs:
            labeled_by_source[source].add(target)
        for state in range(builder.count):
            for mid in closure[state]:
                for target in labeled_by_source.get(mid, ()):
                    transitions[label].add((state, target))

    accepting = frozenset(
        state for state in range(builder.count) if accept in closure[state]
    )
    return NFA(
        state_count=builder.count,
        start_states=frozenset({start}),
        accept_states=accepting,
        transitions={label: frozenset(pairs)
                     for label, pairs in transitions.items()},
    )
