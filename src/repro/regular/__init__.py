"""Regular path queries: the regular-language sibling of CFPQ."""

from .automaton import NFA, regex_to_nfa
from .regex import (
    Concat,
    Label,
    Optional_,
    Plus,
    RegexNode,
    Star,
    Union,
    parse_regex,
    regex_labels,
)
from .rpq import product_adjacency, rpq_pairs_by_id, solve_rpq

__all__ = [
    "Concat",
    "Label",
    "NFA",
    "Optional_",
    "Plus",
    "RegexNode",
    "Star",
    "Union",
    "parse_regex",
    "product_adjacency",
    "regex_labels",
    "regex_to_nfa",
    "rpq_pairs_by_id",
    "solve_rpq",
]
