"""repro — Context-Free Path Querying by Matrix Multiplication.

A complete reproduction of Azimov & Grigorev (2018): context-free path
query evaluation under the relational and single-path semantics reduced
to a matrix transitive closure, with five interchangeable boolean
matrix backends (dense / sparse / pyset / bitset / setmatrix), a
strategy-pluggable closure engine (semi-naive ``delta`` by default,
``naive`` as the oracle, ``blocked`` for bounded working sets), the
worklist and GLL-style baselines, the paper's evaluation datasets and
the benchmark harness for Tables 1 and 2.

Quickstart::

    from repro import CFPQEngine, parse_grammar
    from repro.graph import two_cycles

    grammar = parse_grammar("S -> a S b | a b", terminals=["a", "b"])
    engine = CFPQEngine(two_cycles(2, 3), grammar)
    print(engine.relational("S"))
    print(engine.single_path("S", 0, 0))
"""

from .core.batch import BatchQuery, solve_batch
from .core.closure import available_strategies, run_closure
from .core.engine import CFPQEngine, cfpq
from .core.incremental import IncrementalCFPQ, IncrementalSinglePathCFPQ
from .core.path_index import AllPathIndex, PathIndex
from .core.matrix_cfpq import solve_matrix, solve_matrix_relations
from .core.naive_closure import solve_naive
from .core.relations import ContextFreeRelations
from .core.semiring import (
    LENGTH_SEMIRING,
    WITNESS_SEMIRING,
    AnnotatedBackend,
    AnnotatedMatrix,
    Semiring,
    solve_annotated,
)
from .core.single_path import build_single_path_index, extract_path
from .errors import ReproError
from .grammar import CFG, Nonterminal, Production, Terminal, parse_grammar, to_cnf
from .graph import LabeledGraph, load_graph_file, load_rdf_graph, triples_to_graph
from .obs import (
    MetricsRegistry,
    Tracer,
    configure_tracing,
    get_registry,
    get_tracer,
    render_prometheus,
    summarize_trace,
)
from .regular import solve_rpq
from .service import QueryService, load_engine_snapshot, save_engine_snapshot

__version__ = "1.1.0"

__all__ = [
    "AllPathIndex",
    "AnnotatedBackend",
    "AnnotatedMatrix",
    "BatchQuery",
    "CFG",
    "CFPQEngine",
    "ContextFreeRelations",
    "IncrementalCFPQ",
    "IncrementalSinglePathCFPQ",
    "LENGTH_SEMIRING",
    "LabeledGraph",
    "MetricsRegistry",
    "Nonterminal",
    "PathIndex",
    "Production",
    "QueryService",
    "ReproError",
    "Semiring",
    "Terminal",
    "Tracer",
    "WITNESS_SEMIRING",
    "__version__",
    "available_strategies",
    "build_single_path_index",
    "cfpq",
    "configure_tracing",
    "get_registry",
    "get_tracer",
    "render_prometheus",
    "run_closure",
    "extract_path",
    "solve_annotated",
    "summarize_trace",
    "load_engine_snapshot",
    "load_graph_file",
    "load_rdf_graph",
    "save_engine_snapshot",
    "parse_grammar",
    "solve_batch",
    "solve_matrix",
    "solve_matrix_relations",
    "solve_naive",
    "solve_rpq",
    "to_cnf",
    "triples_to_graph",
]
