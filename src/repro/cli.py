"""Command-line interface: ``repro-cfpq``.

Examples::

    # Relational semantics with a named grammar over an edge-list graph
    repro-cfpq query --graph graph.txt --grammar-name dyck1 --start S

    # A grammar file, sparse backend, JSON output
    repro-cfpq query --graph g.txt --grammar my.cfg --backend sparse --json

    # One witness path (single-path semantics, Section 5)
    repro-cfpq path --graph graph.txt --grammar-name dyck1 --start S \
        --source 0 --target 3

    # The 5 best witness paths, most probable first (lazy k-best)
    repro-cfpq paths --graph graph.txt --grammar-name dyck1 --start S \
        --source 0 --target 3 --top-k 5 --semiring viterbi

    # Batch-incremental maintenance: insert and delete edge files
    repro-cfpq update --graph graph.txt --grammar-name dyck1 --start S \
        --insert new_edges.txt --delete dead_edges.txt --stats

    # Persist a solved index, then serve queries from the warm snapshot
    repro-cfpq snapshot --graph graph.txt --grammar-name dyck1 \
        --output index.snapshot
    repro-cfpq serve --snapshot index.snapshot --port 7411 --stats

    # Reproduce the paper's tables
    repro-cfpq tables table1 --max-triples 700
"""

from __future__ import annotations

import argparse
import json
import sys

from .core.closure import available_strategies
from .core.engine import CFPQEngine
from .core.matrix_cfpq import DEFAULT_STRATEGY
from .core.tiles import available_schedulers
from .core.tilestore import parse_memory_budget
from .errors import ReproError
from .grammar.builders import GRAMMAR_REGISTRY, get_grammar
from .grammar.parser import parse_grammar
from .graph.io import load_graph_file
from .graph.rdf import load_rdf_graph
from .matrices.base import available_backends, default_backend


def _load_grammar(args: argparse.Namespace):
    if args.grammar_name:
        return get_grammar(args.grammar_name)
    if args.grammar:
        with open(args.grammar, "r", encoding="utf-8") as stream:
            return parse_grammar(stream.read())
    raise SystemExit("one of --grammar or --grammar-name is required")


def _load_graph(args: argparse.Namespace):
    if args.rdf:
        return load_rdf_graph(args.graph)
    return load_graph_file(args.graph)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--graph", required=True, help="edge-list graph file")
    parser.add_argument("--rdf", action="store_true",
                        help="treat the graph file as RDF triples "
                             "(adds inverse edges, per the paper)")
    parser.add_argument("--grammar", help="grammar file in the text DSL")
    parser.add_argument("--grammar-name",
                        choices=sorted(GRAMMAR_REGISTRY),
                        help="built-in grammar")
    parser.add_argument("--start", default="S", help="start non-terminal")
    parser.add_argument("--backend", default=default_backend(),
                        choices=available_backends())
    parser.add_argument("--strategy", default=DEFAULT_STRATEGY,
                        choices=available_strategies(),
                        help="closure strategy (delta = semi-naive, "
                             "naive = full re-multiplication, "
                             "blocked = frontier-aware tiled products, "
                             "autotune = pick per round)")
    parser.add_argument("--scheduler", default=None,
                        choices=available_schedulers(),
                        help="tile scheduler for the blocked strategy "
                             "(default: $REPRO_SCHEDULER or serial)")
    parser.add_argument("--tile-size", type=int, default=None,
                        help="tile edge for the blocked strategy "
                             "(default 64)")
    parser.add_argument("--memory-budget", default=None,
                        help="resident tile byte budget for the blocked/"
                             "autotune strategies, e.g. 65536, '64K', '8M' "
                             "(default: $REPRO_MEMORY_BUDGET or unbounded; "
                             "'0'/'none' disables)")
    parser.add_argument("--spill-dir", default=None,
                        help="directory for spilled tiles (default: "
                             "$REPRO_SPILL_DIR or a private temporary "
                             "directory; cleaned up on success, kept on "
                             "a crash)")
    _add_tracing(parser)


def _add_tracing(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-file", default=None, metavar="FILE",
                        help="append structured spans (closure rounds, "
                             "tile groups, WAL appends, requests) to "
                             "this JSONL file; inspect with "
                             "'repro-cfpq trace summarize FILE' "
                             "(default: $REPRO_TRACE_FILE or off)")
    parser.add_argument("--trace-sample", type=int, default=None,
                        metavar="N",
                        help="keep every Nth trace root, dropping the "
                             "whole subtree of sampled-out roots "
                             "(default: $REPRO_TRACE_SAMPLE or 1)")


def _configure_observability(args: argparse.Namespace) -> None:
    """Apply the tracing flags before the handler does any real work.

    The slow-query log needs live spans even without a trace file, so
    ``--slow-query-ms`` alone turns the tracer on without a sink."""
    trace_file = getattr(args, "trace_file", None)
    sample = getattr(args, "trace_sample", None)
    slow_ms = getattr(args, "slow_query_ms", None)
    if trace_file:
        from .obs.trace import configure_tracing
        configure_tracing(trace_file=trace_file, sample_every=sample or 1)
    elif slow_ms is not None:
        from .obs.trace import configure_tracing
        configure_tracing(sample_every=sample or 1, enabled=True)
    if slow_ms is not None:
        from .service.server import set_slow_query_log
        set_slow_query_log(slow_ms, getattr(args, "slow_query_log", None))


def _strategy_options(args: argparse.Namespace) -> dict:
    """The closure options implied by the CLI flags."""
    options = {}
    if getattr(args, "scheduler", None) is not None:
        options["scheduler"] = args.scheduler
    if getattr(args, "tile_size", None) is not None:
        options["tile_size"] = args.tile_size
    if getattr(args, "memory_budget", None) is not None:
        # Parse eagerly so a malformed value fails at the CLI boundary.
        options["memory_budget"] = parse_memory_budget(args.memory_budget)
    if getattr(args, "spill_dir", None) is not None:
        options["spill_dir"] = args.spill_dir
    return options


def _stats_payload(engine: CFPQEngine) -> dict:
    """The solver stats of the engine's default (backend, strategy) run,
    as plain JSON (used by ``query --stats``)."""
    stats = engine.solve().stats
    payload = {
        "backend": stats.backend,
        "strategy": stats.strategy,
        "iterations": stats.iterations,
        "multiplications": stats.multiplications,
        "total_entries": stats.total_entries,
        "delta_nnz_per_round": list(stats.delta_nnz_per_round),
    }
    blocked = stats.details.get("blocked")
    if blocked is not None:
        payload["blocked"] = blocked.as_dict()
    autotune = stats.details.get("autotune")
    if autotune is not None:
        payload["autotune"] = autotune
    round_seconds = stats.details.get("round_seconds")
    if round_seconds is not None:
        payload["round_seconds"] = list(round_seconds)
    return payload


def cmd_query(args: argparse.Namespace) -> int:
    if args.batch:
        return _cmd_query_batch(args)
    if args.semiring:
        return _cmd_query_semiring(args)
    engine = CFPQEngine(_load_graph(args), _load_grammar(args),
                        backend=args.backend, strategy=args.strategy,
                        **_strategy_options(args))
    pairs = sorted(engine.relational(args.start), key=str)
    if args.json:
        document = {"start": args.start, "count": len(pairs),
                    "pairs": [[str(a), str(b)] for a, b in pairs]}
        if args.stats:
            document["stats"] = _stats_payload(engine)
        print(json.dumps(document))
    else:
        print(f"R_{args.start}: {len(pairs)} pairs")
        for source, target in pairs:
            print(f"  {source} -> {target}")
        if args.stats:
            print("stats:")
            print(json.dumps(_stats_payload(engine), indent=2))
    return 0


def _cmd_query_batch(args: argparse.Namespace) -> int:
    """Answer a JSONL file of query specs with **one** batched closure
    (:func:`repro.core.batch.solve_batch`) instead of one solve per
    line."""
    from .core.batch import solve_batch
    from .service.server import _coerce_node as _coerce_json_node

    graph = _load_graph(args)
    grammar = _load_grammar(args)
    specs = []
    with open(args.batch, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            spec = json.loads(line)
            if isinstance(spec, dict):
                spec = dict(spec)
                spec.setdefault("start", args.start)
                for key in ("source", "target"):
                    if spec.get(key) is not None:
                        spec[key] = _coerce_json_node(graph, spec[key])
                for key in ("sources", "targets"):
                    if spec.get(key) is not None:
                        spec[key] = [_coerce_json_node(graph, node)
                                     for node in spec[key]]
            specs.append(spec)
    answers = solve_batch(graph, grammar, specs, backend=args.backend,
                          strategy=args.strategy,
                          **_strategy_options(args))
    rendered = [
        sorted([str(a), str(b)] for a, b in answer)
        if isinstance(answer, frozenset) else answer
        for answer in answers
    ]
    if args.json:
        print(json.dumps({"count": len(rendered), "answers": rendered}))
    else:
        for spec, answer in zip(specs, rendered):
            print(f"{json.dumps(spec)} -> {json.dumps(answer)}")
    return 0


def _cmd_query_semiring(args: argparse.Namespace) -> int:
    """Weighted relational semantics: close the graph under the chosen
    semiring and report each reachable pair's annotation — shortest
    derivation length, best derivation probability, or (saturating)
    derivation count."""
    from .core.semiring import CountingSemiring, get_semiring, solve_annotated
    from .grammar.symbols import Nonterminal

    graph = _load_graph(args)
    semiring = get_semiring(args.semiring)
    result = solve_annotated(graph, _load_grammar(args), semiring,
                             strategy=args.strategy,
                             **_strategy_options(args))
    matrix = result.matrices.get(Nonterminal(args.start))
    if matrix is None:
        raise SystemExit(f"unknown start non-terminal {args.start!r}")
    counting = isinstance(semiring, CountingSemiring)
    rows = sorted(
        ([str(graph.node_at(i)), str(graph.node_at(j)),
          semiring.count(value) if counting else value]
         for i, j, value in matrix.nonzero_cells()),
        key=lambda row: (row[0], row[1]),
    )
    if args.json:
        print(json.dumps({"start": args.start, "semiring": semiring.name,
                          "count": len(rows), "pairs": rows}))
    else:
        print(f"R_{args.start} under {semiring.name}: {len(rows)} pairs")
        for source, target, value in rows:
            print(f"  {source} -> {target}: {value}")
    return 0


def _coerce_node(graph, token: str):
    """Interpret a CLI node token as an int node when the graph knows it
    as one, falling back to the raw string."""
    try:
        candidate = int(token)
    except ValueError:
        candidate = token
    return candidate if graph.has_node(candidate) else token


def cmd_path(args: argparse.Namespace) -> int:
    engine = CFPQEngine(_load_graph(args), _load_grammar(args),
                        backend=args.backend, strategy=args.strategy,
                        **_strategy_options(args))
    graph = engine.graph
    path = engine.single_path(args.start, _coerce_node(graph, args.source),
                              _coerce_node(graph, args.target))
    if args.json:
        print(json.dumps([[str(graph.node_at(i)), label, str(graph.node_at(j))]
                          for i, label, j in path]))
    else:
        print(f"path of length {len(path)}:")
        for i, label, j in path:
            print(f"  {graph.node_at(i)} -{label}-> {graph.node_at(j)}")
    return 0


def cmd_all_paths(args: argparse.Namespace) -> int:
    engine = CFPQEngine(_load_graph(args), _load_grammar(args),
                        backend=args.backend, strategy=args.strategy,
                        **_strategy_options(args))
    graph = engine.graph
    if args.top_k is not None:
        return _cmd_top_k_paths(args, engine)
    max_length = args.max_length if args.max_length is not None else 8
    paths = sorted(engine.all_paths(args.start,
                                    _coerce_node(graph, args.source),
                                    _coerce_node(graph, args.target),
                                    max_length=max_length),
                   key=lambda path: (len(path), path))
    if args.json:
        print(json.dumps([
            [[str(graph.node_at(i)), label, str(graph.node_at(j))]
             for i, label, j in path]
            for path in paths
        ]))
    else:
        print(f"{len(paths)} paths of length <= {max_length}:")
        for path in paths:
            rendered = " ".join(
                f"{graph.node_at(i)} -{label}-> {graph.node_at(j)}"
                for i, label, j in path
            )
            print(f"  [{len(path)}] {rendered}")
    return 0


def _cmd_top_k_paths(args: argparse.Namespace, engine: CFPQEngine) -> int:
    """Lazy k-best enumeration over the witness forest: the --top-k
    best paths in rank order (shortest first, or most probable first
    with --semiring viterbi), without materializing the full path set —
    so no --max-length is required even on cyclic graphs."""
    from .core.path_index import LengthRank, ViterbiRank
    from .grammar.symbols import Nonterminal

    if args.top_k < 0:
        raise SystemExit("--top-k must be non-negative")
    graph = engine.graph
    engine.grammar.require_nonterminal(Nonterminal(args.start))
    forest = engine.all_path_enumerator().index
    rank = ViterbiRank() if args.semiring == "viterbi" else LengthRank()
    paths = forest.top_k(args.start, _coerce_node(graph, args.source),
                         _coerce_node(graph, args.target), args.top_k,
                         max_length=args.max_length, rank=rank)
    if args.json:
        print(json.dumps([
            [[str(graph.node_at(i)), label, str(graph.node_at(j))]
             for i, label, j in path]
            for path in paths
        ]))
    else:
        order = ("most probable" if args.semiring == "viterbi"
                 else "shortest")
        print(f"top {len(paths)} paths ({order} first):")
        for position, path in enumerate(paths, start=1):
            rendered = " ".join(
                f"{graph.node_at(i)} -{label}-> {graph.node_at(j)}"
                for i, label, j in path
            )
            print(f"  {position}. [{len(path)}] {rendered}")
    return 0


def cmd_update(args: argparse.Namespace) -> int:
    """Batch-incremental maintenance: apply insertion/deletion edge
    files to the loaded graph and report the updated relation."""
    from .core.incremental import IncrementalCFPQ
    from .grammar.symbols import Nonterminal

    if not args.insert and not args.delete:
        raise SystemExit("update requires --insert and/or --delete")
    solver = IncrementalCFPQ(_load_graph(args), _load_grammar(args),
                             backend=args.backend, strategy=args.strategy,
                             **_strategy_options(args))
    solver.grammar.require_nonterminal(Nonterminal(args.start))

    def update_edges(path: str):
        # With --rdf the base graph carried the paper's inverse-edge
        # conversion; the update files must be parsed and converted by
        # the same rule or the maintained relation silently diverges
        # from a fresh `query --rdf` on the merged triples.
        if args.rdf:
            return load_rdf_graph(path).edges()
        return load_graph_file(path).edges()

    added = removed = 0
    if args.insert:
        added = solver.add_edges(update_edges(args.insert))
    if args.delete:
        removed = solver.remove_edges(update_edges(args.delete))
    pairs = sorted(solver.relations().node_pairs(args.start), key=str)
    if args.json:
        document = {"start": args.start, "count": len(pairs),
                    "pairs": [[str(a), str(b)] for a, b in pairs],
                    "facts_added": added, "facts_removed": removed}
        if args.stats:
            document["stats"] = dict(solver.stats)
        print(json.dumps(document))
    else:
        print(f"update: +{added} / -{removed} facts")
        print(f"R_{args.start}: {len(pairs)} pairs")
        for source, target in pairs:
            print(f"  {source} -> {target}")
        if args.stats:
            print("stats:")
            print(json.dumps(dict(solver.stats), indent=2))
    return 0


def cmd_snapshot(args: argparse.Namespace) -> int:
    """Solve the requested semantics and persist the index to a
    versioned snapshot file (see ``serve --snapshot``)."""
    from .service.snapshot import save_engine_snapshot

    engine = CFPQEngine(_load_graph(args), _load_grammar(args),
                        backend=args.backend, strategy=args.strategy,
                        **_strategy_options(args))
    size = save_engine_snapshot(args.output, engine,
                                semantics=tuple(args.semantics))
    print(f"wrote {args.output}: {size} bytes "
          f"({', '.join(args.semantics)}; backend {engine.backend})")
    return 0


def _parse_replicas(spec: "str | None") -> list:
    """Parse ``host:port,host:port`` into ``[(host, port), ...]``."""
    if not spec:
        return []
    replicas = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        host, _, port = item.rpartition(":")
        if not host or not port.isdigit():
            raise SystemExit(f"bad replica address {item!r}; expected "
                             "HOST:PORT")
        replicas.append((host, int(port)))
    return replicas


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve JSONL queries/updates over stdio or TCP."""
    from .service.query_service import QueryService
    from .service.replica import open_role
    from .service.server import serve_stream, serve_tcp

    metrics_server = None
    if args.metrics_addr:
        from .obs.export import start_metrics_server
        metrics_server = start_metrics_server(args.metrics_addr)
        host, port = metrics_server.address
        print(f"metrics on http://{host}:{port}/metrics",
              file=sys.stderr)

    options = _strategy_options(args)
    service_kwargs = dict(
        backend=args.backend, strategy=args.strategy,
        cache_size=args.cache_size,
        single_path=True if args.single_path else None,
        semiring=args.semiring, **options,
    )
    if args.role == "follower":
        # A follower builds its state from the leader's snapshot + WAL;
        # open_role handles loading and catching up.
        if not args.snapshot:
            raise SystemExit("serve --role follower requires --snapshot "
                             "(the leader's snapshot anchors the replay)")
        service = None
    elif args.snapshot:
        service = QueryService.from_snapshot(args.snapshot,
                                             **service_kwargs)
    else:
        if not args.graph:
            raise SystemExit("serve requires --graph or --snapshot")
        service = QueryService(
            _load_graph(args), _load_grammar(args), backend=args.backend,
            strategy=args.strategy or DEFAULT_STRATEGY,
            cache_size=args.cache_size,
            single_path=args.single_path,
            semiring=args.semiring, **options,
        )
    if args.role != "single" and not args.wal:
        raise SystemExit(f"serve --role {args.role} requires --wal PATH")
    service = open_role(args.role, service, snapshot=args.snapshot,
                        wal=args.wal, fsync=args.wal_fsync,
                        **service_kwargs)
    replicas = _parse_replicas(args.replicas)
    if replicas and args.role != "leader":
        raise SystemExit("--replicas is a leader feature (the leader "
                         "fans reads out to its followers)")
    try:
        if args.port is not None:
            serve_tcp(service, host=args.host, port=args.port,
                      include_stats=args.stats, replicas=replicas,
                      batch_window_ms=args.batch_window_ms)
        else:
            serve_stream(service, sys.stdin, sys.stdout,
                         include_stats=args.stats)
    finally:
        if metrics_server is not None:
            metrics_server.close()
    return 0


def cmd_trace_summarize(args: argparse.Namespace) -> int:
    """Aggregate a JSONL trace file into per-phase wall-time totals."""
    from .obs.summarize import render_summary, summarize_trace

    summary = summarize_trace(args.file)
    if args.json:
        print(json.dumps(summary))
    else:
        print(render_summary(summary))
    return 0


def cmd_tables(args: argparse.Namespace) -> int:
    from .bench.tables import main as tables_main

    forwarded = [args.table]
    if args.max_triples is not None:
        forwarded += ["--max-triples", str(args.max_triples)]
    return tables_main(forwarded)


def cmd_rpq(args: argparse.Namespace) -> int:
    from .regular.rpq import solve_rpq

    pairs = sorted(solve_rpq(_load_graph(args), args.regex,
                             backend=args.backend), key=str)
    if args.json:
        print(json.dumps({"regex": args.regex, "count": len(pairs),
                          "pairs": [[str(a), str(b)] for a, b in pairs]}))
    else:
        print(f"RPQ {args.regex!r}: {len(pairs)} pairs")
        for source, target in pairs:
            print(f"  {source} -> {target}")
    return 0


def cmd_generate_dataset(args: argparse.Namespace) -> int:
    from .datasets.registry import build_graph, dataset_names
    from .graph.io import save_graph_file

    if args.list:
        for name in dataset_names():
            print(name)
        return 0
    graph = build_graph(args.name)
    save_graph_file(graph, args.output)
    print(f"wrote {graph.node_count} nodes / {graph.edge_count} edges "
          f"to {args.output}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from .graph.stats import graph_stats

    stats = graph_stats(_load_graph(args))
    print(json.dumps(stats.as_dict(), indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cfpq",
        description="Context-free path querying by matrix multiplication",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    query = subparsers.add_parser("query", help="relational semantics")
    _add_common(query)
    query.add_argument("--batch", metavar="FILE",
                       help="JSONL file of query specs (start/source(s)/"
                            "target(s)/semantics per line) answered by "
                            "one batched closure")
    query.add_argument("--semiring", default=None,
                       choices=["length", "viterbi", "counting"],
                       help="weighted relational semantics: annotate "
                            "each reachable pair with its shortest "
                            "derivation length, best derivation "
                            "probability, or saturating derivation "
                            "count (default: plain boolean pairs)")
    query.add_argument("--json", action="store_true")
    query.add_argument("--stats", action="store_true",
                       help="print solver stats (iterations, per-round "
                            "frontier sizes, per-tile/scheduler stats)")
    query.set_defaults(handler=cmd_query)

    path = subparsers.add_parser("path", help="single-path semantics")
    _add_common(path)
    path.add_argument("--source", required=True)
    path.add_argument("--target", required=True)
    path.add_argument("--json", action="store_true")
    path.set_defaults(handler=cmd_path)

    all_paths = subparsers.add_parser(
        "paths", help="bounded all-path semantics"
    )
    _add_common(all_paths)
    all_paths.add_argument("--source", required=True)
    all_paths.add_argument("--target", required=True)
    all_paths.add_argument("--max-length", type=int, default=None,
                           help="path length bound (default 8 for the "
                                "exhaustive listing; with --top-k the "
                                "lazy enumerator needs no bound, so the "
                                "default is none)")
    all_paths.add_argument("--top-k", type=int, default=None,
                           help="stream only the K best paths "
                                "(best-first over the witness forest; "
                                "rank order set by --semiring)")
    all_paths.add_argument("--semiring", default="length",
                           choices=["length", "viterbi"],
                           help="--top-k rank order: shortest first "
                                "(length) or most probable first "
                                "(viterbi)")
    all_paths.add_argument("--json", action="store_true")
    all_paths.set_defaults(handler=cmd_all_paths)

    update = subparsers.add_parser(
        "update",
        help="batch-incremental insert/delete maintenance",
        description="Load the graph, solve once, then apply the "
                    "--insert edge file through the batch frontier and "
                    "the --delete edge file through DRed "
                    "delete-and-rederive (insertions run first).",
    )
    _add_common(update)
    update.add_argument("--insert", metavar="FILE",
                        help="edge-list file of edges to insert")
    update.add_argument("--delete", metavar="FILE",
                        help="edge-list file of edges to delete "
                             "(applied after --insert)")
    update.add_argument("--json", action="store_true")
    update.add_argument("--stats", action="store_true",
                        help="print incremental-solver stats (facts "
                             "propagated/removed, support index size)")
    update.set_defaults(handler=cmd_update)

    snapshot = subparsers.add_parser(
        "snapshot",
        help="solve and persist the index to a snapshot file",
        description="Solve the graph under the grammar for the chosen "
                    "semantics and write a versioned snapshot that "
                    "`serve --snapshot` (and CFPQEngine.from_snapshot) "
                    "warm-start from with zero closure rounds.",
    )
    _add_common(snapshot)
    snapshot.add_argument("--output", default="index.snapshot",
                          help="snapshot file to write")
    snapshot.add_argument("--semantics", nargs="+",
                          choices=["relational", "single-path", "all-path"],
                          default=["relational"],
                          help="index sections to solve and persist "
                               "(default: relational only; annotated "
                               "sections cost their closures once here "
                               "instead of at every process start)")
    snapshot.set_defaults(handler=cmd_snapshot)

    serve = subparsers.add_parser(
        "serve",
        help="serve JSONL queries/updates (stdio or TCP)",
        description="Run a query service: one JSON request per input "
                    "line, one JSON response per output line (see "
                    "repro.service.server for the protocol).  Reads "
                    "stdin by default; --port starts a concurrent TCP "
                    "server instead.",
    )
    serve.add_argument("--snapshot",
                       help="warm-start from a snapshot file instead of "
                            "solving --graph")
    serve.add_argument("--graph", help="edge-list graph file (cold start)")
    serve.add_argument("--rdf", action="store_true",
                       help="treat the graph file as RDF triples")
    serve.add_argument("--grammar", help="grammar file in the text DSL")
    serve.add_argument("--grammar-name", choices=sorted(GRAMMAR_REGISTRY),
                       help="built-in grammar")
    serve.add_argument("--backend", default=None,
                       choices=available_backends(),
                       help="matrix backend (default: the snapshot's, "
                            "or the best installed)")
    serve.add_argument("--strategy", default=None,
                       choices=available_strategies())
    serve.add_argument("--scheduler", default=None,
                       choices=available_schedulers())
    serve.add_argument("--tile-size", type=int, default=None)
    serve.add_argument("--memory-budget", default=None,
                       help="resident tile byte budget (e.g. '8M'); also "
                            "bounds snapshot warm-start residency")
    serve.add_argument("--spill-dir", default=None,
                       help="directory for spilled tiles")
    serve.add_argument("--single-path", action="store_true",
                       help="maintain length annotations so single-path "
                            "and length queries are served")
    serve.add_argument("--cache-size", type=int, default=1024,
                       help="LRU result-cache capacity (entries)")
    serve.add_argument("--semiring", default=None,
                       choices=["length", "viterbi"],
                       help="rank order for top_k ops: shortest first "
                            "(length) or most probable first (viterbi) "
                            "(default: $REPRO_SERVICE_SEMIRING or "
                            "length)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=None,
                       help="serve TCP on this port (0 = ephemeral; the "
                            "bound address is announced on stderr) "
                            "instead of stdio")
    serve.add_argument("--batch-window-ms", type=float, default=None,
                       help="micro-batch window in ms: concurrent single "
                            "query requests within the window coalesce "
                            "into one batched closure (default: "
                            "$REPRO_BATCH_WINDOW_MS or off)")
    serve.add_argument("--stats", action="store_true",
                       help="attach cache hit rate / tick latency / "
                            "snapshot size to every response")
    serve.add_argument("--role", default="single",
                       choices=["single", "leader", "follower"],
                       help="replication role: 'leader' write-ahead-logs "
                            "every update tick to --wal; 'follower' "
                            "loads --snapshot and replays the leader's "
                            "--wal, serving reads at its replay horizon "
                            "(default: single, no replication)")
    serve.add_argument("--wal", metavar="PATH",
                       help="write-ahead tick log file (required for "
                            "--role leader/follower)")
    serve.add_argument("--wal-fsync", default="batch",
                       choices=["always", "batch", "never"],
                       help="leader WAL durability: fsync every tick, "
                            "every batch (default), or never")
    serve.add_argument("--replicas", metavar="HOST:PORT,...",
                       help="leader-only: fan query ops out round-robin "
                            "to these follower servers; updates stay "
                            "local")
    serve.add_argument("--metrics-addr", metavar="[HOST:]PORT",
                       help="serve the metrics registry in Prometheus "
                            "text format over HTTP at this address "
                            "(GET /metrics); the same text is available "
                            "in-protocol via the 'metrics' op")
    serve.add_argument("--slow-query-ms", type=float, default=None,
                       metavar="MS",
                       help="log any request taking at least MS "
                            "milliseconds, with its full span tree "
                            "(default: $REPRO_SLOW_QUERY_MS or off)")
    serve.add_argument("--slow-query-log", default=None, metavar="FILE",
                       help="JSONL file for slow-query records "
                            "(default: $REPRO_SLOW_QUERY_LOG or the "
                            "server log)")
    _add_tracing(serve)
    serve.set_defaults(handler=cmd_serve)

    trace = subparsers.add_parser(
        "trace", help="inspect structured trace files",
        description="Tools over the JSONL span traces written by "
                    "--trace-file / $REPRO_TRACE_FILE.",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize",
        help="aggregate a trace into per-phase wall-time totals",
    )
    summarize.add_argument("file", help="JSONL trace file")
    summarize.add_argument("--json", action="store_true")
    summarize.set_defaults(handler=cmd_trace_summarize)

    tables = subparsers.add_parser("tables", help="reproduce paper tables")
    tables.add_argument("table", choices=["table1", "table2", "both"])
    tables.add_argument("--max-triples", type=int, default=None)
    tables.set_defaults(handler=cmd_tables)

    rpq = subparsers.add_parser("rpq", help="regular path query")
    rpq.add_argument("--graph", required=True, help="edge-list graph file")
    rpq.add_argument("--rdf", action="store_true",
                     help="treat the graph file as RDF triples")
    rpq.add_argument("--regex", required=True,
                     help="label regex, e.g. 'subClassOf_r+ subClassOf+'")
    rpq.add_argument("--backend", default=default_backend(),
                     choices=available_backends())
    rpq.add_argument("--json", action="store_true")
    rpq.set_defaults(handler=cmd_rpq)

    generate = subparsers.add_parser(
        "generate-dataset", help="materialize an evaluation dataset graph"
    )
    generate.add_argument("name", nargs="?", default="skos")
    generate.add_argument("--output", default="dataset.txt")
    generate.add_argument("--list", action="store_true",
                          help="list dataset names and exit")
    generate.set_defaults(handler=cmd_generate_dataset)

    stats = subparsers.add_parser("stats", help="graph statistics as JSON")
    stats.add_argument("--graph", required=True)
    stats.add_argument("--rdf", action="store_true")
    stats.set_defaults(handler=cmd_stats)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-cfpq`` console script."""
    args = build_parser().parse_args(argv)
    _configure_observability(args)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
