"""Evaluation datasets: paper-reported numbers + synthetic substitutes."""

from .registry import (
    ALL_NAMES,
    DATASETS,
    ONTOLOGY_NAMES,
    SYNTHETIC_NAMES,
    DatasetSpec,
    PaperRow,
    build_graph,
    clear_graph_cache,
    dataset_names,
    get_spec,
)
from .synthetic_rdf import (
    OntologyProfile,
    generate_ontology_graph,
    generate_ontology_triples,
    seed_from_name,
)

__all__ = [
    "ALL_NAMES",
    "DATASETS",
    "DatasetSpec",
    "ONTOLOGY_NAMES",
    "OntologyProfile",
    "PaperRow",
    "SYNTHETIC_NAMES",
    "build_graph",
    "clear_graph_cache",
    "dataset_names",
    "generate_ontology_graph",
    "generate_ontology_triples",
    "get_spec",
    "seed_from_name",
]
