"""Registry of the paper's evaluation datasets (Tables 1 and 2).

For each of the 11 ontologies and 3 synthetic graphs the paper reports
``#triples``, ``#results`` for Q1/Q2 and four timings (GLL, dGPU, sCPU,
sGPU, in ms).  We record those *published* numbers verbatim (they are
the reference the harness compares shapes against) and attach a
deterministic synthetic generator per dataset (see
:mod:`repro.datasets.synthetic_rdf` for why the originals are
substituted).

The paper constructs g1, g2, g3 by "simply repeating the existing
graphs"; the triple and result counts identify the bases exactly —
every count is 8 × the funding / wine / pizza row respectively — so we
build them the same way: 8 disjoint copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DatasetError
from ..graph.labeled_graph import LabeledGraph
from .synthetic_rdf import (
    OntologyProfile,
    generate_ontology_graph,
    seed_from_name,
)


@dataclass(frozen=True)
class PaperRow:
    """One row of a paper table: result count and the four timings (ms).

    ``None`` timing means the paper omitted the configuration (dGPU on
    g1–g3: dense storage did not scale)."""

    results: int
    gll_ms: float | None
    dgpu_ms: float | None
    scpu_ms: float | None
    sgpu_ms: float | None


@dataclass(frozen=True)
class DatasetSpec:
    """A dataset: its paper-reported numbers plus our generator recipe."""

    name: str
    triples: int
    query1: PaperRow
    query2: PaperRow
    #: Base dataset repeated (for g1-g3), else None.
    repeat_of: str | None = None
    repeat_copies: int = 1
    #: Generator shape knobs (ignored for repeated datasets); see
    #: :class:`~repro.datasets.synthetic_rdf.OntologyProfile`.
    subclass_fraction: float = 0.3
    type_fraction: float = 0.5
    layers: int = 5
    multi_parent_rate: float = 0.05
    multi_type_rate: float = 0.3
    hub_rate: float = 0.1
    hub_min: int = 8
    hub_max: int = 20
    skip_level_rate: float = 0.0
    flat_classes: int = 0

    def profile(self) -> OntologyProfile:
        """The synthetic-generator profile for this dataset."""
        if self.repeat_of is not None:
            raise DatasetError(f"{self.name} is a repeated dataset; build its base")
        return OntologyProfile(
            triples=self.triples,
            subclass_fraction=self.subclass_fraction,
            type_fraction=self.type_fraction,
            layers=self.layers,
            multi_parent_rate=self.multi_parent_rate,
            multi_type_rate=self.multi_type_rate,
            hub_rate=self.hub_rate,
            hub_min=self.hub_min,
            hub_max=self.hub_max,
            skip_level_rate=self.skip_level_rate,
            flat_classes=self.flat_classes,
            seed=seed_from_name(self.name),
        )


def _row(results: int, gll: float | None, dgpu: float | None,
         scpu: float | None, sgpu: float | None) -> PaperRow:
    return PaperRow(results, gll, dgpu, scpu, sgpu)


#: Table 1 + Table 2, transcribed from the paper.
DATASETS: dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    DATASETS[spec.name] = spec


# Shape calibration: subclass volume + multiple inheritance track the
# paper's Q2 count; hub-instance typing tracks Q1 (see synthetic_rdf).
_register(DatasetSpec(
    "skos", 252,
    query1=_row(810, 10, 56, 14, 12),
    query2=_row(1, 1, 10, 2, 1),
    # A vocabulary: essentially no class hierarchy (paper Q2 = 1).
    subclass_fraction=0.008, type_fraction=0.8, layers=2,
    multi_parent_rate=0.0, multi_type_rate=0.1,
    hub_rate=0.25, hub_min=8, hub_max=14, flat_classes=40,
))
_register(DatasetSpec(
    "generations", 273,
    query1=_row(2164, 19, 62, 20, 13),
    query2=_row(0, 1, 9, 2, 0),
    # Q2 = 0 in the paper: no subClassOf triples at all.
    subclass_fraction=0.0, type_fraction=0.8, layers=1,
    multi_type_rate=0.1, hub_rate=0.5, hub_min=18, hub_max=28,
    flat_classes=60,
))
_register(DatasetSpec(
    "travel", 277,
    query1=_row(2499, 24, 69, 22, 30),
    query2=_row(63, 1, 31, 7, 10),
    subclass_fraction=0.21, type_fraction=0.6, layers=4,
    multi_parent_rate=0.02, multi_type_rate=0.2,
    hub_rate=0.35, hub_min=14, hub_max=22, flat_classes=10,
))
_register(DatasetSpec(
    "univ-bench", 293,
    query1=_row(2540, 25, 81, 25, 15),
    query2=_row(81, 11, 55, 15, 9),
    subclass_fraction=0.26, type_fraction=0.58, layers=5,
    multi_parent_rate=0.02, multi_type_rate=0.2,
    hub_rate=0.35, hub_min=14, hub_max=22, flat_classes=10,
))
_register(DatasetSpec(
    "atom-primitive", 425,
    query1=_row(15454, 255, 190, 92, 22),
    query2=_row(122, 66, 36, 9, 2),
    subclass_fraction=0.27, type_fraction=0.62, layers=6,
    multi_parent_rate=0.02, multi_type_rate=0.2,
    hub_rate=0.8, hub_min=55, hub_max=70, flat_classes=60,
))
_register(DatasetSpec(
    "biomedical-measure-primitive", 459,
    query1=_row(15156, 261, 266, 113, 20),
    query2=_row(2871, 45, 276, 91, 24),
    # Q2 ≫ #subclass triples: a deep hierarchy with heavy multiple
    # inheritance and skip-level subclassing (diamonds at mixed depths).
    subclass_fraction=0.72, type_fraction=0.26, layers=10,
    multi_parent_rate=0.65, multi_type_rate=0.3, skip_level_rate=0.85,
    hub_rate=1.0, hub_min=55, hub_max=70, flat_classes=0,
))
_register(DatasetSpec(
    "foaf", 631,
    query1=_row(4118, 39, 154, 48, 9),
    query2=_row(10, 2, 53, 14, 3),
    subclass_fraction=0.013, type_fraction=0.7, layers=2,
    multi_parent_rate=0.0, multi_type_rate=0.2,
    hub_rate=0.15, hub_min=20, hub_max=30, flat_classes=80,
))
_register(DatasetSpec(
    "people-pets", 640,
    query1=_row(9472, 89, 392, 142, 32),
    query2=_row(37, 3, 144, 38, 6),
    subclass_fraction=0.05, type_fraction=0.7, layers=3,
    multi_parent_rate=0.02, multi_type_rate=0.2,
    hub_rate=0.3, hub_min=30, hub_max=40, flat_classes=80,
))
_register(DatasetSpec(
    "funding", 1086,
    query1=_row(17634, 212, 1410, 447, 36),
    query2=_row(1158, 23, 1246, 344, 27),
    subclass_fraction=0.45, type_fraction=0.4, layers=6,
    multi_parent_rate=0.3, multi_type_rate=0.2,
    hub_rate=0.2, hub_min=24, hub_max=34, flat_classes=0,
))
_register(DatasetSpec(
    "wine", 1839,
    query1=_row(66572, 819, 2047, 797, 54),
    query2=_row(133, 8, 722, 179, 6),
    subclass_fraction=0.07, type_fraction=0.8, layers=3,
    multi_parent_rate=0.01, multi_type_rate=0.2,
    hub_rate=0.5, hub_min=60, hub_max=75, flat_classes=200,
))
_register(DatasetSpec(
    "pizza", 1980,
    query1=_row(56195, 697, 1104, 430, 24),
    query2=_row(1262, 29, 943, 258, 23),
    subclass_fraction=0.35, type_fraction=0.55, layers=6,
    multi_parent_rate=0.22, multi_type_rate=0.2,
    hub_rate=0.15, hub_min=40, hub_max=52, flat_classes=0,
))
# Synthetic graphs: each count in the paper is exactly 8x its base row
# (8688 = 8*1086 funding, 14712 = 8*1839 wine, 15840 = 8*1980 pizza;
# likewise all four result counts), identifying the construction.
_register(DatasetSpec(
    "g1", 8688,
    query1=_row(141072, 1926, None, 26957, 82),
    query2=_row(9264, 167, None, 21115, 38),
    repeat_of="funding", repeat_copies=8,
))
_register(DatasetSpec(
    "g2", 14712,
    query1=_row(532576, 6246, None, 46809, 185),
    query2=_row(1064, 46, None, 10874, 21),
    repeat_of="wine", repeat_copies=8,
))
_register(DatasetSpec(
    "g3", 15840,
    query1=_row(449560, 7014, None, 24967, 127),
    query2=_row(10096, 393, None, 15736, 40),
    repeat_of="pizza", repeat_copies=8,
))

#: The ontology rows, in the paper's (size-sorted) order.
ONTOLOGY_NAMES: tuple[str, ...] = (
    "skos", "generations", "travel", "univ-bench", "atom-primitive",
    "biomedical-measure-primitive", "foaf", "people-pets", "funding",
    "wine", "pizza",
)

#: The synthetic rows.
SYNTHETIC_NAMES: tuple[str, ...] = ("g1", "g2", "g3")

#: All rows in table order.
ALL_NAMES: tuple[str, ...] = ONTOLOGY_NAMES + SYNTHETIC_NAMES

_GRAPH_CACHE: dict[str, LabeledGraph] = {}


def dataset_names() -> tuple[str, ...]:
    """All dataset names in the paper's table order."""
    return ALL_NAMES


def get_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by name."""
    try:
        return DATASETS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {', '.join(ALL_NAMES)}"
        ) from None


def build_graph(name: str, use_cache: bool = True) -> LabeledGraph:
    """Build (or fetch the cached) graph for a dataset.

    Ontologies come from the calibrated synthetic generator; g1–g3 are
    8 disjoint copies of their base graph, per the paper.
    """
    if use_cache and name in _GRAPH_CACHE:
        return _GRAPH_CACHE[name]
    spec = get_spec(name)
    if spec.repeat_of is not None:
        from ..graph.generators import repeat_graph

        base = build_graph(spec.repeat_of, use_cache=use_cache)
        graph = repeat_graph(base, spec.repeat_copies)
    else:
        graph = generate_ontology_graph(spec.profile())
    if use_cache:
        _GRAPH_CACHE[name] = graph
    return graph


def clear_graph_cache() -> None:
    """Drop memoized graphs (tests use this to check determinism)."""
    _GRAPH_CACHE.clear()
