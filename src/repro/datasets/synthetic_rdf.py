"""Deterministic synthetic ontology generator.

The paper evaluates on RDF ontology files from Zhang et al. [30] (skos,
foaf, wine, pizza, ...).  Those files are not redistributable here, so —
per the reproduction's substitution rule — we generate ontology-*shaped*
graphs at the same scale.  The queries dictate which structure matters:

* **Q2** (``S → B subClassOf | subClassOf``) walks only ``subClassOf``;
  its result count tracks the number of subclass triples plus the
  amount of *multiple inheritance* (a class with p parents makes its
  parents pairwise "adjacent-generation", and diamonds propagate up the
  hierarchy).  The paper's tiny Q2 counts for skos/generations/foaf
  mean those files have almost no class hierarchy; biomedical's Q2
  exceeding its triple count means heavy multiple inheritance.
* **Q1** (same-generation) additionally walks ``type``/``type_r``; its
  base case relates two classes that share an instance, so its large
  counts (wine: 66 572 from 1 839 triples) come from *multi-typed
  instances* — an instance with t types yields t² same-generation
  pairs.  We model this with "hub" individuals carrying many types,
  which is exactly the structure of the original files (wine
  individuals are typed by many wine classes).

Generator shape per dataset:

* a layered class hierarchy: each non-root class gets one parent in the
  previous layer, plus a second parent with ``multi_parent_rate``;
* an instance population: most instances carry one or two ``type``
  edges; a ``hub_rate`` fraction are hubs with ``hub_min..hub_max``
  types;
* filler triples with a neutral predicate (``related``) so the total
  triple count matches the paper's #triples column exactly.

The paper's conversion (forward + inverse edge per triple) is applied
by the caller via :func:`repro.graph.rdf.triples_to_graph`.  Everything
is seeded from the dataset name: regeneration is always identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..graph.labeled_graph import LabeledGraph
from ..graph.rdf import Triple, triples_to_graph


@dataclass(frozen=True)
class OntologyProfile:
    """Shape parameters for one synthetic ontology.

    The subclass/type fractions need not sum to 1; the remainder becomes
    filler triples with a predicate the queries ignore.
    """

    triples: int
    subclass_fraction: float = 0.3
    type_fraction: float = 0.5
    layers: int = 5
    multi_parent_rate: float = 0.05
    multi_type_rate: float = 0.3
    hub_rate: float = 0.1
    hub_min: int = 8
    hub_max: int = 20
    #: Probability that a class draws its parents from *all* earlier
    #: layers rather than just the previous one (skip-level
    #: subclassing), putting the class at several depths at once.
    skip_level_rate: float = 0.0
    #: Classes outside the subClassOf hierarchy (pure type targets) —
    #: vocabularies like skos/foaf/wine type against many classes that
    #: never appear in subclass triples.
    flat_classes: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.triples < 1:
            raise ValueError("triples must be positive")
        for name in ("subclass_fraction", "type_fraction"):
            value = getattr(self, name)
            if not (0 <= value <= 1):
                raise ValueError(f"{name} must be in [0, 1]")
        if self.subclass_fraction + self.type_fraction > 1:
            raise ValueError("subclass + type fractions exceed 1")
        if self.layers < 1:
            raise ValueError("layers must be positive")
        if not (0 < self.hub_min <= self.hub_max):
            raise ValueError("need 0 < hub_min <= hub_max")


def generate_ontology_triples(profile: OntologyProfile) -> list[Triple]:
    """Produce exactly ``profile.triples`` RDF triples."""
    rng = random.Random(profile.seed)
    target = profile.triples
    subclass_budget = min(int(round(target * profile.subclass_fraction)), target)
    # Rounding both budgets up independently could overshoot the target
    # by one; clamp the second budget to what is left.
    type_budget = min(int(round(target * profile.type_fraction)),
                      target - subclass_budget)
    filler_budget = target - subclass_budget - type_budget

    triples: list[Triple] = []

    # --- class hierarchy ---------------------------------------------
    layers: list[list[str]] = [[] for _ in range(profile.layers)]
    layers[0].append("Class0")
    class_counter = 1
    spent_subclass = 0
    while spent_subclass < subclass_budget:
        layer_index = rng.randrange(1, profile.layers) if profile.layers > 1 else 0
        if layer_index == 0 or not layers[layer_index - 1]:
            layer_index = next(
                (idx for idx in range(1, profile.layers) if layers[idx - 1]), 1
            )
        name = f"Class{class_counter}"
        class_counter += 1
        layers[layer_index].append(name)

        # Geometric number of parents: each extra parent drawn with
        # probability multi_parent_rate, so high rates model the heavy
        # multiple inheritance behind biomedical's Q2 ≫ #triples.
        # With skip_level_rate, extra parents may come from *any* earlier
        # layer (skip-level subclassing): the class then sits at several
        # depths at once, which is what makes the adjacent-generation
        # relation dense in real medical ontologies.
        if rng.random() < profile.skip_level_rate:
            candidates = [name for lay in layers[:layer_index] for name in lay]
        else:
            candidates = layers[layer_index - 1]
        parents = {rng.choice(candidates)}
        while (rng.random() < profile.multi_parent_rate
               and len(parents) < len(candidates)
               and spent_subclass + len(parents) < subclass_budget):
            parents.add(rng.choice(candidates))
        for parent in sorted(parents):
            triples.append((name, "subClassOf", parent))
            spent_subclass += 1
            if spent_subclass >= subclass_budget:
                break

    all_classes = [name for layer in layers for name in layer]
    all_classes.extend(f"FlatClass{k}" for k in range(profile.flat_classes))
    # Ensure type edges have targets even in hierarchy-free profiles.
    if len(all_classes) < 4:
        all_classes.extend(
            f"FlatClass{k}" for k in range(profile.flat_classes, 4)
        )

    # --- instances ------------------------------------------------------
    instance_counter = 0
    spent_type = 0
    while spent_type < type_budget:
        name = f"inst{instance_counter}"
        instance_counter += 1
        remaining = type_budget - spent_type
        if rng.random() < profile.hub_rate:
            burst = rng.randint(profile.hub_min, profile.hub_max)
            types = set(rng.choices(all_classes, k=min(burst, remaining)))
        else:
            types = {rng.choice(all_classes)}
            while rng.random() < profile.multi_type_rate and len(types) < remaining:
                types.add(rng.choice(all_classes))
        for type_class in sorted(types):
            triples.append((name, "type", type_class))
            spent_type += 1

    # --- filler -----------------------------------------------------------
    nodes = all_classes + [f"inst{i}" for i in range(max(instance_counter, 1))]
    for k in range(filler_budget):
        source = rng.choice(nodes)
        target_node = rng.choice(nodes)
        # A distinct object per filler edge keeps the triple count exact
        # even if (source, related, target) repeats.  No '#' in the
        # name: it is the edge-list format's comment character.
        triples.append((source, "related", f"{target_node}.f{k}"))

    assert len(triples) == profile.triples, (
        f"generator produced {len(triples)} triples, wanted {profile.triples}"
    )
    return triples


def generate_ontology_graph(profile: OntologyProfile) -> LabeledGraph:
    """Triples → graph with the paper's edge+inverse-edge conversion."""
    return triples_to_graph(generate_ontology_triples(profile),
                            add_inverses=True, shorten=False)


def seed_from_name(name: str) -> int:
    """Stable cross-run seed derived from a dataset name."""
    # Not hash(): Python string hashing is randomized per process.
    value = 0
    for char in name:
        value = (value * 131 + ord(char)) % (2 ** 31)
    return value
