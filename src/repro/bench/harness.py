"""Measurement harness for the evaluation reproduction.

One *measurement* = (graph, query grammar, solver) → result count plus
wall-clock milliseconds.  The solver names mirror the paper's columns:

======== ===================================================== =========
name     implementation                                         paper
======== ===================================================== =========
gll      :func:`repro.baselines.gll.solve_gll`                  GLL
hellings :func:`repro.baselines.hellings.solve_hellings`        (extra)
dense    matrix engine, NumPy dense backend                     dGPU
sparse   matrix engine, SciPy CSR backend                       sCPU/sGPU
pyset    matrix engine, pure-Python backend                     (extra)
naive    literal set-matrix Algorithm 1                         (extra)
======== ===================================================== =========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..baselines.gll import solve_gll
from ..baselines.hellings import solve_hellings
from ..core.matrix_cfpq import solve_matrix
from ..core.naive_closure import solve_naive
from ..grammar.cfg import CFG
from ..grammar.cnf import ensure_cnf
from ..grammar.symbols import Nonterminal
from ..graph.labeled_graph import LabeledGraph
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer, stopwatch

#: Solver signature: (graph, grammar, start) -> pair count.
Solver = Callable[[LabeledGraph, CFG, Nonterminal], int]


def _run_gll(graph: LabeledGraph, grammar: CFG, start: Nonterminal) -> int:
    relations = solve_gll(graph, grammar, nonterminals=[start])
    return relations.count(start)


def _run_hellings(graph: LabeledGraph, grammar: CFG, start: Nonterminal) -> int:
    return solve_hellings(graph, grammar).count(start)


def _matrix_runner(backend: str) -> Solver:
    def run(graph: LabeledGraph, grammar: CFG, start: Nonterminal) -> int:
        return solve_matrix(graph, grammar, backend=backend).relations.count(start)

    return run


def _run_naive(graph: LabeledGraph, grammar: CFG, start: Nonterminal) -> int:
    return solve_naive(graph, grammar).relations.count(start)


SOLVERS: dict[str, Solver] = {
    "gll": _run_gll,
    "hellings": _run_hellings,
    "dense": _matrix_runner("dense"),
    "sparse": _matrix_runner("sparse"),
    "pyset": _matrix_runner("pyset"),
    "naive": _run_naive,
}

#: Solver column order used by the table reproduction (paper order:
#: GLL, dGPU→dense, sCPU/sGPU→sparse).
PAPER_SOLVERS: tuple[str, ...] = ("gll", "dense", "sparse")


@dataclass(frozen=True)
class Measurement:
    """One timed solver run."""

    solver: str
    results: int
    milliseconds: float


def measure(solver_name: str, graph: LabeledGraph, grammar: CFG,
            start: Nonterminal | str = "S",
            repeats: int = 1) -> Measurement:
    """Run *solver_name* and report the best-of-*repeats* wall time.

    The grammar is pre-normalized outside the timed region for the
    matrix solvers (the paper times query evaluation, not grammar
    preparation; normalization is query-, not graph-, sized anyway).
    """
    if solver_name not in SOLVERS:
        raise KeyError(
            f"unknown solver {solver_name!r}; known: {', '.join(sorted(SOLVERS))}"
        )
    start_nt = start if isinstance(start, Nonterminal) else Nonterminal(start)
    prepared = grammar if solver_name == "gll" else ensure_cnf(grammar)
    solver = SOLVERS[solver_name]

    tracer = get_tracer()
    histogram = get_registry().histogram(
        "repro_bench_measure_seconds",
        "Wall time of individual harness solver runs",
        ("solver",),
    )
    best_ms = float("inf")
    results = -1
    for repeat in range(max(1, repeats)):
        with tracer.span("bench.measure", solver=solver_name,
                         repeat=repeat), stopwatch() as timer:
            results = solver(graph, prepared, start_nt)
        histogram.observe(timer.elapsed, solver=solver_name)
        best_ms = min(best_ms, timer.elapsed * 1000.0)
    return Measurement(solver=solver_name, results=results, milliseconds=best_ms)
