"""Benchmark harness reproducing the paper's evaluation section."""

from .harness import PAPER_SOLVERS, SOLVERS, Measurement, measure
from .reporting import format_table, speedup
from .tables import TableRow, render_rows, run_table

__all__ = [
    "Measurement",
    "PAPER_SOLVERS",
    "SOLVERS",
    "TableRow",
    "format_table",
    "measure",
    "render_rows",
    "run_table",
    "speedup",
]
