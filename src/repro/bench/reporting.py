"""Plain-text table rendering for benchmark reports.

Formats rows the way the paper's Tables 1 and 2 are laid out so the
reproduction output can be eyeballed against the publication.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned monospace table."""
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts: list[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)


def _cell(value: object) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def speedup(base_ms: float | None, other_ms: float | None) -> float | None:
    """``base / other`` (how many times *other* is faster), None when
    either side is missing or zero."""
    if not base_ms or not other_ms:
        return None
    return base_ms / other_ms
