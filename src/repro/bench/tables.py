"""Regeneration of the paper's Tables 1 and 2.

Run as a module::

    python -m repro.bench.tables table1
    python -m repro.bench.tables table2 --datasets skos foaf --solvers gll sparse
    python -m repro.bench.tables both --max-triples 700

For every dataset row the output shows our measured ``#results`` and
per-solver milliseconds next to the paper's published values, so the
*shape* comparison (who wins, how the gap grows) is direct.  Absolute
times differ (Python on CPU vs F#/.NET and CUDA on a GTX 1070); see
EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from ..datasets.registry import ALL_NAMES, PaperRow, build_graph, get_spec
from ..grammar.builders import same_generation_query1, same_generation_query2
from ..graph.stats import graph_stats
from .harness import PAPER_SOLVERS, Measurement, measure
from .reporting import format_table


@dataclass(frozen=True)
class TableRow:
    """One reproduced table row with the paper's reference values."""

    dataset: str
    triples: int
    paper: PaperRow
    measurements: dict[str, Measurement] = field(default_factory=dict)

    @property
    def results(self) -> int | None:
        """Measured #results (identical across solvers; validated)."""
        counts = {m.results for m in self.measurements.values()}
        if len(counts) != 1:
            return None
        return counts.pop()


def run_table(query: str, datasets: list[str] | None = None,
              solvers: tuple[str, ...] = PAPER_SOLVERS,
              max_triples: int | None = None,
              repeats: int = 1) -> list[TableRow]:
    """Measure one of the paper's tables.

    *query* is ``"table1"``/``"q1"`` or ``"table2"``/``"q2"``.  Datasets
    with more triples than *max_triples* are skipped (the dense solver
    on g1–g3 is exactly the configuration the paper also skips).
    """
    if query in ("table1", "q1"):
        grammar = same_generation_query1()
        table_attr = "query1"
    elif query in ("table2", "q2"):
        grammar = same_generation_query2()
        table_attr = "query2"
    else:
        raise ValueError(f"unknown table {query!r}; use table1 or table2")

    names = list(datasets) if datasets else list(ALL_NAMES)
    rows: list[TableRow] = []
    for name in names:
        spec = get_spec(name)
        if max_triples is not None and spec.triples > max_triples:
            continue
        graph = build_graph(name)
        measurements: dict[str, Measurement] = {}
        for solver in solvers:
            # Mirror the paper: dense representation is not run on the
            # large synthetic graphs (it did not scale there either).
            if solver == "dense" and spec.repeat_of is not None:
                continue
            measurements[solver] = measure(solver, graph, grammar, "S",
                                           repeats=repeats)
        rows.append(TableRow(
            dataset=name,
            triples=graph_stats(graph).triple_count,
            paper=getattr(spec, table_attr),
            measurements=measurements,
        ))
    return rows


def render_rows(rows: list[TableRow], solvers: tuple[str, ...] = PAPER_SOLVERS,
                title: str = "") -> str:
    """Text table with measured and paper columns side by side."""
    headers = ["Ontology", "#triples", "#results", "paper#results"]
    for solver in solvers:
        headers.append(f"{solver}(ms)")
    headers.extend(["paperGLL(ms)", "paper-sCPU(ms)", "paper-sGPU(ms)"])

    body: list[list[object]] = []
    for row in rows:
        cells: list[object] = [
            row.dataset, row.triples, row.results, row.paper.results,
        ]
        for solver in solvers:
            measurement = row.measurements.get(solver)
            cells.append(None if measurement is None else measurement.milliseconds)
        cells.extend([row.paper.gll_ms, row.paper.scpu_ms, row.paper.sgpu_ms])
        body.append(cells)
    return format_table(headers, body, title=title)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``python -m repro.bench.tables``)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("table", choices=["table1", "table2", "both"])
    parser.add_argument("--datasets", nargs="*", default=None,
                        help="subset of dataset names (default: all)")
    parser.add_argument("--solvers", nargs="*", default=list(PAPER_SOLVERS),
                        help="solver columns (default: gll dense sparse)")
    parser.add_argument("--max-triples", type=int, default=None,
                        help="skip datasets above this size")
    parser.add_argument("--repeats", type=int, default=1,
                        help="best-of-N timing repeats")
    args = parser.parse_args(argv)

    tables = ["table1", "table2"] if args.table == "both" else [args.table]
    for table in tables:
        rows = run_table(table, datasets=args.datasets,
                         solvers=tuple(args.solvers),
                         max_triples=args.max_triples, repeats=args.repeats)
        title = ("Table 1: Query 1 (same generation)" if table == "table1"
                 else "Table 2: Query 2 (adjacent generation)")
        print(render_rows(rows, solvers=tuple(args.solvers), title=title))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
