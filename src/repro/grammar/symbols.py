"""Grammar symbols: terminals, non-terminals and the empty string.

The paper works over an alphabet of *edge labels* (terminals) and a set of
*non-terminals*.  Symbols are small immutable value objects so they can be
dictionary keys, set members and matrix-element members.

Edge labels in the paper frequently come in inverse pairs
(``subClassOf`` / ``subClassOf⁻¹``).  We provide :func:`inverse_label`
implementing the paper's textual convention: inverting a label appends
``_r`` (for "reversed"), inverting twice returns the original label.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

#: Suffix used for inverse edge labels, e.g. ``subClassOf`` -> ``subClassOf_r``.
INVERSE_SUFFIX = "_r"


@dataclass(frozen=True, slots=True)
class Terminal:
    """A terminal symbol — an edge label of the graph alphabet ``Σ``."""

    label: str

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("terminal label must be a non-empty string")

    @property
    def inverse(self) -> "Terminal":
        """The inverse edge label (``x`` ↔ ``x_r``)."""
        return Terminal(inverse_label(self.label))

    def __str__(self) -> str:
        return self.label

    def __repr__(self) -> str:
        return f"Terminal({self.label!r})"


@dataclass(frozen=True, slots=True)
class Nonterminal:
    """A non-terminal symbol of the grammar (an element of ``N``)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("non-terminal name must be a non-empty string")

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Nonterminal({self.name!r})"


class _Epsilon:
    """The empty string ``ε``.  A singleton; use the module-level EPSILON."""

    _instance: "_Epsilon | None" = None

    def __new__(cls) -> "_Epsilon":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __str__(self) -> str:
        return "eps"

    def __repr__(self) -> str:
        return "EPSILON"

    def __hash__(self) -> int:
        return hash("__epsilon__")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Epsilon)


#: The unique empty-string symbol.
EPSILON = _Epsilon()

#: Any symbol that may appear on the right-hand side of a production.
Symbol = Union[Terminal, Nonterminal]


def inverse_label(label: str) -> str:
    """Return the inverse of an edge label.

    ``inverse_label("subClassOf") == "subClassOf_r"`` and
    ``inverse_label("subClassOf_r") == "subClassOf"``.
    """
    if label.endswith(INVERSE_SUFFIX) and len(label) > len(INVERSE_SUFFIX):
        return label[: -len(INVERSE_SUFFIX)]
    return label + INVERSE_SUFFIX


def is_inverse_label(label: str) -> bool:
    """True when *label* denotes an inverse edge (``..._r``)."""
    return label.endswith(INVERSE_SUFFIX) and len(label) > len(INVERSE_SUFFIX)


def fresh_nonterminal(base: str, taken: set[Nonterminal]) -> Nonterminal:
    """Return a non-terminal named after *base* that is not in *taken*.

    Used by normal-form transformations that need to invent symbols
    without colliding with user-defined ones.
    """
    candidate = Nonterminal(base)
    counter = 0
    while candidate in taken:
        counter += 1
        candidate = Nonterminal(f"{base}{counter}")
    return candidate
