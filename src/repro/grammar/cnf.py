"""Chomsky-normal-form transformation.

The paper's algorithm consumes grammars whose productions are all
``A -> B C`` or ``A -> x`` (Section 2; ε-rules are dropped because only
empty paths ``mπm`` produce ε).  :func:`to_cnf` implements the classical
pipeline:

1. **TERM**  — lift terminals out of long bodies (``A -> a B`` becomes
   ``A -> T_a B``, ``T_a -> a``).
2. **BIN**   — binarize long bodies left-to-right.
3. **DEL**   — eliminate ε-productions (nullable expansion).
4. **UNIT**  — eliminate unit rules via the unit-pair closure.
5. optional **USELESS** — remove non-generating/unreachable symbols
   w.r.t. a start symbol, when one is given.

Because CFPQ grammars have *no* fixed start symbol (any non-terminal can
be queried), the transformation preserves the language of **every**
original non-terminal, modulo ε: for each original ``A`` and each
non-empty string ``w``, ``A ⇒* w`` in the original grammar iff
``A ⇒* w`` in the normalized grammar.  This is exactly the guarantee the
reduction of Section 4 needs.  Property tests in
``tests/grammar/test_cnf.py`` check it against a CYK oracle.
"""

from __future__ import annotations

from itertools import combinations

from .analysis import nullable_nonterminals, unit_pairs
from .cfg import CFG
from .production import Production
from .symbols import Nonterminal, Symbol, Terminal, fresh_nonterminal


def lift_terminals(grammar: CFG) -> CFG:
    """TERM step: ensure terminals appear only in bodies of length 1."""
    taken = set(grammar.nonterminals)
    proxies: dict[Terminal, Nonterminal] = {}
    new_productions: list[Production] = []

    def proxy_for(terminal: Terminal) -> Nonterminal:
        if terminal not in proxies:
            proxy = fresh_nonterminal(f"T_{terminal.label}", taken)
            taken.add(proxy)
            proxies[terminal] = proxy
            new_productions.append(Production(proxy, (terminal,)))
        return proxies[terminal]

    for prod in grammar.productions:
        if len(prod.body) <= 1:
            new_productions.append(prod)
            continue
        body: list[Symbol] = []
        for symbol in prod.body:
            if isinstance(symbol, Terminal):
                body.append(proxy_for(symbol))
            else:
                body.append(symbol)
        new_productions.append(Production(prod.head, tuple(body)))
    return CFG(new_productions)


def binarize(grammar: CFG) -> CFG:
    """BIN step: split bodies of length > 2 into chains of pair rules."""
    taken = set(grammar.nonterminals)
    new_productions: list[Production] = []
    for prod in grammar.productions:
        if len(prod.body) <= 2:
            new_productions.append(prod)
            continue
        # A -> X1 X2 ... Xk  becomes  A -> X1 A_1, A_1 -> X2 A_2, ...
        head = prod.head
        remaining = list(prod.body)
        while len(remaining) > 2:
            first = remaining.pop(0)
            continuation = fresh_nonterminal(f"{prod.head}_bin", taken)
            taken.add(continuation)
            new_productions.append(Production(head, (first, continuation)))
            head = continuation
        new_productions.append(Production(head, tuple(remaining)))
    return CFG(new_productions)


def eliminate_epsilon(grammar: CFG) -> CFG:
    """DEL step: remove ε-rules by nullable expansion.

    After this step no production has an empty body.  The language of
    each non-terminal loses (at most) the empty string — the behaviour
    the paper prescribes, since ε only matters for trivial empty paths.
    """
    nullable = nullable_nonterminals(grammar)
    new_productions: list[Production] = []
    seen: set[Production] = set()

    for prod in grammar.productions:
        if prod.is_epsilon:
            continue
        nullable_positions = [
            i for i, symbol in enumerate(prod.body)
            if isinstance(symbol, Nonterminal) and symbol in nullable
        ]
        # Emit every variant obtained by dropping a subset of nullable symbols.
        for drop_count in range(len(nullable_positions) + 1):
            for dropped in combinations(nullable_positions, drop_count):
                body = tuple(
                    symbol for i, symbol in enumerate(prod.body) if i not in dropped
                )
                if not body:
                    continue
                variant = Production(prod.head, body)
                if variant not in seen:
                    seen.add(variant)
                    new_productions.append(variant)
    return CFG(new_productions, extra_nonterminals=grammar.nonterminals,
               extra_terminals=grammar.terminals)


def eliminate_unit_rules(grammar: CFG) -> CFG:
    """UNIT step: replace chains ``A ⇒* B`` of unit rules by copying B's
    non-unit productions up to A."""
    pairs = unit_pairs(grammar)
    new_productions: list[Production] = []
    seen: set[Production] = set()
    for head, reachable in sorted(pairs.items(), key=lambda kv: kv[0].name):
        for target in sorted(reachable, key=lambda nt: nt.name):
            for prod in grammar.productions_for(target):
                if prod.is_unit_rule:
                    continue
                replacement = Production(head, prod.body)
                if replacement not in seen:
                    seen.add(replacement)
                    new_productions.append(replacement)
    return CFG(new_productions, extra_nonterminals=grammar.nonterminals,
               extra_terminals=grammar.terminals)


def to_cnf(grammar: CFG, keep_all_nonterminals: bool = True) -> CFG:
    """Full normalization pipeline (TERM, BIN, DEL, UNIT).

    With ``keep_all_nonterminals`` (the default, required for CFPQ) every
    original non-terminal survives even if it ends up with no productions
    — queries against it simply return the empty relation.

    The DEL step erases which non-terminals could derive ε, but the
    paper's relation semantics needs them (``ε ∈ L(G_A)`` puts every
    ``(i, i)`` in ``R_A``), so the result records the *original*
    grammar's nullable set in :attr:`CFG.nullable_diagonal` for the
    solvers to seed identity diagonals from.
    """
    nullable = frozenset(
        nullable_nonterminals(grammar) | grammar.nullable_diagonal
    )
    result = eliminate_unit_rules(eliminate_epsilon(binarize(lift_terminals(grammar))))
    extra = grammar.nonterminals if keep_all_nonterminals else result.nonterminals
    result = CFG(result.productions,
                 extra_nonterminals=extra,
                 extra_terminals=grammar.terminals,
                 nullable_diagonal=nullable & extra)
    assert result.is_cnf, "normalization must produce a CNF grammar"
    return result


def ensure_cnf(grammar: CFG) -> CFG:
    """Return *grammar* unchanged when already CNF, else :func:`to_cnf` it."""
    return grammar if grammar.is_cnf else to_cnf(grammar)
