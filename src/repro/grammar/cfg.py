"""Context-free grammar container.

Following the paper (and Hellings [11]) the grammar does **not** carry a
distinguished start non-terminal: the start symbol is supplied by each
path query (``L(G_S)`` for the queried ``S``).  A grammar is the triple
``G = (N, Σ, P)``; any non-terminal can serve as the query entry point.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, Mapping

from ..errors import NotInNormalFormError, UnknownSymbolError
from .production import Production
from .symbols import EPSILON, Nonterminal, Symbol, Terminal


class CFG:
    """An immutable context-free grammar ``G = (N, Σ, P)``.

    ``N`` always contains every non-terminal mentioned in any production;
    ``Σ`` every terminal.  Extra (unused) symbols may be declared
    explicitly which is occasionally useful for queries over labels that
    happen not to occur in a particular grammar.
    """

    def __init__(self, productions: Iterable[Production],
                 extra_nonterminals: Iterable[Nonterminal] = (),
                 extra_terminals: Iterable[Terminal] = (),
                 nullable_diagonal: Iterable[Nonterminal] = ()):
        self._productions: tuple[Production, ...] = tuple(dict.fromkeys(productions))
        self._nullable_diagonal = frozenset(nullable_diagonal)
        nonterminals: set[Nonterminal] = set(extra_nonterminals)
        terminals: set[Terminal] = set(extra_terminals)
        for prod in self._productions:
            nonterminals.update(prod.nonterminals())
            terminals.update(prod.terminals())
        self._nonterminals = frozenset(nonterminals)
        self._terminals = frozenset(terminals)

        by_head: dict[Nonterminal, list[Production]] = defaultdict(list)
        for prod in self._productions:
            by_head[prod.head].append(prod)
        self._by_head: dict[Nonterminal, tuple[Production, ...]] = {
            head: tuple(prods) for head, prods in by_head.items()
        }

        # Index used pervasively by the CFPQ algorithms:
        #   terminal x  ->  {A | (A -> x) in P}
        #   (B, C)      ->  {A | (A -> B C) in P}
        heads_by_terminal: dict[Terminal, set[Nonterminal]] = defaultdict(set)
        heads_by_pair: dict[tuple[Nonterminal, Nonterminal], set[Nonterminal]] = defaultdict(set)
        for prod in self._productions:
            if prod.is_terminal_rule:
                heads_by_terminal[prod.body[0]].add(prod.head)  # type: ignore[index]
            elif prod.is_binary_rule:
                heads_by_pair[(prod.body[0], prod.body[1])].add(prod.head)  # type: ignore[index]
        self._heads_by_terminal: dict[Terminal, frozenset[Nonterminal]] = {
            t: frozenset(heads) for t, heads in heads_by_terminal.items()
        }
        self._heads_by_pair: dict[tuple[Nonterminal, Nonterminal], frozenset[Nonterminal]] = {
            pair: frozenset(heads) for pair, heads in heads_by_pair.items()
        }

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def productions(self) -> tuple[Production, ...]:
        """All productions, in declaration order, duplicates removed."""
        return self._productions

    @property
    def nonterminals(self) -> frozenset[Nonterminal]:
        """The set ``N``."""
        return self._nonterminals

    @property
    def terminals(self) -> frozenset[Terminal]:
        """The alphabet ``Σ``."""
        return self._terminals

    @property
    def nullable_diagonal(self) -> frozenset[Nonterminal]:
        """Non-terminals whose relation contains the identity diagonal.

        The paper's relation semantics counts the empty path ``iπi`` for
        every node, so ``ε ∈ L(G_A)`` puts ``(i, i)`` in ``R_A`` for all
        ``i``.  CNF normalization drops ε-rules; :func:`~repro.grammar.cnf.to_cnf`
        records here which *original* non-terminals were nullable so the
        solvers can seed the diagonal facts the ε-elimination removed.
        Empty for grammars that never derived ε (including any grammar
        already in CNF).
        """
        return self._nullable_diagonal

    def productions_for(self, head: Nonterminal) -> tuple[Production, ...]:
        """Productions whose head is *head* (empty tuple when none)."""
        return self._by_head.get(head, ())

    def heads_for_terminal(self, terminal: Terminal) -> frozenset[Nonterminal]:
        """``{A | (A -> x) ∈ P}`` — the matrix-initialization index."""
        return self._heads_by_terminal.get(terminal, frozenset())

    def heads_for_pair(self, left: Nonterminal,
                       right: Nonterminal) -> frozenset[Nonterminal]:
        """``{A | (A -> B C) ∈ P}`` — the paper's ``N1 · N2`` building block."""
        return self._heads_by_pair.get((left, right), frozenset())

    @property
    def binary_rules(self) -> Iterator[Production]:
        """All CNF pair rules ``A -> B C``."""
        return (p for p in self._productions if p.is_binary_rule)

    @property
    def terminal_rules(self) -> Iterator[Production]:
        """All CNF terminal rules ``A -> x``."""
        return (p for p in self._productions if p.is_terminal_rule)

    @property
    def epsilon_rules(self) -> Iterator[Production]:
        """All ε-rules ``A -> ε`` (absent after normalization)."""
        return (p for p in self._productions if p.is_epsilon)

    def subset_product(self, left: Iterable[Nonterminal],
                       right: Iterable[Nonterminal]) -> set[Nonterminal]:
        """The paper's binary operation ``N1 · N2`` on subsets of ``N``:

        ``N1 · N2 = {A | ∃B ∈ N1, ∃C ∈ N2 : (A -> B C) ∈ P}``.
        """
        result: set[Nonterminal] = set()
        right = tuple(right)
        for b in left:
            for c in right:
                result |= self._heads_by_pair.get((b, c), frozenset())
        return result

    # ------------------------------------------------------------------
    # Shape predicates
    # ------------------------------------------------------------------
    @property
    def is_cnf(self) -> bool:
        """True when every production is ``A -> B C`` or ``A -> x``
        (the paper's grammar shape, Section 2 — no ε-rules)."""
        return all(p.is_cnf for p in self._productions)

    def require_cnf(self, context: str = "this algorithm") -> None:
        """Raise :class:`NotInNormalFormError` unless the grammar is CNF."""
        if not self.is_cnf:
            offenders = [str(p) for p in self._productions if not p.is_cnf]
            raise NotInNormalFormError(
                f"{context} requires a grammar in Chomsky normal form; "
                f"offending productions: {', '.join(offenders[:5])}"
                + ("..." if len(offenders) > 5 else "")
            )

    def require_nonterminal(self, symbol: Nonterminal) -> None:
        """Raise :class:`UnknownSymbolError` when *symbol* is not in ``N``."""
        if symbol not in self._nonterminals:
            known = ", ".join(sorted(str(n) for n in self._nonterminals))
            raise UnknownSymbolError(
                f"non-terminal {symbol} is not part of the grammar (knows: {known})"
            )

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CFG):
            return NotImplemented
        return (set(self._productions) == set(other._productions)
                and self._nonterminals == other._nonterminals
                and self._terminals == other._terminals)

    def __hash__(self) -> int:
        return hash((frozenset(self._productions), self._nonterminals, self._terminals))

    def __len__(self) -> int:
        return len(self._productions)

    def __iter__(self) -> Iterator[Production]:
        return iter(self._productions)

    def __repr__(self) -> str:
        return (f"CFG(|N|={len(self._nonterminals)}, |Σ|={len(self._terminals)}, "
                f"|P|={len(self._productions)})")

    def to_text(self) -> str:
        """Render the grammar in the text DSL accepted by
        :func:`repro.grammar.parser.parse_grammar`."""
        lines = []
        for prod in self._productions:
            rhs = " ".join(str(s) for s in prod.body) if prod.body else str(EPSILON)
            lines.append(f"{prod.head} -> {rhs}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(cls, rules: Mapping[str, Iterable[Iterable[str]]],
                     terminals: Iterable[str]) -> "CFG":
        """Build a grammar from a plain mapping.

        *rules* maps a head name to an iterable of bodies, each body an
        iterable of symbol names; names listed in *terminals* become
        :class:`Terminal`, everything else :class:`Nonterminal`::

            CFG.from_mapping({"S": [["a", "S", "b"], []]}, terminals=["a", "b"])
        """
        terminal_names = set(terminals)
        productions: list[Production] = []
        for head, bodies in rules.items():
            for body in bodies:
                symbols: list[Symbol] = []
                for name in body:
                    if name in terminal_names:
                        symbols.append(Terminal(name))
                    else:
                        symbols.append(Nonterminal(name))
                productions.append(Production(Nonterminal(head), tuple(symbols)))
        return cls(productions)
