"""Grammar substrate: symbols, CFGs, parsing, normal forms, recognizers.

Public surface::

    from repro.grammar import (
        Terminal, Nonterminal, EPSILON, Production, CFG,
        parse_grammar, to_cnf, cyk_recognize, derives,
    )
"""

from .analysis import (
    derives_any_terminal_string,
    generating_nonterminals,
    grammar_signature,
    nullable_nonterminals,
    reachable_symbols,
    remove_useless,
    unit_pairs,
)
from .builders import (
    GRAMMAR_REGISTRY,
    chain_reachability,
    dyck,
    dyck1,
    get_grammar,
    points_to_grammar,
    rna_hairpin_grammar,
    same_generation_query1,
    same_generation_query1_cnf,
    same_generation_query2,
)
from .cfg import CFG
from .cnf import binarize, eliminate_epsilon, eliminate_unit_rules, ensure_cnf, lift_terminals, to_cnf
from .parser import parse_grammar, parse_production
from .production import Production, production
from .recognizer import EarleyRecognizer, cyk_recognize, derives, language_sample
from .symbols import (
    EPSILON,
    INVERSE_SUFFIX,
    Nonterminal,
    Symbol,
    Terminal,
    fresh_nonterminal,
    inverse_label,
    is_inverse_label,
)

__all__ = [
    "CFG",
    "EPSILON",
    "EarleyRecognizer",
    "GRAMMAR_REGISTRY",
    "INVERSE_SUFFIX",
    "Nonterminal",
    "Production",
    "Symbol",
    "Terminal",
    "binarize",
    "chain_reachability",
    "cyk_recognize",
    "derives",
    "derives_any_terminal_string",
    "dyck",
    "dyck1",
    "eliminate_epsilon",
    "eliminate_unit_rules",
    "ensure_cnf",
    "fresh_nonterminal",
    "generating_nonterminals",
    "get_grammar",
    "grammar_signature",
    "inverse_label",
    "is_inverse_label",
    "language_sample",
    "lift_terminals",
    "nullable_nonterminals",
    "parse_grammar",
    "parse_production",
    "points_to_grammar",
    "production",
    "reachable_symbols",
    "remove_useless",
    "rna_hairpin_grammar",
    "same_generation_query1",
    "same_generation_query1_cnf",
    "same_generation_query2",
    "to_cnf",
    "unit_pairs",
]
