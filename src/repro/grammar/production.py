"""Grammar productions.

A production is ``head -> body`` where *head* is a non-terminal and
*body* is a (possibly empty) tuple of symbols.  The empty body encodes an
ε-production, matching the paper's treatment where ε-rules exist in the
source grammar but are eliminated by the normal-form transformation
(only the empty paths ``mπm`` correspond to ε, see Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .symbols import Nonterminal, Symbol, Terminal


@dataclass(frozen=True, slots=True)
class Production:
    """A single production rule ``head -> body``."""

    head: Nonterminal
    body: tuple[Symbol, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.head, Nonterminal):
            raise TypeError(f"production head must be a Nonterminal, got {self.head!r}")
        for symbol in self.body:
            if not isinstance(symbol, (Terminal, Nonterminal)):
                raise TypeError(
                    f"production body may contain only Terminal/Nonterminal, got {symbol!r}"
                )

    # ------------------------------------------------------------------
    # Shape predicates used by the CNF pipeline and the core algorithms.
    # ------------------------------------------------------------------
    @property
    def is_epsilon(self) -> bool:
        """True for ``A -> ε``."""
        return len(self.body) == 0

    @property
    def is_terminal_rule(self) -> bool:
        """True for ``A -> x`` with ``x`` a terminal (CNF terminal rule)."""
        return len(self.body) == 1 and isinstance(self.body[0], Terminal)

    @property
    def is_binary_rule(self) -> bool:
        """True for ``A -> B C`` with both symbols non-terminals (CNF pair rule)."""
        return (
            len(self.body) == 2
            and isinstance(self.body[0], Nonterminal)
            and isinstance(self.body[1], Nonterminal)
        )

    @property
    def is_unit_rule(self) -> bool:
        """True for ``A -> B`` with ``B`` a non-terminal."""
        return len(self.body) == 1 and isinstance(self.body[0], Nonterminal)

    @property
    def is_cnf(self) -> bool:
        """True when the production fits Chomsky normal form (no ε-rules,
        matching the paper's grammar definition in Section 2)."""
        return self.is_terminal_rule or self.is_binary_rule

    def nonterminals(self) -> Iterable[Nonterminal]:
        """All non-terminals mentioned by the production (head included)."""
        yield self.head
        for symbol in self.body:
            if isinstance(symbol, Nonterminal):
                yield symbol

    def terminals(self) -> Iterable[Terminal]:
        """All terminals in the body."""
        for symbol in self.body:
            if isinstance(symbol, Terminal):
                yield symbol

    def __str__(self) -> str:
        rhs = " ".join(str(symbol) for symbol in self.body) if self.body else "eps"
        return f"{self.head} -> {rhs}"


def production(head: str, *body_symbols: str | Symbol,
               terminals: set[str] | None = None) -> Production:
    """Convenience constructor used heavily in tests and examples.

    String body items are interpreted as non-terminals unless listed in
    *terminals* (or already Symbol instances).  Example::

        production("S", "a", "S", "b", terminals={"a", "b"})
    """
    terminal_names = terminals or set()
    body: list[Symbol] = []
    for item in body_symbols:
        if isinstance(item, (Terminal, Nonterminal)):
            body.append(item)
        elif item in terminal_names:
            body.append(Terminal(item))
        else:
            body.append(Nonterminal(item))
    return Production(Nonterminal(head), tuple(body))
