"""String recognizers used as oracles in tests and for path validation.

* :func:`cyk_recognize` — the classical CYK dynamic program over a CNF
  grammar.  This is the table Valiant's algorithm (and, transitively,
  the paper's Algorithm 1) computes; we use it to validate extracted
  paths and to property-test the CNF transformation.
* :class:`EarleyRecognizer` — an Earley parser that accepts **arbitrary**
  grammars (ε-rules, unit rules, long bodies).  It serves as the
  independent oracle: CYK-after-CNF must agree with Earley-on-original.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Sequence

from .cfg import CFG
from .symbols import Nonterminal, Terminal


def cyk_recognize(grammar: CFG, start: Nonterminal,
                  word: Sequence[str]) -> bool:
    """Decide ``start ⇒* word`` for a CNF grammar with the CYK algorithm.

    *word* is a sequence of terminal labels.  The empty word is rejected
    (CNF grammars here carry no ε-rules, mirroring the paper).
    """
    grammar.require_cnf("CYK recognition")
    n = len(word)
    if n == 0:
        return False

    # table[i][j] = set of non-terminals deriving word[i : i + j + 1]
    table: list[list[set[Nonterminal]]] = [
        [set() for _ in range(n)] for _ in range(n)
    ]
    for i, label in enumerate(word):
        table[i][0] = set(grammar.heads_for_terminal(Terminal(label)))

    for span in range(2, n + 1):            # substring length
        for i in range(n - span + 1):        # start position
            cell = table[i][span - 1]
            for split in range(1, span):     # left part length
                left = table[i][split - 1]
                right = table[i + split][span - split - 1]
                if left and right:
                    cell |= grammar.subset_product(left, right)
    return start in table[0][n - 1]


@dataclass(frozen=True, slots=True)
class _EarleyItem:
    head: Nonterminal
    body: tuple
    dot: int
    origin: int

    @property
    def next_symbol(self):
        return self.body[self.dot] if self.dot < len(self.body) else None

    @property
    def finished(self) -> bool:
        return self.dot >= len(self.body)

    def advanced(self) -> "_EarleyItem":
        return _EarleyItem(self.head, self.body, self.dot + 1, self.origin)


class EarleyRecognizer:
    """Earley recognition for arbitrary CFGs (the independent oracle).

    Handles ε-productions via the standard "magic completion" fix
    (Aycock & Horspool): when predicting a nullable non-terminal, also
    advance over it immediately.
    """

    def __init__(self, grammar: CFG):
        self.grammar = grammar
        from .analysis import nullable_nonterminals
        self._nullable = nullable_nonterminals(grammar)

    def recognizes(self, start: Nonterminal, word: Sequence[str]) -> bool:
        """Decide ``start ⇒* word`` (the empty word is allowed here)."""
        grammar = self.grammar
        n = len(word)
        chart: list[set[_EarleyItem]] = [set() for _ in range(n + 1)]
        # Wrapper item so we do not need a dedicated start production.
        goal = Nonterminal("__earley_goal__")
        root = _EarleyItem(goal, (start,), 0, 0)
        chart[0].add(root)

        for position in range(n + 1):
            worklist = list(chart[position])
            while worklist:
                item = worklist.pop()
                symbol = item.next_symbol
                if symbol is None:
                    # Completion: advance every item waiting on item.head.
                    for waiting in list(chart[item.origin]):
                        if waiting.next_symbol == item.head:
                            advanced = waiting.advanced()
                            if advanced not in chart[position]:
                                chart[position].add(advanced)
                                worklist.append(advanced)
                elif isinstance(symbol, Nonterminal):
                    # Prediction.
                    for prod in grammar.productions_for(symbol):
                        predicted = _EarleyItem(symbol, prod.body, 0, position)
                        if predicted not in chart[position]:
                            chart[position].add(predicted)
                            worklist.append(predicted)
                    if symbol in self._nullable:
                        advanced = item.advanced()
                        if advanced not in chart[position]:
                            chart[position].add(advanced)
                            worklist.append(advanced)
                else:
                    # Scan.
                    if position < n and word[position] == symbol.label:
                        advanced = item.advanced()
                        if advanced not in chart[position + 1]:
                            chart[position + 1].add(advanced)

        return any(
            item.head == goal and item.finished and item.origin == 0
            for item in chart[n]
        )


def derives(grammar: CFG, start: Nonterminal, word: Sequence[str]) -> bool:
    """Decide ``start ⇒* word`` for an arbitrary grammar (Earley)."""
    return EarleyRecognizer(grammar).recognizes(start, word)


def language_sample(grammar: CFG, start: Nonterminal, max_length: int,
                    alphabet: Sequence[str] | None = None) -> list[tuple[str, ...]]:
    """Enumerate all words of ``L(G_start)`` up to *max_length* by brute
    force over the alphabet — exponential, only for tiny test grammars."""
    from itertools import product as iter_product

    labels = list(alphabet) if alphabet is not None else sorted(
        t.label for t in grammar.terminals
    )
    recognizer = EarleyRecognizer(grammar)
    words: list[tuple[str, ...]] = []
    if recognizer.recognizes(start, ()):
        words.append(())
    for length in range(1, max_length + 1):
        for candidate in iter_product(labels, repeat=length):
            if recognizer.recognizes(start, candidate):
                words.append(candidate)
    return words
