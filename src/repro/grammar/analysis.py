"""Static analyses over context-free grammars.

These fixpoint computations underpin the Chomsky-normal-form pipeline
(:mod:`repro.grammar.cnf`) and several sanity checks in the query engine:

* :func:`nullable_nonterminals`   — ``{A | A ⇒* ε}``
* :func:`generating_nonterminals` — ``{A | A ⇒* w, w ∈ Σ*}``
* :func:`reachable_symbols`       — symbols reachable from a start symbol
* :func:`remove_useless`          — drop non-generating / unreachable symbols
* :func:`unit_pairs`              — the reflexive-transitive unit-rule relation
"""

from __future__ import annotations

from collections import defaultdict

from .cfg import CFG
from .production import Production
from .symbols import Nonterminal, Symbol, Terminal


def nullable_nonterminals(grammar: CFG) -> frozenset[Nonterminal]:
    """Compute ``{A ∈ N | A ⇒* ε}`` by the standard fixpoint iteration."""
    nullable: set[Nonterminal] = set()
    changed = True
    while changed:
        changed = False
        for prod in grammar.productions:
            if prod.head in nullable:
                continue
            if all(isinstance(s, Nonterminal) and s in nullable for s in prod.body):
                nullable.add(prod.head)
                changed = True
    return frozenset(nullable)


def generating_nonterminals(grammar: CFG) -> frozenset[Nonterminal]:
    """Compute the non-terminals that derive at least one terminal string
    (including ε)."""
    generating: set[Nonterminal] = set()
    changed = True
    while changed:
        changed = False
        for prod in grammar.productions:
            if prod.head in generating:
                continue
            if all(isinstance(s, Terminal) or s in generating for s in prod.body):
                generating.add(prod.head)
                changed = True
    return frozenset(generating)


def reachable_symbols(grammar: CFG, start: Nonterminal) -> frozenset[Symbol]:
    """Symbols reachable from *start* through productions (BFS over rules)."""
    reached: set[Symbol] = {start}
    frontier: list[Nonterminal] = [start]
    while frontier:
        head = frontier.pop()
        for prod in grammar.productions_for(head):
            for symbol in prod.body:
                if symbol not in reached:
                    reached.add(symbol)
                    if isinstance(symbol, Nonterminal):
                        frontier.append(symbol)
    return frozenset(reached)


def remove_non_generating(grammar: CFG) -> CFG:
    """Drop productions mentioning non-generating non-terminals."""
    generating = generating_nonterminals(grammar)
    kept = [
        prod for prod in grammar.productions
        if prod.head in generating
        and all(isinstance(s, Terminal) or s in generating for s in prod.body)
    ]
    return CFG(kept)


def remove_unreachable(grammar: CFG, start: Nonterminal) -> CFG:
    """Drop productions whose head is unreachable from *start*."""
    reached = reachable_symbols(grammar, start)
    kept = [prod for prod in grammar.productions if prod.head in reached]
    return CFG(kept, extra_nonterminals=[start])


def remove_useless(grammar: CFG, start: Nonterminal) -> CFG:
    """Standard useless-symbol elimination: first non-generating symbols,
    then unreachable ones (the order matters)."""
    return remove_unreachable(remove_non_generating(grammar), start)


def unit_pairs(grammar: CFG) -> dict[Nonterminal, frozenset[Nonterminal]]:
    """The unit-pair relation: for every ``A`` the set
    ``{B | A ⇒* B using only unit rules}`` (reflexive, transitive)."""
    direct: dict[Nonterminal, set[Nonterminal]] = defaultdict(set)
    for prod in grammar.productions:
        if prod.is_unit_rule:
            direct[prod.head].add(prod.body[0])  # type: ignore[arg-type]

    closure: dict[Nonterminal, set[Nonterminal]] = {
        nt: {nt} for nt in grammar.nonterminals
    }
    changed = True
    while changed:
        changed = False
        for head, reachable in closure.items():
            new = set()
            for mid in reachable:
                new |= direct.get(mid, set())
            if not new <= reachable:
                reachable |= new
                changed = True
    return {nt: frozenset(rs) for nt, rs in closure.items()}


def derives_any_terminal_string(grammar: CFG, start: Nonterminal) -> bool:
    """True when ``L(G_start)`` is non-empty (ε counts)."""
    return start in generating_nonterminals(grammar)


def grammar_signature(grammar: CFG) -> dict[str, int]:
    """A small structural summary used in logging/benchmark reports."""
    shapes = defaultdict(int)
    for prod in grammar.productions:
        if prod.is_epsilon:
            shapes["epsilon"] += 1
        elif prod.is_terminal_rule:
            shapes["terminal"] += 1
        elif prod.is_binary_rule:
            shapes["binary"] += 1
        elif prod.is_unit_rule:
            shapes["unit"] += 1
        else:
            shapes["long"] += 1
    return {
        "nonterminals": len(grammar.nonterminals),
        "terminals": len(grammar.terminals),
        "productions": len(grammar.productions),
        **shapes,
    }
