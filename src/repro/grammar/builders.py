"""Ready-made query grammars from the paper and the CFPQ literature.

These builders return grammars **as written in the paper's figures**
(i.e. *not* normalized); pass them through :func:`repro.grammar.cnf.to_cnf`
or let the engine normalize on demand.

* :func:`same_generation_query1` — the paper's Query 1 (Figure 10), also
  the §4.3 worked example (Figure 3): same-layer concepts via
  ``subClassOf``/``type`` and their inverses.
* :func:`same_generation_query1_cnf` — the hand-normalized form of
  Figure 4 with the paper's exact non-terminal names S, S1..S6.
* :func:`same_generation_query2` — Query 2 (Figure 11): adjacent layers.
* :func:`dyck1` / :func:`dyck` — balanced brackets (classic CFPQ worst
  case and the RNA-folding motivation from the paper's introduction).
* :func:`points_to_grammar` — the field-insensitive Andersen-style
  points-to grammar used in CFL-reachability static analysis [20, 26].
* :func:`rna_hairpin_grammar` — toy RNA secondary-structure grammar
  (complementary base pairing), motivating example from bioinformatics.
"""

from __future__ import annotations

from .cfg import CFG
from .parser import parse_grammar
from .symbols import Nonterminal, Terminal

#: Canonical edge labels for the ontology queries.
SUBCLASSOF = "subClassOf"
SUBCLASSOF_R = "subClassOf_r"
TYPE = "type"
TYPE_R = "type_r"


def same_generation_query1() -> CFG:
    """The paper's Query 1 grammar G1 (Figure 10 / Figure 3).

    Retrieves concepts on the same layer of the class hierarchy::

        S -> subClassOf_r S subClassOf
        S -> type_r S type
        S -> subClassOf_r subClassOf
        S -> type_r type
    """
    return parse_grammar(
        """
        S -> subClassOf_r S subClassOf
        S -> type_r S type
        S -> subClassOf_r subClassOf
        S -> type_r type
        """,
        terminals=[SUBCLASSOF, SUBCLASSOF_R, TYPE, TYPE_R],
    )


def same_generation_query1_cnf() -> CFG:
    """The paper's hand-normalized G1' (Figure 4), with the exact
    non-terminal names used in the §4.3 worked example::

        S  -> S1 S5 | S3 S6 | S1 S2 | S3 S4
        S5 -> S S2
        S6 -> S S4
        S1 -> subClassOf_r      S2 -> subClassOf
        S3 -> type_r            S4 -> type
    """
    return parse_grammar(
        """
        S -> S1 S5
        S -> S3 S6
        S -> S1 S2
        S -> S3 S4
        S5 -> S S2
        S6 -> S S4
        S1 -> subClassOf_r
        S2 -> subClassOf
        S3 -> type_r
        S4 -> type
        """,
        terminals=[SUBCLASSOF, SUBCLASSOF_R, TYPE, TYPE_R],
    )


def same_generation_query2() -> CFG:
    """The paper's Query 2 grammar G2 (Figure 11).

    Retrieves concepts on adjacent layers::

        S -> B subClassOf
        S -> subClassOf
        B -> subClassOf_r B subClassOf
        B -> subClassOf_r subClassOf
    """
    return parse_grammar(
        """
        S -> B subClassOf
        S -> subClassOf
        B -> subClassOf_r B subClassOf
        B -> subClassOf_r subClassOf
        """,
        terminals=[SUBCLASSOF, SUBCLASSOF_R],
    )


def dyck1(open_label: str = "a", close_label: str = "b") -> CFG:
    """Dyck language of one bracket pair (non-empty words)::

        S -> open S close | open close | S S
    """
    return parse_grammar(
        f"""
        S -> {open_label} S {close_label}
        S -> {open_label} {close_label}
        S -> S S
        """,
        terminals=[open_label, close_label],
    )


def dyck(pairs: list[tuple[str, str]]) -> CFG:
    """Dyck language over several bracket pairs (non-empty words)."""
    if not pairs:
        raise ValueError("dyck grammar needs at least one bracket pair")
    lines = ["S -> S S"]
    terminals: list[str] = []
    for open_label, close_label in pairs:
        lines.append(f"S -> {open_label} S {close_label}")
        lines.append(f"S -> {open_label} {close_label}")
        terminals.extend((open_label, close_label))
    return parse_grammar("\n".join(lines), terminals=terminals)


def points_to_grammar() -> CFG:
    """Field-insensitive Andersen-style points-to / alias grammar.

    Over labels ``d`` (direct assignment / address-of, drawn from the
    static-analysis CFL-reachability literature [20]) and ``a``
    (assignment), with inverses ``d_r``/``a_r``::

        PT     -> d_r  VF
        VF     -> a_r VF | eps-like chain (here: a_r VF | a_r | eps handled as unit)
    For simplicity we use the memory-alias formulation:

        M -> d_r V d          (two pointers alias when value-flows meet)
        V -> A M? A_r-chains, flattened below.
    """
    return parse_grammar(
        """
        M -> d_r V d
        V -> A M Ar
        V -> A Ar
        V -> A M
        V -> M Ar
        V -> A
        V -> Ar
        V -> M
        A -> a
        A -> a A
        Ar -> a_r
        Ar -> a_r Ar
        """,
        terminals=["a", "a_r", "d", "d_r"],
    )


def rna_hairpin_grammar() -> CFG:
    """Toy RNA secondary-structure (hairpin/stem) grammar over base labels.

    A stem pairs complementary bases around a folded region::

        S -> a S u | u S a | c S g | g S c
        S -> a u | u a | c g | g c
    """
    return parse_grammar(
        """
        S -> a S u
        S -> u S a
        S -> c S g
        S -> g S c
        S -> a u
        S -> u a
        S -> c g
        S -> g c
        """,
        terminals=["a", "u", "c", "g"],
    )


def chain_reachability(label: str = "a") -> CFG:
    """Plain transitive reachability over one label — the regular
    baseline query, useful in benchmarks for calibration::

        S -> a | a S
    """
    return parse_grammar(f"S -> {label}\nS -> {label} S", terminals=[label])


#: Name → builder registry, used by the CLI and benchmarks.
GRAMMAR_REGISTRY = {
    "query1": same_generation_query1,
    "query1-cnf": same_generation_query1_cnf,
    "query2": same_generation_query2,
    "dyck1": dyck1,
    "points-to": points_to_grammar,
    "rna": rna_hairpin_grammar,
    "chain": chain_reachability,
}


def get_grammar(name: str) -> CFG:
    """Look up a named grammar; raises ``KeyError`` with the known names."""
    try:
        return GRAMMAR_REGISTRY[name]()
    except KeyError:
        raise KeyError(
            f"unknown grammar {name!r}; known: {', '.join(sorted(GRAMMAR_REGISTRY))}"
        ) from None
