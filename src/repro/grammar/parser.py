"""Text format for grammars.

The DSL is line-oriented and mirrors the notation of the paper's figures::

    # comments start with '#'
    S -> subClassOf_r S subClassOf
    S -> type_r S type
    S -> subClassOf_r subClassOf | type_r type

Conventions:

* ``->`` (or ``→``) separates head and bodies; ``|`` separates
  alternative bodies on one line.
* Symbols are whitespace-separated tokens.
* A token is a **terminal** when it is quoted (``'a'`` / ``"a"``), when
  it appears in the explicit *terminals* argument, or — by default
  heuristic — when it never occurs as the head of any rule.
* ``eps``, ``epsilon`` and ``ε`` denote the empty body.

The heuristic matches how grammars are written in the CFPQ literature
(heads are the non-terminals; everything else is an edge label), while
the explicit argument keeps corner cases unambiguous.
"""

from __future__ import annotations

import re
from typing import Iterable

from ..errors import GrammarParseError
from .cfg import CFG
from .production import Production
from .symbols import Nonterminal, Symbol, Terminal

_ARROW_RE = re.compile(r"->|→")
_EPSILON_TOKENS = {"eps", "epsilon", "ε"}
_QUOTED_RE = re.compile(r"""^(['"])(.+)\1$""")


def _tokenize_body(body_text: str) -> list[str]:
    return [token for token in body_text.split() if token]


def parse_grammar(text: str, terminals: Iterable[str] | None = None,
                  nonterminals: Iterable[str] | None = None) -> CFG:
    """Parse grammar *text* into a :class:`CFG`.

    Parameters
    ----------
    text:
        The grammar source, one or more rules.
    terminals:
        Optional explicit terminal names; overrides the heads heuristic.
    nonterminals:
        Optional explicit non-terminal names (useful when a non-terminal
        never appears as a head, which cannot be inferred).

    Raises
    ------
    GrammarParseError
        On malformed lines, empty heads, or symbols declared as both
        terminal and non-terminal.
    """
    explicit_terminals = set(terminals or ())
    explicit_nonterminals = set(nonterminals or ())
    conflict = explicit_terminals & explicit_nonterminals
    if conflict:
        raise GrammarParseError(
            f"symbols declared both terminal and non-terminal: {sorted(conflict)}"
        )

    # First pass: split into (head, body-token-list) entries.
    raw_rules: list[tuple[str, list[str], int, str]] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        parts = _ARROW_RE.split(line, maxsplit=1)
        if len(parts) != 2:
            raise GrammarParseError("expected 'HEAD -> body'", line_number, raw_line)
        head = parts[0].strip()
        if not head or len(head.split()) != 1:
            raise GrammarParseError(
                f"rule head must be a single symbol, got {head!r}", line_number, raw_line
            )
        for alternative in parts[1].split("|"):
            tokens = _tokenize_body(alternative)
            raw_rules.append((head, tokens, line_number, raw_line))

    if not raw_rules:
        raise GrammarParseError("grammar text contains no rules")

    heads = {head for head, _tokens, _ln, _raw in raw_rules}
    bad_heads = heads & explicit_terminals
    if bad_heads:
        raise GrammarParseError(
            f"symbols {sorted(bad_heads)} are rule heads but were declared terminal"
        )

    def classify(token: str, line_number: int, raw_line: str) -> Symbol:
        quoted = _QUOTED_RE.match(token)
        if quoted:
            return Terminal(quoted.group(2))
        if token in explicit_terminals:
            return Terminal(token)
        if token in explicit_nonterminals or token in heads:
            return Nonterminal(token)
        return Terminal(token)

    productions: list[Production] = []
    for head, tokens, line_number, raw_line in raw_rules:
        if len(tokens) == 1 and tokens[0].lower() in _EPSILON_TOKENS:
            body: tuple[Symbol, ...] = ()
        elif any(token.lower() in _EPSILON_TOKENS for token in tokens) and len(tokens) > 1:
            raise GrammarParseError(
                "epsilon may not be mixed with other symbols in one body",
                line_number, raw_line,
            )
        else:
            body = tuple(classify(token, line_number, raw_line) for token in tokens)
        productions.append(Production(Nonterminal(head), body))

    extra_nt = [Nonterminal(name) for name in explicit_nonterminals]
    extra_t = [Terminal(name) for name in explicit_terminals]
    return CFG(productions, extra_nonterminals=extra_nt, extra_terminals=extra_t)


def parse_production(line: str, terminals: Iterable[str] | None = None) -> Production:
    """Parse a single rule line; convenience wrapper over :func:`parse_grammar`."""
    grammar = parse_grammar(line, terminals=terminals)
    if len(grammar.productions) != 1:
        raise GrammarParseError(f"expected exactly one production in {line!r}")
    return grammar.productions[0]
