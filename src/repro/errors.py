"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch one base class.  Subclasses are
grouped by subsystem (grammar, graph, matrices, engine) and carry enough
context in their message to be actionable without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GrammarError(ReproError):
    """Base class for grammar-related errors."""


class GrammarParseError(GrammarError):
    """Raised when grammar text cannot be parsed.

    Carries the offending line number (1-based) and line text when known.
    """

    def __init__(self, message: str, line_number: int | None = None,
                 line_text: str | None = None):
        self.line_number = line_number
        self.line_text = line_text
        if line_number is not None:
            message = f"line {line_number}: {message}"
            if line_text is not None:
                message = f"{message}\n    {line_text.strip()}"
        super().__init__(message)


class NotInNormalFormError(GrammarError):
    """Raised when an algorithm requiring Chomsky normal form receives a
    grammar that is not in that form."""


class UnknownSymbolError(GrammarError):
    """Raised when a symbol referenced by a query is not part of the grammar."""


class GraphError(ReproError):
    """Base class for graph-related errors."""


class GraphParseError(GraphError):
    """Raised when graph/RDF input text cannot be parsed."""

    def __init__(self, message: str, line_number: int | None = None,
                 line_text: str | None = None):
        self.line_number = line_number
        self.line_text = line_text
        if line_number is not None:
            message = f"line {line_number}: {message}"
            if line_text is not None:
                message = f"{message}\n    {line_text.strip()}"
        super().__init__(message)


class UnknownNodeError(GraphError):
    """Raised when a query references a node absent from the graph."""


class MatrixError(ReproError):
    """Base class for boolean-matrix backend errors."""


class DimensionMismatchError(MatrixError):
    """Raised when two matrices with incompatible shapes are combined."""


class UnknownBackendError(MatrixError):
    """Raised when a backend name is not registered."""

    def __init__(self, name: str, available: list[str]):
        self.name = name
        self.available = sorted(available)
        super().__init__(
            f"unknown matrix backend {name!r}; available: {', '.join(self.available)}"
        )


class EngineError(ReproError):
    """Base class for query-engine errors."""


class UnknownStrategyError(EngineError):
    """Raised when a closure strategy name is not registered."""

    def __init__(self, name: str, available: list[str]):
        self.name = name
        self.available = sorted(available)
        super().__init__(
            f"unknown closure strategy {name!r}; "
            f"available: {', '.join(self.available)}"
        )


class UnknownSchedulerError(EngineError):
    """Raised when a tile scheduler name is not registered."""

    def __init__(self, name: str, available: list[str]):
        self.name = name
        self.available = sorted(available)
        super().__init__(
            f"unknown tile scheduler {name!r}; "
            f"available: {', '.join(self.available)}"
        )


class SemanticsError(EngineError):
    """Raised when an unsupported query semantics is requested."""


class PathNotFoundError(EngineError):
    """Raised when path extraction is asked for a pair not in the relation."""


class DatasetError(ReproError):
    """Raised for unknown dataset names or malformed dataset specs."""


class ServiceError(ReproError):
    """Base class for query-service and snapshot-store errors."""


class SnapshotError(ServiceError):
    """Raised when a snapshot file is missing, malformed, or references
    a backend/semiring unavailable in the loading process."""


class ReplicationError(ServiceError):
    """Base class for write-ahead-log and replication errors."""


class WALError(ReplicationError):
    """Raised when a write-ahead tick log cannot be opened, is corrupt
    beyond its recoverable tail, or violates sequence monotonicity."""


class ReadOnlyReplicaError(ReplicationError):
    """Raised when a write operation reaches a read-only follower.

    Followers converge by replaying the leader's tick log; accepting a
    direct write would fork them from the replicated history."""


class SnapshotVersionError(SnapshotError):
    """Raised when a snapshot was written by an incompatible format
    version."""

    def __init__(self, found: object, supported: tuple[int, ...]):
        self.found = found
        self.supported = supported
        super().__init__(
            f"snapshot format version {found!r} is not supported "
            f"(this build reads versions: {', '.join(map(str, supported))}); "
            "re-create the snapshot with the current library"
        )
