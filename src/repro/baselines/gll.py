"""GLL-style top-down CFPQ baseline [9].

Grigorev & Ragozina evaluate CFPQ with a generalized top-down (GLL)
parser driven by *descriptors* — (grammar slot, graph position, call
origin) triples, deduplicated so each is processed once.  This module
implements the same descriptor discipline on graphs:

* a **call** is ``(A, i)`` — "derive A along some path starting at i";
* a **descriptor** is ``(head, origin, body, dot, node)`` — progress of
  one production body through the graph;
* calls are memoized and cyclic/left-recursive grammars are handled by
  *subscription*: a descriptor paused at a non-terminal subscribes to
  the callee's result set and is resumed for every result discovered
  later (the role the GSS plays in GLL).

Unlike the matrix engine this baseline consumes the **original**
grammar: no CNF transformation, ε-rules and long bodies are processed
directly, matching how the paper's F# GLL baseline consumes queries.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Iterable

from ..core.relations import ContextFreeRelations
from ..grammar.cfg import CFG
from ..grammar.symbols import Nonterminal, Symbol, Terminal
from ..graph.labeled_graph import LabeledGraph

#: A paused/running production traversal.
_Descriptor = tuple[Nonterminal, int, tuple[Symbol, ...], int, int]


class GLLSolver:
    """Descriptor-driven top-down CFPQ evaluation."""

    def __init__(self, graph: LabeledGraph, grammar: CFG):
        self.graph = graph
        self.grammar = grammar
        # successors by label: (node, label) -> [targets]
        self._successors: dict[tuple[int, str], list[int]] = defaultdict(list)
        for i, label, j in graph.edges_by_id():
            self._successors[(i, label)].append(j)

        self._results: dict[tuple[Nonterminal, int], set[int]] = {}
        self._subscribers: dict[tuple[Nonterminal, int], list[_Descriptor]] = \
            defaultdict(list)
        self._seen: set[_Descriptor] = set()
        self._pending: deque[_Descriptor] = deque()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def reachable_from(self, start: Nonterminal, origin: int) -> frozenset[int]:
        """All nodes j with a path ``origin π j`` and ``start ⇒* l(π)``."""
        self._demand_call(start, origin)
        self._run()
        return frozenset(self._results.get((start, origin), ()))

    def relation(self, start: Nonterminal) -> frozenset[tuple[int, int]]:
        """``R_start`` over all origins."""
        for origin in range(self.graph.node_count):
            self._demand_call(start, origin)
        self._run()
        return frozenset(
            (origin, j)
            for origin in range(self.graph.node_count)
            for j in self._results.get((start, origin), ())
        )

    # ------------------------------------------------------------------
    # Engine
    # ------------------------------------------------------------------
    def _demand_call(self, nonterminal: Nonterminal, origin: int) -> None:
        key = (nonterminal, origin)
        if key in self._results:
            return
        self._results[key] = set()
        for production in self.grammar.productions_for(nonterminal):
            self._schedule((nonterminal, origin, production.body, 0, origin))

    def _schedule(self, descriptor: _Descriptor) -> None:
        if descriptor not in self._seen:
            self._seen.add(descriptor)
            self._pending.append(descriptor)

    def _record_result(self, nonterminal: Nonterminal, origin: int,
                       node: int) -> None:
        key = (nonterminal, origin)
        results = self._results.setdefault(key, set())
        if node in results:
            return
        results.add(node)
        # Resume every descriptor paused on this call.
        for head, sub_origin, body, dot, _paused_node in self._subscribers[key]:
            self._schedule((head, sub_origin, body, dot + 1, node))

    def _run(self) -> None:
        while self._pending:
            head, origin, body, dot, node = self._pending.popleft()
            if dot == len(body):
                self._record_result(head, origin, node)
                continue
            symbol = body[dot]
            if isinstance(symbol, Terminal):
                for target in self._successors.get((node, symbol.label), ()):
                    self._schedule((head, origin, body, dot + 1, target))
            else:
                key = (symbol, node)
                self._subscribers[key].append((head, origin, body, dot, node))
                self._demand_call(symbol, node)
                for result_node in list(self._results.get(key, ())):
                    self._schedule((head, origin, body, dot + 1, result_node))

    # ------------------------------------------------------------------
    # Introspection (benchmark reporting)
    # ------------------------------------------------------------------
    @property
    def descriptor_count(self) -> int:
        """Distinct descriptors processed — the GLL work measure."""
        return len(self._seen)


def solve_gll(graph: LabeledGraph, grammar: CFG,
              nonterminals: Iterable[Nonterminal | str] | None = None,
              ) -> ContextFreeRelations:
    """Evaluate ``R_A`` for the requested non-terminals (default: all).

    ε-rules make ``(i, i)`` pairs appear for nullable symbols — the
    empty-path facts the paper's relation semantics requires.  The
    matrix engine seeds the same diagonals from the nullable set
    recorded during normalization (``CFG.nullable_diagonal``), so the
    two agree exactly (locked in
    ``tests/core/test_random_grammar_agreement.py``).
    """
    solver = GLLSolver(graph, grammar)
    if nonterminals is None:
        wanted = sorted(grammar.nonterminals, key=lambda nt: nt.name)
    else:
        wanted = [
            nt if isinstance(nt, Nonterminal) else Nonterminal(nt)
            for nt in nonterminals
        ]
    return ContextFreeRelations(
        graph, {nt: solver.relation(nt) for nt in wanted}
    )
