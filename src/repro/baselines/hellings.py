"""Hellings-style worklist CFPQ baseline [11].

The classical cubic algorithm for context-free relations, predating the
matrix formulation: maintain a worklist of derived facts ``(A, i, j)``;
for each popped fact try to extend it on both sides through every pair
rule.  This is the algorithm the paper's reduction re-expresses as a
transitive closure, so the two must produce identical relations — the
cross-implementation property tests rely on that.

Complexity: O(|N|²·|V|³) worst case, with small constants; usually the
strongest pure-Python baseline on small graphs, which matches the
paper's observation that the GLL baseline wins on the small ontologies
and loses on the large g1–g3 graphs.
"""

from __future__ import annotations

from collections import defaultdict, deque

from ..grammar.cfg import CFG
from ..grammar.cnf import ensure_cnf
from ..grammar.symbols import Nonterminal, Terminal
from ..graph.labeled_graph import LabeledGraph
from ..core.relations import ContextFreeRelations


def solve_hellings(graph: LabeledGraph, grammar: CFG,
                   normalize: bool = True) -> ContextFreeRelations:
    """Compute every ``R_A`` with the worklist algorithm."""
    working_grammar = ensure_cnf(grammar) if normalize else grammar
    working_grammar.require_cnf("the Hellings baseline")

    # result[A] = set of (i, j); plus adjacency views for fast extension.
    result: dict[Nonterminal, set[tuple[int, int]]] = defaultdict(set)
    by_source: dict[tuple[Nonterminal, int], set[int]] = defaultdict(set)
    by_target: dict[tuple[Nonterminal, int], set[int]] = defaultdict(set)
    worklist: deque[tuple[Nonterminal, int, int]] = deque()

    def add_fact(nonterminal: Nonterminal, i: int, j: int) -> None:
        if (i, j) not in result[nonterminal]:
            result[nonterminal].add((i, j))
            by_source[(nonterminal, i)].add(j)
            by_target[(nonterminal, j)].add(i)
            worklist.append((nonterminal, i, j))

    # Base facts from terminal rules (Algorithm 1's initialization),
    # plus the empty-path diagonal for originally-nullable symbols.
    for nonterminal in working_grammar.nullable_diagonal:
        for i in range(graph.node_count):
            add_fact(nonterminal, i, i)
    for i, label, j in graph.edges_by_id():
        for head in working_grammar.heads_for_terminal(Terminal(label)):
            add_fact(head, i, j)

    # Pair rules indexed both ways.
    rules_by_left: dict[Nonterminal, list[tuple[Nonterminal, Nonterminal]]] = defaultdict(list)
    rules_by_right: dict[Nonterminal, list[tuple[Nonterminal, Nonterminal]]] = defaultdict(list)
    for rule in working_grammar.binary_rules:
        left, right = rule.body  # type: ignore[misc]
        rules_by_left[left].append((rule.head, right))     # type: ignore[index,arg-type]
        rules_by_right[right].append((rule.head, left))    # type: ignore[index,arg-type]

    while worklist:
        nonterminal, i, j = worklist.popleft()
        # Popped fact as the LEFT part: A -> nonterminal C needs (C, j, k).
        for head, right in rules_by_left.get(nonterminal, ()):
            for k in list(by_source.get((right, j), ())):
                add_fact(head, i, k)
        # Popped fact as the RIGHT part: A -> B nonterminal needs (B, k, i).
        for head, left in rules_by_right.get(nonterminal, ()):
            for k in list(by_target.get((left, i), ())):
                add_fact(head, k, j)

    return ContextFreeRelations(
        graph,
        {nt: result.get(nt, set()) for nt in working_grammar.nonterminals},
    )
