"""Baseline CFPQ algorithms the paper compares against."""

from .gll import GLLSolver, solve_gll
from .hellings import solve_hellings

__all__ = ["GLLSolver", "solve_gll", "solve_hellings"]
