"""Matrices whose elements are *subsets of non-terminals* — the paper's
direct formalization (Section 2) — plus their boolean projection.

The paper defines, for a grammar ``G = (N, Σ, P)``:

* a product of subsets ``N1 · N2 = {A | ∃B ∈ N1, C ∈ N2 : (A→BC) ∈ P}``,
* matrix multiplication ``c[i,j] = ⋃_k a[i,k] · b[k,j]``,
* element-wise union, and the partial order ``a ⪰ b ⟺ ∀i,j a[i,j] ⊇ b[i,j]``.

:class:`SetMatrix` implements exactly that algebra.  It is the teaching
implementation used by :mod:`repro.core.naive_closure`, the §4.3 worked
example and the Theorem 1 equivalence tests; the production engines use
the boolean decomposition instead.

The module also hosts the **setmatrix** boolean backend
(:class:`RowSetMatrix` / :class:`SetMatrixBackend`): one fixed
non-terminal slice of a :class:`SetMatrix` stored as per-row adjacency
sets — the same layout SetMatrix uses internally, projected to booleans
so it can plug into the generic closure engine beside the other
backends.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..errors import DimensionMismatchError
from ..grammar.cfg import CFG
from ..grammar.symbols import Nonterminal
from .base import BooleanMatrix, MatrixBackend, register_backend

#: Cell coordinates.
Pair = tuple[int, int]


class SetMatrix:
    """A square matrix over subsets of ``N``, tied to a grammar.

    Cells are stored sparsely: only non-empty subsets are kept.
    Instances are immutable; operations return new matrices.
    """

    __slots__ = ("_size", "_grammar", "_cells")

    def __init__(self, size: int, grammar: CFG,
                 cells: Mapping[Pair, Iterable[Nonterminal]] | None = None):
        if size < 0:
            raise ValueError("matrix size must be non-negative")
        self._size = size
        self._grammar = grammar
        cleaned: dict[Pair, frozenset[Nonterminal]] = {}
        for (i, j), subset in (cells or {}).items():
            if not (0 <= i < size and 0 <= j < size):
                raise ValueError(f"cell {(i, j)} outside {size}x{size} matrix")
            frozen = frozenset(subset)
            if frozen:
                cleaned[(i, j)] = frozen
        self._cells = cleaned

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """The matrix dimension (the paper's |V|)."""
        return self._size

    @property
    def grammar(self) -> CFG:
        """The grammar supplying the ``(·)`` operation."""
        return self._grammar

    def __getitem__(self, index: Pair) -> frozenset[Nonterminal]:
        return self._cells.get(index, frozenset())

    def cells(self) -> Iterator[tuple[Pair, frozenset[Nonterminal]]]:
        """Iterate non-empty cells as ((i, j), subset)."""
        return iter(self._cells.items())

    def nonterminal_count(self) -> int:
        """Total number of (cell, non-terminal) entries — the quantity
        bounded by |V|²·|N| in the paper's termination proof (Thm. 3)."""
        return sum(len(subset) for subset in self._cells.values())

    def pairs_with(self, nonterminal: Nonterminal) -> frozenset[Pair]:
        """All (i, j) with *nonterminal* ∈ a[i,j] — the relation ``R_A``."""
        return frozenset(
            pair for pair, subset in self._cells.items() if nonterminal in subset
        )

    # ------------------------------------------------------------------
    # The paper's algebra
    # ------------------------------------------------------------------
    def multiply(self, other: "SetMatrix") -> "SetMatrix":
        """``(a × b)[i,j] = ⋃_k a[i,k] · b[k,j]`` with the grammar's
        subset product."""
        self._check_compatible(other)
        grammar = self._grammar
        # Sparse product: group other's cells by row.
        other_rows: dict[int, list[tuple[int, frozenset[Nonterminal]]]] = {}
        for (k, j), subset in other._cells.items():
            other_rows.setdefault(k, []).append((j, subset))
        result: dict[Pair, set[Nonterminal]] = {}
        for (i, k), left_subset in self._cells.items():
            for j, right_subset in other_rows.get(k, ()):
                heads = grammar.subset_product(left_subset, right_subset)
                if heads:
                    result.setdefault((i, j), set()).update(heads)
        return SetMatrix(self._size, grammar, result)

    def union(self, other: "SetMatrix") -> "SetMatrix":
        """Element-wise set union."""
        self._check_compatible(other)
        result: dict[Pair, set[Nonterminal]] = {
            pair: set(subset) for pair, subset in self._cells.items()
        }
        for pair, subset in other._cells.items():
            result.setdefault(pair, set()).update(subset)
        return SetMatrix(self._size, self._grammar, result)

    def __matmul__(self, other: "SetMatrix") -> "SetMatrix":
        return self.multiply(other)

    def __or__(self, other: "SetMatrix") -> "SetMatrix":
        return self.union(other)

    def dominates(self, other: "SetMatrix") -> bool:
        """The paper's partial order: ``self ⪰ other`` iff every cell of
        self is a superset of the corresponding cell of other."""
        self._check_compatible(other)
        for pair, subset in other._cells.items():
            if not subset <= self._cells.get(pair, frozenset()):
                return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SetMatrix):
            return NotImplemented
        return self._size == other._size and self._cells == other._cells

    def __hash__(self) -> int:
        return hash((self._size, frozenset(self._cells.items())))

    def _check_compatible(self, other: "SetMatrix") -> None:
        if self._size != other._size:
            raise DimensionMismatchError(
                f"size mismatch: {self._size} vs {other._size}"
            )
        if self._grammar is not other._grammar and self._grammar != other._grammar:
            raise DimensionMismatchError("matrices belong to different grammars")

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def to_nested_lists(self) -> list[list[frozenset[Nonterminal]]]:
        """Dense nested-list form (tests against the paper's figures)."""
        return [
            [self[(i, j)] for j in range(self._size)]
            for i in range(self._size)
        ]

    def render(self) -> str:
        """Human-readable rendering in the style of the paper's Figures
        6-8 (∅ for empty cells, `{S1, S}` for subsets)."""
        def cell_text(subset: frozenset[Nonterminal]) -> str:
            if not subset:
                return "."
            return "{" + ",".join(sorted(str(nt) for nt in subset)) + "}"

        rows = []
        for i in range(self._size):
            rows.append(" ".join(
                cell_text(self[(i, j)]).ljust(12) for j in range(self._size)
            ).rstrip())
        return "\n".join(rows)

    def __repr__(self) -> str:
        return (f"SetMatrix(size={self._size}, filled_cells={len(self._cells)}, "
                f"entries={self.nonterminal_count()})")


class RowSetMatrix(BooleanMatrix):
    """Boolean matrix stored as per-row column sets (``i -> {j}``).

    The boolean projection of one non-terminal slice of a
    :class:`SetMatrix`: the row-major adjacency-set layout makes the
    boolean product a union of row sets and gives O(1) in-place cell
    insertion, so the mutable kernels are native.
    """

    __slots__ = ("_shape", "_rows", "_nnz")

    backend_name = "setmatrix"
    supports_inplace = True

    def __init__(self, shape: Pair, pairs: Iterable[Pair]):
        self._shape = shape
        rows: dict[int, set[int]] = {}
        count = 0
        for i, j in pairs:
            if not (0 <= i < shape[0] and 0 <= j < shape[1]):
                raise ValueError(f"pair {(i, j)} outside shape {shape}")
            row = rows.setdefault(i, set())
            if j not in row:
                row.add(j)
                count += 1
        self._rows = rows
        self._nnz = count

    @property
    def shape(self) -> Pair:
        return self._shape

    def __getitem__(self, index: Pair) -> bool:
        i, j = index
        return j in self._rows.get(i, ())

    def nonzero_pairs(self) -> Iterator[Pair]:
        for i, columns in self._rows.items():
            for j in columns:
                yield (i, j)

    def nnz(self) -> int:
        return self._nnz

    def multiply(self, other: BooleanMatrix) -> "RowSetMatrix":
        self._require_chainable(other)
        other_rows = _boolean_rows_of(other)
        result = RowSetMatrix((self._shape[0], other.shape[1]), ())
        for i, ks in self._rows.items():
            merged: set[int] = set()
            for k in ks:
                columns = other_rows.get(k)
                if columns:
                    merged |= columns
            if merged:
                result._rows[i] = merged
                result._nnz += len(merged)
        return result

    def union(self, other: BooleanMatrix) -> "RowSetMatrix":
        self._require_same_shape(other)
        result = SetMatrixBackend._copy(self)
        result.union_update(other)
        return result

    def transpose(self) -> "RowSetMatrix":
        return RowSetMatrix(
            (self._shape[1], self._shape[0]),
            ((j, i) for i, j in self.nonzero_pairs()),
        )

    def difference(self, other: BooleanMatrix) -> "RowSetMatrix":
        self._require_same_shape(other)
        other_rows = _boolean_rows_of(other)
        result = RowSetMatrix(self._shape, ())
        for i, columns in self._rows.items():
            kept = columns - other_rows.get(i, set())
            if kept:
                result._rows[i] = kept
                result._nnz += len(kept)
        return result

    def union_update(self, other: BooleanMatrix) -> "RowSetMatrix":
        self._require_same_shape(other)
        delta = RowSetMatrix(self._shape, ())
        for i, columns in _boolean_rows_of(other).items():
            row = self._rows.setdefault(i, set())
            fresh = columns - row
            if fresh:
                row |= fresh
                self._nnz += len(fresh)
                delta._rows[i] = set(fresh)
                delta._nnz += len(fresh)
        return delta


def _boolean_rows_of(matrix: BooleanMatrix) -> dict[int, set[int]]:
    if isinstance(matrix, RowSetMatrix):
        return matrix._rows
    rows: dict[int, set[int]] = {}
    for i, j in matrix.nonzero_pairs():
        rows.setdefault(i, set()).add(j)
    return rows


class SetMatrixBackend(MatrixBackend):
    """Factory for :class:`RowSetMatrix`, registered as ``setmatrix``."""

    name = "setmatrix"

    def zeros(self, rows: int, cols: int | None = None) -> RowSetMatrix:
        return RowSetMatrix((rows, cols if cols is not None else rows), ())

    def from_pairs(self, size: int, pairs: Iterable[Pair],
                   cols: int | None = None) -> RowSetMatrix:
        return RowSetMatrix((size, cols if cols is not None else size), pairs)

    def clone(self, matrix: BooleanMatrix) -> RowSetMatrix:
        if isinstance(matrix, RowSetMatrix):
            return self._copy(matrix)
        rows, cols = matrix.shape
        return RowSetMatrix((rows, cols), matrix.nonzero_pairs())

    def gather_rows(self, matrix: BooleanMatrix, rows) -> RowSetMatrix:
        n_rows, n_cols = matrix.shape
        row_list = list(rows)
        by_row = _boolean_rows_of(matrix) \
            if not isinstance(matrix, RowSetMatrix) else matrix._rows
        pairs = []
        for position, row in enumerate(row_list):
            if not 0 <= row < n_rows:
                raise IndexError(
                    f"row {row} out of range for shape {matrix.shape}"
                )
            pairs.extend((position, j) for j in by_row.get(row, ()))
        return RowSetMatrix((len(row_list), n_cols), pairs)

    def mask_rows(self, matrix: BooleanMatrix, keep) -> RowSetMatrix:
        n_rows, n_cols = matrix.shape
        wanted = set(keep)
        for row in wanted:
            if not 0 <= row < n_rows:
                raise IndexError(
                    f"row {row} out of range for shape {matrix.shape}"
                )
        by_row = _boolean_rows_of(matrix) \
            if not isinstance(matrix, RowSetMatrix) else matrix._rows
        pairs = [
            (i, j) for i, columns in by_row.items()
            if i in wanted for j in columns
        ]
        return RowSetMatrix((n_rows, n_cols), pairs)

    @staticmethod
    def _copy(matrix: "RowSetMatrix") -> "RowSetMatrix":
        clone = RowSetMatrix(matrix._shape, ())
        clone._rows = {i: set(columns) for i, columns in matrix._rows.items()}
        clone._nnz = matrix._nnz
        return clone


BACKEND = register_backend(SetMatrixBackend())


def initial_matrix(graph_size: int, grammar: CFG,
                   edges: Iterable[tuple[int, str, int]]) -> SetMatrix:
    """The paper's matrix initialization (Algorithm 1 lines 6-7):
    ``T[i,j] = {A | (i,x,j) ∈ E ∧ (A→x) ∈ P}``.

    Handles parallel edges with different labels by unioning their head
    sets, exactly as the paper notes below Algorithm 1.  Non-terminals
    the original grammar could derive ε from
    (:attr:`repro.grammar.cfg.CFG.nullable_diagonal`) additionally seed
    every diagonal cell — the empty path ``iπi`` is a witness.
    """
    from ..grammar.symbols import Terminal

    cells: dict[Pair, set[Nonterminal]] = {}
    if grammar.nullable_diagonal:
        for i in range(graph_size):
            cells.setdefault((i, i), set()).update(grammar.nullable_diagonal)
    for i, label, j in edges:
        heads = grammar.heads_for_terminal(Terminal(label))
        if heads:
            cells.setdefault((i, j), set()).update(heads)
    return SetMatrix(graph_size, grammar, cells)
