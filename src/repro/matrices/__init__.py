"""Boolean matrix substrate with interchangeable backends."""

from .bitset import BitsetBackend, BitsetMatrix
from .base import (
    BooleanMatrix,
    MatrixBackend,
    Pair,
    available_backends,
    get_backend,
    register_backend,
)
from .dense import DenseBackend, DenseMatrix
from .pyset import PySetBackend, PySetMatrix
from .setmatrix import SetMatrix, initial_matrix
from .sparse import SparseBackend, SparseMatrix

__all__ = [
    "BitsetBackend",
    "BitsetMatrix",
    "BooleanMatrix",
    "DenseBackend",
    "DenseMatrix",
    "MatrixBackend",
    "Pair",
    "PySetBackend",
    "PySetMatrix",
    "SetMatrix",
    "SparseBackend",
    "SparseMatrix",
    "available_backends",
    "get_backend",
    "initial_matrix",
    "register_backend",
]
