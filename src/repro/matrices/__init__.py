"""Boolean matrix substrate with interchangeable backends.

The pure-Python backends (``pyset``, ``setmatrix``) are always
available; the NumPy/SciPy-backed ones (``dense``, ``bitset``,
``sparse``) are optional extras and simply stay unregistered when their
dependency is missing (install ``repro-cfpq[backends]`` to get all
five).
"""

from .base import (
    BooleanMatrix,
    MatrixBackend,
    Pair,
    available_backends,
    get_backend,
    register_backend,
)
from .pyset import PySetBackend, PySetMatrix
from .setmatrix import (
    RowSetMatrix,
    SetMatrix,
    SetMatrixBackend,
    initial_matrix,
)

try:
    from .dense import DenseBackend, DenseMatrix
except ImportError:  # pragma: no cover - numpy missing
    DenseBackend = DenseMatrix = None  # type: ignore[assignment,misc]

try:
    from .bitset import BitsetBackend, BitsetMatrix
except ImportError:  # pragma: no cover - numpy missing
    BitsetBackend = BitsetMatrix = None  # type: ignore[assignment,misc]

try:
    from .sparse import SparseBackend, SparseMatrix
except ImportError:  # pragma: no cover - scipy missing
    SparseBackend = SparseMatrix = None  # type: ignore[assignment,misc]

__all__ = [
    "BitsetBackend",
    "BitsetMatrix",
    "BooleanMatrix",
    "DenseBackend",
    "DenseMatrix",
    "MatrixBackend",
    "Pair",
    "PySetBackend",
    "PySetMatrix",
    "RowSetMatrix",
    "SetMatrix",
    "SetMatrixBackend",
    "SparseBackend",
    "SparseMatrix",
    "available_backends",
    "get_backend",
    "initial_matrix",
    "register_backend",
]
