"""Boolean matrix abstraction.

The paper's Algorithm 1 reduces, per Valiant, to ``|N|²`` *Boolean*
matrix multiplications per closure step.  The paper evaluates three
implementations of this kernel (dense GPU, sparse CPU, sparse GPU); we
mirror the design with interchangeable backends behind one interface:

* ``dense``  — NumPy boolean arrays (row-major dense, stands in for the
  paper's dGPU/CUBLAS implementation),
* ``sparse`` — SciPy CSR matrices (stands in for sCPU/Math.NET and
  sGPU/CUSPARSE),
* ``pyset``  — pure-Python sets of coordinate pairs (reference
  implementation, no third-party arithmetic).

Backends are value-semantics *immutable*: every operation returns a new
matrix.  That keeps the closure loop honest (``T ← T ∪ T×T``) and makes
fixpoint detection (`nnz` stability / equality) trivial and backend
independent.
"""

from __future__ import annotations

import abc
from typing import Iterable, Iterator

from ..errors import DimensionMismatchError, UnknownBackendError

#: A matrix coordinate (row, column).
Pair = tuple[int, int]


class BooleanMatrix(abc.ABC):
    """An immutable square-or-rectangular boolean matrix."""

    __slots__ = ()

    # -- shape ----------------------------------------------------------
    @property
    @abc.abstractmethod
    def shape(self) -> tuple[int, int]:
        """(rows, columns)."""

    @property
    def is_square(self) -> bool:
        """True when rows == columns."""
        rows, cols = self.shape
        return rows == cols

    # -- element access --------------------------------------------------
    @abc.abstractmethod
    def __getitem__(self, index: Pair) -> bool:
        """Value at (row, column)."""

    @abc.abstractmethod
    def nonzero_pairs(self) -> Iterator[Pair]:
        """Iterate the coordinates of all True entries."""

    @abc.abstractmethod
    def nnz(self) -> int:
        """Number of True entries."""

    # -- algebra ----------------------------------------------------------
    @abc.abstractmethod
    def multiply(self, other: "BooleanMatrix") -> "BooleanMatrix":
        """Boolean matrix product (∨ of ∧)."""

    @abc.abstractmethod
    def union(self, other: "BooleanMatrix") -> "BooleanMatrix":
        """Element-wise boolean OR."""

    @abc.abstractmethod
    def transpose(self) -> "BooleanMatrix":
        """The transposed matrix."""

    def __matmul__(self, other: "BooleanMatrix") -> "BooleanMatrix":
        return self.multiply(other)

    def __or__(self, other: "BooleanMatrix") -> "BooleanMatrix":
        return self.union(other)

    # -- comparisons -------------------------------------------------------
    def same_pairs(self, other: "BooleanMatrix") -> bool:
        """Structural equality (same shape, same True coordinates)."""
        if self.shape != other.shape or self.nnz() != other.nnz():
            return False
        return set(self.nonzero_pairs()) == set(other.nonzero_pairs())

    def dominates(self, other: "BooleanMatrix") -> bool:
        """True when every True entry of *other* is True here — the
        boolean projection of the paper's ⪰ partial order."""
        if self.shape != other.shape:
            return False
        return set(other.nonzero_pairs()) <= set(self.nonzero_pairs())

    def to_pair_set(self) -> frozenset[Pair]:
        """All True coordinates as a frozenset."""
        return frozenset(self.nonzero_pairs())

    def _require_same_shape(self, other: "BooleanMatrix") -> None:
        if self.shape != other.shape:
            raise DimensionMismatchError(
                f"shape mismatch: {self.shape} vs {other.shape}"
            )

    def _require_chainable(self, other: "BooleanMatrix") -> None:
        if self.shape[1] != other.shape[0]:
            raise DimensionMismatchError(
                f"cannot multiply {self.shape} by {other.shape}"
            )

    def __repr__(self) -> str:
        rows, cols = self.shape
        return f"{type(self).__name__}({rows}x{cols}, nnz={self.nnz()})"


class MatrixBackend(abc.ABC):
    """Factory for one :class:`BooleanMatrix` implementation."""

    #: Registry key, e.g. ``"dense"``.
    name: str = "abstract"

    @abc.abstractmethod
    def zeros(self, rows: int, cols: int | None = None) -> BooleanMatrix:
        """An all-False matrix (square when *cols* is omitted)."""

    @abc.abstractmethod
    def from_pairs(self, size: int, pairs: Iterable[Pair],
                   cols: int | None = None) -> BooleanMatrix:
        """A matrix with True exactly at *pairs*."""

    def identity(self, size: int) -> BooleanMatrix:
        """The size×size identity."""
        return self.from_pairs(size, ((i, i) for i in range(size)))

    def from_dense_rows(self, rows: list[list[int]]) -> BooleanMatrix:
        """Build from a dense 0/1 row-major nested list (test helper)."""
        n_rows = len(rows)
        n_cols = len(rows[0]) if rows else 0
        pairs = [
            (i, j)
            for i, row in enumerate(rows)
            for j, value in enumerate(row)
            if value
        ]
        return self.from_pairs(n_rows, pairs, cols=n_cols)

    def __repr__(self) -> str:
        return f"<MatrixBackend {self.name}>"


_REGISTRY: dict[str, MatrixBackend] = {}


def register_backend(backend: MatrixBackend) -> MatrixBackend:
    """Register *backend* under ``backend.name`` (idempotent overwrite)."""
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: "str | MatrixBackend") -> MatrixBackend:
    """Resolve a backend by name (or pass an instance through)."""
    if isinstance(name, MatrixBackend):
        return name
    _ensure_default_backends()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(name, list(_REGISTRY)) from None


def available_backends() -> list[str]:
    """Names of all registered backends."""
    _ensure_default_backends()
    return sorted(_REGISTRY)


def _ensure_default_backends() -> None:
    # Imported lazily to avoid import cycles; modules self-register.
    if "dense" not in _REGISTRY:
        from . import dense  # noqa: F401
    if "sparse" not in _REGISTRY:
        from . import sparse  # noqa: F401
    if "pyset" not in _REGISTRY:
        from . import pyset  # noqa: F401
    if "bitset" not in _REGISTRY:
        from . import bitset  # noqa: F401
