"""Boolean matrix abstraction.

The paper's Algorithm 1 reduces, per Valiant, to ``|N|²`` *Boolean*
matrix multiplications per closure step.  The paper evaluates three
implementations of this kernel (dense GPU, sparse CPU, sparse GPU); we
mirror the design with interchangeable backends behind one interface:

* ``dense``  — NumPy boolean arrays (row-major dense, stands in for the
  paper's dGPU/CUBLAS implementation),
* ``sparse`` — SciPy CSR matrices (stands in for sCPU/Math.NET and
  sGPU/CUSPARSE),
* ``pyset``  — pure-Python sets of coordinate pairs (reference
  implementation, no third-party arithmetic).

The value-semantics operations (``multiply``/``union``/``transpose``)
return new matrices, which keeps the closure loop honest
(``T ← T ∪ T×T``) and makes fixpoint detection (`nnz` stability /
equality) trivial and backend independent.

On top of that sits an explicit **mutable kernel API** powering the
delta-driven closure engine (:mod:`repro.core.closure`):

* ``union_update(other) -> delta`` — in-place element-wise OR that
  returns the matrix of *genuinely new* entries (the semi-naive
  frontier),
* ``difference(other)`` — entries set here but not in *other*,
* ``MatrixBackend.mxm_into(left, right, accum)`` — accumulate a boolean
  product into an existing matrix, again returning the delta.

Every bundled backend implements the kernels natively; third-party
backends that only provide the immutable API keep working because
:meth:`MatrixBackend.union_update` / :meth:`MatrixBackend.mxm_into`
fall back to value semantics when ``supports_inplace`` is False.
"""

from __future__ import annotations

import abc
from typing import Iterable, Iterator, Sequence

from ..errors import DimensionMismatchError, UnknownBackendError

#: A matrix coordinate (row, column).
Pair = tuple[int, int]


class BooleanMatrix(abc.ABC):
    """A square-or-rectangular boolean matrix.

    The core algebra (``multiply``/``union``/``transpose``) is
    value-semantics; backends that set ``supports_inplace`` additionally
    expose the in-place kernels ``union_update`` and ``difference``.
    """

    __slots__ = ()

    #: Registry key of the backend this matrix belongs to (e.g.
    #: ``"dense"``); ``"abstract"`` for third-party types that predate
    #: the kernel API.
    backend_name: str = "abstract"

    #: True when :meth:`union_update` genuinely mutates this matrix.
    #: Third-party immutable backends leave this False and are served by
    #: the value-semantics fallback in :meth:`MatrixBackend.union_update`.
    supports_inplace: bool = False

    # -- shape ----------------------------------------------------------
    @property
    @abc.abstractmethod
    def shape(self) -> tuple[int, int]:
        """(rows, columns)."""

    @property
    def is_square(self) -> bool:
        """True when rows == columns."""
        rows, cols = self.shape
        return rows == cols

    # -- element access --------------------------------------------------
    @abc.abstractmethod
    def __getitem__(self, index: Pair) -> bool:
        """Value at (row, column)."""

    @abc.abstractmethod
    def nonzero_pairs(self) -> Iterator[Pair]:
        """Iterate the coordinates of all True entries."""

    @abc.abstractmethod
    def nnz(self) -> int:
        """Number of True entries."""

    # -- algebra ----------------------------------------------------------
    @abc.abstractmethod
    def multiply(self, other: "BooleanMatrix") -> "BooleanMatrix":
        """Boolean matrix product (∨ of ∧)."""

    @abc.abstractmethod
    def union(self, other: "BooleanMatrix") -> "BooleanMatrix":
        """Element-wise boolean OR."""

    @abc.abstractmethod
    def transpose(self) -> "BooleanMatrix":
        """The transposed matrix."""

    def __matmul__(self, other: "BooleanMatrix") -> "BooleanMatrix":
        return self.multiply(other)

    def __or__(self, other: "BooleanMatrix") -> "BooleanMatrix":
        return self.union(other)

    # -- mutable kernels ---------------------------------------------------
    def difference(self, other: "BooleanMatrix") -> "BooleanMatrix":
        """Entries True here and False in *other* (``self \\ other``).

        Generic fallback via coordinate sets; the result is a ``pyset``
        matrix, which interoperates with every backend.  Bundled
        backends override this with a native kernel returning their own
        type.
        """
        self._require_same_shape(other)
        pairs = set(self.nonzero_pairs()) - set(other.nonzero_pairs())
        from .pyset import BACKEND as _pyset_backend

        rows, cols = self.shape
        return _pyset_backend.from_pairs(rows, pairs, cols=cols)

    def union_update(self, other: "BooleanMatrix") -> "BooleanMatrix":
        """In-place element-wise OR of *other* into this matrix.

        Returns the **delta**: a matrix holding exactly the entries that
        were newly set by this call (empty when *other* adds nothing).
        Only available when ``supports_inplace`` is True; immutable
        backends are served by :meth:`MatrixBackend.union_update`, which
        emulates this with value semantics.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no in-place union kernel; route "
            "through MatrixBackend.union_update for the value-semantics "
            "fallback"
        )

    # -- comparisons -------------------------------------------------------
    def same_pairs(self, other: "BooleanMatrix") -> bool:
        """Structural equality (same shape, same True coordinates)."""
        if self.shape != other.shape or self.nnz() != other.nnz():
            return False
        return set(self.nonzero_pairs()) == set(other.nonzero_pairs())

    def dominates(self, other: "BooleanMatrix") -> bool:
        """True when every True entry of *other* is True here — the
        boolean projection of the paper's ⪰ partial order."""
        if self.shape != other.shape:
            return False
        return set(other.nonzero_pairs()) <= set(self.nonzero_pairs())

    def to_pair_set(self) -> frozenset[Pair]:
        """All True coordinates as a frozenset."""
        return frozenset(self.nonzero_pairs())

    def _require_same_shape(self, other: "BooleanMatrix") -> None:
        if self.shape != other.shape:
            raise DimensionMismatchError(
                f"shape mismatch: {self.shape} vs {other.shape}"
            )

    def _require_chainable(self, other: "BooleanMatrix") -> None:
        if self.shape[1] != other.shape[0]:
            raise DimensionMismatchError(
                f"cannot multiply {self.shape} by {other.shape}"
            )

    def __repr__(self) -> str:
        rows, cols = self.shape
        return f"{type(self).__name__}({rows}x{cols}, nnz={self.nnz()})"


class MatrixBackend(abc.ABC):
    """Factory for one :class:`BooleanMatrix` implementation."""

    #: Registry key, e.g. ``"dense"``.
    name: str = "abstract"

    @abc.abstractmethod
    def zeros(self, rows: int, cols: int | None = None) -> BooleanMatrix:
        """An all-False matrix (square when *cols* is omitted)."""

    @abc.abstractmethod
    def from_pairs(self, size: int, pairs: Iterable[Pair],
                   cols: int | None = None) -> BooleanMatrix:
        """A matrix with True exactly at *pairs*."""

    def identity(self, size: int) -> BooleanMatrix:
        """The size×size identity."""
        return self.from_pairs(size, ((i, i) for i in range(size)))

    def from_dense_rows(self, rows: list[list[int]]) -> BooleanMatrix:
        """Build from a dense 0/1 row-major nested list (test helper)."""
        n_rows = len(rows)
        n_cols = len(rows[0]) if rows else 0
        pairs = [
            (i, j)
            for i, row in enumerate(rows)
            for j, value in enumerate(row)
            if value
        ]
        return self.from_pairs(n_rows, pairs, cols=n_cols)

    def clone(self, matrix: BooleanMatrix) -> BooleanMatrix:
        """An independent copy of *matrix* (mutating one never affects
        the other).  Generic coordinate round-trip; backends override
        with a storage-level copy."""
        rows, cols = matrix.shape
        return self.from_pairs(rows, matrix.nonzero_pairs(), cols=cols)

    # -- row kernels (the batched mask path) ------------------------------
    def gather_rows(self, matrix: BooleanMatrix,
                    rows: Sequence[int]) -> BooleanMatrix:
        """Stack the listed rows of *matrix* into a fresh
        ``(len(rows), cols)`` matrix: output row ``i`` is
        ``matrix[rows[i]]``.  Rows may repeat and appear in any order.

        The result is always independent of *matrix* (a copy, never a
        view).  Generic coordinate gather; dense/bitset/sparse override
        with vectorized row indexing.
        """
        n_rows, n_cols = matrix.shape
        index: dict[int, list[int]] = {}
        for position, row in enumerate(rows):
            if not 0 <= row < n_rows:
                raise IndexError(
                    f"row {row} out of range for shape {matrix.shape}"
                )
            index.setdefault(row, []).append(position)
        pairs = [
            (position, j)
            for i, j in matrix.nonzero_pairs()
            for position in index.get(i, ())
        ]
        return self.from_pairs(len(rows), pairs, cols=n_cols)

    def mask_rows(self, matrix: BooleanMatrix,
                  keep: Iterable[int]) -> BooleanMatrix:
        """Apply a row mask: a same-shape copy of *matrix* keeping only
        the rows listed in *keep* (every other row becomes all-False).

        Out-of-range row indexes are rejected — a silent drop would
        hide an off-by-one in a caller's mask layout.  Generic
        coordinate filter; backends override with storage-level row
        selection.
        """
        n_rows, n_cols = matrix.shape
        wanted = set(keep)
        for row in wanted:
            if not 0 <= row < n_rows:
                raise IndexError(
                    f"row {row} out of range for shape {matrix.shape}"
                )
        pairs = [(i, j) for i, j in matrix.nonzero_pairs() if i in wanted]
        return self.from_pairs(n_rows, pairs, cols=n_cols)

    # -- mutable kernel entry points --------------------------------------
    def union_update(self, target: BooleanMatrix, other: BooleanMatrix,
                     ) -> tuple[BooleanMatrix, BooleanMatrix]:
        """Merge *other* into *target*; return ``(merged, delta)``.

        ``delta`` holds exactly the genuinely-new entries.  When the
        target supports in-place mutation, ``merged is target`` and no
        re-allocation happens; otherwise a value-semantics fallback
        builds the union, so third-party immutable backends keep
        working.
        """
        if target.supports_inplace:
            return target, target.union_update(other)
        delta = other.difference(target)
        if delta.nnz() == 0:
            return target, delta
        return target.union(delta), delta

    def mxm_into(self, left: BooleanMatrix, right: BooleanMatrix,
                 accum: BooleanMatrix,
                 ) -> tuple[BooleanMatrix, BooleanMatrix]:
        """Accumulate the boolean product ``left × right`` into *accum*;
        return ``(merged_accum, delta)``.

        Default: multiply then :meth:`union_update`.  Backends may fuse
        the two (e.g. OR packed rows straight into the accumulator).
        """
        return self.union_update(accum, left.multiply(right))

    # -- tiling hooks (the blocked closure strategy) ----------------------
    def split_into_tiles(self, matrix: BooleanMatrix, tile_size: int,
                         ) -> dict[tuple[int, int], BooleanMatrix]:
        """Partition a square matrix into ceil(n/tile_size)² tiles.

        Edge tiles are padded to full tile size (padding cells stay
        False and never affect the product).  The coordinate round-trip
        here loses per-cell payloads, so backends whose matrices carry
        more than presence (the annotated adapter) override both tiling
        hooks.
        """
        if tile_size < 1:
            raise ValueError("tile_size must be positive")
        n = matrix.shape[0]
        grid = (n + tile_size - 1) // tile_size
        buckets: dict[tuple[int, int], list[Pair]] = {
            (bi, bj): [] for bi in range(grid) for bj in range(grid)
        }
        for i, j in matrix.nonzero_pairs():
            buckets[(i // tile_size, j // tile_size)].append(
                (i % tile_size, j % tile_size)
            )
        return {
            index: self.from_pairs(tile_size, pairs)
            for index, pairs in buckets.items()
        }

    def assemble_from_tiles(self, tiles: dict, size: int, tile_size: int,
                            ) -> BooleanMatrix:
        """Inverse of :meth:`split_into_tiles` (drops the padding)."""
        return self.assemble_from_tile_iter(tiles.items(), size, tile_size)

    def assemble_from_tile_iter(self, items, size: int, tile_size: int,
                                ) -> BooleanMatrix:
        """Assemble from a one-shot iterable of ``((bi, bj), tile)``.

        The streaming variant of :meth:`assemble_from_tiles`: tiles can
        be produced (and released) one at a time, so a spill-backed
        caller never needs the whole tile set resident at once.
        """
        pairs = []
        for (bi, bj), tile in items:
            base_i, base_j = bi * tile_size, bj * tile_size
            for ti, tj in tile.nonzero_pairs():
                i, j = base_i + ti, base_j + tj
                if i < size and j < size:
                    pairs.append((i, j))
        return self.from_pairs(size, pairs)

    # -- tile payloads (process-pool scheduler) ---------------------------
    def tile_payload(self, matrix: BooleanMatrix) -> tuple:
        """Serialize a tile as a plain tuple of raw buffers/coordinates.

        Payloads cross the process boundary of the ``process`` tile
        scheduler, so they must be cheap to pickle: no matrix objects,
        only primitive containers.  The first element is the backend
        registry key the worker resolves to deserialize.  The generic
        form ships the coordinate list; array-storage backends override
        with their raw word/bool/index buffers.
        """
        rows, cols = matrix.shape
        return (self.name, rows, cols, tuple(matrix.nonzero_pairs()))

    def tile_from_payload(self, payload: tuple) -> BooleanMatrix:
        """Inverse of :meth:`tile_payload` for this backend's payloads."""
        _name, rows, cols, pairs = payload
        return self.from_pairs(rows, pairs, cols=cols)

    # -- working-set accounting & spilling (the tile store) ---------------
    def matrix_nbytes(self, matrix: BooleanMatrix) -> int:
        """Approximate resident bytes of *matrix*'s storage.

        Drives the :class:`repro.core.tilestore.TileStore` budget
        accounting, so it should track the dominant buffer, not Python
        object overhead exactly.  The generic estimate assumes
        coordinate storage (two boxed ints plus set slot per entry);
        array backends override with their buffer sizes.
        """
        return 112 + 48 * matrix.nnz()

    def spill_parts(self, payload: tuple) -> tuple:
        """Split a tile payload into ``(meta, raw_buffer)`` for spilling.

        ``raw_buffer`` (bytes-like) is what the tile store writes to the
        spill file, and ``meta`` is the small picklable remainder needed
        to rebuild the payload/tile around the buffer.  Backends whose
        payload is dominated by one flat buffer (bitset words, dense
        bools) override this so reload can ``mmap`` the file zero-copy;
        the default ``(payload, None)`` routes the store to its pickle
        fallback.
        """
        return payload, None

    def payload_from_parts(self, meta: tuple, buffer) -> tuple:
        """Rebuild the :meth:`tile_payload` tuple from spilled parts.

        Only called for backends whose :meth:`spill_parts` returned a
        raw buffer.
        """
        raise NotImplementedError(
            f"{type(self).__name__}.spill_parts returned a raw buffer but "
            "payload_from_parts is not implemented"
        )

    def tile_from_parts(self, meta: tuple, buffer) -> BooleanMatrix:
        """Rebuild a tile directly from spilled parts.

        *buffer* may be an ``mmap`` over the spill file: implementations
        should wrap it zero-copy when the platform hands out a writable
        private mapping, copying only as a fallback.  Only called for
        backends whose :meth:`spill_parts` returned a raw buffer.
        """
        raise NotImplementedError(
            f"{type(self).__name__}.spill_parts returned a raw buffer but "
            "tile_from_parts is not implemented"
        )

    def __repr__(self) -> str:
        return f"<MatrixBackend {self.name}>"


_REGISTRY: dict[str, MatrixBackend] = {}


def register_backend(backend: MatrixBackend) -> MatrixBackend:
    """Register *backend* under ``backend.name`` (idempotent overwrite)."""
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: "str | MatrixBackend") -> MatrixBackend:
    """Resolve a backend by name (or pass an instance through)."""
    if isinstance(name, MatrixBackend):
        return name
    _ensure_default_backends()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(name, list(_REGISTRY)) from None


def available_backends() -> list[str]:
    """Names of all registered backends."""
    _ensure_default_backends()
    return sorted(_REGISTRY)


#: Preference order for :func:`default_backend`.
_DEFAULT_PREFERENCE = ("sparse", "dense", "bitset", "setmatrix", "pyset")


def default_backend() -> str:
    """The best registered backend: ``sparse`` when SciPy is present,
    degrading through the NumPy and pure-Python backends otherwise, so
    entry-point defaults keep working on a dependency-free install."""
    _ensure_default_backends()
    for name in _DEFAULT_PREFERENCE:
        if name in _REGISTRY:
            return name
    return next(iter(_REGISTRY))


def _ensure_default_backends() -> None:
    # Imported lazily to avoid import cycles; modules self-register.
    # NumPy/SciPy-backed modules are optional extras: when the import
    # fails the pure-Python backends (pyset, setmatrix) remain usable.
    if "dense" not in _REGISTRY:
        try:
            from . import dense  # noqa: F401
        except ImportError:  # pragma: no cover - numpy missing
            pass
    if "sparse" not in _REGISTRY:
        try:
            from . import sparse  # noqa: F401
        except ImportError:  # pragma: no cover - scipy missing
            pass
    if "pyset" not in _REGISTRY:
        from . import pyset  # noqa: F401
    if "bitset" not in _REGISTRY:
        try:
            from . import bitset  # noqa: F401
        except ImportError:  # pragma: no cover - numpy missing
            pass
    if "setmatrix" not in _REGISTRY:
        from . import setmatrix  # noqa: F401
