"""Sparse CSR boolean matrix backend (SciPy).

Stands in for both of the paper's sparse implementations — **sCPU**
(Math.NET CSR on the CPU) and **sGPU** (CUSPARSE CSR on the GPU): the
storage format (CSR) and the algorithm are identical; only the device
differs.  Sparsity makes the closure scale with the number of stored
entries rather than |V|², which is the effect behind the paper's g1–g3
rows.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np
from scipy import sparse as sp

from .base import BooleanMatrix, MatrixBackend, Pair, register_backend


class SparseMatrix(BooleanMatrix):
    """Wrapper over a ``scipy.sparse.csr_matrix`` of dtype bool.

    CSR has no cheap cell-level insertion, so ``union_update`` mutates
    at the wrapper level: it rebinds the internal CSR to the merged
    matrix (keeping this object's identity stable for the closure
    engine) and computes the delta with one sparse ``>`` comparison.
    """

    __slots__ = ("_matrix",)

    backend_name = "sparse"
    supports_inplace = True

    def __init__(self, matrix: sp.spmatrix):
        csr = matrix.tocsr().astype(bool)
        csr.eliminate_zeros()
        self._matrix = csr

    @property
    def shape(self) -> tuple[int, int]:
        return self._matrix.shape  # type: ignore[return-value]

    def __getitem__(self, index: Pair) -> bool:
        return bool(self._matrix[index])

    def nonzero_pairs(self) -> Iterator[Pair]:
        coo = self._matrix.tocoo()
        return zip(coo.row.tolist(), coo.col.tolist())

    def nnz(self) -> int:
        return int(self._matrix.nnz)

    def multiply(self, other: BooleanMatrix) -> "SparseMatrix":
        self._require_chainable(other)
        return SparseMatrix(self._matrix @ _as_csr(other))

    def union(self, other: BooleanMatrix) -> "SparseMatrix":
        self._require_same_shape(other)
        return SparseMatrix(self._matrix + _as_csr(other))

    def transpose(self) -> "SparseMatrix":
        return SparseMatrix(self._matrix.T)

    def difference(self, other: BooleanMatrix) -> "SparseMatrix":
        self._require_same_shape(other)
        return SparseMatrix(self._matrix > _as_csr(other))

    def union_update(self, other: BooleanMatrix) -> "SparseMatrix":
        self._require_same_shape(other)
        delta = (_as_csr(other) > self._matrix).tocsr()
        delta.eliminate_zeros()
        if delta.nnz:
            self._matrix = (self._matrix + delta).tocsr()
        return SparseMatrix(delta)

    def to_scipy(self) -> sp.csr_matrix:
        """The underlying CSR matrix (do not mutate)."""
        return self._matrix


def _as_csr(matrix: BooleanMatrix) -> sp.csr_matrix:
    if isinstance(matrix, SparseMatrix):
        return matrix._matrix
    pairs = list(matrix.nonzero_pairs())
    rows = [i for i, _ in pairs]
    cols = [j for _, j in pairs]
    data = np.ones(len(pairs), dtype=bool)
    return sp.csr_matrix((data, (rows, cols)), shape=matrix.shape, dtype=bool)


class SparseBackend(MatrixBackend):
    """Factory for :class:`SparseMatrix`."""

    name = "sparse"

    def zeros(self, rows: int, cols: int | None = None) -> SparseMatrix:
        return SparseMatrix(
            sp.csr_matrix((rows, cols if cols is not None else rows), dtype=bool)
        )

    def from_pairs(self, size: int, pairs: Iterable[Pair],
                   cols: int | None = None) -> SparseMatrix:
        pair_list = list(pairs)
        shape = (size, cols if cols is not None else size)
        if not pair_list:
            return SparseMatrix(sp.csr_matrix(shape, dtype=bool))
        rows = [i for i, _ in pair_list]
        columns = [j for _, j in pair_list]
        data = np.ones(len(pair_list), dtype=bool)
        return SparseMatrix(sp.csr_matrix((data, (rows, columns)), shape=shape,
                                          dtype=bool))

    def from_scipy(self, matrix: sp.spmatrix) -> SparseMatrix:
        """Wrap an existing SciPy sparse matrix."""
        return SparseMatrix(matrix)

    def clone(self, matrix: BooleanMatrix) -> SparseMatrix:
        return SparseMatrix(_as_csr(matrix).copy())

    def gather_rows(self, matrix: BooleanMatrix, rows) -> SparseMatrix:
        csr = _as_csr(matrix)
        index = np.asarray(list(rows), dtype=np.intp)
        if index.size and (index.min() < 0
                           or index.max() >= csr.shape[0]):
            raise IndexError(
                f"row index out of range for shape {matrix.shape}"
            )
        # CSR row slicing copies the selected rows' data arrays.
        return SparseMatrix(csr[index])

    def mask_rows(self, matrix: BooleanMatrix, keep) -> SparseMatrix:
        csr = _as_csr(matrix)
        index = np.asarray(sorted(set(keep)), dtype=np.intp)
        if index.size and (index.min() < 0
                           or index.max() >= csr.shape[0]):
            raise IndexError(
                f"row index out of range for shape {matrix.shape}"
            )
        selector = sp.csr_matrix(
            (np.ones(index.size, dtype=bool), (index, index)),
            shape=(csr.shape[0], csr.shape[0]),
        )
        return SparseMatrix(selector @ csr)

    def matrix_nbytes(self, matrix: BooleanMatrix) -> int:
        if isinstance(matrix, SparseMatrix):
            csr = matrix._matrix
            return int(csr.data.nbytes + csr.indices.nbytes
                       + csr.indptr.nbytes)
        return super().matrix_nbytes(matrix)

    # -- tile payloads (process-pool scheduler) ---------------------------
    def tile_payload(self, matrix: BooleanMatrix) -> tuple:
        """CSR structure as raw index buffers (bool data is implicit)."""
        csr = _as_csr(matrix)
        rows, cols = csr.shape
        return ("sparse", rows, cols,
                csr.indptr.astype(np.int64).tobytes(),
                csr.indices.astype(np.int64).tobytes())

    def tile_from_payload(self, payload: tuple) -> SparseMatrix:
        _kind, rows, cols, indptr_raw, indices_raw = payload
        indptr = np.frombuffer(indptr_raw, dtype=np.int64)
        indices = np.frombuffer(indices_raw, dtype=np.int64)
        data = np.ones(len(indices), dtype=bool)
        return SparseMatrix(
            sp.csr_matrix((data, indices, indptr), shape=(rows, cols))
        )


BACKEND = register_backend(SparseBackend())
