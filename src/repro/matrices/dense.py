"""Dense NumPy boolean matrix backend.

Stands in for the paper's **dGPU** implementation (row-major dense
matrices multiplied with CUBLAS): identical algorithm and data layout,
CPU arithmetic instead of GPU.  Dense storage is O(|V|²) regardless of
sparsity, which is exactly why the paper omits dGPU numbers for the
large g1–g3 graphs — this backend reproduces that collapse.

The mutable kernels are genuine in-place array operations
(``self |= other`` on the boolean buffer), so the delta closure engine
never re-allocates the accumulator matrices.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from .base import BooleanMatrix, MatrixBackend, Pair, register_backend


class DenseMatrix(BooleanMatrix):
    """Wrapper over a ``numpy.ndarray`` of dtype bool.

    The constructor **takes ownership** of a writable bool array (no
    copy): the in-place kernels mutate it, so pass a copy if you keep a
    reference (:meth:`DenseBackend.from_numpy` does).  Read-only arrays
    are copied defensively; :meth:`to_numpy` hands out a read-only
    view.
    """

    __slots__ = ("_array",)

    backend_name = "dense"
    supports_inplace = True

    def __init__(self, array: np.ndarray):
        if array.ndim != 2:
            raise ValueError("dense matrix requires a 2-D array")
        array = array.astype(bool, copy=False)
        if not array.flags.writeable:
            array = array.copy()
        self._array = array

    @classmethod
    def _wrap(cls, array: np.ndarray) -> "DenseMatrix":
        """Kernel fast path: wrap a bool buffer we know we own.

        Skips the dtype coercion and defensive-copy check of
        ``__init__`` — kernels only produce fresh writable bool arrays,
        and the assertions (compiled out under ``-O``) enforce that.
        """
        assert array.ndim == 2 and array.dtype == np.bool_, \
            "_wrap requires a 2-D bool array"
        assert array.flags.writeable, \
            "_wrap requires a writable (owned) buffer"
        matrix = cls.__new__(cls)
        matrix._array = array
        return matrix

    @property
    def shape(self) -> tuple[int, int]:
        return self._array.shape  # type: ignore[return-value]

    def __getitem__(self, index: Pair) -> bool:
        return bool(self._array[index])

    def nonzero_pairs(self) -> Iterator[Pair]:
        rows, cols = np.nonzero(self._array)
        return zip(rows.tolist(), cols.tolist())

    def nnz(self) -> int:
        return int(self._array.sum())

    def multiply(self, other: BooleanMatrix) -> "DenseMatrix":
        self._require_chainable(other)
        other_array = _as_array(other)
        return DenseMatrix._wrap(_bool_matmul(self._array, other_array))

    def union(self, other: BooleanMatrix) -> "DenseMatrix":
        self._require_same_shape(other)
        return DenseMatrix._wrap(self._array | _as_array(other))

    def transpose(self) -> "DenseMatrix":
        return DenseMatrix._wrap(self._array.T.copy())

    def difference(self, other: BooleanMatrix) -> "DenseMatrix":
        self._require_same_shape(other)
        # self & ~other in one vectorized comparison (True > False), a
        # single allocation and no inverted temporary.
        return DenseMatrix._wrap(np.greater(self._array, _as_array(other)))

    def union_update(self, other: BooleanMatrix) -> "DenseMatrix":
        self._require_same_shape(other)
        # Exact delta (other & ~self) as one comparison — the only
        # allocation is the returned delta itself.
        delta = np.greater(_as_array(other), self._array)
        self._array |= delta
        return DenseMatrix._wrap(delta)

    def to_numpy(self) -> np.ndarray:
        """A read-only view of the underlying boolean array."""
        view = self._array.view()
        view.setflags(write=False)
        return view


def _bool_matmul(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Boolean semiring product (OR of ANDs) as one matmul.

    float32 views keep the product on BLAS (sgemm) — the same trick
    CUBLAS-backed boolean products use; bool/uint8 matmul would fall off
    the BLAS fast path entirely (measured ~30x slower at 512 nodes).
    The threshold back to bool is exact: entries count matching
    midpoints, so any nonzero means True.
    """
    product = left.astype(np.float32) @ right.astype(np.float32)
    return product > 0.5


def _as_array(matrix: BooleanMatrix) -> np.ndarray:
    if isinstance(matrix, DenseMatrix):
        return matrix._array
    array = np.zeros(matrix.shape, dtype=bool)
    for i, j in matrix.nonzero_pairs():
        array[i, j] = True
    return array


class DenseBackend(MatrixBackend):
    """Factory for :class:`DenseMatrix`."""

    name = "dense"

    def zeros(self, rows: int, cols: int | None = None) -> DenseMatrix:
        return DenseMatrix(np.zeros((rows, cols if cols is not None else rows),
                                    dtype=bool))

    def from_pairs(self, size: int, pairs: Iterable[Pair],
                   cols: int | None = None) -> DenseMatrix:
        array = np.zeros((size, cols if cols is not None else size), dtype=bool)
        for i, j in pairs:
            array[i, j] = True
        return DenseMatrix(array)

    def from_numpy(self, array: np.ndarray) -> DenseMatrix:
        """Wrap an existing array (copied, coerced to bool)."""
        return DenseMatrix(np.array(array, dtype=bool))

    def clone(self, matrix: BooleanMatrix) -> DenseMatrix:
        return DenseMatrix._wrap(_as_array(matrix).copy())

    def gather_rows(self, matrix: BooleanMatrix, rows) -> DenseMatrix:
        array = _as_array(matrix)
        index = np.asarray(list(rows), dtype=np.intp)
        if index.size and (index.min() < 0
                           or index.max() >= array.shape[0]):
            raise IndexError(
                f"row index out of range for shape {matrix.shape}"
            )
        # Fancy indexing copies, so the result owns its buffer.
        return DenseMatrix._wrap(np.ascontiguousarray(array[index]))

    def mask_rows(self, matrix: BooleanMatrix, keep) -> DenseMatrix:
        array = _as_array(matrix)
        index = np.asarray(sorted(set(keep)), dtype=np.intp)
        if index.size and (index.min() < 0
                           or index.max() >= array.shape[0]):
            raise IndexError(
                f"row index out of range for shape {matrix.shape}"
            )
        out = np.zeros_like(array)
        out[index] = array[index]
        return DenseMatrix._wrap(out)

    def matrix_nbytes(self, matrix: BooleanMatrix) -> int:
        rows, cols = matrix.shape
        return rows * cols

    # -- tiling (vectorized slice fast paths) -----------------------------
    def split_into_tiles(self, matrix: BooleanMatrix, tile_size: int,
                         ) -> dict[tuple[int, int], DenseMatrix]:
        """Slice the bool array directly instead of the generic
        per-coordinate round trip."""
        if tile_size < 1 or not isinstance(matrix, DenseMatrix):
            return super().split_into_tiles(matrix, tile_size)
        array = matrix._array
        n = array.shape[0]
        grid = (n + tile_size - 1) // tile_size
        tiles: dict[tuple[int, int], DenseMatrix] = {}
        for bi in range(grid):
            row_lo = bi * tile_size
            row_hi = min(n, row_lo + tile_size)
            for bj in range(grid):
                col_lo = bj * tile_size
                col_hi = min(n, col_lo + tile_size)
                block = np.zeros((tile_size, tile_size), dtype=bool)
                block[:row_hi - row_lo, :col_hi - col_lo] = \
                    array[row_lo:row_hi, col_lo:col_hi]
                tiles[(bi, bj)] = DenseMatrix._wrap(block)
        return tiles

    def assemble_from_tile_iter(self, items, size: int, tile_size: int,
                                ) -> DenseMatrix:
        out = np.zeros((size, size), dtype=bool)
        for (bi, bj), tile in items:
            row_lo = bi * tile_size
            col_lo = bj * tile_size
            if row_lo >= size or col_lo >= size:
                continue
            row_hi = min(size, row_lo + tile_size)
            col_hi = min(size, col_lo + tile_size)
            out[row_lo:row_hi, col_lo:col_hi] = \
                _as_array(tile)[:row_hi - row_lo, :col_hi - col_lo]
        return DenseMatrix._wrap(out)

    def mxm_into(self, left: BooleanMatrix, right: BooleanMatrix,
                 accum: BooleanMatrix,
                 ) -> tuple[BooleanMatrix, BooleanMatrix]:
        """Fused product-accumulate: one BLAS matmul, the exact delta via
        a single ``>`` comparison, and an in-place OR into the
        accumulator."""
        if not isinstance(accum, DenseMatrix):
            return super().mxm_into(left, right, accum)
        left._require_chainable(right)
        product = _bool_matmul(_as_array(left), _as_array(right))
        if product.shape != accum.shape:
            from ..errors import DimensionMismatchError

            raise DimensionMismatchError(
                f"cannot accumulate {product.shape} into {accum.shape}"
            )
        # The product is materialized before accum mutates, so operand
        # aliasing stays safe.
        np.greater(product, accum._array, out=product)
        accum._array |= product
        return accum, DenseMatrix._wrap(product)

    # -- tile payloads (process-pool scheduler) ---------------------------
    def tile_payload(self, matrix: BooleanMatrix) -> tuple:
        array = _as_array(matrix)
        rows, cols = array.shape
        return ("dense", rows, cols, array.tobytes())

    def tile_from_payload(self, payload: tuple) -> DenseMatrix:
        _kind, rows, cols, raw = payload
        array = np.frombuffer(raw, dtype=bool).reshape(rows, cols).copy()
        return DenseMatrix._wrap(array)

    # -- spilling (the tile store's raw-buffer format) --------------------
    def spill_parts(self, payload: tuple) -> tuple:
        kind, rows, cols, raw = payload
        return (kind, rows, cols), raw

    def payload_from_parts(self, meta: tuple, buffer) -> tuple:
        kind, rows, cols = meta
        return (kind, rows, cols, bytes(buffer))

    def tile_from_parts(self, meta: tuple, buffer) -> DenseMatrix:
        """Zero-copy reload: a private-writable mapping (``mmap`` with
        ``ACCESS_COPY``) is wrapped directly; read-only buffers are
        copied once."""
        _kind, rows, cols = meta
        array = np.frombuffer(buffer, dtype=bool).reshape(rows, cols)
        if not array.flags.writeable:
            array = array.copy()
        return DenseMatrix._wrap(array)


BACKEND = register_backend(DenseBackend())
