"""Dense NumPy boolean matrix backend.

Stands in for the paper's **dGPU** implementation (row-major dense
matrices multiplied with CUBLAS): identical algorithm and data layout,
CPU arithmetic instead of GPU.  Dense storage is O(|V|²) regardless of
sparsity, which is exactly why the paper omits dGPU numbers for the
large g1–g3 graphs — this backend reproduces that collapse.

The mutable kernels are genuine in-place array operations
(``self |= other`` on the boolean buffer), so the delta closure engine
never re-allocates the accumulator matrices.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from .base import BooleanMatrix, MatrixBackend, Pair, register_backend


class DenseMatrix(BooleanMatrix):
    """Wrapper over a ``numpy.ndarray`` of dtype bool.

    The constructor **takes ownership** of a writable bool array (no
    copy): the in-place kernels mutate it, so pass a copy if you keep a
    reference (:meth:`DenseBackend.from_numpy` does).  Read-only arrays
    are copied defensively; :meth:`to_numpy` hands out a read-only
    view.
    """

    __slots__ = ("_array",)

    backend_name = "dense"
    supports_inplace = True

    def __init__(self, array: np.ndarray):
        if array.ndim != 2:
            raise ValueError("dense matrix requires a 2-D array")
        array = array.astype(bool, copy=False)
        if not array.flags.writeable:
            array = array.copy()
        self._array = array

    @property
    def shape(self) -> tuple[int, int]:
        return self._array.shape  # type: ignore[return-value]

    def __getitem__(self, index: Pair) -> bool:
        return bool(self._array[index])

    def nonzero_pairs(self) -> Iterator[Pair]:
        rows, cols = np.nonzero(self._array)
        return zip(rows.tolist(), cols.tolist())

    def nnz(self) -> int:
        return int(self._array.sum())

    def multiply(self, other: BooleanMatrix) -> "DenseMatrix":
        self._require_chainable(other)
        other_array = _as_array(other)
        # Boolean semiring product: OR of ANDs.  float32 matmul runs on
        # BLAS (sgemm) and is thresholded back to bool — the same trick
        # CUBLAS-backed boolean products use; integer matmul would fall
        # off the BLAS fast path entirely.
        product = self._array.astype(np.float32) @ other_array.astype(np.float32)
        return DenseMatrix(product > 0.5)

    def union(self, other: BooleanMatrix) -> "DenseMatrix":
        self._require_same_shape(other)
        return DenseMatrix(self._array | _as_array(other))

    def transpose(self) -> "DenseMatrix":
        return DenseMatrix(self._array.T.copy())

    def difference(self, other: BooleanMatrix) -> "DenseMatrix":
        self._require_same_shape(other)
        return DenseMatrix(self._array & ~_as_array(other))

    def union_update(self, other: BooleanMatrix) -> "DenseMatrix":
        self._require_same_shape(other)
        delta = _as_array(other) & ~self._array
        self._array |= delta
        return DenseMatrix(delta)

    def to_numpy(self) -> np.ndarray:
        """A read-only view of the underlying boolean array."""
        view = self._array.view()
        view.setflags(write=False)
        return view


def _as_array(matrix: BooleanMatrix) -> np.ndarray:
    if isinstance(matrix, DenseMatrix):
        return matrix._array
    array = np.zeros(matrix.shape, dtype=bool)
    for i, j in matrix.nonzero_pairs():
        array[i, j] = True
    return array


class DenseBackend(MatrixBackend):
    """Factory for :class:`DenseMatrix`."""

    name = "dense"

    def zeros(self, rows: int, cols: int | None = None) -> DenseMatrix:
        return DenseMatrix(np.zeros((rows, cols if cols is not None else rows),
                                    dtype=bool))

    def from_pairs(self, size: int, pairs: Iterable[Pair],
                   cols: int | None = None) -> DenseMatrix:
        array = np.zeros((size, cols if cols is not None else size), dtype=bool)
        for i, j in pairs:
            array[i, j] = True
        return DenseMatrix(array)

    def from_numpy(self, array: np.ndarray) -> DenseMatrix:
        """Wrap an existing array (copied, coerced to bool)."""
        return DenseMatrix(np.array(array, dtype=bool))

    def clone(self, matrix: BooleanMatrix) -> DenseMatrix:
        return DenseMatrix(_as_array(matrix).copy())


BACKEND = register_backend(DenseBackend())
