"""Pure-Python boolean matrix backend (sets of coordinate pairs).

The dependency-free reference implementation: a matrix is a set of
(row, column) pairs plus a shape.  Slowest of the bundled backends but
the easiest to audit; the property tests use it as the ground truth the
NumPy/SciPy backends must agree with.

The value-semantics operations return fresh matrices; the mutable
kernels (``union_update`` / ``difference``) work directly on the
internal pair set and keep the per-row index coherent, so the delta
closure engine can grow a matrix without rebuilding it.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from .base import BooleanMatrix, MatrixBackend, Pair, register_backend


class PySetMatrix(BooleanMatrix):
    """Coordinate-set boolean matrix with in-place union support."""

    __slots__ = ("_shape", "_pairs", "_rows_index")

    backend_name = "pyset"
    supports_inplace = True

    def __init__(self, shape: tuple[int, int], pairs: Iterable[Pair]):
        self._shape = shape
        pair_set = set(pairs)
        for i, j in pair_set:
            if not (0 <= i < shape[0] and 0 <= j < shape[1]):
                raise ValueError(f"pair {(i, j)} outside shape {shape}")
        self._pairs = pair_set
        rows_index: dict[int, set[int]] = defaultdict(set)
        for i, j in pair_set:
            rows_index[i].add(j)
        self._rows_index = dict(rows_index)

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    def __getitem__(self, index: Pair) -> bool:
        return index in self._pairs

    def nonzero_pairs(self) -> Iterator[Pair]:
        return iter(self._pairs)

    def nnz(self) -> int:
        return len(self._pairs)

    def multiply(self, other: BooleanMatrix) -> "PySetMatrix":
        self._require_chainable(other)
        # Index other's rows: k -> columns j with other[k, j].
        other_rows = _rows_of(other)
        result: set[Pair] = set()
        for i, ks in self._rows_index.items():
            for k in ks:
                for j in other_rows.get(k, ()):
                    result.add((i, j))
        return PySetMatrix((self._shape[0], other.shape[1]), result)

    def union(self, other: BooleanMatrix) -> "PySetMatrix":
        self._require_same_shape(other)
        return PySetMatrix(self._shape, self._pairs | set(other.nonzero_pairs()))

    def transpose(self) -> "PySetMatrix":
        return PySetMatrix(
            (self._shape[1], self._shape[0]),
            ((j, i) for i, j in self._pairs),
        )

    def difference(self, other: BooleanMatrix) -> "PySetMatrix":
        self._require_same_shape(other)
        return PySetMatrix(self._shape,
                           self._pairs - set(other.nonzero_pairs()))

    def union_update(self, other: BooleanMatrix) -> "PySetMatrix":
        self._require_same_shape(other)
        new_pairs = set(other.nonzero_pairs()) - self._pairs
        self._pairs |= new_pairs
        for i, j in new_pairs:
            self._rows_index.setdefault(i, set()).add(j)
        return PySetMatrix(self._shape, new_pairs)


def _rows_of(matrix: BooleanMatrix) -> dict[int, set[int]]:
    if isinstance(matrix, PySetMatrix):
        return matrix._rows_index
    rows: dict[int, set[int]] = defaultdict(set)
    for k, j in matrix.nonzero_pairs():
        rows[k].add(j)
    return rows


class PySetBackend(MatrixBackend):
    """Factory for :class:`PySetMatrix`."""

    name = "pyset"

    def zeros(self, rows: int, cols: int | None = None) -> PySetMatrix:
        return PySetMatrix((rows, cols if cols is not None else rows), ())

    def from_pairs(self, size: int, pairs: Iterable[Pair],
                   cols: int | None = None) -> PySetMatrix:
        return PySetMatrix((size, cols if cols is not None else size), pairs)

    def clone(self, matrix: BooleanMatrix) -> PySetMatrix:
        rows, cols = matrix.shape
        return PySetMatrix((rows, cols), matrix.nonzero_pairs())

    def gather_rows(self, matrix: BooleanMatrix, rows) -> PySetMatrix:
        n_rows, n_cols = matrix.shape
        row_list = list(rows)
        by_row = _rows_of(matrix)
        pairs = []
        for position, row in enumerate(row_list):
            if not 0 <= row < n_rows:
                raise IndexError(
                    f"row {row} out of range for shape {matrix.shape}"
                )
            pairs.extend((position, j) for j in by_row.get(row, ()))
        return PySetMatrix((len(row_list), n_cols), pairs)

    def mask_rows(self, matrix: BooleanMatrix, keep) -> PySetMatrix:
        n_rows, n_cols = matrix.shape
        wanted = set(keep)
        for row in wanted:
            if not 0 <= row < n_rows:
                raise IndexError(
                    f"row {row} out of range for shape {matrix.shape}"
                )
        by_row = _rows_of(matrix)
        pairs = [
            (i, j) for i, columns in by_row.items()
            if i in wanted for j in columns
        ]
        return PySetMatrix((n_rows, n_cols), pairs)


BACKEND = register_backend(PySetBackend())
