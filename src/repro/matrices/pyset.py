"""Pure-Python boolean matrix backend (sets of coordinate pairs).

The dependency-free reference implementation: a matrix is a frozenset of
(row, column) pairs plus a shape.  Slowest of the three backends but the
easiest to audit; the property tests use it as the ground truth the
NumPy/SciPy backends must agree with.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from .base import BooleanMatrix, MatrixBackend, Pair, register_backend


class PySetMatrix(BooleanMatrix):
    """Immutable coordinate-set boolean matrix."""

    __slots__ = ("_shape", "_pairs", "_rows_index")

    def __init__(self, shape: tuple[int, int], pairs: Iterable[Pair]):
        self._shape = shape
        pair_set = frozenset(pairs)
        for i, j in pair_set:
            if not (0 <= i < shape[0] and 0 <= j < shape[1]):
                raise ValueError(f"pair {(i, j)} outside shape {shape}")
        self._pairs = pair_set
        rows_index: dict[int, set[int]] = defaultdict(set)
        for i, j in pair_set:
            rows_index[i].add(j)
        self._rows_index = {i: frozenset(js) for i, js in rows_index.items()}

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    def __getitem__(self, index: Pair) -> bool:
        return index in self._pairs

    def nonzero_pairs(self) -> Iterator[Pair]:
        return iter(self._pairs)

    def nnz(self) -> int:
        return len(self._pairs)

    def multiply(self, other: BooleanMatrix) -> "PySetMatrix":
        self._require_chainable(other)
        # Index other's rows: k -> columns j with other[k, j].
        other_rows: dict[int, set[int]] = defaultdict(set)
        for k, j in other.nonzero_pairs():
            other_rows[k].add(j)
        result: set[Pair] = set()
        for i, ks in self._rows_index.items():
            for k in ks:
                for j in other_rows.get(k, ()):
                    result.add((i, j))
        return PySetMatrix((self._shape[0], other.shape[1]), result)

    def union(self, other: BooleanMatrix) -> "PySetMatrix":
        self._require_same_shape(other)
        return PySetMatrix(self._shape, self._pairs | set(other.nonzero_pairs()))

    def transpose(self) -> "PySetMatrix":
        return PySetMatrix(
            (self._shape[1], self._shape[0]),
            ((j, i) for i, j in self._pairs),
        )


class PySetBackend(MatrixBackend):
    """Factory for :class:`PySetMatrix`."""

    name = "pyset"

    def zeros(self, rows: int, cols: int | None = None) -> PySetMatrix:
        return PySetMatrix((rows, cols if cols is not None else rows), ())

    def from_pairs(self, size: int, pairs: Iterable[Pair],
                   cols: int | None = None) -> PySetMatrix:
        return PySetMatrix((size, cols if cols is not None else size), pairs)


BACKEND = register_backend(PySetBackend())
