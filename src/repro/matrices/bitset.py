"""Bit-packed boolean matrix backend.

Each matrix row is packed into ``ceil(cols / 64)`` unsigned 64-bit
words; the boolean product ORs whole words instead of touching
individual cells — the classic bitset trick used by high-performance
Boolean-matrix CFPQ implementations (and, conceptually, by the GPU
kernels the paper targets: one machine word processes 64 matrix cells).

The product is computed row-wise: for row ``i`` of the left matrix,
OR together the packed rows ``k`` of the right matrix for every set
bit ``k`` — O(rows · nnz-rows · words) word operations.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from .base import BooleanMatrix, MatrixBackend, Pair, register_backend

_WORD = 64


def _word_count(cols: int) -> int:
    return max(1, (cols + _WORD - 1) // _WORD)


class BitsetMatrix(BooleanMatrix):
    """Bit-packed boolean matrix (rows × ceil(cols/64) words).

    The constructor **takes ownership** of the word array (no copy):
    the in-place kernels OR whole rows into it, so pass a copy if you
    keep a reference.  Read-only arrays are copied defensively.
    """

    __slots__ = ("_words", "_cols")

    backend_name = "bitset"
    supports_inplace = True

    def __init__(self, words: np.ndarray, cols: int):
        if words.ndim != 2 or words.dtype != np.uint64:
            raise ValueError("bitset matrix requires a 2-D uint64 word array")
        if not words.flags.writeable:
            words = words.copy()
        self._words = words
        self._cols = cols

    @property
    def shape(self) -> tuple[int, int]:
        return (self._words.shape[0], self._cols)

    def __getitem__(self, index: Pair) -> bool:
        i, j = index
        return bool((self._words[i, j // _WORD] >> np.uint64(j % _WORD))
                    & np.uint64(1))

    def nonzero_pairs(self) -> Iterator[Pair]:
        rows, words = np.nonzero(self._words)
        for i, w in zip(rows.tolist(), words.tolist()):
            value = int(self._words[i, w])
            base = w * _WORD
            while value:
                low = value & -value
                yield (i, base + low.bit_length() - 1)
                value ^= low

    def nnz(self) -> int:
        # popcount via uint8 view lookup
        as_bytes = self._words.view(np.uint8)
        return int(_POPCOUNT_TABLE[as_bytes].sum())

    def multiply(self, other: BooleanMatrix) -> "BitsetMatrix":
        self._require_chainable(other)
        other_bits = _as_bitset(other)
        rows = self.shape[0]
        result = np.zeros((rows, other_bits._words.shape[1]), dtype=np.uint64)
        left_words = self._words
        right_words = other_bits._words
        for i in range(rows):
            row = left_words[i]
            nonzero_word_indexes = np.nonzero(row)[0]
            if not len(nonzero_word_indexes):
                continue
            accumulator = result[i]
            for w in nonzero_word_indexes.tolist():
                value = int(row[w])
                base = w * _WORD
                while value:
                    low = value & -value
                    k = base + low.bit_length() - 1
                    np.bitwise_or(accumulator, right_words[k], out=accumulator)
                    value ^= low
        return BitsetMatrix(result, other_bits._cols)

    def union(self, other: BooleanMatrix) -> "BitsetMatrix":
        self._require_same_shape(other)
        other_bits = _as_bitset(other)
        return BitsetMatrix(self._words | other_bits._words, self._cols)

    def transpose(self) -> "BitsetMatrix":
        rows, cols = self.shape
        transposed = np.zeros((cols, _word_count(rows)), dtype=np.uint64)
        for i, j in self.nonzero_pairs():
            transposed[j, i // _WORD] |= np.uint64(1) << np.uint64(i % _WORD)
        return BitsetMatrix(transposed, rows)

    def difference(self, other: BooleanMatrix) -> "BitsetMatrix":
        self._require_same_shape(other)
        other_bits = _as_bitset(other)
        return BitsetMatrix(self._words & ~other_bits._words, self._cols)

    def union_update(self, other: BooleanMatrix) -> "BitsetMatrix":
        self._require_same_shape(other)
        other_words = _as_bitset(other)._words
        delta = other_words & ~self._words
        self._words |= other_words
        return BitsetMatrix(delta, self._cols)


_POPCOUNT_TABLE = np.array([bin(b).count("1") for b in range(256)],
                           dtype=np.uint32)


def _as_bitset(matrix: BooleanMatrix) -> BitsetMatrix:
    if isinstance(matrix, BitsetMatrix):
        return matrix
    rows, cols = matrix.shape
    words = np.zeros((rows, _word_count(cols)), dtype=np.uint64)
    for i, j in matrix.nonzero_pairs():
        words[i, j // _WORD] |= np.uint64(1) << np.uint64(j % _WORD)
    return BitsetMatrix(words, cols)


class BitsetBackend(MatrixBackend):
    """Factory for :class:`BitsetMatrix`."""

    name = "bitset"

    def zeros(self, rows: int, cols: int | None = None) -> BitsetMatrix:
        actual_cols = cols if cols is not None else rows
        return BitsetMatrix(
            np.zeros((rows, _word_count(actual_cols)), dtype=np.uint64),
            actual_cols,
        )

    def from_pairs(self, size: int, pairs: Iterable[Pair],
                   cols: int | None = None) -> BitsetMatrix:
        actual_cols = cols if cols is not None else size
        words = np.zeros((size, _word_count(actual_cols)), dtype=np.uint64)
        for i, j in pairs:
            if not (0 <= i < size and 0 <= j < actual_cols):
                raise ValueError(f"pair {(i, j)} outside shape {(size, actual_cols)}")
            words[i, j // _WORD] |= np.uint64(1) << np.uint64(j % _WORD)
        return BitsetMatrix(words, actual_cols)

    def clone(self, matrix: BooleanMatrix) -> BitsetMatrix:
        bits = _as_bitset(matrix)
        return BitsetMatrix(bits._words.copy(), bits._cols)

    def mxm_into(self, left: BooleanMatrix, right: BooleanMatrix,
                 accum: BooleanMatrix,
                 ) -> tuple[BooleanMatrix, BooleanMatrix]:
        """Fused product-accumulate: OR the packed right-matrix rows
        straight into the accumulator's rows, one row buffer at a time,
        skipping the whole-matrix product temporary."""
        if not isinstance(accum, BitsetMatrix) or accum is left or accum is right:
            # The unfused path multiplies before mutating, so operand
            # aliasing stays safe.
            return super().mxm_into(left, right, accum)
        left._require_chainable(right)
        left_bits = _as_bitset(left)
        right_bits = _as_bitset(right)
        if (left_bits.shape[0], right_bits._cols) != accum.shape:
            from ..errors import DimensionMismatchError

            raise DimensionMismatchError(
                f"cannot accumulate {(left_bits.shape[0], right_bits._cols)} "
                f"into {accum.shape}"
            )
        right_words = right_bits._words
        delta_words = np.zeros_like(accum._words)
        row_buffer = np.zeros(right_words.shape[1], dtype=np.uint64)
        for i in range(left_bits.shape[0]):
            row = left_bits._words[i]
            nonzero_word_indexes = np.nonzero(row)[0]
            if not len(nonzero_word_indexes):
                continue
            row_buffer[:] = 0
            for w in nonzero_word_indexes.tolist():
                value = int(row[w])
                base = w * _WORD
                while value:
                    low = value & -value
                    k = base + low.bit_length() - 1
                    np.bitwise_or(row_buffer, right_words[k], out=row_buffer)
                    value ^= low
            np.bitwise_and(row_buffer, ~accum._words[i],
                           out=delta_words[i])
            np.bitwise_or(accum._words[i], row_buffer,
                          out=accum._words[i])
        return accum, BitsetMatrix(delta_words, accum._cols)


BACKEND = register_backend(BitsetBackend())
