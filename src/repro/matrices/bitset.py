"""Bit-packed boolean matrix backend.

Each matrix row is packed into ``ceil(cols / 64)`` unsigned 64-bit
words; the boolean product ORs whole words instead of touching
individual cells — the classic bitset trick used by high-performance
Boolean-matrix CFPQ implementations (and, conceptually, by the GPU
kernels the paper targets: one machine word processes 64 matrix cells).

The product kernel is fully vectorized: the left operand is bit-expanded
once (``np.unpackbits``), the set-bit coordinates select ("gather") the
packed right-matrix rows, and one segmented ``np.bitwise_or.reduceat``
folds each output row — no Python inner loop, so the word-level
parallelism the paper attributes to the GPU actually reaches NumPy's C
kernels.  The historical per-row/per-bit loop survives as
:meth:`BitsetMatrix.multiply_rowloop`, the reference the benchmark suite
measures the vectorized kernel against.
"""

from __future__ import annotations

import sys
from typing import Iterable, Iterator

import numpy as np

from .base import BooleanMatrix, MatrixBackend, Pair, register_backend

_WORD = 64

#: The byte-view kernels (unpackbits/packbits on a uint8 view of the
#: word array) assume bit j of word w lives in byte j//8 — true only on
#: little-endian hosts, since bits are *written* value-wise
#: (``1 << j % 64``).  Big-endian hosts take the endian-agnostic
#: fallbacks instead.
_LITTLE_ENDIAN = sys.byteorder == "little"

#: Upper bound on set left bits gathered per ``reduceat`` chunk: caps
#: the peak temporary at ``_GATHER_CHUNK_BITS × row_bytes(right)``
#: (≈ 32 MB at 4096 columns) instead of ``nnz(left) × row_bytes`` —
#: which on dense operands would be O(n³/8).
_GATHER_CHUNK_BITS = 1 << 16


def _word_count(cols: int) -> int:
    return max(1, (cols + _WORD - 1) // _WORD)


def _multiply_words(left_words: np.ndarray, right_words: np.ndarray,
                    inner: int) -> np.ndarray:
    """The vectorized packed product: for every set bit (i, k) of the
    left operand OR the packed right row ``k`` into output row ``i``.

    Implemented as bit-expansion + gather + segmented
    ``np.bitwise_or.reduceat`` over the gathered rows (``np.nonzero``
    returns coordinates row-major, so each output row is one contiguous
    segment).  The gather runs in row-aligned chunks of at most
    :data:`_GATHER_CHUNK_BITS` set bits, bounding the temporary
    working set on dense operands.  Returns a fresh writable word array.
    """
    rows = left_words.shape[0]
    out = np.zeros((rows, right_words.shape[1]), dtype=np.uint64)
    if rows == 0 or inner == 0:
        return out
    bits = np.unpackbits(left_words.view(np.uint8), axis=1,
                         bitorder="little")[:, :inner]
    row_idx, k_idx = np.nonzero(bits)
    total = len(row_idx)
    if not total:
        return out
    # Global segment starts: one segment per nonzero output row.
    starts = np.concatenate(([0], np.flatnonzero(np.diff(row_idx)) + 1))
    segment = 0
    while segment < len(starts):
        begin = int(starts[segment])
        # Extend to whole row segments until the chunk budget is hit;
        # a single row denser than the budget still goes in one piece
        # (its gather is bounded by inner × row_bytes).
        segment_end = int(np.searchsorted(starts, begin + _GATHER_CHUNK_BITS,
                                          side="right"))
        segment_end = max(segment_end, segment + 1)
        end = (int(starts[segment_end]) if segment_end < len(starts)
               else total)
        gathered = right_words[k_idx[begin:end]]
        sub_starts = starts[segment:segment_end] - begin
        out[row_idx[starts[segment:segment_end]]] = \
            np.bitwise_or.reduceat(gathered, sub_starts, axis=0)
        segment = segment_end
    return out


class BitsetMatrix(BooleanMatrix):
    """Bit-packed boolean matrix (rows × ceil(cols/64) words).

    The constructor **takes ownership** of the word array (no copy):
    the in-place kernels OR whole rows into it, so pass a copy if you
    keep a reference.  Read-only arrays are copied defensively; the
    kernels construct their results through :meth:`_wrap`, which skips
    that check entirely (they only ever produce fresh writable buffers).
    """

    __slots__ = ("_words", "_cols")

    backend_name = "bitset"
    supports_inplace = True

    def __init__(self, words: np.ndarray, cols: int):
        if words.ndim != 2 or words.dtype != np.uint64:
            raise ValueError("bitset matrix requires a 2-D uint64 word array")
        if not words.flags.writeable:
            words = words.copy()
        self._words = words
        self._cols = cols

    @classmethod
    def _wrap(cls, words: np.ndarray, cols: int) -> "BitsetMatrix":
        """Kernel fast path: wrap a word buffer we know we own.

        Skips the defensive-copy check of ``__init__`` — every kernel
        result is a fresh writable uint64 array, and the assertions
        (compiled out under ``-O``) keep that invariant honest.
        """
        assert words.ndim == 2 and words.dtype == np.uint64, \
            "_wrap requires a 2-D uint64 word array"
        assert words.flags.writeable, \
            "_wrap requires a writable (owned) buffer"
        matrix = cls.__new__(cls)
        matrix._words = words
        matrix._cols = cols
        return matrix

    @property
    def shape(self) -> tuple[int, int]:
        return (self._words.shape[0], self._cols)

    def __getitem__(self, index: Pair) -> bool:
        i, j = index
        return bool((self._words[i, j // _WORD] >> np.uint64(j % _WORD))
                    & np.uint64(1))

    def nonzero_pairs(self) -> Iterator[Pair]:
        rows, words = np.nonzero(self._words)
        for i, w in zip(rows.tolist(), words.tolist()):
            value = int(self._words[i, w])
            base = w * _WORD
            while value:
                low = value & -value
                yield (i, base + low.bit_length() - 1)
                value ^= low

    def nnz(self) -> int:
        # popcount via uint8 view lookup
        as_bytes = self._words.view(np.uint8)
        return int(_POPCOUNT_TABLE[as_bytes].sum())

    def multiply(self, other: BooleanMatrix) -> "BitsetMatrix":
        self._require_chainable(other)
        if not _LITTLE_ENDIAN:  # pragma: no cover - exotic hosts
            return self.multiply_rowloop(other)
        other_bits = _as_bitset(other)
        product = _multiply_words(self._words, other_bits._words,
                                  self.shape[1])
        return BitsetMatrix._wrap(product, other_bits._cols)

    def multiply_rowloop(self, other: BooleanMatrix) -> "BitsetMatrix":
        """The seed scalar kernel: per row, walk every set bit in Python
        and OR the matching packed right rows.  Kept as the reference
        implementation the vectorized :meth:`multiply` is differentially
        tested and benchmarked against (``BENCH_backends.json``)."""
        self._require_chainable(other)
        other_bits = _as_bitset(other)
        rows = self.shape[0]
        result = np.zeros((rows, other_bits._words.shape[1]), dtype=np.uint64)
        left_words = self._words
        right_words = other_bits._words
        for i in range(rows):
            row = left_words[i]
            nonzero_word_indexes = np.nonzero(row)[0]
            if not len(nonzero_word_indexes):
                continue
            accumulator = result[i]
            for w in nonzero_word_indexes.tolist():
                value = int(row[w])
                base = w * _WORD
                while value:
                    low = value & -value
                    k = base + low.bit_length() - 1
                    np.bitwise_or(accumulator, right_words[k], out=accumulator)
                    value ^= low
        return BitsetMatrix._wrap(result, other_bits._cols)

    def union(self, other: BooleanMatrix) -> "BitsetMatrix":
        self._require_same_shape(other)
        other_bits = _as_bitset(other)
        return BitsetMatrix._wrap(self._words | other_bits._words, self._cols)

    def transpose(self) -> "BitsetMatrix":
        rows, cols = self.shape
        if rows == 0 or cols == 0 or not _LITTLE_ENDIAN:
            transposed = np.zeros((cols, _word_count(rows)), dtype=np.uint64)
            for i, j in self.nonzero_pairs():  # pragma: no cover - BE hosts
                transposed[j, i // _WORD] |= np.uint64(1) << np.uint64(
                    i % _WORD)
            return BitsetMatrix._wrap(transposed, rows)
        bits = np.unpackbits(self._words.view(np.uint8), axis=1,
                             bitorder="little")[:, :cols]
        padded = np.zeros((cols, _word_count(rows) * _WORD), dtype=np.uint8)
        padded[:, :rows] = bits.T
        transposed = np.packbits(padded, axis=1,
                                 bitorder="little").view(np.uint64)
        return BitsetMatrix._wrap(np.ascontiguousarray(transposed), rows)

    def difference(self, other: BooleanMatrix) -> "BitsetMatrix":
        self._require_same_shape(other)
        other_bits = _as_bitset(other)
        # self & ~other with a single allocation: invert into the output
        # buffer, then AND in place.
        out = np.bitwise_not(other_bits._words)
        np.bitwise_and(out, self._words, out=out)
        return BitsetMatrix._wrap(out, self._cols)

    def union_update(self, other: BooleanMatrix) -> "BitsetMatrix":
        self._require_same_shape(other)
        other_words = _as_bitset(other)._words
        # Exact delta with one allocation (the returned matrix): merged
        # = self | other, delta = merged ^ self, then merge in place.
        delta = np.bitwise_or(self._words, other_words)
        np.bitwise_xor(delta, self._words, out=delta)
        np.bitwise_or(self._words, delta, out=self._words)
        return BitsetMatrix._wrap(delta, self._cols)


_POPCOUNT_TABLE = np.array([bin(b).count("1") for b in range(256)],
                           dtype=np.uint32)


def _as_bitset(matrix: BooleanMatrix) -> BitsetMatrix:
    if isinstance(matrix, BitsetMatrix):
        return matrix
    rows, cols = matrix.shape
    words = np.zeros((rows, _word_count(cols)), dtype=np.uint64)
    for i, j in matrix.nonzero_pairs():
        words[i, j // _WORD] |= np.uint64(1) << np.uint64(j % _WORD)
    return BitsetMatrix._wrap(words, cols)


class BitsetBackend(MatrixBackend):
    """Factory for :class:`BitsetMatrix`."""

    name = "bitset"

    def zeros(self, rows: int, cols: int | None = None) -> BitsetMatrix:
        actual_cols = cols if cols is not None else rows
        return BitsetMatrix._wrap(
            np.zeros((rows, _word_count(actual_cols)), dtype=np.uint64),
            actual_cols,
        )

    def from_pairs(self, size: int, pairs: Iterable[Pair],
                   cols: int | None = None) -> BitsetMatrix:
        actual_cols = cols if cols is not None else size
        words = np.zeros((size, _word_count(actual_cols)), dtype=np.uint64)
        for i, j in pairs:
            if not (0 <= i < size and 0 <= j < actual_cols):
                raise ValueError(f"pair {(i, j)} outside shape {(size, actual_cols)}")
            words[i, j // _WORD] |= np.uint64(1) << np.uint64(j % _WORD)
        return BitsetMatrix._wrap(words, actual_cols)

    def clone(self, matrix: BooleanMatrix) -> BitsetMatrix:
        bits = _as_bitset(matrix)
        return BitsetMatrix._wrap(bits._words.copy(), bits._cols)

    def gather_rows(self, matrix: BooleanMatrix, rows) -> BitsetMatrix:
        bits = _as_bitset(matrix)
        index = np.asarray(list(rows), dtype=np.intp)
        if index.size and (index.min() < 0
                           or index.max() >= bits._words.shape[0]):
            raise IndexError(
                f"row index out of range for shape {matrix.shape}"
            )
        # Whole packed rows move in one fancy-index copy.
        words = np.ascontiguousarray(bits._words[index])
        return BitsetMatrix._wrap(words, bits._cols)

    def mask_rows(self, matrix: BooleanMatrix, keep) -> BitsetMatrix:
        bits = _as_bitset(matrix)
        index = np.asarray(sorted(set(keep)), dtype=np.intp)
        if index.size and (index.min() < 0
                           or index.max() >= bits._words.shape[0]):
            raise IndexError(
                f"row index out of range for shape {matrix.shape}"
            )
        words = np.zeros_like(bits._words)
        words[index] = bits._words[index]
        return BitsetMatrix._wrap(words, bits._cols)

    def matrix_nbytes(self, matrix: BooleanMatrix) -> int:
        if isinstance(matrix, BitsetMatrix):
            return int(matrix._words.nbytes)
        rows, cols = matrix.shape
        return rows * _word_count(cols) * 8

    # -- tiling (vectorized word-aligned fast paths) ----------------------
    def split_into_tiles(self, matrix: BooleanMatrix, tile_size: int,
                         ) -> dict[tuple[int, int], BitsetMatrix]:
        """Word-aligned tile sizes split by slicing the packed word
        array — no per-bit Python loop.  Unaligned sizes (and foreign
        matrix types) fall back to the generic coordinate path."""
        if (tile_size < 1 or tile_size % _WORD
                or not isinstance(matrix, BitsetMatrix)):
            return super().split_into_tiles(matrix, tile_size)
        n = matrix.shape[0]
        grid = (n + tile_size - 1) // tile_size
        words = matrix._words
        words_per_tile = tile_size // _WORD
        tiles: dict[tuple[int, int], BitsetMatrix] = {}
        for bi in range(grid):
            row_lo = bi * tile_size
            row_hi = min(n, row_lo + tile_size)
            for bj in range(grid):
                word_lo = bj * words_per_tile
                word_hi = min(words.shape[1], word_lo + words_per_tile)
                block = np.zeros((tile_size, words_per_tile), dtype=np.uint64)
                block[:row_hi - row_lo, :word_hi - word_lo] = \
                    words[row_lo:row_hi, word_lo:word_hi]
                tiles[(bi, bj)] = BitsetMatrix._wrap(block, tile_size)
        return tiles

    def assemble_from_tile_iter(self, items, size: int, tile_size: int,
                                ) -> BooleanMatrix:
        if tile_size < 1 or tile_size % _WORD:
            return super().assemble_from_tile_iter(items, size, tile_size)
        words_per_tile = tile_size // _WORD
        total_words = _word_count(size)
        words = np.zeros((size, total_words), dtype=np.uint64)
        for (bi, bj), tile in items:
            row_lo = bi * tile_size
            word_lo = bj * words_per_tile
            if row_lo >= size or word_lo >= total_words:
                continue
            row_hi = min(size, row_lo + tile_size)
            word_hi = min(total_words, word_lo + words_per_tile)
            words[row_lo:row_hi, word_lo:word_hi] = \
                _as_bitset(tile)._words[:row_hi - row_lo, :word_hi - word_lo]
        if size % _WORD:
            # Mask the padding columns the edge tiles may carry.
            words[:, -1] &= np.uint64((1 << (size % _WORD)) - 1)
        return BitsetMatrix._wrap(words, size)

    def mxm_into(self, left: BooleanMatrix, right: BooleanMatrix,
                 accum: BooleanMatrix,
                 ) -> tuple[BooleanMatrix, BooleanMatrix]:
        """Fused product-accumulate on packed words: the vectorized
        product buffer is reused in place to compute the exact delta
        (``merged ^ old``) and then ORed into the accumulator — no
        temporaries beyond the product itself."""
        if not isinstance(accum, BitsetMatrix) or not _LITTLE_ENDIAN:
            # The unfused path multiplies before mutating (and routes
            # big-endian hosts through the scalar kernel).
            return super().mxm_into(left, right, accum)
        left._require_chainable(right)
        left_bits = _as_bitset(left)
        right_bits = _as_bitset(right)
        if (left_bits.shape[0], right_bits._cols) != accum.shape:
            from ..errors import DimensionMismatchError

            raise DimensionMismatchError(
                f"cannot accumulate {(left_bits.shape[0], right_bits._cols)} "
                f"into {accum.shape}"
            )
        product = _multiply_words(left_bits._words, right_bits._words,
                                  left_bits.shape[1])
        # product -> merged -> delta, all in the product buffer; safe
        # even when accum aliases an operand (the product is computed
        # before accum mutates).
        np.bitwise_or(product, accum._words, out=product)
        np.bitwise_xor(product, accum._words, out=product)
        np.bitwise_or(accum._words, product, out=accum._words)
        return accum, BitsetMatrix._wrap(product, accum._cols)

    # -- tile payloads (process-pool scheduler) ---------------------------
    def tile_payload(self, matrix: BooleanMatrix) -> tuple:
        bits = _as_bitset(matrix)
        rows, cols = bits.shape
        return ("bitset", rows, cols, bits._words.tobytes())

    def tile_from_payload(self, payload: tuple) -> BitsetMatrix:
        _kind, rows, cols, raw = payload
        words = np.frombuffer(raw, dtype=np.uint64).reshape(
            rows, _word_count(cols)).copy()
        return BitsetMatrix._wrap(words, cols)

    # -- spilling (the tile store's raw-buffer format) --------------------
    def spill_parts(self, payload: tuple) -> tuple:
        kind, rows, cols, raw = payload
        return (kind, rows, cols), raw

    def payload_from_parts(self, meta: tuple, buffer) -> tuple:
        kind, rows, cols = meta
        return (kind, rows, cols, bytes(buffer))

    def tile_from_parts(self, meta: tuple, buffer) -> BitsetMatrix:
        """Zero-copy reload: a private-writable mapping (``mmap`` with
        ``ACCESS_COPY``) is wrapped directly; read-only buffers (plain
        ``bytes``) are copied once."""
        _kind, rows, cols = meta
        words = np.frombuffer(buffer, dtype=np.uint64).reshape(
            rows, _word_count(cols))
        if not words.flags.writeable:
            words = words.copy()
        return BitsetMatrix._wrap(words, cols)


BACKEND = register_backend(BitsetBackend())
