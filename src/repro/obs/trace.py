"""Structured tracing: nested spans, JSONL sink, shared stopwatch.

A :class:`Tracer` produces *spans* — named, timed, attributed intervals
that nest: closure → round → tile group → spill, or request → tick →
WAL append.  The API is a context manager (``with tracer.span("x")``)
plus a decorator (:func:`traced`); the current span is tracked with
:mod:`contextvars` so nesting is correct across ``asyncio`` tasks and
plain threads that inherit a copied context.

Two situations break implicit contextvar parenting, and both have an
explicit escape hatch:

* **thread pools** — a ``ThreadPoolExecutor`` worker runs in its own
  long-lived context, and a single ``contextvars.Context`` object
  cannot be entered concurrently, so copying the submitter's context
  per task is not an option for fan-out.  Callers capture
  ``tracer.current_ref()`` *before* submitting and pass it as
  ``tracer.span(..., parent_ref=ref)`` inside the worker.
* **process pools** — spans cannot cross a pipe live.  Workers build a
  throwaway :class:`Tracer` with a :class:`MemorySink`, do their work,
  and return the drained records next to their normal payload; the
  parent calls :meth:`Tracer.ingest` to splice them into its own sink.
  Records carry the parent's ``(trace_id, span_id)`` ref, so the tree
  reconstructs exactly.

Disabled tracing is a different *type*, not a flag check per field:
:data:`NULL_TRACER` returns one shared no-op context manager from
``span()``, so an un-traced closure pays a single attribute lookup and
nothing else.  Root spans can additionally be *sampled*
(``sample_every=N`` keeps every Nth root's whole tree), which keeps
``--trace-file`` safe to leave on under serving load.

:func:`stopwatch` is the one timer primitive — every former ad-hoc
``time.perf_counter()`` pair in closure, the query service, and the
bench harness now goes through it.
"""

from __future__ import annotations

import contextvars
import functools
import itertools
import json
import os
import threading
import time
from contextlib import contextmanager

__all__ = [
    "NULL_TRACER",
    "MemorySink",
    "Span",
    "Stopwatch",
    "TraceFileSink",
    "Tracer",
    "configure_tracing",
    "get_tracer",
    "reset_tracing",
    "stopwatch",
    "traced",
]


# --------------------------------------------------------------------------
# Timer primitive


class Stopwatch:
    """A ``perf_counter`` pair as a context manager.

    ``with stopwatch() as sw: ...`` then ``sw.elapsed`` — or read
    ``sw.elapsed`` mid-flight for a running total.
    """

    __slots__ = ("_t0", "_elapsed")

    def __init__(self) -> None:
        self._t0 = time.perf_counter()
        self._elapsed: "float | None" = None

    def __enter__(self) -> "Stopwatch":
        self._t0 = time.perf_counter()
        self._elapsed = None
        return self

    def __exit__(self, *exc) -> bool:
        self._elapsed = time.perf_counter() - self._t0
        return False

    def restart(self) -> None:
        self._t0 = time.perf_counter()
        self._elapsed = None

    @property
    def elapsed(self) -> float:
        if self._elapsed is not None:
            return self._elapsed
        return time.perf_counter() - self._t0


def stopwatch() -> Stopwatch:
    """A fresh (already ticking) :class:`Stopwatch`."""
    return Stopwatch()


# --------------------------------------------------------------------------
# Spans


class Span:
    """One timed interval in a trace tree."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "attrs",
                 "ts", "_t0", "dur_s")

    def __init__(self, name: str, trace_id: str, span_id: str,
                 parent_id: "str | None", attrs: dict):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.ts = time.time()
        self._t0 = time.perf_counter()
        self.dur_s: "float | None" = None

    def set(self, key: str, value) -> None:
        """Attach/overwrite one attribute on the live span."""
        self.attrs[key] = value

    @property
    def ref(self) -> tuple:
        """The ``(trace_id, span_id)`` handle children parent onto."""
        return (self.trace_id, self.span_id)

    def finish(self) -> dict:
        self.dur_s = time.perf_counter() - self._t0
        return self.record()

    def record(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "ts": self.ts,
            "dur_s": self.dur_s,
            "attrs": self.attrs,
        }


class _NullSpan:
    """The span handed out when tracing is off: attribute writes vanish."""

    __slots__ = ()
    name = trace_id = span_id = parent_id = None
    dur_s = None
    attrs: dict = {}
    ref = None

    def set(self, key: str, value) -> None:
        pass


NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """One shared, re-entrant no-op context manager — the entire cost of
    an instrumented call site when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()

#: Sentinel current-span marking a sampled-out trace: children of a
#: dropped root must also drop, not become fresh roots.
_SUPPRESSED = _NullSpan()


# --------------------------------------------------------------------------
# Sinks


class MemorySink:
    """Buffers records in memory; process workers drain and ship them."""

    def __init__(self) -> None:
        self._records: list[dict] = []
        self._lock = threading.Lock()

    def write(self, record: dict) -> None:
        with self._lock:
            self._records.append(record)

    def drain(self) -> "list[dict]":
        with self._lock:
            records, self._records = self._records, []
        return records

    def close(self) -> None:
        pass


class TraceFileSink:
    """Append-only JSONL trace sink with size-based rotation.

    When the file exceeds ``max_bytes`` it is renamed to ``<path>.1``
    (replacing any previous rotation) and a fresh file is started, so a
    long-running server keeps at most two generations on disk.
    """

    def __init__(self, path: str, max_bytes: int = 64 * 1024 * 1024):
        self.path = os.fspath(path)
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._file = open(self.path, "a", encoding="utf-8")
        self._size = self._file.tell()

    def write(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        with self._lock:
            if self._size and self._size + len(line) > self.max_bytes:
                self._rotate()
            self._file.write(line)
            self._file.flush()
            self._size += len(line)

    def _rotate(self) -> None:
        self._file.close()
        os.replace(self.path, self.path + ".1")
        self._file = open(self.path, "a", encoding="utf-8")
        self._size = 0

    def close(self) -> None:
        with self._lock:
            self._file.close()


# --------------------------------------------------------------------------
# Tracer


class Tracer:
    """Produces nested spans and emits their records to a sink."""

    enabled = True

    def __init__(self, sink=None, sample_every: int = 1):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sink = sink
        self.sample_every = int(sample_every)
        self._current = contextvars.ContextVar("repro_obs_span",
                                               default=None)
        # itertools.count.__next__ is atomic under the GIL; the pid
        # component keeps ids distinct across process-pool workers.
        self._ids = itertools.count()
        self._roots = itertools.count()
        self._pid = os.getpid()
        self._collectors: list[list] = []
        self._collect_lock = threading.Lock()

    # -- id plumbing ------------------------------------------------------

    def _next_id(self) -> str:
        return f"{self._pid:x}.{next(self._ids):x}"

    def current_ref(self) -> "tuple | None":
        """The ``(trace_id, span_id)`` of the innermost live span, or
        None.  Capture this *before* handing work to a pool and pass it
        as ``parent_ref`` inside the worker."""
        span = self._current.get()
        if span is None or span is _SUPPRESSED:
            return None
        return span.ref

    # -- span lifecycle ---------------------------------------------------

    @contextmanager
    def span(self, name: str, parent_ref: "tuple | None" = None, **attrs):
        """Open a child of the current span (or of ``parent_ref``).

        A span with neither an implicit nor an explicit parent starts a
        new trace and is subject to root sampling: with
        ``sample_every=N`` only every Nth root — and its entire subtree
        — is recorded.
        """
        current = self._current.get()
        if current is _SUPPRESSED and parent_ref is None:
            yield NULL_SPAN
            return
        if parent_ref is not None:
            trace_id, parent_id = parent_ref
        elif current is not None:
            trace_id, parent_id = current.trace_id, current.span_id
        else:
            if self.sample_every > 1 \
                    and next(self._roots) % self.sample_every != 0:
                token = self._current.set(_SUPPRESSED)
                try:
                    yield NULL_SPAN
                finally:
                    self._current.reset(token)
                return
            trace_id, parent_id = self._next_id(), None
        span = Span(name, trace_id, self._next_id(), parent_id, attrs)
        token = self._current.set(span)
        try:
            yield span
        finally:
            self._current.reset(token)
            self._emit(span.finish())

    def _emit(self, record: dict) -> None:
        if self.sink is not None:
            self.sink.write(record)
        if self._collectors:
            with self._collect_lock:
                for buffer in self._collectors:
                    buffer.append(record)

    def ingest(self, records) -> None:
        """Splice externally produced span records (e.g. shipped back
        from a process-pool worker) into this tracer's sink and any
        active collectors."""
        for record in records:
            self._emit(record)

    @contextmanager
    def collect(self):
        """Capture every record finished anywhere while the block is
        active (all threads).  Yields the live list; filter by
        ``trace_id`` to isolate one request's tree — concurrent
        requests interleave."""
        buffer: list[dict] = []
        with self._collect_lock:
            self._collectors.append(buffer)
        try:
            yield buffer
        finally:
            with self._collect_lock:
                self._collectors.remove(buffer)


class _NullTracer(Tracer):
    """Tracing disabled: every operation is a constant-time no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(sink=None)

    def span(self, name: str, parent_ref=None, **attrs):
        return _NULL_SPAN_CONTEXT

    def current_ref(self) -> None:
        return None

    def ingest(self, records) -> None:
        pass


NULL_TRACER = _NullTracer()


# --------------------------------------------------------------------------
# Global wiring


_GLOBAL_TRACER: "Tracer | None" = None
_GLOBAL_LOCK = threading.Lock()


def configure_tracing(trace_file: "str | None" = None,
                      sample_every: int = 1,
                      sink=None,
                      enabled: "bool | None" = None) -> Tracer:
    """Install the process-wide tracer explicitly.

    * ``trace_file`` — rotate-on-size JSONL sink at that path;
    * ``sink`` — any object with ``write(record)`` (overrides
      ``trace_file``);
    * ``enabled=True`` with neither — spans run live (so ``collect()``
      and the slow-query log see trees) but nothing persists;
    * ``enabled=False`` — force :data:`NULL_TRACER`.
    """
    global _GLOBAL_TRACER
    with _GLOBAL_LOCK:
        if enabled is False:
            _GLOBAL_TRACER = NULL_TRACER
        elif sink is not None:
            _GLOBAL_TRACER = Tracer(sink, sample_every=sample_every)
        elif trace_file:
            _GLOBAL_TRACER = Tracer(TraceFileSink(trace_file),
                                    sample_every=sample_every)
        elif enabled:
            _GLOBAL_TRACER = Tracer(None, sample_every=sample_every)
        else:
            _GLOBAL_TRACER = NULL_TRACER
        return _GLOBAL_TRACER


def get_tracer() -> Tracer:
    """The process-wide tracer; first call resolves ``REPRO_TRACE_FILE``
    (path) and ``REPRO_TRACE_SAMPLE`` (keep every Nth root) from the
    environment, later calls are a plain read."""
    global _GLOBAL_TRACER
    tracer = _GLOBAL_TRACER
    if tracer is not None:
        return tracer
    with _GLOBAL_LOCK:
        if _GLOBAL_TRACER is None:
            path = os.environ.get("REPRO_TRACE_FILE", "").strip()
            sample = int(os.environ.get("REPRO_TRACE_SAMPLE", "1") or 1)
            if path:
                _GLOBAL_TRACER = Tracer(TraceFileSink(path),
                                        sample_every=max(sample, 1))
            else:
                _GLOBAL_TRACER = NULL_TRACER
        return _GLOBAL_TRACER


def reset_tracing() -> None:
    """Drop the installed tracer; the next :func:`get_tracer` re-reads
    the environment.  Test isolation goes through this."""
    global _GLOBAL_TRACER
    with _GLOBAL_LOCK:
        old, _GLOBAL_TRACER = _GLOBAL_TRACER, None
    if old is not None and old is not NULL_TRACER \
            and old.sink is not None and hasattr(old.sink, "close"):
        old.sink.close()


def traced(name: "str | None" = None, **attrs):
    """Decorator form: run the function inside a span named after it
    (or ``name``), resolved against the global tracer at call time."""
    def decorate(func):
        span_name = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            tracer = get_tracer()
            if not tracer.enabled:
                return func(*args, **kwargs)
            with tracer.span(span_name, **attrs):
                return func(*args, **kwargs)

        return wrapper
    return decorate
