"""Per-phase breakdown of a recorded trace, Table-1 style.

``repro trace summarize FILE`` reads the JSONL span records a
``--trace-file`` run emitted and aggregates them per span name: count,
total/mean/max wall time, and each phase's *self time* share — the
span's duration minus its direct children's, which is the number the
paper's per-phase tables report (a ``closure`` row should not
double-count the ``closure.round`` rows nested inside it).
"""

from __future__ import annotations

import json

__all__ = ["summarize_trace", "render_summary"]


def _iter_records(lines):
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict) and "name" in record \
                and record.get("dur_s") is not None:
            yield record


def summarize_trace(path_or_lines) -> dict:
    """Aggregate a trace file (path) or iterable of JSONL lines.

    Returns ``{"spans": {name: {count, total_s, self_s, mean_s,
    max_s}}, "traces": n, "records": n, "total_self_s": t}`` with
    ``self_s`` = duration minus direct children's durations, clamped at
    zero (concurrent children can overlap their parent).
    """
    if isinstance(path_or_lines, (str, bytes)) \
            or hasattr(path_or_lines, "__fspath__"):
        with open(path_or_lines, "r", encoding="utf-8") as handle:
            records = list(_iter_records(handle))
    else:
        records = list(_iter_records(path_or_lines))

    child_seconds: dict = {}
    for record in records:
        parent = record.get("parent_id")
        if parent is not None:
            key = (record.get("trace_id"), parent)
            child_seconds[key] = child_seconds.get(key, 0.0) \
                + float(record["dur_s"])

    spans: dict = {}
    traces = set()
    for record in records:
        name = record["name"]
        dur = float(record["dur_s"])
        traces.add(record.get("trace_id"))
        own_key = (record.get("trace_id"), record.get("span_id"))
        self_s = max(dur - child_seconds.get(own_key, 0.0), 0.0)
        entry = spans.setdefault(name, {
            "count": 0, "total_s": 0.0, "self_s": 0.0, "max_s": 0.0,
        })
        entry["count"] += 1
        entry["total_s"] += dur
        entry["self_s"] += self_s
        entry["max_s"] = max(entry["max_s"], dur)

    for entry in spans.values():
        entry["mean_s"] = entry["total_s"] / entry["count"]

    return {
        "spans": spans,
        "records": len(records),
        "traces": len(traces),
        "total_self_s": sum(e["self_s"] for e in spans.values()),
    }


def render_summary(summary: dict) -> str:
    """The aggregate as an aligned text table, phases sorted by self
    time descending — the shape of the paper's per-phase timings."""
    spans = summary["spans"]
    if not spans:
        return "(no span records)\n"
    total_self = summary["total_self_s"] or 1.0
    header = ("phase", "count", "total_s", "self_s", "mean_s",
              "max_s", "self%")
    rows = [header]
    for name in sorted(spans, key=lambda n: -spans[n]["self_s"]):
        entry = spans[name]
        rows.append((
            name,
            str(entry["count"]),
            f"{entry['total_s']:.6f}",
            f"{entry['self_s']:.6f}",
            f"{entry['mean_s']:.6f}",
            f"{entry['max_s']:.6f}",
            f"{100.0 * entry['self_s'] / total_self:.1f}",
        ))
    widths = [max(len(row[col]) for row in rows)
              for col in range(len(header))]
    lines = []
    for index, row in enumerate(rows):
        lines.append("  ".join(
            cell.ljust(widths[col]) if col == 0 else cell.rjust(widths[col])
            for col, cell in enumerate(row)
        ).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    lines.append("")
    lines.append(f"{summary['records']} spans across "
                 f"{summary['traces']} traces; "
                 f"total self time {summary['total_self_s']:.6f}s")
    return "\n".join(lines) + "\n"
