"""Metrics registry: counters, gauges, fixed-bucket histograms.

One process-wide :class:`MetricsRegistry` (:func:`get_registry`) that
every layer publishes into instead of reinventing capture — closure
rounds and multiplications, tile fire/skip/spill/reload traffic,
resident bytes vs budget, cache hits per semantics, batch occupancy,
tick latency, WAL appends/fsyncs, replica replay lag, and per-request
server latency all land here under stable names (see the README's
metric catalogue).

Design constraints, in order:

* **dependency-free and cheap** — an increment is a lock + dict update;
  there is no background thread, no I/O, and recording never raises
  into the instrumented code path;
* **Prometheus-renderable** — :func:`render_prometheus` produces the
  text exposition format (``# HELP`` / ``# TYPE`` + samples, histogram
  ``_bucket``/``_sum``/``_count`` series with cumulative ``le``
  labels), which is what the ``metrics`` wire op and the
  ``serve --metrics-addr`` scrape endpoint return;
* **non-semantic** — metrics observe, they never influence a
  computation; the trace-on/off differential tests hold with the
  registry active because nothing reads it on a query path.

Histograms use *fixed* buckets chosen at creation
(:data:`DEFAULT_LATENCY_BUCKETS` suits seconds-scale latencies) and
support quantile estimation by linear interpolation inside the bucket —
good enough for p50/p95/p99 serving dashboards without storing samples.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "get_registry",
    "render_prometheus",
    "reset_metrics",
]

#: Default histogram bucket upper bounds (seconds): half-millisecond to
#: ten-second latencies, roughly logarithmic.  ``+Inf`` is implicit.
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default buckets for dimensionless size-ish histograms (counts of
#: entries, rows, tiles): powers of four from 1 to ~1M.
DEFAULT_SIZE_BUCKETS = (
    1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576,
)


def _label_key(label_names: tuple, labels: dict) -> tuple:
    """The storage key for one labelled series, in declared order."""
    if set(labels) != set(label_names):
        raise ValueError(
            f"labels {sorted(labels)} do not match declared "
            f"{sorted(label_names)}"
        )
    return tuple(str(labels[name]) for name in label_names)


class _Metric:
    """Shared shape: a named, labelled family of series."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: tuple = ()):
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()

    def _key(self, labels: dict) -> tuple:
        return _label_key(self.label_names, labels)


class Counter(_Metric):
    """A monotonically increasing counter (per label set)."""

    kind = "counter"

    def __init__(self, name: str, help: str, label_names: tuple = ()):
        super().__init__(name, help, label_names)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0)

    def samples(self) -> "list[tuple[str, tuple, float]]":
        with self._lock:
            return [(self.name, key, value)
                    for key, value in sorted(self._values.items())]


class Gauge(_Metric):
    """A value that can go up and down (per label set)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, label_names: tuple = ()):
        super().__init__(name, help, label_names)
        self._values: dict[tuple, float] = {}

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._values[self._key(labels)] = value

    def inc(self, amount: float = 1, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0)

    def samples(self) -> "list[tuple[str, tuple, float]]":
        with self._lock:
            return [(self.name, key, value)
                    for key, value in sorted(self._values.items())]


class _HistogramSeries:
    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, n_buckets: int):
        self.bucket_counts = [0] * (n_buckets + 1)  # + the +Inf bucket
        self.total = 0.0
        self.count = 0


class Histogram(_Metric):
    """A fixed-bucket histogram (per label set).

    ``observe(v)`` increments the first bucket whose upper bound is
    ≥ v (cumulative rendering happens at exposition time, matching the
    Prometheus convention), plus ``_sum`` and ``_count``.
    ``quantile(q)`` estimates by linear interpolation within the
    selected bucket — exact at bucket edges, monotone in ``q``.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str, label_names: tuple = (),
                 buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS):
        super().__init__(name, help, label_names)
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.buckets = bounds
        self._series: dict[tuple, _HistogramSeries] = {}

    def _get_series(self, key: tuple) -> _HistogramSeries:
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        return series

    def _bucket_index(self, value: float) -> int:
        # Linear scan beats bisect for the ~15-bucket families here and
        # stays allocation-free.
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                return index
        return len(self.buckets)  # +Inf

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            series = self._get_series(key)
            series.bucket_counts[self._bucket_index(value)] += 1
            series.total += value
            series.count += 1

    def count(self, **labels) -> int:
        with self._lock:
            series = self._series.get(self._key(labels))
            return series.count if series is not None else 0

    def sum(self, **labels) -> float:
        with self._lock:
            series = self._series.get(self._key(labels))
            return series.total if series is not None else 0.0

    def quantile(self, q: float, **labels) -> "float | None":
        """Estimated q-quantile (0 ≤ q ≤ 1); None with no observations.
        Values in the +Inf bucket clamp to the largest finite bound."""
        if not 0 <= q <= 1:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            series = self._series.get(self._key(labels))
            if series is None or series.count == 0:
                return None
            rank = q * series.count
            cumulative = 0
            for index, in_bucket in enumerate(series.bucket_counts):
                if in_bucket == 0:
                    continue
                # The bucket's true bounds — empty buckets in between
                # must not stretch the interpolation base.
                lower = self.buckets[index - 1] if index > 0 else 0.0
                upper = (self.buckets[index]
                         if index < len(self.buckets) else self.buckets[-1])
                if cumulative + in_bucket >= rank:
                    if index >= len(self.buckets):
                        return upper
                    fraction = (rank - cumulative) / in_bucket
                    return lower + (upper - lower) * min(max(fraction, 0), 1)
                cumulative += in_bucket
            return self.buckets[-1]

    def samples(self) -> "list[tuple[str, tuple, float]]":
        """Exposition samples: cumulative ``_bucket`` series with ``le``
        labels, then ``_sum`` and ``_count``, per label set."""
        rendered: list[tuple[str, tuple, float]] = []
        with self._lock:
            for key in sorted(self._series):
                series = self._series[key]
                cumulative = 0
                for index, bound in enumerate(self.buckets):
                    cumulative += series.bucket_counts[index]
                    rendered.append((f"{self.name}_bucket",
                                     key + (_format_bound(bound),),
                                     cumulative))
                cumulative += series.bucket_counts[-1]
                rendered.append((f"{self.name}_bucket", key + ("+Inf",),
                                 cumulative))
                rendered.append((f"{self.name}_sum", key, series.total))
                rendered.append((f"{self.name}_count", key, series.count))
        return rendered


def _format_bound(bound: float) -> str:
    if bound == int(bound) and abs(bound) < 1e15:
        return str(int(bound))
    return repr(bound)


def _format_value(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and value == int(value) \
            and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value)) if isinstance(value, float) else str(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


class MetricsRegistry:
    """A named collection of metrics with get-or-create semantics.

    ``counter`` / ``gauge`` / ``histogram`` are idempotent: asking for
    an existing name returns the registered instance (and raises if the
    kind or labels disagree — a catalogue name means one thing).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str,
                       label_names: tuple, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) \
                        or existing.label_names != tuple(label_names):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels "
                        f"{existing.label_names}"
                    )
                return existing
            metric = cls(name, help, label_names, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                label_names: tuple = ()) -> Counter:
        return self._get_or_create(Counter, name, help, label_names)

    def gauge(self, name: str, help: str = "",
              label_names: tuple = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, label_names)

    def histogram(self, name: str, help: str = "",
                  label_names: tuple = (),
                  buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
                  ) -> Histogram:
        return self._get_or_create(Histogram, name, help, label_names,
                                   buckets=buckets)

    def get(self, name: str) -> "_Metric | None":
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> "list[_Metric]":
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> dict:
        """Plain-JSON view: ``{name: {kind, samples: [[labels...],
        value]}}`` — the machine-readable twin of the Prometheus text."""
        payload: dict = {}
        for metric in self.metrics():
            payload[metric.name] = {
                "kind": metric.kind,
                "labels": list(metric.label_names),
                "samples": [
                    [name, list(key), value]
                    for name, key, value in metric.samples()
                ],
            }
        return payload


def render_prometheus(registry: "MetricsRegistry | None" = None) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4
    — what a ``GET /metrics`` scrape expects)."""
    registry = registry if registry is not None else get_registry()
    lines: list[str] = []
    for metric in registry.metrics():
        lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for sample_name, key, value in metric.samples():
            label_names = metric.label_names
            if sample_name.endswith("_bucket") \
                    and metric.kind == "histogram":
                label_names = metric.label_names + ("le",)
            if label_names and key:
                rendered = ",".join(
                    f'{name}="{_escape_label(str(part))}"'
                    for name, part in zip(label_names, key)
                )
                lines.append(
                    f"{sample_name}{{{rendered}}} {_format_value(value)}"
                )
            else:
                lines.append(f"{sample_name} {_format_value(value)}")
    return "\n".join(lines) + "\n"


_DEFAULT_REGISTRY = MetricsRegistry()
_REGISTRY_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry every layer publishes into."""
    return _DEFAULT_REGISTRY


def reset_metrics() -> MetricsRegistry:
    """Swap in a fresh default registry (tests isolate through this) and
    return it."""
    global _DEFAULT_REGISTRY
    with _REGISTRY_LOCK:
        _DEFAULT_REGISTRY = MetricsRegistry()
        return _DEFAULT_REGISTRY
