"""Metrics scrape endpoint: ``GET /metrics`` in Prometheus text.

``serve --metrics-addr HOST:PORT`` starts this next to the JSONL
server; the same text is also available in-band through the ``metrics``
wire op, so scripted sessions (CI's obs-smoke) need no second socket.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .metrics import get_registry, render_prometheus

__all__ = ["MetricsServer", "start_metrics_server"]


class _MetricsHandler(BaseHTTPRequestHandler):
    registry = None  # bound per-server subclass below

    def do_GET(self):  # noqa: N802 - http.server API
        if self.path.split("?", 1)[0] not in ("/metrics", "/"):
            self.send_error(404)
            return
        body = render_prometheus(self.registry).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type",
                         "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # quiet: scrapes are periodic
        pass


class MetricsServer:
    """A daemon-threaded HTTP scrape endpoint over one registry."""

    def __init__(self, host: str, port: int, registry=None):
        self.registry = registry if registry is not None else get_registry()
        handler = type("BoundMetricsHandler", (_MetricsHandler,),
                       {"registry": self.registry})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics", daemon=True)

    @property
    def address(self) -> tuple:
        return self._httpd.server_address[:2]

    def start(self) -> "MetricsServer":
        self._thread.start()
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)


def start_metrics_server(addr: str, registry=None) -> MetricsServer:
    """Parse ``HOST:PORT`` (bare ``:PORT`` binds all interfaces, a bare
    port binds localhost) and start serving scrapes immediately."""
    text = addr.strip()
    if ":" in text:
        host, _, port_text = text.rpartition(":")
        host = host or "0.0.0.0"
    else:
        host, port_text = "127.0.0.1", text
    return MetricsServer(host, int(port_text), registry).start()
