"""Unified observability: structured tracing, metrics, export.

Three dependency-free pillars, shared by every layer of the engine
(closure strategies, tile scheduler + spillable store, incremental
DRed, the replicated serving tier):

* :mod:`repro.obs.trace` — a :class:`Tracer` producing nested spans
  (context-manager + decorator API, contextvars-based so spans nest
  correctly across threads and the tile schedulers' pools), a rotating
  JSONL sink (``REPRO_TRACE_FILE`` / ``--trace-file``), and the shared
  :func:`stopwatch` timer primitive that replaced the ad-hoc
  ``time.perf_counter`` call sites.
* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges and fixed-bucket histograms the per-layer stats dataclasses
  publish into, rendered in Prometheus text format.
* :mod:`repro.obs.export` — the HTTP scrape endpoint behind
  ``serve --metrics-addr`` and the ``metrics`` JSONL wire op.

Instrumentation is **zero-cost when disabled** (the null tracer's
``span`` returns a shared no-op context manager) and provably
non-semantic: closures are byte-identical with tracing on or off
(``tests/obs/test_trace_differential.py``).
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    render_prometheus,
    reset_metrics,
)
from .trace import (
    NULL_TRACER,
    Span,
    Tracer,
    configure_tracing,
    get_tracer,
    reset_tracing,
    stopwatch,
    traced,
)
from .summarize import summarize_trace, render_summary

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "configure_tracing",
    "get_registry",
    "get_tracer",
    "render_prometheus",
    "render_summary",
    "reset_metrics",
    "reset_tracing",
    "stopwatch",
    "summarize_trace",
    "traced",
]
