"""Batched multi-query CFPQ: many source-restricted queries, one closure.

A serving workload is a burst of queries over the same graph, most of
them restricted to a handful of source nodes.  Answering each one from
its own closure repeats almost all of the work; answering each one by
post-filtering the all-pairs relation materializes far more than the
query asked for.  The matrix formulation offers a third way: *stack the
source masks*.

For a batch contributing ``k`` stacked rows over an ``n``-node graph,
every matrix — the per-nonterminal fact matrices ``M_A`` and one mask
matrix ``mask(A)`` per nonterminal — is laid out ``(n+k) × (n+k)``:
rows/columns ``0..n-1`` are graph nodes, rows ``n..n+k-1`` are query
rows.  Row ``n+r`` of ``mask(A)`` is seeded with the union of the base
rows of ``M_A`` over query ``r``'s source set, and every pair rule
``A → B C`` is mirrored as a *mask rule*::

    mask(A) ← mask(A) ∪ (mask(B) × M_C)

Mask rules mirror the real derivation row-wise, so at the fixpoint row
``n+r`` of ``mask(A)`` equals the union over sources ``s`` of row ``s``
of the *closed* ``M_A`` — one :func:`repro.core.closure.run_closure`
call answers the whole batch, on any strategy (the matrices stay square
and uniformly sized, which is what ``blocked``/``autotune`` assume).
Mask symbols only ever appear as rule heads and left operands, so the
real matrices are never written by a mask rule.

Two modes:

* **cold** (no ``closed_matrices``): the real matrices start empty and
  the base facts ride in through ``initial_frontier`` alongside the
  mask seeds; real rules and mask rules run in the same closure.  One
  closure per *batch* instead of one per *query* — the batched-speedup
  case ``benchmarks/bench_batch.py`` gates.
* **warm** (``closed_matrices`` given, e.g. by
  :meth:`repro.service.query_service.QueryService.query_batch`): the
  real matrices already hold the closed facts and only the mask rules
  are included, so the closure derives nothing outside the union of
  the masks and the caller's matrices are never mutated.  Mask seeds
  are gathered straight from the closed rows
  (:meth:`repro.matrices.base.MatrixBackend.gather_rows`).

Demultiplexing reads the stacked rows back with ``gather_rows``:
membership queries get one union row (nonempty intersection with the
target set ⇒ True), source-restricted relational queries one row per
source (preserving ``(source, target)`` resolution).  Neither ever
touches the all-pairs relation; only an *unrestricted* relational query
reads the real block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Optional

from ..errors import SemanticsError
from ..grammar.cfg import CFG
from ..grammar.cnf import ensure_cnf
from ..grammar.symbols import Nonterminal
from ..graph.labeled_graph import LabeledGraph
from ..matrices.base import (
    BooleanMatrix,
    MatrixBackend,
    default_backend,
    get_backend,
)
from .closure import run_closure
from .matrix_cfpq import DEFAULT_STRATEGY, initial_pair_sets

__all__ = ["BatchQuery", "as_batch_query", "mask_symbol", "solve_batch"]

#: Tag for the stacked-mask companion symbol of a nonterminal.  Pair
#: rules accept arbitrary hashable symbols, so ``("mask", A)`` lives in
#: the same matrix dict as ``A`` itself.
MASK = "mask"

#: Batch semantics: ``membership`` answers "is some (source, target)
#: pair in the relation" as a bool; ``relational`` returns the pairs.
BATCH_SEMANTICS = ("relational", "membership")


def mask_symbol(nonterminal: Nonterminal) -> tuple:
    """The closure symbol of *nonterminal*'s stacked mask matrix."""
    return (MASK, nonterminal)


@dataclass(frozen=True)
class BatchQuery:
    """One query of a batch: ``start`` nonterminal, optional source and
    target restrictions (node objects), and the answer semantics.

    * ``relational`` — the pairs of the relation restricted to
      ``sources × targets`` (either side ``None`` = unrestricted).
    * ``membership`` — ``True`` iff the restricted relation is
      nonempty; requires both ``sources`` and ``targets``.
    """

    start: Hashable
    sources: Optional[frozenset] = None
    targets: Optional[frozenset] = None
    semantics: str = "relational"


def as_batch_query(spec) -> BatchQuery:
    """Coerce a :class:`BatchQuery`, mapping, or tuple into the
    canonical spec (single nodes are promoted to singleton sets)."""
    if isinstance(spec, BatchQuery):
        return spec
    if isinstance(spec, dict):
        start = spec.get("start")
        if start is None:
            raise SemanticsError("batch query needs a 'start' nonterminal")
        sources = spec.get("sources", spec.get("source"))
        targets = spec.get("targets", spec.get("target"))
        semantics = spec.get("semantics", "relational")
    else:
        parts = tuple(spec)
        if not 1 <= len(parts) <= 4:
            raise SemanticsError(
                "batch query tuples are (start, sources, targets[, "
                f"semantics]); got {len(parts)} elements"
            )
        start = parts[0]
        sources = parts[1] if len(parts) > 1 else None
        targets = parts[2] if len(parts) > 2 else None
        semantics = parts[3] if len(parts) > 3 else "relational"
    return BatchQuery(start=start, sources=_node_set(sources),
                      targets=_node_set(targets), semantics=semantics)


def _node_set(value) -> Optional[frozenset]:
    if value is None:
        return None
    if isinstance(value, (frozenset, set, list, tuple)):
        return frozenset(value)
    return frozenset((value,))


class _Plan:
    """Row layout of one validated query inside the stacked block."""

    __slots__ = ("query", "start", "rows", "source_ids", "target_ids")

    def __init__(self, query: BatchQuery, start: Nonterminal,
                 rows: "list[int]", source_ids: "list[int]",
                 target_ids: "Optional[set[int]]"):
        self.query = query
        self.start = start
        self.rows = rows              # stacked row indexes (batch-local)
        self.source_ids = source_ids  # one per row (relational) / all (union)
        self.target_ids = target_ids  # None = unrestricted


def _validate(query: BatchQuery, grammar: CFG) -> Nonterminal:
    start = query.start if isinstance(query.start, Nonterminal) \
        else Nonterminal(str(query.start))
    grammar.require_nonterminal(start)
    if query.semantics not in BATCH_SEMANTICS:
        raise SemanticsError(
            f"unknown batch semantics {query.semantics!r}; expected one "
            f"of {BATCH_SEMANTICS}"
        )
    if query.semantics == "membership" and (query.sources is None
                                            or query.targets is None):
        raise SemanticsError(
            "membership batch queries require both sources and targets"
        )
    return start


def _present_ids(graph: LabeledGraph, nodes: Iterable) -> "list[int]":
    """Sorted dense ids of the nodes present in *graph* (absent nodes
    restrict to nothing, they are not an error — matching the service's
    membership contract)."""
    return sorted(graph.node_id(node) for node in nodes
                  if graph.has_node(node))


def solve_batch(graph: LabeledGraph, grammar: CFG, queries,
                backend: "str | MatrixBackend | None" = None,
                strategy: str = DEFAULT_STRATEGY,
                normalize: bool = True,
                closed_matrices: "dict[Nonterminal, BooleanMatrix] | None"
                = None,
                **strategy_options) -> list:
    """Answer a batch of queries with **one** masked closure.

    *queries* is a sequence of :class:`BatchQuery` / dict / tuple specs
    (see :func:`as_batch_query`).  Returns one answer per query, in
    order: a ``frozenset`` of ``(source_node, target_node)`` pairs for
    ``relational`` semantics, a ``bool`` for ``membership``.

    With *closed_matrices* — a dict of per-nonterminal matrices already
    at the closed fixpoint, square, sized at least ``node_count`` (any
    extra rows must be empty padding) — only the mask rules run (warm
    mode) and the given matrices are never mutated.  Without it the
    batch is solved cold from the graph's base facts.
    """
    specs = [as_batch_query(query) for query in queries]
    working = ensure_cnf(grammar) if normalize else grammar
    working.require_cnf("the batched CFPQ engine")
    backend_obj = get_backend(backend if backend is not None
                              else default_backend())

    n = graph.node_count
    plans: list[_Plan] = []
    next_row = 0
    for spec in specs:
        start = _validate(spec, working)
        target_ids = None if spec.targets is None \
            else set(_present_ids(graph, spec.targets))
        if spec.semantics == "membership":
            source_ids = _present_ids(graph, spec.sources)
            rows = [next_row]          # one union row per membership query
            next_row += 1
        elif spec.sources is not None:
            source_ids = _present_ids(graph, spec.sources)
            rows = list(range(next_row, next_row + len(source_ids)))
            next_row += len(source_ids)
        else:
            source_ids = []
            rows = []                  # answered from the real block
        plans.append(_Plan(spec, start, rows, source_ids, target_ids))

    k = next_row
    pair_rules = [
        (rule.head, rule.body[0], rule.body[1])
        for rule in working.binary_rules
    ]
    mask_rules = [
        (mask_symbol(head), mask_symbol(left), right)
        for head, left, right in pair_rules
    ]

    if closed_matrices is None:
        result_matrices = _solve_cold(
            graph, working, plans, n, k, pair_rules, mask_rules,
            backend_obj, strategy, strategy_options,
        )
        real = result_matrices
    else:
        result_matrices = _solve_warm(
            closed_matrices, working, plans, n, k, mask_rules,
            backend_obj, strategy, strategy_options,
        )
        real = closed_matrices

    return [_demux(plan, graph, n, result_matrices, real, backend_obj)
            for plan in plans]


def _mask_seed_pairs(plans: "list[_Plan]", n: int,
                     by_source: "dict[int, Iterable[int]]",
                     ) -> "set[tuple[int, int]]":
    """Stacked-row seeds for one nonterminal: row ``n + r`` gets the
    union of *by_source* rows over the plan's sources for row ``r``."""
    seeds: set[tuple[int, int]] = set()
    for plan in plans:
        if not plan.rows:
            continue
        if plan.query.semantics == "membership":
            row = n + plan.rows[0]
            for source in plan.source_ids:
                seeds.update((row, j) for j in by_source.get(source, ()))
        else:
            for row, source in zip(plan.rows, plan.source_ids):
                seeds.update((n + row, j)
                             for j in by_source.get(source, ()))
    return seeds


def _solve_cold(graph, grammar, plans, n, k, pair_rules, mask_rules,
                backend, strategy, strategy_options) -> dict:
    """Real rules and mask rules in one closure, everything seeded
    through ``initial_frontier`` (base facts + gathered mask rows)."""
    size = n + k
    base = initial_pair_sets(graph, grammar)
    by_source_of: dict[Nonterminal, dict[int, list[int]]] = {}
    for nt, pairs in base.items():
        rows: dict[int, list[int]] = {}
        for i, j in pairs:
            rows.setdefault(i, []).append(j)
        by_source_of[nt] = rows

    matrices: dict = {}
    frontier: dict = {}
    for nt in grammar.nonterminals:
        matrices[nt] = backend.zeros(size)
        matrices[mask_symbol(nt)] = backend.zeros(size)
        frontier[nt] = backend.from_pairs(size, base[nt])
        frontier[mask_symbol(nt)] = backend.from_pairs(
            size, _mask_seed_pairs(plans, n, by_source_of[nt])
        )
    closure = run_closure(matrices, pair_rules + mask_rules, backend,
                          strategy=strategy, initial_frontier=frontier,
                          **strategy_options)
    return closure.matrices


def _solve_warm(closed_matrices, grammar, plans, n, k, mask_rules,
                backend, strategy, strategy_options) -> dict:
    """Mask rules only, against already-closed real matrices: the
    closure derives nothing outside the union of the masks and the
    caller's matrices are not mutated (mask symbols are the only rule
    heads, and the matrix dict is shallow-copied before the run)."""
    sizes = {matrix.shape for matrix in closed_matrices.values()}
    if len(sizes) > 1:
        raise ValueError(f"closed matrices disagree on shape: {sizes}")
    provided = sizes.pop()[0] if sizes else n
    if provided < n + k:
        # Not enough padding for this batch's stacked rows: re-pad.
        size = n + k
        closed_matrices = {
            nt: backend.from_pairs(
                size,
                ((i, j) for i, j in matrix.nonzero_pairs()
                 if i < n and j < n),
            )
            for nt, matrix in closed_matrices.items()
        }
    else:
        size = provided

    # Gather each nonterminal's seed rows straight from the closed
    # facts — one vectorized gather per nonterminal.
    flat_rows: list[tuple[int, int]] = []   # (stacked row, source id)
    for plan in plans:
        if not plan.rows:
            continue
        if plan.query.semantics == "membership":
            flat_rows.extend((plan.rows[0], source)
                             for source in plan.source_ids)
        else:
            flat_rows.extend(zip(plan.rows, plan.source_ids))

    matrices: dict = dict(closed_matrices)
    frontier: dict = {}
    gather_ids = [source for _row, source in flat_rows]
    missing = [nt for nt in grammar.nonterminals
               if nt not in closed_matrices]
    if missing:
        # Zero-filling here would silently treat a nonterminal's facts
        # as empty, corrupting every answer derived through it.
        raise ValueError(
            f"closed_matrices is missing nonterminals {sorted(map(str, missing))}; "
            "warm solve_batch needs the closed matrix of every "
            "nonterminal of the (normalized) grammar"
        )
    for nt in grammar.nonterminals:
        closed = closed_matrices[nt]
        matrices[mask_symbol(nt)] = backend.zeros(size)
        gathered = backend.gather_rows(closed, gather_ids)
        seeds = {
            (n + flat_rows[position][0], j)
            for position, j in gathered.nonzero_pairs()
        }
        frontier[mask_symbol(nt)] = backend.from_pairs(size, seeds)
    closure = run_closure(matrices, mask_rules, backend,
                          strategy=strategy, initial_frontier=frontier,
                          **strategy_options)
    return closure.matrices


def _demux(plan: _Plan, graph, n: int, matrices: dict, real: dict,
           backend) -> object:
    """Read one query's answer back out of the stacked result."""
    query = plan.query
    if query.semantics == "membership":
        mask = matrices[mask_symbol(plan.start)]
        row = backend.gather_rows(mask, [n + plan.rows[0]])
        targets = plan.target_ids or set()
        return any(j in targets for _i, j in row.nonzero_pairs())
    if query.sources is not None:
        mask = matrices[mask_symbol(plan.start)]
        gathered = backend.gather_rows(
            mask, [n + row for row in plan.rows]
        )
        pairs = set()
        for position, j in gathered.nonzero_pairs():
            if plan.target_ids is not None and j not in plan.target_ids:
                continue
            pairs.add((graph.node_at(plan.source_ids[position]),
                       graph.node_at(j)))
        return frozenset(pairs)
    # Unrestricted sources: the only case read from the real block.
    pairs = set()
    for i, j in real[plan.start].nonzero_pairs():
        if i >= n or j >= n:
            continue
        if plan.target_ids is not None and j not in plan.target_ids:
            continue
        pairs.add((graph.node_at(i), graph.node_at(j)))
    return frozenset(pairs)
