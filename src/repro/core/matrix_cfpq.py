"""Boolean-decomposed Algorithm 1 — the production CFPQ engine.

Valiant's observation (quoted in the paper's Related Works) is that one
set-matrix multiplication equals ``|N|²`` *Boolean* matrix
multiplications: represent ``T`` as one boolean matrix ``M_A`` per
non-terminal (``M_A[i,j] = 1 ⟺ A ∈ T[i,j]``); then

    T × T  contributes, for every pair rule ``A → B C``,
    the boolean product ``M_B × M_C`` into ``M_A``.

The closure loop becomes::

    while any M_A changes:
        for (A → B C) in P:  M_A ← M_A ∪ (M_B × M_C)

which is exactly what the paper's dGPU/sCPU/sGPU implementations run on
CUBLAS/Math.NET/CUSPARSE.  Here both halves are pluggable: the boolean
kernel comes from a matrix backend (:mod:`repro.matrices`) and the
iteration order from a closure *strategy*
(:mod:`repro.core.closure`) — ``delta`` (semi-naive frontier
propagation, the default), ``naive`` (the literal loop above, kept as
the differential oracle) or ``blocked`` (tiled products with a bounded
working set).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..grammar.cfg import CFG
from ..grammar.cnf import ensure_cnf
from ..grammar.symbols import Nonterminal, Terminal
from ..graph.labeled_graph import LabeledGraph
from ..matrices.base import (
    BooleanMatrix,
    MatrixBackend,
    default_backend,
    get_backend,
)
from .closure import run_closure
from .relations import ContextFreeRelations

#: Default closure strategy for the production solver.
DEFAULT_STRATEGY = "delta"


@dataclass(frozen=True)
class MatrixCFPQStats:
    """Instrumentation of one solver run, for benchmark reports."""

    iterations: int
    multiplications: int
    node_count: int
    nonterminal_count: int
    backend: str
    nnz_per_nonterminal: dict[str, int] = field(default_factory=dict)
    strategy: str = "naive"
    #: New entries merged per closure round (the semi-naive frontier
    #: sizes when ``strategy == "delta"``).
    delta_nnz_per_round: tuple[int, ...] = ()
    #: Strategy-specific instrumentation forwarded from the closure run
    #: (``blocked``: per-tile stats incl. tiles skipped by the frontier
    #: and scheduler wall time; ``autotune``: per-round decisions).
    details: dict = field(default_factory=dict)

    @property
    def total_entries(self) -> int:
        """Total stored True entries across all non-terminal matrices —
        bounded by |V|²·|N| (the paper's Theorem 3 bound)."""
        return sum(self.nnz_per_nonterminal.values())


@dataclass(frozen=True)
class MatrixCFPQResult:
    """Final per-non-terminal boolean matrices plus derived relations."""

    matrices: dict[Nonterminal, BooleanMatrix]
    relations: ContextFreeRelations
    stats: MatrixCFPQStats


def initial_pair_sets(graph: LabeledGraph, grammar: CFG,
                      ) -> dict[Nonterminal, set[tuple[int, int]]]:
    """The base facts of Algorithm 1 lines 6-7 as coordinate sets:
    ``(i, j) ∈ S_A`` iff some edge ``(i, x, j)`` has a rule ``A → x``,
    plus the identity diagonal for every non-terminal that could derive
    ε before CNF normalization (``ε ∈ L(G_A)`` makes the empty path
    ``iπi`` a witness for every node — see
    :attr:`repro.grammar.cfg.CFG.nullable_diagonal`)."""
    n = graph.node_count
    pair_sets: dict[Nonterminal, set[tuple[int, int]]] = {
        nt: set() for nt in grammar.nonterminals
    }
    diagonal = {(i, i) for i in range(n)}
    for nt in grammar.nullable_diagonal:
        if nt in pair_sets:
            pair_sets[nt] |= diagonal
    for label in graph.labels:
        heads = grammar.heads_for_terminal(Terminal(label))
        if not heads:
            continue
        pairs = graph.edge_pairs(label)
        for head in heads:
            pair_sets[head] |= pairs
    return pair_sets


def initial_boolean_matrices(graph: LabeledGraph, grammar: CFG,
                             backend: MatrixBackend,
                             ) -> dict[Nonterminal, BooleanMatrix]:
    """Matrix initialization (Algorithm 1 lines 6-7), decomposed: the
    :func:`initial_pair_sets` base facts materialized on *backend*."""
    n = graph.node_count
    return {
        nt: backend.from_pairs(n, pairs)
        for nt, pairs in initial_pair_sets(graph, grammar).items()
    }


def solve_matrix(graph: LabeledGraph, grammar: CFG,
                 backend: "str | MatrixBackend | None" = None,
                 normalize: bool = True,
                 strategy: str = DEFAULT_STRATEGY,
                 **strategy_options) -> MatrixCFPQResult:
    """Run the boolean-decomposed Algorithm 1.

    Parameters
    ----------
    graph:
        The edge-labeled input graph ``D``.
    grammar:
        The query grammar ``G``; normalized to CNF when *normalize*.
    backend:
        Boolean matrix backend name or instance (``dense`` / ``sparse``
        / ``pyset`` / ``bitset`` / ``setmatrix``); None picks the best
        registered one (``sparse`` when SciPy is installed).
    strategy:
        Closure strategy name (``delta`` / ``naive`` / ``blocked``);
        extra keyword options (e.g. ``tile_size``) are forwarded to it.

    Returns
    -------
    MatrixCFPQResult
        Per-non-terminal matrices, the relations ``R_A`` and run stats.
    """
    working_grammar = ensure_cnf(grammar) if normalize else grammar
    working_grammar.require_cnf("the matrix CFPQ engine")
    backend_obj = get_backend(backend if backend is not None
                              else default_backend())

    matrices = initial_boolean_matrices(graph, working_grammar, backend_obj)
    pair_rules = [
        (rule.head, rule.body[0], rule.body[1])
        for rule in working_grammar.binary_rules
    ]

    closure = run_closure(matrices, pair_rules, backend_obj,
                          strategy=strategy, **strategy_options)
    matrices = closure.matrices

    relations = ContextFreeRelations(
        graph,
        {nt: matrix.to_pair_set() for nt, matrix in matrices.items()},
    )
    stats = MatrixCFPQStats(
        iterations=closure.iterations,
        multiplications=closure.multiplications,
        node_count=graph.node_count,
        nonterminal_count=len(working_grammar.nonterminals),
        backend=backend_obj.name,
        nnz_per_nonterminal={
            nt.name: matrix.nnz() for nt, matrix in matrices.items()
        },
        strategy=strategy,
        delta_nnz_per_round=closure.delta_nnz_per_round,
        details=closure.details,
    )
    return MatrixCFPQResult(matrices=matrices, relations=relations, stats=stats)


def solve_matrix_relations(graph: LabeledGraph, grammar: CFG,
                           backend: "str | MatrixBackend | None" = None,
                           normalize: bool = True,
                           strategy: str = DEFAULT_STRATEGY,
                           ) -> ContextFreeRelations:
    """Convenience wrapper returning only the relations."""
    return solve_matrix(graph, grammar, backend=backend,
                        normalize=normalize, strategy=strategy).relations
