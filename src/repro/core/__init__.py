"""Core CFPQ algorithms: the paper's contribution."""

from .allpath import AllPathEnumerator, count_paths
from .blocked import (
    BlockedStats,
    TileDeviceSimulator,
    assemble_from_tiles,
    blocked_multiply,
    boolean_closure_blocked,
    split_into_tiles,
)
from .closure import (
    ClosureResult,
    STRATEGIES,
    available_strategies,
    fixpoint_history,
    get_strategy,
    register_strategy,
    run_closure,
)
from .conjunctive import (
    ConjunctiveGrammar,
    ConjunctiveRule,
    TerminalRule,
    anbncn_grammar,
    solve_conjunctive_approx,
)
from .engine import SEMANTICS, CFPQEngine, cfpq
from .incremental import IncrementalCFPQ
from .matrix_cfpq import (
    MatrixCFPQResult,
    MatrixCFPQStats,
    initial_boolean_matrices,
    solve_matrix,
    solve_matrix_relations,
)
from .path_index import PathIndex
from .naive_closure import (
    NaiveClosureResult,
    build_initial_matrix,
    relations_from_matrix,
    solve_naive,
    solve_naive_with_history,
)
from .relations import ContextFreeRelations
from .single_path import (
    Path,
    PathEdge,
    SinglePathIndex,
    build_single_path_index,
    extract_path,
    iter_single_paths,
    path_is_valid,
    path_word,
)
from .transitive_closure import (
    boolean_closure_delta,
    boolean_closure_incremental,
    boolean_closure_naive,
    boolean_closure_warshall,
    closure_cf,
    closure_cf_history,
    closure_valiant,
)

__all__ = [
    "AllPathEnumerator",
    "BlockedStats",
    "CFPQEngine",
    "ClosureResult",
    "STRATEGIES",
    "IncrementalCFPQ",
    "PathIndex",
    "TileDeviceSimulator",
    "ConjunctiveGrammar",
    "ConjunctiveRule",
    "ContextFreeRelations",
    "MatrixCFPQResult",
    "MatrixCFPQStats",
    "NaiveClosureResult",
    "Path",
    "PathEdge",
    "SEMANTICS",
    "SinglePathIndex",
    "TerminalRule",
    "anbncn_grammar",
    "assemble_from_tiles",
    "available_strategies",
    "blocked_multiply",
    "boolean_closure_blocked",
    "boolean_closure_delta",
    "boolean_closure_incremental",
    "boolean_closure_naive",
    "boolean_closure_warshall",
    "build_initial_matrix",
    "build_single_path_index",
    "cfpq",
    "closure_cf",
    "closure_cf_history",
    "closure_valiant",
    "count_paths",
    "extract_path",
    "fixpoint_history",
    "get_strategy",
    "initial_boolean_matrices",
    "iter_single_paths",
    "path_is_valid",
    "path_word",
    "register_strategy",
    "relations_from_matrix",
    "run_closure",
    "solve_conjunctive_approx",
    "solve_matrix",
    "solve_matrix_relations",
    "solve_naive",
    "solve_naive_with_history",
    "split_into_tiles",
]
