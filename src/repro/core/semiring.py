"""Semiring-generalized closure: one engine, three query semantics.

The paper computes three answers with three bespoke fixpoint loops:
relational (Algorithm 1), single-path (Section 5: cells annotated with
a path length), and all-path (Section 7: cells must expose every
derivation).  All three are the *same* least fixpoint

    M_A  ←  M_A ⊕ (M_B ⊗ M_C)        for every pair rule A → B C

over different annotation **semirings** — the shape the GraphBLAS line
of CFPQ work (Azimov et al.'s later Kronecker/matrix engines, GraphBLAS
CFPQ) makes explicit.  This module supplies:

* :class:`Semiring` — the annotation algebra: ``identity`` (the seed a
  terminal edge contributes), ``multiply`` (⊗ — combine a left and a
  right sub-derivation across a midpoint), ``add`` (⊕ — fold competing
  candidates for one cell inside a product) and ``merge`` — the
  cell-level rule applied when a product lands on an occupied cell.
  The default ``merge`` is **absorb-on-first-write**: the recorded
  annotation is kept untouched, matching the paper's Section 5 rule
  that "the non-terminal A is not added ... with an associated path
  length l2 for all l2 ≠ l1".
* :class:`BooleanSemiring` — relational semantics (presence only).
* :class:`LengthSemiring` — single-path semantics.  Strengthens the
  never-update rule to its canonical, confluent form: a strictly
  *shorter* candidate replaces the recorded length and re-enters the
  frontier.  Every strategy (naive / delta / blocked) then converges to
  the identical least fixpoint — the minimal witness length per cell —
  instead of an iteration-order-dependent one, which is what makes the
  cross-strategy differential tests byte-for-byte exact.  Recorded
  lengths remain exactly what Theorem 5 needs: each admits a concrete
  path recoverable by the midpoint search of
  :func:`repro.core.single_path.extract_path`.
* :class:`WitnessSemiring` — all-path semantics.  A cell's annotation
  is the *midpoint index*: the set of terminal edges and binary splits
  ``(B, C, r)`` that derive it.  ⊕/merge is set union, so the fixpoint
  holds every decomposition and the parse forest
  (:class:`repro.core.path_index.AllPathIndex`) is read off directly.
* :class:`AnnotatedMatrix` / :class:`AnnotatedBackend` — the adapter
  implementing the mutable kernel API (``union_update`` /
  ``difference`` / ``mxm_into`` / tiling) over annotated cells, so
  :func:`repro.core.closure.run_closure` — including the ``delta`` and
  ``blocked`` strategies — runs unchanged on all three semirings.

Termination: ``merge`` must be monotone w.r.t. a well-founded order
(absorb: no change ever; length: non-negative integers decrease;
witness: finite sets grow), so every strategy's worklist drains.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping

from ..grammar.symbols import Terminal
from ..matrices.base import BooleanMatrix, MatrixBackend, Pair

#: A witness-set entry: ``("edge", label)`` for a terminal derivation or
#: ``("split", left_symbol, right_symbol, midpoint)`` for a binary one.
WitnessEntry = tuple


class Semiring(abc.ABC):
    """The annotation algebra threaded through the closure kernels.

    ``add``/``multiply``/``identity`` are the semiring operations; the
    extra ``merge`` hook is the paper's cell-update rule.  Annotation
    values must be immutable (they are shared between matrices, deltas
    and tiles).
    """

    #: Registry-style display name (``boolean`` / ``length`` / ``witness``).
    name: str = "abstract"

    #: True when ``multiply`` reads operand annotation *values*, so a
    #: refined annotation must re-enter the semi-naive frontier (the
    #: length semiring: shorter operands produce shorter products).
    #: Semirings whose ⊗ depends only on cell *presence* (witness:
    #: products emit the rule/midpoint, never the operand sets) leave
    #: this False — their refinements are merged in place but re-firing
    #: rules over them is provably a no-op, so the engine skips it.
    refinement_feeds_products: bool = True

    @abc.abstractmethod
    def identity(self, label: str | None = None):
        """The ⊗-unit seed a single terminal edge contributes (length 1,
        an ``("edge", label)`` witness, ...)."""

    def empty_path(self):
        """The annotation of the *empty* path ``iπi`` — the seed of the
        diagonal cell ``(i, i)`` of a nullable non-terminal (``A ⇒* ε``):
        length 0, an ``("empty",)`` witness, plain presence for the
        boolean semiring.  Default: the edge identity (correct for
        presence-only semirings)."""
        return self.identity()

    @abc.abstractmethod
    def multiply(self, left, right, midpoint: int,
                 left_symbol: Hashable, right_symbol: Hashable):
        """⊗: combine a left and a right annotation across *midpoint*.

        *left_symbol* / *right_symbol* are the body non-terminals of the
        rule being fired (the tags of the operand matrices) — provenance
        the witness semiring records and the others ignore.
        """

    @abc.abstractmethod
    def add(self, left, right):
        """⊕: fold two candidate annotations for the same output cell of
        one product.  Must be associative, commutative and idempotent so
        the fold order inside a product cannot leak into the result."""

    def merge(self, existing, incoming) -> tuple[object, bool]:
        """Cell-level merge when a product lands on an occupied cell;
        returns ``(value, changed)``.

        Default: **absorb-on-first-write** — keep the recorded
        annotation untouched (the paper's never-update rule).  Override
        only with a monotone refinement (see :class:`LengthSemiring`);
        a ``changed`` result re-enters the semi-naive frontier.
        """
        return existing, False


class BooleanSemiring(Semiring):
    """Relational semantics: a cell is merely present (value ``True``)."""

    name = "boolean"

    def identity(self, label: str | None = None) -> bool:
        return True

    def multiply(self, left, right, midpoint, left_symbol, right_symbol) -> bool:
        return True

    def add(self, left, right) -> bool:
        return True


class LengthSemiring(Semiring):
    """Single-path semantics: the annotation is a witness-path length.

    ⊗ adds lengths (concatenating the sub-paths), ⊕ keeps the minimum.
    ``merge`` keeps the minimum too: a strictly shorter candidate
    replaces the recorded length and is re-propagated, so the fixpoint
    is the canonical minimal witness length — identical for every
    closure strategy and backend.  (The paper's plain first-write rule
    also terminates but records whichever length the iteration order
    happened to find first; the min refinement is the confluent closure
    of that rule and still satisfies Theorem 5: every recorded length
    admits a concrete path, recovered by the same midpoint search.)
    """

    name = "length"

    def identity(self, label: str | None = None) -> int:
        return 1

    def multiply(self, left: int, right: int, midpoint, left_symbol,
                 right_symbol) -> int:
        return left + right

    def add(self, left: int, right: int) -> int:
        return left if left <= right else right

    def empty_path(self) -> int:
        return 0

    def merge(self, existing: int, incoming: int) -> tuple[int, bool]:
        if incoming < existing:
            return incoming, True
        return existing, False


class WitnessSemiring(Semiring):
    """All-path semantics: the annotation is the cell's midpoint index.

    A value is a frozenset of :data:`WitnessEntry` — every terminal
    edge and every binary split ``(left, right, midpoint)`` that derives
    the cell.  ⊕ and ``merge`` are set union (monotone and finite, so
    every strategy terminates at the complete index); at the fixpoint a
    cell's set holds *all* decompositions, i.e. the packed parse-forest
    node of the paper's Section 7 question.

    ⊗ emits the firing rule's provenance and never reads the operand
    sets, so growing a cell's witness set cannot change any downstream
    product: completeness only needs every rule to fire once after both
    operand *cells* exist, which cell-presence deltas already guarantee.
    ``refinement_feeds_products`` is False accordingly.
    """

    name = "witness"
    refinement_feeds_products = False

    def identity(self, label: str | None = None) -> frozenset:
        if label is None:
            return frozenset()
        return frozenset({("edge", label)})

    def empty_path(self) -> frozenset:
        return frozenset({("empty",)})

    def multiply(self, left, right, midpoint: int, left_symbol,
                 right_symbol) -> frozenset:
        return frozenset({("split", left_symbol, right_symbol, midpoint)})

    def add(self, left: frozenset, right: frozenset) -> frozenset:
        return left | right

    def merge(self, existing: frozenset,
              incoming: frozenset) -> tuple[frozenset, bool]:
        if incoming <= existing:
            return existing, False
        return existing | incoming, True


#: Default saturation cap for :class:`CountingSemiring`.  Kept small on
#: purpose: saturating a pump cycle costs O(cap) refinement rounds (see
#: the class docstring), so a huge default turns cyclic graphs into
#: effective hangs.
DEFAULT_COUNTING_CAP = 1 << 10


class CountingSemiring(Semiring):
    """Derivation counting with saturation — one value type for two jobs.

    A cell's annotation is a frozenset of ``(entry, count)`` pairs: one
    entry per *one-step derivation* of the cell (the same
    ``("edge", label)`` / ``("empty",)`` / ``("split", B, C, r)`` shapes
    the witness semiring records) mapped to the number of distinct
    derivation trees routed through that decomposition, saturating at
    ``cap``.  The cell's total derivation count is the saturating sum
    over its entries (:meth:`count`) and its *support set* is the entry
    keys (:meth:`supports`) — which is exactly the DRed support index of
    :mod:`repro.core.incremental`, so deletion support and derivation
    counting share one representation on the same matrix kernels.

    ⊗ emits one ``split`` entry whose count is the saturating product of
    the operand counts; ⊕ and ``merge`` take the *per-entry maximum*.
    Candidates inside one product carry distinct midpoints (distinct
    entries), so the per-entry max degenerates to disjoint union there
    and the fold is exact; across rounds an entry's recomputed count
    only grows (operand counts are non-decreasing), so max is the
    monotone confluent merge and every strategy converges to the same
    least fixpoint.  Counts are bounded by ``cap`` and entries are
    finite, so the refinement order is well-founded — saturation is what
    keeps cyclic forests (infinitely many derivations) terminating.

    The default cap is deliberately small: a pump cycle routed through a
    count-1 cell grows its count by a *constant* per refinement round,
    so saturating a cyclic forest costs O(cap) closure rounds in the
    worst case.  Counts below the cap are always exact; cells that would
    exceed it are exactly the ones whose true count is unbounded or
    astronomically large, and they read as "≥ cap".  Pass a larger
    ``cap`` when exact counts matter more than cyclic-graph wall time.

    With ``cap == 1`` every count is pinned at 1, products can never
    change an entry's value, and the semiring becomes value-blind
    (``refinement_feeds_products`` is False) — the cheap instantiation
    the incremental DRed support index runs on.
    """

    def __init__(self, cap: int = DEFAULT_COUNTING_CAP,
                 name: str | None = None):
        if cap < 1:
            raise ValueError("counting cap must be >= 1")
        self.cap = cap
        self.name = name if name is not None else (
            "counting" if cap == DEFAULT_COUNTING_CAP
            else f"counting[{cap}]"
        )

    @property
    def refinement_feeds_products(self) -> bool:  # type: ignore[override]
        return self.cap > 1

    # -- saturating scalar arithmetic (shared with the path-count DP) --
    def saturating_add(self, left: int, right: int) -> int:
        total = left + right
        return total if total < self.cap else self.cap

    def saturating_multiply(self, left: int, right: int) -> int:
        product = left * right
        return product if product < self.cap else self.cap

    def count(self, value: frozenset | None) -> int:
        """Total derivation count of a cell value (saturating sum over
        entries; 1 for the empty value a lifted boolean cell carries)."""
        if not value:
            return 1
        total = 0
        for _entry, entry_count in value:
            total = self.saturating_add(total, entry_count)
        return total

    def supports(self, value: frozenset | None) -> frozenset:
        """The entry keys — the cell's one-step derivation supports."""
        return frozenset(entry for entry, _count in value or ())

    # -- semiring operations ------------------------------------------
    def identity(self, label: str | None = None) -> frozenset:
        if label is None:
            return frozenset()
        return frozenset({(("edge", label), 1)})

    def empty_path(self) -> frozenset:
        return frozenset({(("empty",), 1)})

    def multiply(self, left, right, midpoint: int, left_symbol,
                 right_symbol) -> frozenset:
        trees = self.saturating_multiply(self.count(left), self.count(right))
        return frozenset(
            {(("split", left_symbol, right_symbol, midpoint), trees)}
        )

    def add(self, left: frozenset, right: frozenset) -> frozenset:
        merged = dict(left)
        for entry, entry_count in right:
            existing = merged.get(entry)
            if existing is None or entry_count > existing:
                merged[entry] = entry_count
        return frozenset(merged.items())

    def merge(self, existing: frozenset,
              incoming: frozenset) -> tuple[frozenset, bool]:
        merged = self.add(existing, incoming)
        if merged == existing:
            return existing, False
        return merged, True


class ViterbiSemiring(Semiring):
    """Max-product probabilities over weighted grammars.

    Terminal edges carry per-label weights in ``(0, 1]`` (the
    ``weights`` mapping, ``default_weight`` for unlisted labels); ⊗
    multiplies sub-derivation probabilities and ⊕/``merge`` keep the
    maximum, reusing the length semiring's refinement re-entry: a
    strictly more probable candidate replaces the recorded value and
    re-enters the frontier, so the fixpoint is the best derivation
    probability per cell — identical across strategies and backends
    (each derivation's value is fixed by its own tree shape, and max
    picks from the same candidate set everywhere).

    Termination mirrors min-plus shortest paths: weights ≤ 1 mean
    pumping a cycle can never *strictly* improve a derivation, so the
    maximum is attained by a cycle-free derivation and refinements
    strictly ascend through a finite value set.
    """

    name = "viterbi"

    def __init__(self, weights: "Mapping[str, float] | None" = None,
                 default_weight: float = 0.5,
                 name: str | None = None):
        if name is not None:
            self.name = name
        self.default_weight = float(default_weight)
        self.weights = dict(weights or {})
        for label, weight in [*self.weights.items(),
                              (None, self.default_weight)]:
            if not 0.0 < float(weight) <= 1.0:
                raise ValueError(
                    f"viterbi weight for {label!r} must be in (0, 1], "
                    f"got {weight!r}"
                )

    def edge_weight(self, label: str) -> float:
        return float(self.weights.get(label, self.default_weight))

    def identity(self, label: str | None = None) -> float:
        if label is None:
            return 1.0
        return self.edge_weight(label)

    def empty_path(self) -> float:
        return 1.0

    def multiply(self, left: float, right: float, midpoint, left_symbol,
                 right_symbol) -> float:
        return left * right

    def add(self, left: float, right: float) -> float:
        return left if left >= right else right

    def merge(self, existing: float,
              incoming: float) -> tuple[float, bool]:
        if incoming > existing:
            return incoming, True
        return existing, False


#: Shared singleton instances (the semirings are stateless).
BOOLEAN_SEMIRING = BooleanSemiring()
LENGTH_SEMIRING = LengthSemiring()
WITNESS_SEMIRING = WitnessSemiring()
COUNTING_SEMIRING = CountingSemiring()
VITERBI_SEMIRING = ViterbiSemiring()
#: The cap-1 counting instance the incremental DRed support index runs
#: on: entry keys are the supports, counts are pinned at 1, products are
#: value-blind.
SUPPORT_SEMIRING = CountingSemiring(cap=1, name="support-count")

#: Name → singleton registry, used by the process tile scheduler to
#: rebuild annotated tiles on the worker side of the pipe.
SEMIRINGS: dict[str, Semiring] = {
    semiring.name: semiring
    for semiring in (BOOLEAN_SEMIRING, LENGTH_SEMIRING, WITNESS_SEMIRING,
                     COUNTING_SEMIRING, VITERBI_SEMIRING, SUPPORT_SEMIRING)
}


def register_semiring(semiring: Semiring) -> Semiring:
    """Register *semiring* under its name (required for third-party
    semirings to work with the ``process`` tile scheduler; note the
    workers inherit runtime registrations only under the ``fork`` start
    method — under ``spawn`` the registration must happen at import
    time of a module the workers also import)."""
    SEMIRINGS[semiring.name] = semiring
    return semiring


def get_semiring(name: str) -> Semiring:
    """Resolve a registered semiring by name."""
    try:
        return SEMIRINGS[name]
    except KeyError:
        raise KeyError(
            f"unknown semiring {name!r}; registered: {sorted(SEMIRINGS)} "
            "(register custom semirings with register_semiring to use "
            "the process tile scheduler)"
        ) from None


class AnnotatedMatrix(BooleanMatrix):
    """A boolean matrix whose True cells carry semiring annotations.

    Implements the full mutable kernel API of
    :class:`repro.matrices.base.BooleanMatrix`, so the closure engine
    cannot tell it apart from a plain boolean backend; ``multiply`` runs
    the semiring ⊗/⊕ instead of ∧/∨ and ``union_update`` applies the
    semiring ``merge`` per cell.

    ``symbol`` tags the matrix with the non-terminal it represents (the
    provenance ⊗ receives); ``row_offset``/``col_offset`` locate a tile
    inside the full matrix so tiled products still report *global*
    midpoints to the semiring.
    """

    __slots__ = ("semiring", "_shape", "_cells", "_rows_index", "symbol",
                 "row_offset", "col_offset", "refined_in_place")

    backend_name = "annotated"
    supports_inplace = True

    def __init__(self, semiring: Semiring, shape: tuple[int, int],
                 cells: "Mapping[Pair, object] | Iterable[tuple[int, int, object]]" = (),
                 symbol: Hashable = None,
                 row_offset: int = 0, col_offset: int = 0):
        self.semiring = semiring
        self._shape = shape
        self.symbol = symbol
        self.row_offset = row_offset
        self.col_offset = col_offset
        #: Set on deltas returned by :meth:`union_update` when the merge
        #: refined annotations beyond what the delta itself records —
        #: the target mutated even though the frontier sees no new
        #: cells, so caches keyed on tile content must invalidate.
        self.refined_in_place = False
        if isinstance(cells, Mapping):
            cell_map = dict(cells)
        else:
            cell_map = {(i, j): value for i, j, value in cells}
        for i, j in cell_map:
            if not (0 <= i < shape[0] and 0 <= j < shape[1]):
                raise ValueError(f"cell {(i, j)} outside shape {shape}")
        self._cells = cell_map
        rows_index: dict[int, set[int]] = {}
        for i, j in cell_map:
            rows_index.setdefault(i, set()).add(j)
        self._rows_index = rows_index

    # -- shape / element access -------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    def __getitem__(self, index: Pair) -> bool:
        return index in self._cells

    def value_at(self, i: int, j: int):
        """The annotation at (i, j), or None when the cell is False."""
        return self._cells.get((i, j))

    def nonzero_pairs(self) -> Iterator[Pair]:
        return iter(self._cells)

    def nonzero_cells(self) -> Iterator[tuple[int, int, object]]:
        """Iterate ``(i, j, annotation)`` over all True cells."""
        for (i, j), value in self._cells.items():
            yield (i, j, value)

    def nnz(self) -> int:
        return len(self._cells)

    # -- algebra ----------------------------------------------------------
    def multiply(self, other: BooleanMatrix) -> "AnnotatedMatrix":
        self._require_chainable(other)
        semiring = self.semiring
        other_cells, other_rows = _cells_of(other, semiring)
        out: dict[Pair, object] = {}
        for i, ks in self._rows_index.items():
            for k in ks:
                row = other_rows.get(k)
                if not row:
                    continue
                left_value = self._cells[(i, k)]
                midpoint = self.col_offset + k
                for j in row:
                    candidate = semiring.multiply(
                        left_value, other_cells[(k, j)], midpoint,
                        self.symbol, getattr(other, "symbol", None),
                    )
                    current = out.get((i, j))
                    out[(i, j)] = (candidate if current is None
                                   else semiring.add(current, candidate))
        return AnnotatedMatrix(
            semiring, (self._shape[0], other.shape[1]), out,
            symbol=None, row_offset=self.row_offset,
            col_offset=getattr(other, "col_offset", 0),
        )

    def union(self, other: BooleanMatrix) -> "AnnotatedMatrix":
        self._require_same_shape(other)
        semiring = self.semiring
        merged = dict(self._cells)
        other_cells, _rows = _cells_of(other, semiring)
        for pair, incoming in other_cells.items():
            existing = merged.get(pair)
            if existing is None:
                merged[pair] = incoming
            else:
                merged[pair], _changed = semiring.merge(existing, incoming)
        return AnnotatedMatrix(semiring, self._shape, merged,
                               symbol=self.symbol,
                               row_offset=self.row_offset,
                               col_offset=self.col_offset)

    def transpose(self) -> "AnnotatedMatrix":
        return AnnotatedMatrix(
            self.semiring, (self._shape[1], self._shape[0]),
            {(j, i): value for (i, j), value in self._cells.items()},
            symbol=self.symbol, row_offset=self.col_offset,
            col_offset=self.row_offset,
        )

    # -- mutable kernels --------------------------------------------------
    def difference(self, other: BooleanMatrix) -> "AnnotatedMatrix":
        self._require_same_shape(other)
        other_pairs = set(other.nonzero_pairs())
        return AnnotatedMatrix(
            self.semiring, self._shape,
            {pair: value for pair, value in self._cells.items()
             if pair not in other_pairs},
            symbol=self.symbol, row_offset=self.row_offset,
            col_offset=self.col_offset,
        )

    def union_update(self, other: BooleanMatrix) -> "AnnotatedMatrix":
        """In-place ⊕-merge; the returned delta holds every new cell,
        plus — when the semiring's products read annotation values
        (``refinement_feeds_products``) — every cell whose annotation
        the semiring ``merge`` refined, so such refinements re-enter the
        semi-naive frontier.  Value-blind semirings (witness) merge
        refinements in place but keep them out of the delta: re-firing
        rules over them cannot change any product."""
        self._require_same_shape(other)
        semiring = self.semiring
        propagate_refinements = semiring.refinement_feeds_products
        other_cells, _rows = _cells_of(other, semiring)
        delta: dict[Pair, object] = {}
        refined_silently = False
        for pair, incoming in other_cells.items():
            existing = self._cells.get(pair)
            if existing is None:
                self._cells[pair] = incoming
                self._rows_index.setdefault(pair[0], set()).add(pair[1])
                delta[pair] = incoming
            else:
                merged, changed = semiring.merge(existing, incoming)
                if changed:
                    self._cells[pair] = merged
                    if propagate_refinements:
                        delta[pair] = merged
                    else:
                        refined_silently = True
        result = AnnotatedMatrix(semiring, self._shape, delta,
                                 symbol=self.symbol,
                                 row_offset=self.row_offset,
                                 col_offset=self.col_offset)
        result.refined_in_place = refined_silently
        return result


def _cells_of(matrix: BooleanMatrix, semiring: Semiring,
              ) -> tuple[dict[Pair, object], dict[int, set[int]]]:
    """The (cells, rows-index) view of any operand matrix.

    Plain boolean operands (interoperability with the relational
    backends) are lifted by annotating every True cell with the semiring
    identity.
    """
    if isinstance(matrix, AnnotatedMatrix):
        return matrix._cells, matrix._rows_index
    cells: dict[Pair, object] = {}
    rows: dict[int, set[int]] = {}
    unit = semiring.identity()
    for i, j in matrix.nonzero_pairs():
        cells[(i, j)] = unit
        rows.setdefault(i, set()).add(j)
    return cells, rows


class AnnotatedBackend(MatrixBackend):
    """Factory adapting one :class:`Semiring` to the kernel API.

    ``run_closure`` treats this exactly like the boolean backends; the
    tiling hooks preserve annotations, tags and tile offsets so the
    ``blocked`` strategy reports correct global midpoints.
    """

    def __init__(self, semiring: Semiring):
        self.semiring = semiring
        self.name = f"annotated[{semiring.name}]"

    def zeros(self, rows: int, cols: int | None = None) -> AnnotatedMatrix:
        return AnnotatedMatrix(
            self.semiring, (rows, cols if cols is not None else rows)
        )

    def from_pairs(self, size: int, pairs: Iterable[Pair],
                   cols: int | None = None) -> AnnotatedMatrix:
        unit = self.semiring.identity()
        return AnnotatedMatrix(
            self.semiring, (size, cols if cols is not None else size),
            {(i, j): unit for i, j in pairs},
        )

    def from_cells(self, shape: tuple[int, int],
                   cells: Mapping[Pair, object],
                   symbol: Hashable = None) -> AnnotatedMatrix:
        """Build a matrix from explicit ``(i, j) -> annotation`` cells."""
        return AnnotatedMatrix(self.semiring, shape, cells, symbol=symbol)

    def clone(self, matrix: BooleanMatrix) -> AnnotatedMatrix:
        if isinstance(matrix, AnnotatedMatrix):
            return AnnotatedMatrix(matrix.semiring, matrix.shape,
                                   matrix._cells, symbol=matrix.symbol,
                                   row_offset=matrix.row_offset,
                                   col_offset=matrix.col_offset)
        rows, cols = matrix.shape
        return self.from_pairs(rows, matrix.nonzero_pairs(), cols=cols)

    # -- tiling hooks (the blocked strategy) ------------------------------
    def split_into_tiles(self, matrix: BooleanMatrix, tile_size: int,
                         ) -> dict[tuple[int, int], AnnotatedMatrix]:
        if tile_size < 1:
            raise ValueError("tile_size must be positive")
        if not isinstance(matrix, AnnotatedMatrix):
            return super().split_into_tiles(matrix, tile_size)
        n = matrix.shape[0]
        grid = (n + tile_size - 1) // tile_size
        buckets: dict[tuple[int, int], dict[Pair, object]] = {
            (bi, bj): {} for bi in range(grid) for bj in range(grid)
        }
        for i, j, value in matrix.nonzero_cells():
            buckets[(i // tile_size, j // tile_size)][
                (i % tile_size, j % tile_size)] = value
        return {
            (bi, bj): AnnotatedMatrix(
                self.semiring, (tile_size, tile_size), cells,
                symbol=matrix.symbol,
                row_offset=bi * tile_size, col_offset=bj * tile_size,
            )
            for (bi, bj), cells in buckets.items()
        }

    # -- tile payloads (process-pool scheduler) ---------------------------
    def tile_payload(self, matrix: BooleanMatrix) -> tuple:
        """Annotated tiles travel as their cell dict plus the provenance
        fields (symbol, offsets) and the semiring *name* — the worker
        resolves the semiring from the registry instead of unpickling
        backend objects."""
        if not isinstance(matrix, AnnotatedMatrix):
            return ("annotated", self.semiring.name, matrix.shape, None,
                    0, 0, tuple(
                        (pair, self.semiring.identity())
                        for pair in matrix.nonzero_pairs()
                    ))
        return ("annotated", matrix.semiring.name, matrix.shape,
                matrix.symbol, matrix.row_offset, matrix.col_offset,
                tuple(matrix._cells.items()))

    def tile_from_payload(self, payload: tuple) -> AnnotatedMatrix:
        return annotated_tile_from_payload(payload)

    def matrix_nbytes(self, matrix: BooleanMatrix) -> int:
        # Annotated cells are dict entries carrying boxed values
        # (lengths, witness tuples): budget them generously.
        return 112 + 200 * matrix.nnz()

    def assemble_from_tile_iter(self, items, size: int, tile_size: int,
                                ) -> AnnotatedMatrix:
        cells: dict[Pair, object] = {}
        symbol = None
        for (bi, bj), tile in items:
            symbol = symbol if symbol is not None else getattr(tile, "symbol", None)
            base_i, base_j = bi * tile_size, bj * tile_size
            tile_cells, _rows = _cells_of(tile, self.semiring)
            for (ti, tj), value in tile_cells.items():
                i, j = base_i + ti, base_j + tj
                if i < size and j < size:
                    cells[(i, j)] = value
        return AnnotatedMatrix(self.semiring, (size, size), cells,
                               symbol=symbol)


def annotated_tile_from_payload(payload: tuple) -> AnnotatedMatrix:
    """Rebuild an annotated tile from its :meth:`AnnotatedBackend.tile_payload`."""
    _kind, semiring_name, shape, symbol, row_offset, col_offset, cells = payload
    return AnnotatedMatrix(get_semiring(semiring_name), shape, dict(cells),
                           symbol=symbol, row_offset=row_offset,
                           col_offset=col_offset)


@dataclass
class AnnotatedClosureResult:
    """Outcome of :func:`solve_annotated` — closed annotated matrices
    plus the engine stats of the underlying :func:`run_closure` call."""

    matrices: dict
    iterations: int
    multiplications: int
    delta_nnz_per_round: tuple[int, ...] = ()

    def cells(self) -> dict[tuple[int, int], dict]:
        """The Section-5 cell view: ``(i, j) -> {symbol: annotation}``."""
        merged: dict[tuple[int, int], dict] = {}
        for symbol, matrix in self.matrices.items():
            for i, j, value in matrix.nonzero_cells():
                merged.setdefault((i, j), {})[symbol] = value
        return merged


def initial_annotated_matrices(graph, grammar, semiring: Semiring,
                               ) -> dict:
    """Annotated matrix initialization (Algorithm 1 lines 6-7): seed
    ``M_A[i, j]`` with ⊕-folded edge identities for every edge
    ``(i, x, j)`` with ``A → x``, plus the ``empty_path`` diagonal for
    every non-terminal the original grammar could derive ε from
    (:attr:`repro.grammar.cfg.CFG.nullable_diagonal`) — the empty-path
    ``(i, i)`` facts the paper's relation semantics requires."""
    n = graph.node_count
    matrices = {
        nt: {} for nt in grammar.nonterminals
    }
    for nt in grammar.nullable_diagonal:
        cells = matrices.get(nt)
        if cells is None:
            continue
        empty = semiring.empty_path()
        for i in range(n):
            cells[(i, i)] = empty
    for i, label, j in graph.edges_by_id():
        heads = grammar.heads_for_terminal(Terminal(label))
        if not heads:
            continue
        seed = semiring.identity(label)
        for head in heads:
            cells = matrices[head]
            existing = cells.get((i, j))
            cells[(i, j)] = (seed if existing is None
                             else semiring.add(existing, seed))
    return {
        nt: AnnotatedMatrix(semiring, (n, n), cells, symbol=nt)
        for nt, cells in matrices.items()
    }


def solve_annotated(graph, grammar, semiring: Semiring,
                    strategy: str | None = None,
                    normalize: bool = True,
                    **strategy_options) -> AnnotatedClosureResult:
    """Run the unified closure engine over *semiring*-annotated matrices.

    This is the single code path behind the single-path and all-path
    semantics: any registered strategy (``naive`` / ``delta`` /
    ``blocked`` / plug-ins) closes the annotated matrices through
    exactly the same kernels the relational solver uses.
    """
    from ..grammar.cnf import ensure_cnf
    from .closure import run_closure
    from .matrix_cfpq import DEFAULT_STRATEGY

    working_grammar = ensure_cnf(grammar) if normalize else grammar
    working_grammar.require_cnf("the annotated CFPQ engine")
    backend = AnnotatedBackend(semiring)
    matrices = initial_annotated_matrices(graph, working_grammar, semiring)
    pair_rules = [
        (rule.head, rule.body[0], rule.body[1])
        for rule in working_grammar.binary_rules
    ]
    closure = run_closure(matrices, pair_rules, backend,
                          strategy=strategy or DEFAULT_STRATEGY,
                          **strategy_options)
    return AnnotatedClosureResult(
        matrices=closure.matrices,
        iterations=closure.iterations,
        multiplications=closure.multiplications,
        delta_nnz_per_round=closure.delta_nnz_per_round,
    )
